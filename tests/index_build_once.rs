//! Asserts the ProgramIndex build-once contract: one front-end run
//! builds exactly one index, and every downstream consumer — back-end
//! specializations, the static analyzer, the simulator, and the dynamic
//! profiler — shares it instead of re-deriving CFG facts.
//!
//! The telemetry counters are process-wide, so this test lives alone in
//! its own integration binary (its own process) and stays a single
//! `#[test]` so no sibling can bump the counters concurrently.

use oriole::arch::Gpu;
use oriole::codegen::{front_end, CompilerFlags, TuningParams};
use oriole::core::analyze;
use oriole::ir::index::telemetry;
use oriole::kernels::KernelId;
use oriole::sim::{dynamic_mix, simulate};

#[test]
fn front_end_builds_index_exactly_once() {
    let n = 256;
    let ast = KernelId::MatVec2D.ast(n);
    let gpu = Gpu::K20.spec();
    let cflags = CompilerFlags::default();

    let before = telemetry();
    let fe = front_end(&ast, gpu, 1, cflags).expect("front end runs");
    let after_front_end = telemetry();
    assert_eq!(
        after_front_end.index_builds - before.index_builds,
        1,
        "front_end builds the index exactly once"
    );

    // Drive many specializations and every index consumer; none may
    // trigger another build.
    for tc in [32u32, 128, 256, 1024] {
        for bc in [24u32, 96, 192] {
            let params = TuningParams::with_geometry(tc, bc);
            let kernel = match fe.specialize(params) {
                Ok(k) => k,
                Err(_) => continue, // infeasible point; fine for this test
            };
            let analysis = analyze(&kernel, n);
            assert!(analysis.predicted_time > 0.0);
            let report = simulate(&kernel, n).expect("simulates");
            assert!(report.time_ms > 0.0);
            let mix = dynamic_mix(&kernel, n);
            assert!(mix.total() > 0.0);
        }
    }

    let after_sweep = telemetry();
    assert_eq!(
        after_sweep.index_builds,
        after_front_end.index_builds,
        "specialize/analyze/simulate/dynamic_mix reuse the shared index"
    );
    // The sweep exercised the fast-path counter too (MatVec2D is
    // divergence-free).
    assert!(after_sweep.fast_path_hits > before.fast_path_hits);

    // The index is built *during* lowering (fused into the walk), so a
    // fresh artifact costs exactly one build no matter the kernel or
    // front-end key: builds track artifacts one-to-one.
    let mut artifacts = Vec::new();
    for kernel in [KernelId::Atax, KernelId::Bicg, KernelId::Ex14Fj] {
        for uif in [1u32, 2, 4] {
            let fe = front_end(&kernel.ast(n), gpu, uif, cflags).expect("front end runs");
            artifacts.push((fe, uif));
        }
    }
    let after_batch = telemetry();
    assert_eq!(
        after_batch.index_builds - after_sweep.index_builds,
        artifacts.len() as u64,
        "fused construction builds exactly one index per front-end artifact"
    );

    // And re-sweeping those artifacts still adds zero builds.
    for (fe, uif) in &artifacts {
        for tc in [64u32, 512] {
            let params = TuningParams { uif: *uif, ..TuningParams::with_geometry(tc, 96) };
            let Ok(kernel) = fe.specialize(params) else {
                continue;
            };
            let analysis = analyze(&kernel, n);
            assert!(analysis.predicted_time > 0.0);
        }
    }
    assert_eq!(
        telemetry().index_builds,
        after_batch.index_builds,
        "re-sweeping cached artifacts never rebuilds an index"
    );
}
