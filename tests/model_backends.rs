//! Backend-isolation suite for the pluggable `TimingModel` seam.
//!
//! Two invariants make the multi-model refactor safe:
//!
//! 1. **Behavior preservation** — a default-backend (simulator) context
//!    is bit-identical to the free functions, so every pre-refactor
//!    caller sees unchanged numbers.
//! 2. **Backend isolation** — contexts and measurement tiers for
//!    different `ModelId`s on the *same* device never share memo
//!    entries: a cached artifact produced under one cost model can
//!    never be replayed under another.

use oriole::arch::{Gpu, GpuSpec};
use oriole::codegen::{compile, TuningParams};
use oriole::core::predict::{predict_time, predict_time_with};
use oriole::ir::KernelAst;
use oriole::kernels::KernelId;
use oriole::sim::{dynamic_mix, measure, simulate, ModelContext, ModelId};
use oriole::tuner::{ArtifactStore, EvalProtocol};
use std::sync::Arc;

fn builder(n: u64) -> KernelAst {
    KernelId::Atax.ast(n)
}

fn kernel(gpu: &GpuSpec, tc: u32, bc: u32, n: u64) -> oriole::codegen::CompiledKernel {
    compile(&KernelId::Atax.ast(n), gpu, TuningParams::with_geometry(tc, bc)).unwrap()
}

#[test]
fn default_backend_context_is_bit_identical_to_free_functions() {
    // Invariant (1), across kernels, devices and repeated (warm) calls.
    for kid in oriole::kernels::ALL_KERNELS {
        for gpu in [Gpu::K20, Gpu::P100] {
            let n = kid.input_sizes()[1];
            let k = compile(&kid.ast(n), gpu.spec(), TuningParams::with_geometry(128, 48))
                .unwrap();
            let ctx = ModelContext::for_model(gpu.spec(), ModelId::Simulator);
            for _round in 0..2 {
                assert_eq!(ctx.simulate(&k, n), simulate(&k, n), "{kid} {gpu}");
                assert_eq!(
                    ctx.measure(&k, n, 10, 0xF00D),
                    measure(&k, n, 10, 0xF00D),
                    "{kid} {gpu}"
                );
                assert_eq!(ctx.dynamic_mix(&k, n), dynamic_mix(&k, n), "{kid} {gpu}");
            }
        }
    }
}

#[test]
fn static_backend_is_eq6_behind_the_seam() {
    // The static backend's report carries exactly the free
    // `predict_time` value (which in turn equals the hoisted-table
    // variant), so `--model static` is the paper's Eq. 6, memoized.
    let gpu = Gpu::M40.spec();
    let ctx = ModelContext::for_model(gpu, ModelId::Static);
    for tc in [64u32, 256, 1024] {
        let k = kernel(gpu, tc, 48, 256);
        let r = ctx.simulate(&k, 256).unwrap();
        let geom = k.geometry(256);
        assert_eq!(r.time_ms, predict_time(&k.program, geom));
        assert_eq!(r.time_ms, predict_time_with(gpu.throughput(), &k.program, geom));
    }
}

#[test]
fn same_spec_different_models_share_no_memo_entries() {
    // Invariant (2) at the store level: one GpuSpec, three ModelIds —
    // three distinct contexts, three distinct measurement tiers, and
    // every backend computes its own report (no cross-model hits).
    let store = ArtifactStore::new();
    let gpu = Gpu::K20.spec();
    let sizes = [64u64];
    let p = TuningParams::with_geometry(128, 48);

    let contexts: Vec<Arc<ModelContext>> =
        ModelId::ALL.iter().map(|&m| store.context_for(gpu, m)).collect();
    for (i, a) in contexts.iter().enumerate() {
        for b in &contexts[i + 1..] {
            assert!(!Arc::ptr_eq(a, b), "distinct models must get distinct contexts");
        }
    }

    let mut times = Vec::new();
    for &model in &ModelId::ALL {
        let ev = store.evaluator_with(
            "atax",
            &builder,
            gpu,
            &sizes,
            EvalProtocol { model, ..EvalProtocol::default() },
        );
        let m = ev.evaluate(p);
        assert!(m.feasible);
        times.push(m.time_ms);
    }
    assert_ne!(times[0], times[1]);
    assert_ne!(times[0], times[2]);
    assert_ne!(times[1], times[2]);

    let stats = store.stats();
    assert_eq!(stats.contexts, 3);
    assert_eq!(stats.measurement_tiers, 3, "one tier per (protocol incl. model)");
    for &model in &ModelId::ALL {
        let m = stats.model(model).expect("every backend ran");
        assert_eq!(m.report_misses, 1, "{model}: estimate computed exactly once");
        assert_eq!(m.report_hits, 0, "{model}: nothing served across backends");
    }
    // Compilation artifacts are model-independent: one front-end tier,
    // one lowering, shared by all three backends.
    assert_eq!(stats.front_end_tiers, 1);
    assert_eq!(stats.front_end_lowerings, 1);
}

#[test]
fn per_model_context_caches_stay_private_on_one_device() {
    // Invariant (2) at the context level, without a store: warm one
    // backend's cache, then ask another backend for the same key — it
    // must miss (and produce a different estimate).
    let gpu = Gpu::K20.spec();
    let k = kernel(gpu, 128, 48, 128);
    let sim_ctx = ModelContext::for_model(gpu, ModelId::Simulator);
    let roof_ctx = ModelContext::for_model(gpu, ModelId::Roofline);

    let sim_r = sim_ctx.simulate(&k, 128).unwrap();
    let roof_r = roof_ctx.simulate(&k, 128).unwrap();
    assert_ne!(sim_r.time_ms, roof_r.time_ms);
    assert_eq!(sim_ctx.stats().report_misses, 1);
    assert_eq!(roof_ctx.stats().report_misses, 1, "no hit leaked from the sim context");
    assert_eq!(sim_ctx.stats().model, ModelId::Simulator);
    assert_eq!(roof_ctx.stats().model, ModelId::Roofline);
}

#[test]
fn feasibility_is_backend_independent_through_the_evaluator() {
    // A variant that cannot launch is infeasible under every backend —
    // the shared occupancy gate, observed through the full evaluation
    // stack.
    let bad_builder = |n: u64| {
        let mut ast = KernelId::MatVec2D.ast(n);
        ast.shared[0].elems = 8; // 32 B/thread -> 32 KiB at TC=1024
        ast
    };
    let store = ArtifactStore::new();
    let gpu = Gpu::K20.spec();
    let sizes = [64u64];
    let mut p = TuningParams::with_geometry(1024, 48);
    p.pl = oriole::codegen::PreferredL1::Kb48; // 16 KiB shared per SM
    for &model in &ModelId::ALL {
        let ev = store.evaluator_with(
            "matvec2d-fat",
            &bad_builder,
            gpu,
            &sizes,
            EvalProtocol { model, ..EvalProtocol::default() },
        );
        let m = ev.evaluate(p);
        assert!(!m.feasible, "{model} accepted an unlaunchable variant");
        assert_eq!(m.time_ms, f64::INFINITY);
    }
}
