//! Property-based tests over the public API: random kernel ASTs must
//! round-trip through the disassembler, keep the CFG well-formed, and
//! keep the analyzers total.

use oriole::arch::{Family, Gpu};
use oriole::codegen::{compile, regalloc, transform, TuningParams};
use oriole::ir::{
    lower::{lower, LowerOptions},
    text, AccessPattern, AluOp, Branch, Cfg, DivergenceKind, KernelAst, LaunchGeometry, Loop,
    MemSpace, SizeExpr, Stmt, TripCount,
};
use proptest::prelude::*;

/// Strategy for arbitrary (bounded-depth) statement trees.
fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let alu = prop_oneof![
        Just(AluOp::AddF32),
        Just(AluOp::MulF32),
        Just(AluOp::FmaF32),
        Just(AluOp::DivF32),
        Just(AluOp::SqrtF32),
        Just(AluOp::ExpF32),
        Just(AluOp::SinCosF32),
        Just(AluOp::AddI32),
        Just(AluOp::MulI32),
        Just(AluOp::BitI32),
        Just(AluOp::CvtI32F32),
        Just(AluOp::Cvt64),
        Just(AluOp::MinMaxF32),
    ];
    let space = prop_oneof![
        Just(MemSpace::Global),
        Just(MemSpace::Shared),
        Just(MemSpace::Constant),
    ];
    let pattern = prop_oneof![
        Just(AccessPattern::Coalesced),
        Just(AccessPattern::Broadcast),
        Just(AccessPattern::Random),
        (1u32..=64).prop_map(AccessPattern::Strided),
    ];
    let leaf = prop_oneof![
        (alu, 1u32..4).prop_map(|(op, count)| Stmt::ops(op, count)),
        (space.clone(), pattern.clone(), 1u32..3)
            .prop_map(|(s, p, c)| Stmt::load(s, p, c)),
        (space, pattern, 1u32..3).prop_map(|(s, p, c)| {
            Stmt::Store(oriole::ir::MemStmt { space: s, pattern: p, elem_bytes: 4, count: c })
        }),
        Just(Stmt::SyncThreads),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let trip = prop_oneof![
        (1u64..=64).prop_map(TripCount::Const),
        (0u8..=2).prop_map(|p| TripCount::Size(SizeExpr::new(1.0, p))),
        (1u8..=2).prop_map(|p| TripCount::GridStride(SizeExpr::new(1.0, p))),
    ];
    let inner = arb_stmt(depth - 1);
    prop_oneof![
        4 => leaf,
        2 => (trip, prop::collection::vec(inner.clone(), 1..4), any::<bool>()).prop_map(
            |(trip, body, unrollable)| Stmt::Loop(Loop { trip, body, unrollable })
        ),
        1 => (
            prop_oneof![Just(DivergenceKind::Uniform), Just(DivergenceKind::ThreadDependent)],
            0.0f64..=1.0,
            prop::collection::vec(inner.clone(), 1..3),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(divergence, taken_fraction, then_body, else_body)| {
                Stmt::If(Branch { divergence, taken_fraction, then_body, else_body })
            }),
    ]
    .boxed()
}

fn arb_kernel() -> impl Strategy<Value = KernelAst> {
    prop::collection::vec(arb_stmt(2), 1..5).prop_map(|body| {
        let mut k = KernelAst::new("prop_kernel");
        k.body = body;
        k
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn disassembly_round_trips(ast in arb_kernel(), fast in any::<bool>()) {
        for family in [Family::Kepler, Family::Pascal] {
            let program = lower(&ast, family, LowerOptions { fast_math: fast });
            prop_assert!(program.validate().is_empty());
            let listing = text::emit(&program);
            let parsed = text::parse(&listing)
                .map_err(|e| TestCaseError::fail(format!("{e}\n{listing}")))?;
            prop_assert_eq!(parsed, program);
        }
    }

    #[test]
    fn cfg_is_well_formed(ast in arb_kernel()) {
        let program = lower(&ast, Family::Maxwell, LowerOptions::default());
        let cfg = Cfg::build(&program);
        prop_assert_eq!(cfg.len(), program.blocks.len());
        // Entry dominates every reachable block.
        let reach = program.reachable();
        for (i, ok) in reach.iter().enumerate() {
            if *ok {
                prop_assert!(cfg.dominates(oriole::ir::BlockId(0), oriole::ir::BlockId(i as u32)));
            }
        }
        // Loop bodies contain their headers and latches.
        for l in cfg.natural_loops(&program) {
            prop_assert!(l.body.contains(&l.header));
            prop_assert!(l.body.contains(&l.latch));
        }
    }

    #[test]
    fn expected_counts_bounded_by_warp_counts(ast in arb_kernel()) {
        // eval_expected ≤ eval_warp per block × small slack: divergence
        // saturation and ceil trips only ever increase warp-level counts.
        let program = lower(&ast, Family::Kepler, LowerOptions::default());
        for block in &program.blocks {
            let e = block.freq.eval_expected(64, 128, 8);
            let w = block.freq.eval_warp(64, 128, 8);
            prop_assert!(e <= w * (1.0 + 1e-9), "expected {} > warp {}", e, w);
        }
    }

    #[test]
    fn unroll_never_loses_floating_point_work(ast in arb_kernel(), u in 2u32..=6) {
        // Unrolling replicates bodies and ceil-divides trip counts, so
        // expected *floating-point* work can only stay equal or grow
        // (remainder iterations are modeled as full copies) — never
        // shrink. The FLOPS *class* total can legitimately fall because
        // loop-latch integer adds are IntAdd32 (Table II groups them
        // under FLOPS) and unrolling removes latch executions.
        use oriole::arch::OpClass;
        let unrolled = transform::unroll(&ast, u);
        let geom = LaunchGeometry::new(64, 128, 8);
        let fp = |k: &KernelAst| {
            let m = oriole::ir::expected_mix_of(k, Family::Kepler, geom);
            m.get(OpClass::FpIns32) + m.get(OpClass::FpIns64) + m.get(OpClass::LogSinCos)
        };
        let b = fp(&ast);
        let a = fp(&unrolled);
        prop_assert!(a >= b * 0.99, "base {} after {}", b, a);
    }

    #[test]
    fn compilation_and_analysis_total(ast in arb_kernel(), tc_i in 1u32..=8, uif in 1u32..=5) {
        // Whatever the kernel, the pipeline never panics: it compiles (or
        // cleanly refuses) and the analyzer/simulator stay total.
        let gpu = Gpu::M40.spec();
        let mut params = TuningParams::with_geometry(tc_i * 64, 48);
        params.uif = uif;
        match compile(&ast, gpu, params) {
            Err(_) => {} // clean refusal is fine
            Ok(kernel) => {
                let analysis = oriole::core::analyze(&kernel, 64);
                prop_assert!(analysis.predicted_time >= 0.0);
                match oriole::sim::simulate(&kernel, 64) {
                    Err(_) => {} // infeasible occupancy is a clean outcome
                    Ok(report) => {
                        prop_assert!(report.time_ms.is_finite());
                        prop_assert!(report.time_ms > 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn split_pipeline_matches_monolithic_compile(
        ast in arb_kernel(),
        tc_i in 1u32..=16,
        bc_i in 1u32..=8,
        uif in 1u32..=5,
        pl_kb in prop_oneof![Just(16u32), Just(48u32)],
        fast in any::<bool>(),
    ) {
        // The cached front-end + cheap back-end must reproduce the
        // monolithic compile() bit-for-bit on every tuning point — the
        // invariant that makes the evaluator's compilation cache safe.
        use oriole::codegen::{front_end, CompilerFlags, PreferredL1};
        let gpu = Gpu::K20.spec();
        let params = TuningParams {
            tc: tc_i * 64,
            bc: bc_i * 24,
            uif,
            pl: PreferredL1::from_kb(pl_kb).expect("16 or 48"),
            sc: 1,
            cflags: CompilerFlags { fast_math: fast },
        };
        let split = front_end(&ast, gpu, params.uif, params.cflags)
            .and_then(|fe| fe.specialize(params));
        let monolithic = compile(&ast, gpu, params);
        prop_assert_eq!(split, monolithic);
        // And one artifact serves every (TC, BC, PL) sibling point.
        if let Ok(fe) = front_end(&ast, gpu, params.uif, params.cflags) {
            for (tc, bc) in [(64u32, 24u32), (512, 96), (1024, 192)] {
                let sibling = TuningParams { tc, bc, ..params };
                prop_assert_eq!(fe.specialize(sibling), compile(&ast, gpu, sibling));
            }
        }
    }

    #[test]
    fn regalloc_monotone_under_unroll(u in 1u32..=6) {
        // More unrolling never reduces estimated register demand for the
        // benchmark kernels.
        let ast = oriole::kernels::KernelId::Atax.ast(64);
        let base = lower(&transform::unroll(&ast, 1), Family::Kepler, LowerOptions::default());
        let more = lower(&transform::unroll(&ast, u), Family::Kepler, LowerOptions::default());
        let a = regalloc::allocate(&base, 255);
        let b = regalloc::allocate(&more, 255);
        prop_assert!(b.demand >= a.demand);
    }

    #[test]
    fn occupancy_bounds_hold(tc in 1u32..=1024, regs in 0u32..=255, smem in 0u32..=49_152) {
        for gpu in oriole::arch::ALL_GPUS {
            let o = oriole::arch::occupancy(
                gpu.spec(),
                oriole::arch::OccupancyInput {
                    tc,
                    regs_per_thread: regs,
                    smem_per_block: smem,
                    shmem_per_mp: None,
                },
            );
            prop_assert!((0.0..=1.0).contains(&o.occupancy));
            prop_assert!(o.active_warps <= gpu.spec().warps_per_mp);
            prop_assert!(o.active_blocks <= gpu.spec().blocks_per_mp);
        }
    }

    #[test]
    fn occupancy_table_matches_direct_calculator(
        tc in 0u32..=2048,
        regs in 0u32..=300,
        smem in 0u32..=50_000,
        split in prop_oneof![
            Just(None),
            Just(Some(16 * 1024u32)),
            Just(Some(48 * 1024u32)),
        ],
    ) {
        // The quantized table must be bit-identical to the direct
        // calculator over the whole input domain, legal or not,
        // including the Fermi/Kepler L1-split values.
        use oriole::arch::{occupancy, OccupancyInput, OccupancyTable};
        for gpu in oriole::arch::ALL_GPUS {
            let table = OccupancyTable::new(gpu.spec());
            let input = OccupancyInput {
                tc,
                regs_per_thread: regs,
                smem_per_block: smem,
                shmem_per_mp: split,
            };
            prop_assert_eq!(table.lookup(input), occupancy(gpu.spec(), input));
        }
    }

    #[test]
    fn model_context_matches_free_functions(
        ast in arb_kernel(),
        tc_i in 1u32..=16,
        uif in 1u32..=5,
        fast in any::<bool>(),
        n in prop_oneof![Just(8u64), Just(64), Just(512)],
        seed in any::<u64>(),
    ) {
        // The ISSUE's compatibility invariant: `simulate`, `measure` and
        // `dynamic_mix` stay thin wrappers producing bit-identical
        // results to the memoized, context-backed paths — cold AND warm
        // (a cached report must replay exactly).
        use oriole::codegen::CompilerFlags;
        use oriole::sim::ModelContext;
        let gpu = Gpu::K20.spec();
        let params = TuningParams {
            tc: tc_i * 64,
            bc: 48,
            uif,
            pl: oriole::codegen::PreferredL1::Kb16,
            sc: 1,
            cflags: CompilerFlags { fast_math: fast },
        };
        if let Ok(kernel) = compile(&ast, gpu, params) {
            let ctx = ModelContext::new(gpu);
            // The default context runs the simulator backend behind the
            // TimingModel seam; an explicitly selected simulator context
            // must be the very same thing.
            prop_assert_eq!(ctx.model_id(), oriole::sim::ModelId::Simulator);
            let explicit = ModelContext::for_model(gpu, oriole::sim::ModelId::Simulator);
            for _round in 0..2 {
                prop_assert_eq!(ctx.simulate(&kernel, n), oriole::sim::simulate(&kernel, n));
                prop_assert_eq!(explicit.simulate(&kernel, n), oriole::sim::simulate(&kernel, n));
                let free = oriole::sim::measure(&kernel, n, 10, seed);
                prop_assert_eq!(ctx.measure(&kernel, n, 10, seed), free);
                prop_assert_eq!(ctx.dynamic_mix(&kernel, n), oriole::sim::dynamic_mix(&kernel, n));
            }
        }
    }

    #[test]
    fn static_backend_matches_predict_time(
        ast in arb_kernel(),
        tc_i in 1u32..=16,
        uif in 1u32..=5,
        n in prop_oneof![Just(8u64), Just(64), Just(512)],
    ) {
        // The StaticPredictModel backend is Eq. 6 behind the seam: for
        // every launchable kernel its report carries exactly the free
        // `predict_time` value, and it refuses exactly the
        // configurations the simulator refuses (shared feasibility
        // gate).
        use oriole::sim::{ModelContext, ModelId};
        let gpu = Gpu::K20.spec();
        let mut params = TuningParams::with_geometry(tc_i * 64, 48);
        params.uif = uif;
        if let Ok(kernel) = compile(&ast, gpu, params) {
            let ctx = ModelContext::for_model(gpu, ModelId::Static);
            match ctx.simulate(&kernel, n) {
                Ok(r) => {
                    let expected =
                        oriole::core::predict_time(&kernel.program, kernel.geometry(n));
                    prop_assert_eq!(r.time_ms, expected);
                }
                Err(e) => {
                    prop_assert_eq!(Err(e), oriole::sim::simulate(&kernel, n));
                }
            }
        }
    }

    #[test]
    fn table_backed_analysis_matches_direct(
        kid in prop_oneof![
            Just(oriole::kernels::KernelId::Atax),
            Just(oriole::kernels::KernelId::Bicg),
            Just(oriole::kernels::KernelId::MatVec2D),
            Just(oriole::kernels::KernelId::Ex14Fj),
        ],
        tc_i in 1u32..=16,
        n in prop_oneof![Just(32u64), Just(128)],
    ) {
        // `analyze_in` (occupancy table + memoized suggestion scans)
        // must reproduce `analyze` exactly for every kernel/device.
        use oriole::arch::OccupancyTable;
        for gpu in oriole::arch::ALL_GPUS {
            let kernel = compile(
                &kid.ast(n),
                gpu.spec(),
                TuningParams::with_geometry(tc_i * 64, 48),
            );
            let Ok(kernel) = kernel else { continue };
            let table = OccupancyTable::new(gpu.spec());
            let direct = oriole::core::analyze(&kernel, n);
            let via_table = oriole::core::analyze_in(&table, &kernel, n);
            prop_assert_eq!(&via_table.occupancy, &direct.occupancy);
            prop_assert_eq!(&via_table.suggestion, &direct.suggestion);
            prop_assert_eq!(&via_table.rule_threads, &direct.rule_threads);
            prop_assert_eq!(via_table.predicted_time, direct.predicted_time);
        }
    }
}
