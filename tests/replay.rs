//! Workspace-tier coverage for `oriole_tuner::replay`: replayed traces
//! must match live search traces point-for-point when run against the
//! real evaluation stack (compile → simulate → trials), not just the
//! synthetic oracles of the unit tests.

use oriole::arch::Gpu;
use oriole::codegen::{compile, TuningParams};
use oriole::core::predict::predict_time_with;
use oriole::kernels::KernelId;
use oriole::tuner::{
    replay, ArtifactStore, Decision, HybridSearch, RandomSearch, SearchSpace, Searcher, TuningLog,
};

fn builder(n: u64) -> oriole::ir::KernelAst {
    KernelId::Atax.ast(n)
}

#[test]
fn hybrid_log_replays_point_for_point_against_the_live_evaluator() {
    let gpu = Gpu::K20.spec();
    let sizes = [32u64, 64];
    let space = SearchSpace::tiny();
    let store = ArtifactStore::new();
    let evaluator = store.evaluator("atax", &builder, gpu, &sizes);

    let n_probe = sizes[sizes.len() / 2];
    let table = gpu.throughput();
    let predictor = move |p: TuningParams| {
        compile(&builder(n_probe), gpu, p)
            .ok()
            .map(|k| predict_time_with(table, &k.program, k.geometry(n_probe)))
    };
    let mut search = HybridSearch::new(predictor, 0.5);
    let result = search.search(&space, &evaluator, usize::MAX);
    assert!(!result.trace.is_empty());

    let report = replay(&search.log, &evaluator, 0.05);

    // Every live trace point appears in the replay with the identical
    // objective value — point for point, bit for bit.
    for (params, live_value) in &result.trace {
        let (_, replayed) = report
            .outcomes
            .iter()
            .find(|(e, _)| e.params == *params)
            .unwrap_or_else(|| panic!("trace point {params} missing from replay"));
        assert_eq!(
            replayed.to_bits(),
            live_value.to_bits(),
            "replayed {params} diverged from the live trace"
        );
    }
    // Replay also measures statically pruned points, so its best is at
    // least as good as the search's — and the search's best appears in
    // the outcomes with its exact live value.
    let (_, best_time) = report.best.expect("finite outcomes exist");
    assert!(best_time <= result.best_time);
    let (_, search_best_replayed) = report
        .outcomes
        .iter()
        .find(|(e, _)| e.params == result.best)
        .expect("search best was logged");
    assert_eq!(search_best_replayed.to_bits(), result.best_time.to_bits());
    // Replay deduplicates: one outcome per distinct logged point.
    let mut seen: Vec<TuningParams> = Vec::new();
    for e in search.log.entries() {
        if !seen.contains(&e.params) {
            seen.push(e.params);
        }
    }
    assert_eq!(report.outcomes.len(), seen.len());
}

#[test]
fn replay_reproduces_a_random_search_trace_on_a_fresh_evaluator() {
    let gpu = Gpu::M40.spec();
    let sizes = [64u64];
    let space = SearchSpace::tiny();
    let store = ArtifactStore::new();
    let live = store.evaluator("atax", &builder, gpu, &sizes);

    let mut search = RandomSearch { seed: 7 };
    let result = search.search(&space, &live, 8);
    let mut log = TuningLog::new();
    for (p, v) in &result.trace {
        log.record(*p, Decision::Explored, None, Some(*v));
    }

    // Replay against a *fresh* evaluator (its own tiers, nothing
    // shared): the evaluation layer is deterministic, so the replayed
    // values match the live trace exactly.
    let fresh_store = ArtifactStore::new();
    let fresh = fresh_store.evaluator("atax", &builder, gpu, &sizes);
    let report = replay(&log, &fresh, 0.05);
    for (entry, replayed) in &report.outcomes {
        let live_value = result
            .trace
            .iter()
            .find(|(p, _)| *p == entry.params)
            .map(|(_, v)| *v)
            .expect("every replayed entry came from the trace");
        assert_eq!(replayed.to_bits(), live_value.to_bits(), "{}", entry.params);
    }
    // The logged measurements round-trip through the text serialization.
    let text = log.to_text();
    assert!(text.starts_with("# oriole tuning log v1"));
    assert_eq!(text.lines().count(), 1 + log.entries().len());
}

#[test]
fn hybrid_replay_validates_static_decisions_on_the_live_stack() {
    // With a tiny dial the hybrid search prunes most of the space
    // statically; replaying the log against the empirical evaluator is
    // the §VII validation loop. Whatever the verdict (the Eq. 6 model
    // is imperfect), the report must be internally consistent.
    let gpu = Gpu::K20.spec();
    let sizes = [64u64];
    let space = SearchSpace::tiny();
    let store = ArtifactStore::new();
    let evaluator = store.evaluator("atax", &builder, gpu, &sizes);

    let table = gpu.throughput();
    let predictor = move |p: TuningParams| {
        compile(&builder(64), gpu, p)
            .ok()
            .map(|k| predict_time_with(table, &k.program, k.geometry(64)))
    };
    let mut search = HybridSearch::new(predictor, 0.1);
    search.search(&space, &evaluator, usize::MAX);
    assert!(search.log.with_decision(Decision::StaticPruned).count() > 0);

    let report = replay(&search.log, &evaluator, 0.05);
    assert!((0.0..=1.0).contains(&report.prediction_agreement));
    if let Some((winner, time)) = report.pruned_winner {
        // A flagged pruned winner must really have been pruned and
        // really beat every suggested variant's replayed time.
        assert!(search
            .log
            .with_decision(Decision::StaticPruned)
            .any(|e| e.params == winner));
        let best_suggested = report
            .outcomes
            .iter()
            .filter(|(e, _)| e.decision == Decision::StaticSuggested)
            .map(|(_, v)| *v)
            .fold(f64::INFINITY, f64::min);
        assert!(time < best_suggested);
    }
}
