//! Acceptance suite for the persistent, tiered `ArtifactStore`
//! (`oriole_tuner::persist` + the disk tier):
//!
//! * a sweep written by one **process** and re-run warm-from-disk in
//!   another produces byte-identical serialized measurements;
//! * warm-from-disk results are bit-identical to cold computation and
//!   to a fresh, storeless evaluator;
//! * corrupted and version-skewed artifacts are detected and
//!   recomputed — never silently trusted;
//! * a warm-from-disk re-sweep is ≥ 2× faster than the cold sweep.

use oriole::arch::{Gpu, GpuSpec};
use oriole::kernels::KernelId;
use oriole::tuner::eval::EvalProtocol;
use oriole::tuner::{persist, ArtifactStore, Evaluator, SearchSpace};
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;
use std::time::Instant;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oriole-persist-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn builder(n: u64) -> oriole::ir::KernelAst {
    KernelId::Atax.ast(n)
}

fn gpu() -> &'static GpuSpec {
    Gpu::K20.spec()
}

/// The single tier file inside a store directory.
fn tier_file(dir: &PathBuf) -> PathBuf {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("store dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "orl"))
        .collect();
    assert_eq!(files.len(), 1, "expected exactly one tier file in {dir:?}");
    files.pop().unwrap()
}

#[test]
fn sweep_round_trips_across_real_processes() {
    let dir = temp_store("cross-process");
    let exe = env!("CARGO_BIN_EXE_store_sweep");
    let run = || {
        Command::new(exe)
            .args([dir.to_str().unwrap(), "atax", "k20", "64,128"])
            .output()
            .expect("helper binary runs")
    };

    let first = run();
    assert!(first.status.success(), "{first:?}");
    let first_err = String::from_utf8_lossy(&first.stderr);
    assert!(first_err.contains("loaded=0"), "cold process loads nothing: {first_err}");
    assert!(!first.stdout.is_empty());

    // A genuinely separate process: warm-from-disk, computing nothing,
    // and its canonical serialization is byte-identical.
    let second = run();
    assert!(second.status.success(), "{second:?}");
    let second_err = String::from_utf8_lossy(&second.stderr);
    assert!(
        second_err.contains("computed=0"),
        "warm process must compute nothing: {second_err}"
    );
    assert!(second_err.contains(&format!("loaded={}", SearchSpace::tiny().len())));
    assert_eq!(
        first.stdout, second.stdout,
        "cross-process warm sweep must serialize byte-identically"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_from_disk_is_bit_identical_to_cold_and_fresh_compute() {
    let dir = temp_store("bit-identical");
    let sizes = [64u64, 128];
    let space = SearchSpace::tiny();

    let cold_store = ArtifactStore::with_disk(&dir).unwrap();
    let cold = cold_store.evaluator("atax", &builder, gpu(), &sizes).evaluate_space(&space);
    drop(cold_store);

    let warm_store = ArtifactStore::with_disk(&dir).unwrap();
    let warm = warm_store.evaluator("atax", &builder, gpu(), &sizes).evaluate_space(&space);
    assert_eq!(warm, cold);
    let stats = warm_store.stats();
    assert_eq!(stats.unique_evaluations, 0, "warm sweep computed nothing");
    let disk = stats.disk.expect("disk tier");
    assert_eq!(disk.measurements_loaded as usize, space.len());
    assert_eq!(disk.rejected, 0);

    // And against a storeless evaluator, point for point.
    let fresh = Evaluator::new(&builder, gpu(), &sizes);
    for (m, p) in warm.iter().zip(space.iter()) {
        assert_eq!(**m, *fresh.evaluate(p), "{p}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_record_is_rejected_and_recomputed() {
    let dir = temp_store("corrupt-record");
    let sizes = [64u64];
    let space = SearchSpace::tiny();
    let cold_store = ArtifactStore::with_disk(&dir).unwrap();
    let cold = cold_store.evaluator("atax", &builder, gpu(), &sizes).evaluate_space(&space);
    drop(cold_store);

    // Flip a byte inside the first record's body: its line checksum no
    // longer matches, so that one point must be recomputed.
    let file = tier_file(&dir);
    let content = std::fs::read_to_string(&file).unwrap();
    let tampered = content.replacen("tc:64", "tc:63", 1);
    assert_ne!(tampered, content, "fixture must actually tamper");
    std::fs::write(&file, tampered).unwrap();

    let warm_store = ArtifactStore::with_disk(&dir).unwrap();
    let warm = warm_store.evaluator("atax", &builder, gpu(), &sizes).evaluate_space(&space);
    assert_eq!(warm, cold, "recomputed point is bit-identical, tampered value never served");
    let stats = warm_store.stats();
    assert_eq!(stats.unique_evaluations, 1, "exactly the damaged point recomputed");
    let disk = stats.disk.unwrap();
    assert_eq!(disk.measurements_loaded as usize, space.len() - 1);
    assert!(disk.rejected >= 1, "corruption detected: {disk:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_skewed_artifact_is_a_whole_file_miss() {
    let dir = temp_store("version-skew");
    let sizes = [64u64];
    let space = SearchSpace::tiny();
    let cold_store = ArtifactStore::with_disk(&dir).unwrap();
    let cold = cold_store.evaluator("atax", &builder, gpu(), &sizes).evaluate_space(&space);
    drop(cold_store);

    // Rewrite the magic to a future version: every record still parses,
    // but none may be trusted.
    let file = tier_file(&dir);
    let content = std::fs::read_to_string(&file).unwrap();
    std::fs::write(&file, content.replacen("oriole-meas v1", "oriole-meas v99", 1)).unwrap();

    let skew_store = ArtifactStore::with_disk(&dir).unwrap();
    let resweep = skew_store.evaluator("atax", &builder, gpu(), &sizes).evaluate_space(&space);
    assert_eq!(resweep, cold, "recompute is bit-identical");
    let stats = skew_store.stats();
    assert_eq!(stats.unique_evaluations, space.len(), "every point recomputed");
    let disk = stats.disk.unwrap();
    assert_eq!(disk.measurements_loaded, 0, "a skewed file serves nothing");
    assert!(disk.rejected >= 1);
    drop(skew_store);

    // The skewed file was rewritten under the current version, so the
    // next store resumes warm again.
    let healed = ArtifactStore::with_disk(&dir).unwrap();
    let warm = healed.evaluator("atax", &builder, gpu(), &sizes).evaluate_space(&space);
    assert_eq!(warm, cold);
    assert_eq!(healed.stats().unique_evaluations, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_scope_under_expected_filename_is_never_served() {
    let dir = temp_store("foreign-scope");
    let sizes = [64u64];
    let space = SearchSpace::tiny();
    let seed_store = ArtifactStore::with_disk(&dir).unwrap();
    seed_store.evaluator("atax", &builder, gpu(), &sizes).evaluate_space(&space);
    drop(seed_store);

    // Plant atax's artifact under the filename bicg's scope would hash
    // to — a simulated filename collision.
    let bicg_scope = persist::scope_text("bicg", gpu(), &sizes, &EvalProtocol::default());
    let planted = dir.join(persist::tier_file_name(&bicg_scope));
    std::fs::copy(tier_file(&dir), &planted).unwrap();

    let store = ArtifactStore::with_disk(&dir).unwrap();
    let bicg_builder = |n: u64| KernelId::Bicg.ast(n);
    store.evaluator("bicg", &bicg_builder, gpu(), &sizes).evaluate_space(&space);
    let stats = store.stats();
    assert_eq!(
        stats.unique_evaluations,
        space.len(),
        "embedded scope mismatch forces full recompute"
    );
    assert_eq!(stats.disk.unwrap().measurements_loaded, 0);
    // The planted file was not overwritten either.
    let content = std::fs::read_to_string(&planted).unwrap();
    assert!(content.contains("kernel=atax"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_from_disk_resweep_is_at_least_2x_faster_than_cold() {
    let dir = temp_store("speed");
    // The eval_throughput bench's thinned Fig. 3 space: large enough
    // that computation dominates parsing by a wide margin.
    let mut space = SearchSpace::paper_default();
    space.tc = vec![128, 256, 512, 1024];
    let sizes = [64u64];

    let cold_store = ArtifactStore::with_disk(&dir).unwrap();
    let start = Instant::now();
    let cold = cold_store.evaluator("atax", &builder, gpu(), &sizes).evaluate_space(&space);
    let cold_time = start.elapsed();
    drop(cold_store);

    let warm_store = ArtifactStore::with_disk(&dir).unwrap();
    let start = Instant::now();
    let warm = warm_store.evaluator("atax", &builder, gpu(), &sizes).evaluate_space(&space);
    let warm_time = start.elapsed();

    assert_eq!(warm, cold);
    assert_eq!(warm_store.stats().unique_evaluations, 0);
    assert!(
        warm_time * 2 <= cold_time,
        "warm-from-disk re-sweep must be ≥ 2× faster: cold {cold_time:?}, warm {warm_time:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_reports_loaded_and_spilled_through_eval_stats() {
    let dir = temp_store("telemetry");
    let sizes = [64u64];
    let space = SearchSpace::tiny();

    let cold_store = ArtifactStore::with_disk(&dir).unwrap();
    let evaluator = cold_store.evaluator("atax", &builder, gpu(), &sizes);
    evaluator.evaluate_space(&space);
    let cold_stats = evaluator.stats();
    assert_eq!(cold_stats.disk_loaded, 0);
    assert_eq!(cold_stats.disk_spilled, space.len());
    drop(evaluator);
    drop(cold_store);

    let warm_store = ArtifactStore::with_disk(&dir).unwrap();
    let evaluator = warm_store.evaluator("atax", &builder, gpu(), &sizes);
    evaluator.evaluate_space(&space);
    let warm_stats = evaluator.stats();
    assert_eq!(warm_stats.disk_loaded, space.len());
    assert_eq!(warm_stats.disk_spilled, 0);

    // Measurements seeded from disk wrap into shared handles exactly
    // like computed ones.
    let p = space.iter().next().unwrap();
    let a = evaluator.evaluate(p);
    let b = evaluator.evaluate(p);
    assert!(Arc::ptr_eq(&a, &b));
    let _ = std::fs::remove_dir_all(&dir);
}
