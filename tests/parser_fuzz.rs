//! Fuzz-style property tests for the two text parsers: arbitrary input
//! must never panic, and valid-input round-trips must be stable.

use oriole::ir::text;
use oriole::tuner::parse_spec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn disassembly_parser_is_total_on_garbage(input in "\\PC*") {
        // Any outcome but a panic is acceptable.
        let _ = text::parse(&input);
    }

    #[test]
    fn disassembly_parser_is_total_on_listing_like_garbage(
        lines in prop::collection::vec(
            prop_oneof![
                Just(".kernel k family=Kepler regs=0 smem=0 spill=0".to_string()),
                Just(".block b freq=once".to_string()),
                Just("  term ret".to_string()),
                Just("  add.f32 %r0, %r1, %r2".to_string()),
                Just("  term jump nowhere".to_string()),
                Just("  frobnicate".to_string()),
                "[a-z.%@!=() 0-9]{0,40}",
            ],
            0..12,
        )
    ) {
        let _ = text::parse(&lines.join("\n"));
    }

    #[test]
    fn spec_parser_is_total_on_garbage(input in "\\PC*") {
        let _ = parse_spec(&input);
    }

    #[test]
    fn spec_parser_is_total_on_param_like_garbage(
        names in prop::collection::vec("[A-Z]{1,6}", 1..4),
        exprs in prop::collection::vec(
            prop_oneof![
                Just("range(32,1025,32)".to_string()),
                Just("[16,48]".to_string()),
                Just("['', '-use_fast_math']".to_string()),
                Just("range(0,0)".to_string()),
                Just("[abc]".to_string()),
                "[a-z0-9,()\\[\\]' -]{0,24}",
            ],
            1..4,
        )
    ) {
        let text: String = names
            .iter()
            .zip(exprs.iter().cycle())
            .map(|(n, e)| format!("param {n}[] = {e};\n"))
            .collect();
        // Must not panic; if it parses, the space must be non-empty and
        // iterable.
        if let Ok(space) = parse_spec(&text) {
            prop_assert!(!space.is_empty());
            let _ = space.point(0);
        }
    }

    #[test]
    fn valid_spec_round_trip_is_stable(
        tc_step in 1u32..=8,
        bc_count in 1usize..=8,
        uif_hi in 1u32..=5,
    ) {
        let tc_step = tc_step * 32;
        let bcs: Vec<String> = (1..=bc_count).map(|i| (i * 24).to_string()).collect();
        let text = format!(
            "param TC[] = range({tc_step},1025,{tc_step});\nparam BC[] = [{}];\nparam UIF[] = range(1,{});",
            bcs.join(","),
            uif_hi + 1
        );
        let space = parse_spec(&text).expect("valid spec parses");
        prop_assert_eq!(space.bc.len(), bc_count);
        prop_assert_eq!(space.uif.len(), uif_hi as usize);
        prop_assert!(space.tc.iter().all(|t| t % tc_step == 0));
        // Every flat index is reachable and coordinates round-trip.
        for idx in [0, space.len() - 1, space.len() / 2] {
            let p = space.point(idx);
            let coords = space.coords_of(&p).expect("on grid");
            prop_assert_eq!(space.at(coords), p);
        }
    }
}
