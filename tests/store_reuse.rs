//! Cross-evaluator determinism: a process-level [`ArtifactStore`] must
//! be a pure wall-clock optimization. Whatever combination of sharing,
//! warmth and threading produced a `Measurement`, the numbers are
//! bit-identical to a fresh, private evaluator's — cold and warm,
//! sequential and parallel.

use oriole::arch::Gpu;
use oriole::kernels::KernelId;
use oriole::tuner::{ArtifactStore, Evaluator, Measurement, SearchSpace};
use std::sync::Arc;

/// A thinned Fig. 3 sweep: full UIF × CFLAGS mix (all front-end keys),
/// coarse TC axis.
fn thinned_space() -> SearchSpace {
    let mut space = SearchSpace::paper_default();
    space.tc = vec![64, 128, 256, 1024];
    space.bc = vec![24, 96];
    space
}

#[test]
fn shared_store_matches_fresh_evaluators_cold_and_warm() {
    let kid = KernelId::Bicg;
    let sizes = [64u64, 128];
    let builder = move |n: u64| kid.ast(n);
    let gpu = Gpu::K20.spec();
    let space = thinned_space();
    let points: Vec<_> = space.iter().collect();

    // Ground truth: two *fresh* evaluators, sequential and parallel.
    let fresh_seq = Evaluator::new(&builder, gpu, &sizes);
    let sequential: Vec<Arc<Measurement>> =
        points.iter().map(|&p| fresh_seq.evaluate(p)).collect();
    let fresh_par = Evaluator::new(&builder, gpu, &sizes);
    assert_eq!(fresh_par.evaluate_batch(&points), sequential);

    // One shared store, two borrowed evaluators.
    let store = ArtifactStore::new();
    let first = store.evaluator("bicg", &builder, gpu, &sizes);
    let cold = first.evaluate_batch(&points);
    assert_eq!(cold, sequential, "cold shared sweep diverged from fresh evaluators");
    let unique_after_cold = store.stats().unique_evaluations;
    assert_eq!(unique_after_cold, points.len());

    // Second evaluator over the same scope: warm, computes nothing new,
    // identical results — sequential and parallel traversals both.
    let second = store.evaluator("bicg", &builder, gpu, &sizes);
    let warm_seq: Vec<Arc<Measurement>> = points.iter().map(|&p| second.evaluate(p)).collect();
    let warm_par = second.evaluate_batch(&points);
    assert_eq!(warm_seq, sequential);
    assert_eq!(warm_par, sequential);
    assert_eq!(store.stats().unique_evaluations, unique_after_cold, "warm sweep re-measured");
}

#[test]
fn concurrent_evaluators_on_one_store_stay_deterministic() {
    // Two sweeps racing on one store (the bench-bin pattern): every
    // point computed once, everyone sees the same numbers.
    let kid = KernelId::Atax;
    let sizes = [64u64];
    let builder = move |n: u64| kid.ast(n);
    let gpu = Gpu::K20.spec();
    let space = SearchSpace::tiny();
    let points: Vec<_> = space.iter().collect();

    let store = ArtifactStore::new();
    let (a, b) = std::thread::scope(|scope| {
        let ha = scope.spawn(|| {
            store.evaluator("atax", &builder, gpu, &sizes).evaluate_batch(&points)
        });
        let hb = scope.spawn(|| {
            store.evaluator("atax", &builder, gpu, &sizes).evaluate_batch(&points)
        });
        (ha.join().expect("no panics"), hb.join().expect("no panics"))
    });
    assert_eq!(a, b);
    assert_eq!(store.stats().unique_evaluations, points.len());

    let fresh = Evaluator::new(&builder, gpu, &sizes);
    assert_eq!(fresh.evaluate_batch(&points), a);
}

#[test]
fn sweeps_with_different_sizes_share_artifacts_not_measurements() {
    let kid = KernelId::MatVec2D;
    let builder = move |n: u64| kid.ast(n);
    let gpu = Gpu::M40.spec();
    let space = SearchSpace::tiny();
    let sizes_a = [64u64];
    let sizes_b = [64u64, 256];

    let store = ArtifactStore::new();
    let a = store.evaluator("matvec2d", &builder, gpu, &sizes_a);
    let b = store.evaluator("matvec2d", &builder, gpu, &sizes_b);
    let ma = a.evaluate_space(&space);
    let mb = b.evaluate_space(&space);

    // Fresh ground truth per scope.
    let fa = Evaluator::new(&builder, gpu, &sizes_a);
    let fb = Evaluator::new(&builder, gpu, &sizes_b);
    assert_eq!(ma, fa.evaluate_space(&space));
    assert_eq!(mb, fb.evaluate_space(&space));

    // The shared size produced identical per-size numbers through the
    // shared report cache, under distinct measurement tiers.
    for (x, y) in ma.iter().zip(&mb) {
        if x.feasible {
            assert_eq!(x.per_size_ms[0], y.per_size_ms[0], "{}", x.params);
        }
    }
    let stats = store.stats();
    assert_eq!(stats.measurement_tiers, 2);
    assert_eq!(stats.front_end_tiers, 1, "front-ends shared across the two sweeps");
}
