//! Determinism guarantees across the whole stack: identical inputs must
//! produce bit-identical outputs regardless of thread scheduling, process
//! runs, or evaluation order — the property that makes every experiment
//! in EXPERIMENTS.md reproducible.

use oriole::arch::Gpu;
use oriole::codegen::{compile, TuningParams};
use oriole::core::analyze;
use oriole::kernels::KernelId;
use oriole::service::{Client, EvalScope, RemoteEvaluator, Server};
use oriole::sim::measure;
use oriole::tuner::{
    AnnealingSearch, ArtifactStore, EvalProtocol, Evaluator, GeneticSearch, Oracle, RandomSearch,
    SearchResult, SearchSpace, Searcher,
};

#[test]
fn compile_analyze_measure_are_pure() {
    let gpu = Gpu::M40.spec();
    for kid in [KernelId::Atax, KernelId::Ex14Fj] {
        let n = kid.input_sizes()[2];
        let a = compile(&kid.ast(n), gpu, TuningParams::with_geometry(256, 96)).unwrap();
        let b = compile(&kid.ast(n), gpu, TuningParams::with_geometry(256, 96)).unwrap();
        assert_eq!(a, b, "{kid}: compilation must be deterministic");
        assert_eq!(a.disassembly(), b.disassembly());

        let ra = analyze(&a, n);
        let rb = analyze(&b, n);
        assert_eq!(ra.predicted_time, rb.predicted_time);
        assert_eq!(ra.suggestion, rb.suggestion);

        let ta = measure(&a, n, 10, 99).unwrap();
        let tb = measure(&b, n, 10, 99).unwrap();
        assert_eq!(ta.times_ms, tb.times_ms, "{kid}: seeded noise must replay");
    }
}

#[test]
fn parallel_batch_evaluation_is_order_independent() {
    // The parallel evaluator must give results identical to the
    // sequential path, in input order, no matter how workers interleave.
    let kid = KernelId::Bicg;
    let sizes = [64u64, 128];
    let builder = move |n: u64| kid.ast(n);
    let space = SearchSpace::tiny();
    let points: Vec<_> = space.iter().collect();

    let par = Evaluator::new(&builder, Gpu::K20.spec(), &sizes);
    let batch = par.evaluate_batch(&points);

    let seq = Evaluator::new(&builder, Gpu::K20.spec(), &sizes);
    let sequential: Vec<_> = points.iter().map(|&p| seq.evaluate(p)).collect();

    assert_eq!(batch, sequential);
    // Repeat the parallel run: still identical.
    let par2 = Evaluator::new(&builder, Gpu::K20.spec(), &sizes);
    assert_eq!(par2.evaluate_batch(&points), batch);
}

#[test]
fn warm_cache_replays_cold_results_exactly() {
    // Cold evaluation (compute) and warm evaluation (memo hit, shared
    // front-end artifacts) must be indistinguishable: same numbers from
    // a fresh evaluator, a warmed evaluator, and a warmed parallel
    // batch.
    let kid = KernelId::Atax;
    let sizes = [64u64, 128];
    let builder = move |n: u64| kid.ast(n);
    let space = SearchSpace::tiny();
    let points: Vec<_> = space.iter().collect();

    let warm = Evaluator::new(&builder, Gpu::K20.spec(), &sizes);
    let cold_results = warm.evaluate_batch(&points);
    let unique_after_cold = warm.unique_evaluations();

    // Warm traversals: sequential and parallel, point-wise and batched.
    let warm_seq: Vec<_> = points.iter().map(|&p| warm.evaluate(p)).collect();
    let warm_batch = warm.evaluate_batch(&points);
    assert_eq!(warm_seq, cold_results);
    assert_eq!(warm_batch, cold_results);
    // Warm hits computed nothing new.
    assert_eq!(warm.unique_evaluations(), unique_after_cold);

    // A second evaluator reproduces the cold run bit-for-bit.
    let cold = Evaluator::new(&builder, Gpu::K20.spec(), &sizes);
    assert_eq!(cold.evaluate_batch(&points), cold_results);
}

#[test]
fn stochastic_searchers_replay_exactly() {
    let kid = KernelId::Atax;
    let sizes = [64u64];
    let builder = move |n: u64| kid.ast(n);
    let space = SearchSpace::tiny();

    let run_random = || {
        let ev = Evaluator::new(&builder, Gpu::K20.spec(), &sizes);
        RandomSearch { seed: 5 }.search(&space, &ev, 8)
    };
    assert_eq!(run_random(), run_random());

    let run_anneal = || {
        let ev = Evaluator::new(&builder, Gpu::K20.spec(), &sizes);
        AnnealingSearch { seed: 5, ..Default::default() }.search(&space, &ev, 12)
    };
    assert_eq!(run_anneal(), run_anneal());

    let run_genetic = || {
        let ev = Evaluator::new(&builder, Gpu::K20.spec(), &sizes);
        GeneticSearch { seed: 5, population: 6, ..Default::default() }.search(&space, &ev, 12)
    };
    assert_eq!(run_genetic(), run_genetic());
}

/// One run of every seeded stochastic strategy against `oracle`.
fn seeded_runs(space: &SearchSpace, oracle: &dyn Oracle, seed: u64) -> Vec<SearchResult> {
    vec![
        RandomSearch { seed }.search(space, oracle, 8),
        AnnealingSearch { seed, ..Default::default() }.search(space, oracle, 10),
        GeneticSearch { seed, population: 6, ..Default::default() }.search(space, oracle, 12),
    ]
}

#[test]
fn seeded_searchers_trace_identically_per_seed() {
    // Same seed ⇒ the *entire trace* — every queried point and value,
    // in query order — replays identically; a different seed visibly
    // changes it. This is the replayability contract the service's
    // remote oracle (and `tests/replay.rs`) stand on.
    let kid = KernelId::Atax;
    let sizes = [32u64];
    let builder = move |n: u64| kid.ast(n);
    let space = SearchSpace::paper_default();
    let ev = Evaluator::new(&builder, Gpu::K20.spec(), &sizes);

    let first = seeded_runs(&space, &ev, 7);
    let replayed = seeded_runs(&space, &ev, 7);
    for (a, b) in first.iter().zip(&replayed) {
        assert_eq!(a, b, "same seed must replay the identical trace");
        assert!(!a.trace.is_empty());
    }
    let reseeded = seeded_runs(&space, &ev, 8);
    for (a, c) in first.iter().zip(&reseeded) {
        assert_ne!(a.trace, c.trace, "a different seed must explore differently");
    }
}

#[test]
fn seeded_searchers_trace_identically_through_the_service() {
    // The same seeded searches, one oracle local and one behind a real
    // daemon: traces (points, values, order) must be bit-identical —
    // the property that lets a remote client replay and validate a
    // search log computed anywhere else.
    let kid = KernelId::Atax;
    let sizes = [32u64];
    let builder = move |n: u64| kid.ast(n);
    let space = SearchSpace::paper_default();
    let ev = Evaluator::new(&builder, Gpu::K20.spec(), &sizes);
    let local = seeded_runs(&space, &ev, 11);

    let server = Server::bind("127.0.0.1:0", ArtifactStore::new()).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let remote = RemoteEvaluator::new(
        Client::connect(&addr).expect("connect"),
        EvalScope {
            kernel: "atax".to_string(),
            gpu: Gpu::K20.spec().clone(),
            sizes: sizes.to_vec(),
            protocol: EvalProtocol::default(),
        },
    );
    let remoted = seeded_runs(&space, &remote, 11);
    assert_eq!(remote.take_error(), None);
    assert_eq!(remoted, local, "remote traces must replay the local ones bit-for-bit");

    Client::connect(&addr).expect("connect").shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn pipelined_coalesced_sweeps_serialize_byte_identically_to_local_and_single_shot() {
    // The same full-space sweep three ways — the local engine, a PR 5
    // style one-point-per-exchange client, and a coalescing pipelined
    // evaluator under eight concurrent threads — compared on the
    // *canonical serialization*: every path must produce the same bytes
    // for every point, so pipelining and batching are invisible in the
    // data.
    use oriole::service::CoalesceConfig;
    use oriole::tuner::persist::emit_measurement;
    use std::sync::Arc;

    let kid = KernelId::Atax;
    let sizes = [64u64];
    let builder = move |n: u64| kid.ast(n);
    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    let sc = EvalScope {
        kernel: "atax".to_string(),
        gpu: Gpu::K20.spec().clone(),
        sizes: sizes.to_vec(),
        protocol: EvalProtocol::default(),
    };

    let ev = Evaluator::new(&builder, Gpu::K20.spec(), &sizes);
    let local: Vec<String> =
        points.iter().map(|&p| emit_measurement(&ev.evaluate(p))).collect();

    let server = Server::bind("127.0.0.1:0", ArtifactStore::new()).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    // One point per exchange, one exchange at a time.
    let single = Client::connect(&addr).expect("connect");
    let one_at_a_time: Vec<String> = points
        .iter()
        .map(|&p| {
            let (_, ms) = single.evaluate(&sc, &[p]).expect("evaluate");
            emit_measurement(&ms[0])
        })
        .collect();
    assert_eq!(one_at_a_time, local, "single-shot exchanges serialize like local");

    // Coalesced + pipelined, under real thread contention.
    let remote = Arc::new(RemoteEvaluator::with_coalesce(
        Client::connect(&addr).expect("connect"),
        sc,
        CoalesceConfig { max_batch_points: 3, ..CoalesceConfig::default() },
    ));
    let swept: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let remote = Arc::clone(&remote);
                let points = points.clone();
                s.spawn(move || {
                    remote
                        .evaluate_batch(&points)
                        .expect("evaluate")
                        .iter()
                        .map(emit_measurement)
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("thread")).collect()
    });
    assert_eq!(remote.take_error(), None);
    for lines in &swept {
        assert_eq!(lines, &local, "pipelined coalesced sweep serializes byte-identically");
    }

    Client::connect(&addr).expect("connect").shutdown().expect("shutdown");
    handle.join().expect("server thread");
}
