//! Exhaustive agreement of the quantized [`OccupancyTable`] with the
//! direct occupancy calculator, for every GPU in Table I.
//!
//! The quantized axes are covered exhaustively: every warp bucket of the
//! block-size axis (with off-multiple representatives), every register
//! count up to the device cap, every shared-memory allocation granule up
//! to the per-block limit (with off-granule representatives), and every
//! per-SM shared-capacity value the `PL` split can produce — including
//! the Kepler/Fermi 16 K and 48 K L1/shared splits. The two cartesian
//! sweeps below split the domain where the calculator's arithmetic
//! actually couples axes: registers interact with the warp bucket
//! (Fermi's per-block rounding, Eq. 4), shared memory only meets the
//! other limits in the Eq. 1 argmin, which multiple register levels
//! exercise.

use oriole::arch::{occupancy, Gpu, GpuSpec, OccupancyInput, OccupancyTable, ALL_GPUS};

/// The per-SM shared-capacity values reachable on a device: the default
/// (`None`) plus the explicit L1/shared splits for families that carve a
/// 64 KiB array (both appear as `Some` through the simulator).
fn splits(spec: &GpuSpec) -> Vec<Option<u32>> {
    use oriole::arch::Family;
    match spec.family {
        Family::Fermi | Family::Kepler => {
            vec![None, Some(16 * 1024), Some(48 * 1024)]
        }
        Family::Maxwell | Family::Pascal => vec![None, Some(spec.shmem_per_mp)],
    }
}

/// Shared-memory allocation granularity (mirrors the calculator's
/// family rule; asserted against behavior in the sweep itself).
fn smem_unit(spec: &GpuSpec) -> u32 {
    match spec.family {
        oriole::arch::Family::Fermi => 128,
        _ => 256,
    }
}

fn check(table: &OccupancyTable, spec: &GpuSpec, input: OccupancyInput) {
    assert_eq!(
        table.lookup(input),
        occupancy(spec, input),
        "{}: {input:?}",
        spec.name
    );
}

#[test]
fn full_register_by_warp_domain_agrees() {
    // Every (tc bucket × register count × split), with the shared-memory
    // axis at four levels spanning unconstrained → near-limit. Block
    // sizes probe each warp bucket at its low edge, interior and
    // multiple (1 + (w-1)·32, w·32−1 for w > 1, and w·32).
    for gpu in ALL_GPUS {
        let spec = gpu.spec();
        let table = OccupancyTable::new(spec);
        let smem_levels = [0u32, 1024, 24 * 1024, spec.shmem_per_block];
        for split in splits(spec) {
            for w in 1..=(spec.threads_per_block / 32) {
                let tcs = [32 * w, 32 * w - 31, (32 * w).saturating_sub(1).max(1)];
                for tc in tcs {
                    for regs in 0..=spec.regs_per_thread_max {
                        for smem in smem_levels {
                            check(
                                &table,
                                spec,
                                OccupancyInput {
                                    tc,
                                    regs_per_thread: regs,
                                    smem_per_block: smem,
                                    shmem_per_mp: split,
                                },
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn full_shared_memory_domain_agrees() {
    // Every shared-memory granule up to the per-block limit, at every
    // warp bucket and split, with register levels spanning
    // unconstrained, moderate and register-limited. Each granule is
    // probed at its exact multiple and one byte below (the rounding
    // edge), plus one byte above the final granule (illegal).
    for gpu in ALL_GPUS {
        let spec = gpu.spec();
        let table = OccupancyTable::new(spec);
        let unit = smem_unit(spec);
        let reg_levels = [0u32, 24, spec.regs_per_thread_max];
        for split in splits(spec) {
            for w in 1..=(spec.threads_per_block / 32) {
                let tc = 32 * w;
                for g in 0..=(spec.shmem_per_block / unit) {
                    let edge = g * unit;
                    for smem in [edge, edge.saturating_sub(1)] {
                        for regs in reg_levels {
                            check(
                                &table,
                                spec,
                                OccupancyInput {
                                    tc,
                                    regs_per_thread: regs,
                                    smem_per_block: smem,
                                    shmem_per_mp: split,
                                },
                            );
                        }
                    }
                }
                // One past the limit: illegal, bypasses the table.
                check(
                    &table,
                    spec,
                    OccupancyInput {
                        tc,
                        regs_per_thread: 0,
                        smem_per_block: spec.shmem_per_block + 1,
                        shmem_per_mp: split,
                    },
                );
            }
        }
    }
}

#[test]
fn kepler_l1_split_cases_agree_and_change_results() {
    // The satellite case called out explicitly: the Kepler (and Fermi)
    // L1/shared split must flow through the table both correctly and
    // *meaningfully* — PreferL1 (16 K shared) caps block residency for
    // tile users where PreferShared (48 K) does not.
    for gpu in [Gpu::K20, Gpu::M2050] {
        let spec = gpu.spec();
        let table = OccupancyTable::new(spec);
        let tile = OccupancyInput {
            tc: 256,
            regs_per_thread: 24,
            smem_per_block: 12 * 1024,
            shmem_per_mp: None,
        };
        let prefer_l1 = OccupancyInput { shmem_per_mp: Some(16 * 1024), ..tile };
        let prefer_shared = OccupancyInput { shmem_per_mp: Some(48 * 1024), ..tile };
        for input in [tile, prefer_l1, prefer_shared] {
            check(&table, spec, input);
        }
        assert!(
            table.lookup(prefer_l1).active_blocks < table.lookup(prefer_shared).active_blocks,
            "{}: the split must bite for 12 KiB tiles",
            spec.name
        );
    }
}
