//! End-to-end pipeline tests: AST → compile → disassemble → analyze →
//! simulate → tune, across kernels and architectures.

use oriole::arch::{Gpu, ALL_GPUS};
use oriole::codegen::{compile, TuningParams};
use oriole::core::{analyze, analyze_disassembly};
use oriole::ir::{text, LaunchGeometry};
use oriole::kernels::{KernelId, ALL_KERNELS};
use oriole::sim::{dynamic_mix, measure, simulate, TrialProtocol};
use oriole::tuner::{Evaluator, ExhaustiveSearch, SearchSpace, Searcher};

#[test]
fn full_pipeline_runs_for_every_kernel_and_gpu() {
    for kid in ALL_KERNELS {
        for gpu in ALL_GPUS {
            let n = kid.input_sizes()[1];
            let kernel = compile(&kid.ast(n), gpu.spec(), TuningParams::with_geometry(128, 48))
                .unwrap_or_else(|e| panic!("{kid} on {gpu}: {e}"));

            // Disassembly parses back to the identical program.
            let listing = kernel.disassembly();
            let parsed = text::parse(&listing).expect("listing parses");
            assert_eq!(parsed, kernel.program, "{kid} on {gpu}");

            // Analyzer works from the text alone.
            let analysis = analyze_disassembly(
                &listing,
                gpu.spec(),
                LaunchGeometry::new(n, 128, 48),
            )
            .expect("analysis from text");
            assert!(analysis.predicted_time > 0.0);

            // Simulation and measurement work.
            let report = simulate(&kernel, n).expect("simulates");
            assert!(report.time_ms > 0.0 && report.time_ms.is_finite());
            let trials = measure(&kernel, n, 10, 1).expect("measures");
            assert_eq!(trials.times_ms.len(), 10);
            let picked = trials.selected(TrialProtocol::FifthOfTen);
            assert!(picked > 0.0);

            // Dynamic counters are populated.
            assert!(dynamic_mix(&kernel, n).total() > 0.0);
        }
    }
}

#[test]
fn static_suggestion_contains_competitive_configurations() {
    // For each kernel on Kepler, exhaustively search a reduced space and
    // check the analyzer-suggested thread band contains a variant within
    // 2x of the global optimum (the §IV-C competitiveness claim, loose).
    let gpu = Gpu::K20;
    for kid in [KernelId::Atax, KernelId::MatVec2D] {
        let sizes = [kid.input_sizes()[2], kid.input_sizes()[4]];
        let builder = move |n: u64| kid.ast(n);
        let evaluator = Evaluator::new(&builder, gpu.spec(), &sizes);

        let mut space = SearchSpace::tiny();
        space.tc = vec![32, 64, 128, 256, 512, 1024];
        space.bc = vec![24, 96, 192];
        let result = ExhaustiveSearch.search(&space, &evaluator, usize::MAX);

        let probe =
            compile(&kid.ast(sizes[0]), gpu.spec(), TuningParams::with_geometry(128, 48))
                .unwrap();
        let analysis = analyze(&probe, sizes[0]);
        let pruned = space
            .restrict_tc(&analysis.suggestion.thread_counts)
            .expect("suggested threads intersect the grid");
        let evaluator2 = Evaluator::new(&builder, gpu.spec(), &sizes);
        let pruned_best = ExhaustiveSearch.search(&pruned, &evaluator2, usize::MAX);

        assert!(
            pruned_best.best_time <= result.best_time * 2.0,
            "{kid}: pruned best {:.4} vs global {:.4}",
            pruned_best.best_time,
            result.best_time
        );
    }
}

#[test]
fn thread_preferences_match_fig4() {
    // Rank-1 median thread count must be low for ATAX/BiCG and high for
    // matVec2D on Kepler — the paper's Fig. 4 headline shape.
    let gpu = Gpu::K20;
    let mut medians = std::collections::HashMap::new();
    for kid in [KernelId::Atax, KernelId::Bicg, KernelId::MatVec2D] {
        let sizes = kid.input_sizes();
        let builder = move |n: u64| kid.ast(n);
        let evaluator = Evaluator::new(&builder, gpu.spec(), &sizes);
        let mut space = SearchSpace::tiny();
        space.tc = (1..=16).map(|i| i * 64).collect();
        space.bc = vec![24, 96];
        let measurements = evaluator.evaluate_space(&space);
        let (rank1, _) = oriole::tuner::split_ranks(&measurements);
        let stats = oriole::tuner::rank_stats(&rank1);
        medians.insert(kid, stats.thread_quartiles.1);
    }
    let atax = medians[&KernelId::Atax];
    let bicg = medians[&KernelId::Bicg];
    let matvec = medians[&KernelId::MatVec2D];
    assert!(atax < matvec, "atax median {atax} !< matvec {matvec}");
    assert!(bicg < matvec, "bicg median {bicg} !< matvec {matvec}");
}

#[test]
fn reference_semantics_hold_together() {
    // The kernels crate's math is consistent: ATAX == matvec∘matvecᵀ on
    // real data (value-level grounding for the resource models).
    use oriole::kernels::{reference, workload};
    let a = workload::matrix(32, 1);
    let x = workload::vector(32, 2);
    let y = reference::atax(&a, &x);
    let tmp = reference::matvec(&a, &x);
    let y2 = reference::matvec(&a.transposed(), &tmp);
    for (u, v) in y.iter().zip(&y2) {
        assert!((u - v).abs() < 1e-9);
    }
}

#[test]
fn unroll_sweep_changes_measurements_coherently() {
    // Unrolling reduces control overhead: the expected CTRL share must
    // fall monotonically with UIF for the dot-product kernels.
    let gpu = Gpu::M40.spec();
    let n = 256;
    let mut prev_ctrl_share = f64::INFINITY;
    for uif in [1u32, 2, 4] {
        let mut params = TuningParams::with_geometry(128, 48);
        params.uif = uif;
        let kernel = compile(&KernelId::Atax.ast(n), gpu, params).unwrap();
        let analysis = analyze(&kernel, n);
        let (_, _, ctrl, _) = analysis.mix.fractions();
        assert!(
            ctrl < prev_ctrl_share,
            "uif={uif}: ctrl share {ctrl} did not fall (prev {prev_ctrl_share})"
        );
        prev_ctrl_share = ctrl;
    }
}
