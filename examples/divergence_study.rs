//! Branch-divergence study (the paper's Fig. 1 effect, on demand).
//!
//! Sweeps a synthetic kernel whose threads split into `k` divergent
//! classes and measures the slowdown — then shows the analyzer's static
//! divergence diagnosis on the real ex14FJ stencil.
//!
//! ```sh
//! cargo run --example divergence_study
//! ```

use oriole::arch::Gpu;
use oriole::codegen::{compile, TuningParams};
use oriole::core::divergence::analyze_divergence;
use oriole::ir::LaunchGeometry;
use oriole::kernels::{synthetic::divergent_switch, KernelId};
use oriole::sim::simulate;

fn main() {
    let gpu = Gpu::M40.spec();
    let n = 256;

    println!("-- synthetic divergence sweep (N={n}, M40) --");
    println!("{:>8} {:>12} {:>10}", "classes", "time (ms)", "slowdown");
    let mut base = None;
    for classes in [1u32, 2, 4, 8, 16, 32] {
        let kernel = compile(
            &divergent_switch(classes, 48),
            gpu,
            TuningParams::with_geometry(256, 96),
        )
        .expect("compiles");
        let t = simulate(&kernel, n).expect("launches").time_ms;
        let b = *base.get_or_insert(t);
        println!("{classes:>8} {t:>12.4} {:>9.2}x", t / b);
    }

    println!("\n-- static divergence diagnosis: ex14FJ --");
    for n in [8u64, 32, 128] {
        let kernel = compile(
            &KernelId::Ex14Fj.ast(n),
            gpu,
            TuningParams::with_geometry(256, 96),
        )
        .expect("compiles");
        let report =
            analyze_divergence(&kernel.program, LaunchGeometry::new(n, 256, 96));
        println!(
            "N={n:<4} boundary branch overhead {:.2}x ({} divergent branch(es))",
            report.overall_overhead,
            report.findings.len()
        );
    }
}
