//! Occupancy advisor: the Fig. 7 occupancy-calculator panels for every
//! benchmark kernel on every GPU generation.
//!
//! ```sh
//! cargo run --example occupancy_advisor
//! ```

use oriole::arch::ALL_GPUS;
use oriole::codegen::{compile, TuningParams};
use oriole::core::{report, suggest};
use oriole::kernels::ALL_KERNELS;

fn main() {
    for kid in ALL_KERNELS {
        for gpu in ALL_GPUS {
            let n = kid.input_sizes()[2];
            let kernel = compile(&kid.ast(n), gpu.spec(), TuningParams::with_geometry(160, 48))
                .expect("compiles");
            let suggestion = suggest::suggest(&kernel);
            let text = report::occupancy_calculator_report(
                gpu.spec(),
                kid.name(),
                kernel.params.tc,
                kernel.regs_per_thread(),
                kernel.smem_per_block,
                &suggestion,
            );
            println!("{text}");
        }
    }
}
