//! Autotuning walk-through: exhaustive search vs the paper's
//! static-analysis search module on the ATAX kernel.
//!
//! Reproduces the §IV-C story in miniature: the static module searches an
//! 8–16× smaller space and still lands on (or near) the exhaustive
//! optimum.
//!
//! ```sh
//! cargo run --release --example autotune_atax
//! ```

use oriole::arch::Gpu;
use oriole::codegen::{compile, TuningParams};
use oriole::core::analyze;
use oriole::kernels::KernelId;
use oriole::tuner::{
    Evaluator, ExhaustiveSearch, PruneLevel, SearchSpace, Searcher, StaticSearch,
};

fn main() {
    let gpu = Gpu::K20.spec();
    let sizes = [32u64, 64, 128, 256, 512];
    let kid = KernelId::Atax;
    let space = SearchSpace::paper_default();

    let builder = |n: u64| kid.ast(n);

    // Exhaustive baseline: every one of the 5,120 variants.
    let evaluator = Evaluator::new(&builder, gpu, &sizes);
    let exhaustive = ExhaustiveSearch.search(&space, &evaluator, usize::MAX);
    println!(
        "exhaustive: best {} -> {:.4} ms ({} variants)",
        exhaustive.best, exhaustive.best_time, exhaustive.evaluations
    );

    // Static-analysis search: prune TC with the analyzer, then sweep.
    let probe = compile(&kid.ast(128), gpu, TuningParams::with_geometry(128, 48)).unwrap();
    let analysis = analyze(&probe, 128);
    for level in [PruneLevel::Static, PruneLevel::RuleBased] {
        let evaluator = Evaluator::new(&builder, gpu, &sizes);
        let mut search = StaticSearch::new(analysis.clone(), level);
        let result = search.search(&space, &evaluator, usize::MAX);
        let report = search.report.expect("ran");
        println!(
            "{:<13} best {} -> {:.4} ms ({} variants, {:.1}% reduction, {:+.2}% off optimum)",
            format!("{}:", if level == PruneLevel::Static { "static" } else { "static+rules" }),
            result.best,
            result.best_time,
            result.evaluations,
            report.improvement * 100.0,
            (result.best_time / exhaustive.best_time - 1.0) * 100.0
        );
    }
}
