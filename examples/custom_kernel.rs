//! Bring-your-own kernel: describe a new computation in the kernel AST,
//! then run the whole pipeline on it — compile, disassemble, statically
//! analyze, and autotune.
//!
//! The kernel here is a fused SAXPY + reduction
//! (`acc = Σ |a·x[i] + y[i]|`), a shape not in the paper's benchmark set.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use oriole::arch::Gpu;
use oriole::codegen::{compile, TuningParams};
use oriole::core::{analyze, analyze_disassembly};
use oriole::ir::{
    AccessPattern, AluOp, KernelAst, LaunchGeometry, Loop, MemSpace, SharedDecl, SizeExpr, Stmt,
    TripCount,
};
use oriole::tuner::{Evaluator, RandomSearch, SearchSpace, Searcher};

fn saxpy_reduce() -> KernelAst {
    let mut k = KernelAst::new("saxpy_reduce");
    // Block-wide reduction buffer: one f32 slot per thread.
    k.shared.push(SharedDecl {
        name: "partials".into(),
        elem_bytes: 4,
        elems: 1,
        scales_with_block: true,
    });
    k.body = vec![
        // Grid-stride over N elements: load x, y; fma; abs via min/max.
        Stmt::Loop(Loop {
            trip: TripCount::GridStride(SizeExpr::N),
            unrollable: true,
            body: vec![
                Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 2),
                Stmt::ops(AluOp::FmaF32, 1),
                Stmt::ops(AluOp::MinMaxF32, 1),
                Stmt::ops(AluOp::AddF32, 1),
            ],
        }),
        // Block reduction through shared memory.
        Stmt::store(MemSpace::Shared, AccessPattern::Coalesced, 1),
        Stmt::SyncThreads,
        Stmt::Loop(Loop {
            trip: TripCount::Const(8),
            unrollable: false,
            body: vec![
                Stmt::load(MemSpace::Shared, AccessPattern::Coalesced, 1),
                Stmt::ops(AluOp::AddF32, 1),
                Stmt::SyncThreads,
            ],
        }),
        Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
    ];
    k
}

fn main() {
    let gpu = Gpu::M40.spec();
    let n = 1 << 20; // one million elements
    let ast = saxpy_reduce();

    // Compile and show the disassembly round-trip the analyzer uses.
    let kernel = compile(&ast, gpu, TuningParams::with_geometry(256, 96)).expect("compiles");
    let listing = kernel.disassembly();
    println!("--- disassembly ({} lines) ---", listing.lines().count());
    for line in listing.lines().take(12) {
        println!("{line}");
    }
    println!("...\n");

    // Static analysis from the *text*, as an external tool would do it.
    let analysis =
        analyze_disassembly(&listing, gpu, LaunchGeometry::new(n, 256, 96)).expect("parses");
    println!("{}", analysis.render());

    // Autotune with a random search under a small budget.
    let sizes = [n];
    let builder = |size: u64| {
        let _ = size;
        saxpy_reduce()
    };
    let evaluator = Evaluator::new(&builder, gpu, &sizes);
    let space = SearchSpace::paper_default();
    let result = RandomSearch { seed: 7 }.search(&space, &evaluator, 128);
    println!(
        "random search (128/{} variants): best {} -> {:.4} ms",
        space.len(),
        result.best,
        result.best_time
    );

    // Sanity: the analyzer path agrees with the direct path.
    let direct = analyze(&kernel, n);
    assert_eq!(direct.suggestion, analysis.suggestion);
}
