//! Quickstart: analyze a kernel statically, then check the prediction
//! against the simulator.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use oriole::arch::Gpu;
use oriole::codegen::{compile, TuningParams};
use oriole::core::analyze;
use oriole::kernels::KernelId;
use oriole::sim::simulate;

fn main() {
    let gpu = Gpu::K20.spec();
    let n = 256;

    // 1. Build the ATAX kernel (y = Aᵀ(Ax)) and compile it for a Kepler
    //    K20 at a default launch configuration.
    let ast = KernelId::Atax.ast(n);
    let params = TuningParams::with_geometry(128, 48);
    let kernel = compile(&ast, gpu, params).expect("valid configuration");

    // 2. Static analysis: no execution happens here — instruction mixes,
    //    occupancy, parameter suggestions and a time prediction, all from
    //    the disassembly and the architecture model.
    let analysis = analyze(&kernel, n);
    println!("{}", analysis.render());

    // 3. Cross-check with the simulator (the "empirical" side).
    let report = simulate(&kernel, n).expect("launchable");
    println!(
        "simulated: {:.4} ms ({} bound, occupancy {:.2})",
        report.time_ms, report.bound, report.occupancy.occupancy
    );

    // 4. Try the analyzer's first suggested block size and compare.
    let suggested_tc = analysis.rule_threads[0];
    let better = compile(&ast, gpu, TuningParams::with_geometry(suggested_tc, 48))
        .expect("suggested configuration is valid");
    let better_report = simulate(&better, n).expect("launchable");
    println!(
        "suggested TC={suggested_tc}: {:.4} ms ({:+.1}% vs default)",
        better_report.time_ms,
        (better_report.time_ms / report.time_ms - 1.0) * 100.0
    );
}
