//! The §VII "knowledge discovery" loop: dial in empirical testing on top
//! of static ranking, record every decision, then replay the log to
//! validate the static model.
//!
//! ```sh
//! cargo run --release --example dial_in_tuning
//! ```

use oriole::arch::Gpu;
use oriole::codegen::{compile, TuningParams};
use oriole::core::predict_time;
use oriole::kernels::KernelId;
use oriole::tuner::{replay, Evaluator, HybridSearch, SearchSpace, Searcher};

fn main() {
    let gpu = Gpu::K20.spec();
    let kid = KernelId::Bicg;
    let sizes = [64u64, 256];
    let space = SearchSpace::paper_default();

    // The static predictor: compile (never execute) and score with Eq. 6.
    let n_mid = sizes[sizes.len() / 2];
    let predictor = move |params: TuningParams| {
        compile(&kid.ast(n_mid), gpu, params)
            .ok()
            .map(|kernel| predict_time(&kernel.program, kernel.geometry(n_mid)))
    };

    let builder = move |n: u64| kid.ast(n);

    println!("{kid} on {}: dialing empirical testing from 0% to 100%\n", gpu.name);
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "dial", "evaluations", "best (ms)", "vs full"
    );
    let mut full_best = None;
    for dial in [1.0, 0.25, 0.05, 0.01, 0.0] {
        let evaluator = Evaluator::new(&builder, gpu, &sizes);
        let mut search = HybridSearch::new(predictor, dial);
        let result = search.search(&space, &evaluator, usize::MAX);
        let baseline = *full_best.get_or_insert(result.best_time);
        println!(
            "{:>5.0}% {:>12} {:>12.4} {:>+9.1}%",
            dial * 100.0,
            result.evaluations,
            result.best_time,
            (result.best_time / baseline - 1.0) * 100.0
        );

        if dial == 0.05 {
            // Replay the 5% run's log to validate the static decisions.
            let validator = Evaluator::new(&builder, gpu, &sizes);
            let report = replay(&search.log, &validator, 0.05);
            println!(
                "       replay of the 5% run: prediction agreement {:.2}, pruned winner: {}",
                report.prediction_agreement,
                match report.pruned_winner {
                    Some((p, t)) => format!("{p} at {t:.4} ms — static model needs refinement"),
                    None => "none (static pruning validated)".to_string(),
                }
            );
        }
    }
}
