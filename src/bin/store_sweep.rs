//! Cross-process driver for the persistent-store round-trip suite
//! (`tests/persist.rs`): runs one exhaustive sweep of the tiny space
//! against a disk-backed [`ArtifactStore`] and prints every measurement
//! in the canonical wire serialization, so two invocations can be
//! byte-compared across process boundaries.
//!
//! ```text
//! store_sweep <store-dir> <kernel> <gpu> <sizes,csv>
//! ```
//!
//! Measurements go to stdout (one canonical record per line, in space
//! order); a `computed=<n> loaded=<n> written=<n>` stats line goes to
//! stderr.

use oriole::arch::Gpu;
use oriole::kernels::KernelId;
use oriole::tuner::{persist, ArtifactStore, SearchSpace};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.len() != 4 {
        eprintln!("usage: store_sweep <store-dir> <kernel> <gpu> <sizes,csv>");
        std::process::exit(2);
    }
    let kid = KernelId::parse(&argv[1]).expect("known kernel");
    let gpu = Gpu::parse(&argv[2]).expect("known gpu");
    let sizes: Vec<u64> =
        argv[3].split(',').map(|s| s.trim().parse().expect("numeric size")).collect();

    let store = ArtifactStore::with_disk(&argv[0]).expect("writable store dir");
    let builder = move |n: u64| kid.ast(n);
    let evaluator = store.evaluator(kid.name(), &builder, gpu.spec(), &sizes);
    let measurements = evaluator.evaluate_space(&SearchSpace::tiny());
    for m in &measurements {
        println!("{}", persist::emit_measurement(m));
    }
    let stats = store.stats();
    let disk = stats.disk.expect("disk tier attached");
    eprintln!(
        "computed={} loaded={} written={}",
        stats.unique_evaluations, disk.measurements_loaded, disk.measurements_written
    );
}
