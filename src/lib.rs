//! # Oriole — autotuning GPU kernels via static and predictive analysis
//!
//! Umbrella crate re-exporting the full Oriole workspace API. See the
//! individual crates for details:
//!
//! * [`arch`] — GPU architecture database (paper Table I) and instruction
//!   throughput model (Table II).
//! * [`ir`] — kernel AST, PTX-like ISA, CFG, textual disassembly.
//! * [`kernels`] — the paper's benchmark kernels (Table IV) and workload
//!   generators.
//! * [`codegen`] — the compiler substrate: Orio-style transformations,
//!   register estimation, lowering to compiled artifacts.
//! * [`sim`] — the GPU timing simulator standing in for physical
//!   hardware, plus the pluggable `TimingModel` seam (simulator, static
//!   Eq. 6, roofline backends behind one memoized context).
//! * [`core`] — the paper's contribution: static analyzer and predictive
//!   models (occupancy, instruction mixes, Eq. 6 time prediction,
//!   parameter suggestion).
//! * [`tuner`] — the autotuning framework (search algorithms, ranking,
//!   statistics) with the new static-analysis search module.
//! * [`service`] — the sharded tuner service: a daemon exposing the
//!   evaluation engine (and its shared, optionally disk-backed
//!   `ArtifactStore`) to concurrent remote clients over a framed RPC
//!   protocol, plus the `RemoteEvaluator` oracle facade.

pub use oriole_arch as arch;
pub use oriole_codegen as codegen;
pub use oriole_core as core;
pub use oriole_ir as ir;
pub use oriole_kernels as kernels;
pub use oriole_service as service;
pub use oriole_sim as sim;
pub use oriole_tuner as tuner;
