//! Regenerates **Table III / Fig. 3**: the tuning feature space and the
//! Orio performance-tuning specification that generates it.
//!
//! ```sh
//! cargo run -p oriole-bench --bin table3_space
//! ```

use oriole_bench::TextTable;
use oriole_tuner::{parse_spec, spec::FIG3_SPEC, SearchSpace};

fn main() {
    println!("Fig. 3: performance tuning specification in Orio.\n");
    println!("{FIG3_SPEC}");

    let fig3 = parse_spec(FIG3_SPEC).expect("the paper's spec parses");
    let paper = SearchSpace::paper_default();

    let mut t = TextTable::new(&["Feature", "Values", "Count"]);
    let fmt_u32 = |v: &[u32]| {
        if v.len() > 6 {
            format!("{}..{} (step {})", v[0], v.last().unwrap(), v[1] - v[0])
        } else {
            format!("{v:?}")
        }
    };
    t.row(vec!["Thread count TC".into(), fmt_u32(&fig3.tc), fig3.tc.len().to_string()]);
    t.row(vec!["Block count BC".into(), fmt_u32(&fig3.bc), fig3.bc.len().to_string()]);
    t.row(vec!["Unroll factor UIF".into(), fmt_u32(&fig3.uif), fig3.uif.len().to_string()]);
    t.row(vec![
        "Preferred L1 PL (KiB)".into(),
        format!("{:?}", fig3.pl.iter().map(|p| p.kb()).collect::<Vec<_>>()),
        fig3.pl.len().to_string(),
    ]);
    t.row(vec!["Stream count SC".into(), fmt_u32(&fig3.sc), fig3.sc.len().to_string()]);
    t.row(vec![
        "Compiler flags CFLAGS".into(),
        "'', -use_fast_math".into(),
        fig3.cflags.len().to_string(),
    ]);
    println!("Table III: the tuning feature space.\n");
    println!("{}", t.render());
    println!("full Fig. 3 space: {} variants", fig3.len());
    println!(
        "evaluation space (SC fixed at 1, as in the paper's 'on average 5,120 code variants'): {}",
        paper.len()
    );
}
