//! Regenerates **Table VI**: error rates (sum of squares) when estimating
//! dynamic instruction mixes from static mixes, plus intensity.
//!
//! The static estimate is the analyzer's thread-level trip-count-weighted
//! mix; the dynamic observation is the simulator's warp-level counter
//! totals. Errors are summed squared differences of per-class fractions
//! over the paper's five input sizes (scaled ×100; see
//! `oriole_core::mix::static_vs_dynamic_error`).
//!
//! ```sh
//! cargo run --release -p oriole-bench --bin table6_static_error
//! ```

use oriole_arch::Gpu;
use oriole_bench::{ExpOptions, TextTable};
use oriole_codegen::{compile, TuningParams};
use oriole_core::mix::static_vs_dynamic_error;
use oriole_ir::{expected_mix, LaunchGeometry};
use oriole_sim::dynamic_mix;

fn main() {
    let opts = ExpOptions::from_env();
    // The paper's Table VI covers Fermi, Kepler and Maxwell.
    let gpus = [Gpu::M2050, Gpu::K20, Gpu::M40];
    let (tc, bc) = (128u32, 48u32);

    let mut table = TextTable::new(&["Kernel", "Arch", "FLOPS", "MEM", "CTRL", "Itns"]);
    for kid in opts.kernels() {
        for gpu in gpus {
            if let Some(only) = opts.gpu {
                if only != gpu {
                    continue;
                }
            }
            let mut pairs = Vec::new();
            let mut intensity = 0.0;
            for n in opts.sizes(kid) {
                let kernel =
                    compile(&kid.ast(n), gpu.spec(), TuningParams::with_geometry(tc, bc))
                        .expect("compiles");
                let geom = LaunchGeometry::new(n, tc, bc);
                let stat = expected_mix(&kernel.program, geom)
                    .scaled(geom.total_threads() as f64)
                    .classes();
                let dynamic = dynamic_mix(&kernel, n).classes();
                intensity = stat.intensity();
                pairs.push((stat, dynamic));
            }
            let e = static_vs_dynamic_error(&pairs);
            table.row(vec![
                kid.name().to_string(),
                gpu.spec().family.letter().to_string(),
                format!("{:.2}", e.flops),
                format!("{:.2}", e.mem),
                format!("{:.2}", e.ctrl),
                format!("{:.1}", intensity),
            ]);
        }
    }
    println!(
        "Table VI: error rates when estimating dynamic instruction mixes from static mixes.\n"
    );
    println!("{}", table.render());
    println!(
        "Shape targets (paper): small FLOPS errors everywhere; larger errors for the \
         divergent ex14fj; intensity <= 4.0 for atax/bicg and > 4.0 for ex14fj/matvec2d \
         (the rule threshold)."
    );
}
