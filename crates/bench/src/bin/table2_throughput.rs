//! Regenerates **Table II**: instruction throughput per number of
//! cycles (operations per cycle per SM).
//!
//! ```sh
//! cargo run -p oriole-bench --bin table2_throughput
//! ```

use oriole_arch::{Family, ThroughputTable, ALL_OP_CLASSES};
use oriole_bench::TextTable;

fn main() {
    let mut t =
        TextTable::new(&["Category", "Op class", "SM20", "SM35", "SM52", "SM60"]);
    for &op in &ALL_OP_CLASSES {
        let mut row = vec![op.class().to_string(), op.name().to_string()];
        for fam in Family::ALL {
            row.push(ThroughputTable::for_family(fam).ipc(op).to_string());
        }
        t.row(row);
    }
    println!("Table II: instruction throughput per number of cycles.\n");
    println!("{}", t.render());
    println!("(Eq. 6 coefficients are the reciprocals: CPI = 1/IPC.)");
}
