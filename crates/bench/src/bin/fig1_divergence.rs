//! Regenerates **Fig. 1**: the branch-divergence problem and the
//! performance loss incurred.
//!
//! A synthetic kernel splits its threads into `k` classes, each taking a
//! distinct path; a warp containing all classes serializes them. The
//! staircase of slowdowns versus `k` is the figure's content.
//!
//! ```sh
//! cargo run -p oriole-bench --bin fig1_divergence
//! ```

use oriole_bench::{ExpOptions, TextTable};
use oriole_codegen::{compile, TuningParams};
use oriole_kernels::synthetic::divergent_switch;
use oriole_sim::simulate;

fn main() {
    let opts = ExpOptions::from_env();
    let n = 256;
    println!("Fig. 1: branch divergence problem and performance loss incurred.\n");
    for gpu in opts.gpus() {
        let mut table = TextTable::new(&["divergent classes", "time (ms)", "slowdown"]);
        let mut base = None;
        for classes in [1u32, 2, 4, 8, 16, 32] {
            let kernel = compile(
                &divergent_switch(classes, 48),
                gpu.spec(),
                TuningParams::with_geometry(256, 96),
            )
            .expect("compiles");
            let t = simulate(&kernel, n).expect("launches").time_ms;
            let b = *base.get_or_insert(t);
            table.row(vec![
                classes.to_string(),
                format!("{t:.4}"),
                format!("{:.2}x", t / b),
            ]);
        }
        println!("-- {} --", gpu.spec());
        println!("{}", table.render());
    }
    println!(
        "Shape target (paper): monotone slowdown as warps serialize more paths; in the \
         worst case only 1 of 32 lanes progresses per cycle."
    );
}
