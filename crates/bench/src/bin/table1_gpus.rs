//! Regenerates **Table I**: GPUs used in this experiment.
//!
//! ```sh
//! cargo run -p oriole-bench --bin table1_gpus
//! ```

use oriole_arch::ALL_GPUS;
use oriole_bench::TextTable;

fn main() {
    let mut t = TextTable::new(&["Sym / Parameter", "M2050", "K20", "M40", "P100"]);
    let specs: Vec<_> = ALL_GPUS.iter().map(|g| g.spec()).collect();
    let mut push = |label: &str, f: &dyn Fn(&oriole_arch::GpuSpec) -> String| {
        t.row({
            let mut row = vec![label.to_string()];
            row.extend(specs.iter().map(|s| f(s)));
            row
        });
    };
    push("cc CUDA capability", &|s| s.compute_capability.to_string());
    push("Global mem (MB)", &|s| s.global_mem_mib.to_string());
    push("mp Multiprocessors", &|s| s.multiprocessors.to_string());
    push("CUDA cores / mp", &|s| s.cores_per_mp.to_string());
    push("CUDA cores", &|s| s.total_cores().to_string());
    push("GPU clock (MHz)", &|s| s.gpu_clock_mhz.to_string());
    push("Mem clock (MHz)", &|s| s.mem_clock_mhz.to_string());
    push("L2 cache (MB)", &|s| format!("{:.3}", s.l2_cache_bytes as f64 / 1e6));
    push("Constant mem (B)", &|s| s.const_mem_bytes.to_string());
    push("S_B Sh mem block (B)", &|s| s.shmem_per_block.to_string());
    push("R_fs Regs per block", &|s| s.regfile_per_mp.to_string());
    push("W_B Warp size", &|s| s.warp_size.to_string());
    push("T_mp Threads per mp", &|s| s.threads_per_mp.to_string());
    push("T_B Threads per block", &|s| s.threads_per_block.to_string());
    push("B_mp Thread blocks/mp", &|s| s.blocks_per_mp.to_string());
    push("T_W Threads per warp", &|s| s.threads_per_warp.to_string());
    push("W_mp Warps per mp", &|s| s.warps_per_mp.to_string());
    push("R_B Reg alloc size", &|s| s.reg_alloc_unit.to_string());
    push("R_T Regs per thread", &|s| s.regs_per_thread_max.to_string());
    push("Family", &|s| s.family.to_string());
    println!("Table I: GPUs used in this experiment.\n");
    println!("{}", t.render());
}
