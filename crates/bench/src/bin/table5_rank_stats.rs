//! Regenerates **Table V**: statistics for autotuned kernels — occupancy
//! (mean/σ/mode), register instructions (mean/σ), allocated registers,
//! and thread-count quartiles — for top performers (Rank 1) and poor
//! performers (Rank 2), per kernel per architecture.
//!
//! ```sh
//! cargo run --release -p oriole-bench --bin table5_rank_stats [--quick] [--store-dir DIR]
//! ```
//!
//! With `--store-dir` the exhaustive ground-truth sweeps persist: a
//! killed or repeated run resumes as pure, bit-identical cache hits.

use oriole_bench::{exhaustive_measurements_in, ExpOptions, TextTable};
use oriole_tuner::{rank_stats, split_ranks};

fn main() {
    let opts = ExpOptions::from_env();
    let space = opts.space();
    let store = opts.store();
    eprintln!(
        "exhaustive sweep: {} variants x {} kernels x {} GPUs ...",
        space.len(),
        opts.kernels().len(),
        opts.gpus().len()
    );

    let header = [
        "Kernel", "Arch", "Rank", "Occ mean", "Occ std", "Occ mode", "RegIns mean",
        "RegIns std", "Alloc", "T 25th", "T 50th", "T 75th",
    ];
    let mut table = TextTable::new(&header);

    for kid in opts.kernels() {
        let sizes = opts.sizes(kid);
        for gpu in opts.gpus() {
            let measurements = exhaustive_measurements_in(&store, kid, gpu, &space, &sizes);
            let (rank1, rank2) = split_ranks(&measurements);
            for (rank_name, rank) in [("1", rank1), ("2", rank2)] {
                let s = rank_stats(&rank);
                table.row(vec![
                    kid.name().to_string(),
                    gpu.spec().family.letter().to_string(),
                    rank_name.to_string(),
                    format!("{:.2}", s.occupancy_mean),
                    format!("{:.2}", s.occupancy_std),
                    format!("{:.2}", s.occupancy_mode),
                    format!("{:.0}", s.reg_instr_mean),
                    format!("{:.0}", s.reg_instr_std),
                    s.regs_allocated_mode.to_string(),
                    format!("{:.0}", s.thread_quartiles.0),
                    format!("{:.0}", s.thread_quartiles.1),
                    format!("{:.0}", s.thread_quartiles.2),
                ]);
            }
            eprintln!("  done: {} on {gpu}", kid.name());
        }
    }

    println!("Table V: statistics for autotuned kernels (Rank 1 = good, Rank 2 = poor).\n");
    println!("{}", table.render());
    println!(
        "Shape targets (paper): Rank-1 thread quartiles low for atax/bicg, high for \
         matvec2d; occupancy means similar across ranks; Rank-1 register-instruction \
         dispersion below Rank-2's."
    );
    let summary = opts.store_summary(&store);
    if !summary.is_empty() {
        eprintln!("{summary}");
    }
}
