//! Regenerates **Table VII**: suggested parameters to achieve theoretical
//! occupancy — `T*`, `[R_u : R*]`, `S*`, `occ*` per kernel per
//! architecture.
//!
//! ```sh
//! cargo run -p oriole-bench --bin table7_suggestions
//! ```

use oriole_bench::{ExpOptions, TextTable};
use oriole_codegen::{compile, TuningParams};
use oriole_core::suggest::suggest;

fn main() {
    let opts = ExpOptions::from_env();
    let mut table = TextTable::new(&["Kernel", "Arch", "T*", "[Ru : R*]", "S* (B)", "occ*"]);
    for kid in opts.kernels() {
        let n = kid.input_sizes()[2];
        for gpu in opts.gpus() {
            let kernel =
                compile(&kid.ast(n), gpu.spec(), TuningParams::with_geometry(128, 48))
                    .expect("compiles");
            let s = suggest(&kernel);
            table.row(vec![
                kid.name().to_string(),
                gpu.spec().family.letter().to_string(),
                s.thread_counts
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                format!("[{} : {}]", s.regs_used, s.reg_headroom),
                s.smem_headroom.to_string(),
                format!("{:.2}", s.occ_star),
            ]);
        }
    }
    println!("Table VII: suggested parameters to achieve theoretical occupancy.\n");
    println!("{}", table.render());
    println!(
        "Shape targets (paper): T* = {{192,256,384,512,768}} on Fermi, {{128,256,512,1024}} \
         on Kepler, {{64,...,1024}} on Maxwell/Pascal; occ* < 1 only where register \
         pressure binds (Fermi)."
    );
}
