//! Model-agreement study: how well does each pluggable [`TimingModel`]
//! backend agree with the abstract-machine simulator?
//!
//! For every kernel × architecture, the (thinned) Fig. 3 space is
//! estimated under each backend through its own memoized
//! [`ModelContext`], and each backend's series is compared against the
//! simulator's Fig. 5-style: both signals sorted by simulator time,
//! min–max normalized, then summarized by mean absolute error and rank
//! agreement (fraction of variant pairs ordered identically). The `sim`
//! row is a built-in self-check — MAE 0, agreement 1.00 by definition.
//!
//! ```sh
//! cargo run --release -p oriole-bench --bin model_agreement [-- --quick]
//! ```
//!
//! [`TimingModel`]: oriole_sim::TimingModel

use oriole_bench::{ExpOptions, TextTable};
use oriole_codegen::compile;
use oriole_core::predict::PredictedSeries;
use oriole_sim::{ModelContext, ModelId};

fn main() {
    let opts = ExpOptions::from_env();
    let space = opts.space();
    let mut table = TextTable::new(&[
        "Kernel",
        "Arch",
        "model",
        "variants",
        "MAE",
        "rank agreement",
    ]);

    for kid in opts.kernels() {
        // Middle input size, as a representative workload (as in Fig. 5).
        let n = kid.input_sizes()[2];
        for gpu in opts.gpus() {
            let contexts: Vec<ModelContext> = ModelId::ALL
                .iter()
                .map(|&m| ModelContext::for_model(gpu.spec(), m))
                .collect();
            let mut pairs: Vec<Vec<(f64, f64)>> = vec![Vec::new(); contexts.len()];
            for params in space.iter() {
                let Ok(kernel) = compile(&kid.ast(n), gpu.spec(), params) else {
                    continue;
                };
                // Every backend shares the feasibility gate, so one Err
                // means all three refuse this variant.
                let Ok(reference) = contexts[0].simulate(&kernel, n) else {
                    continue;
                };
                for (ctx, series) in contexts.iter().zip(&mut pairs) {
                    let r = ctx.simulate(&kernel, n).expect("feasibility is backend-independent");
                    series.push((r.time_ms, reference.time_ms));
                }
            }
            for (id, series) in ModelId::ALL.iter().zip(&pairs) {
                let s = PredictedSeries::build(series);
                table.row(vec![
                    kid.name().to_string(),
                    gpu.spec().family.letter().to_string(),
                    id.to_string(),
                    series.len().to_string(),
                    format!("{:.4}", s.mae()),
                    format!("{:.2}", s.rank_agreement()),
                ]);
            }
            eprintln!("  done: {} on {gpu}", kid.name());
        }
    }
    println!("Model agreement vs the simulator (Fig. 5-style normalized series).\n");
    println!("{}", table.render());
    println!(
        "The sim rows are the self-check (MAE 0, agreement 1.00). The static and \
         roofline rows quantify how much of the simulator's ranking signal each \
         cheaper backend retains; agreement > 0.5 means the backend orders variants \
         better than chance, which is what makes it useful for pruning."
    );
}
