//! Regenerates **Fig. 7**: the occupancy-calculator view for the ATAX
//! kernel — thread, register and shared-memory impact panels for the
//! current configuration (top) and the potential optimized one (bottom).
//!
//! ```sh
//! cargo run -p oriole-bench --bin fig7_occupancy_view
//! ```

use oriole_arch::Gpu;
use oriole_bench::ExpOptions;
use oriole_codegen::{compile, TuningParams};
use oriole_core::{report, suggest};
use oriole_kernels::KernelId;

fn main() {
    let opts = ExpOptions::from_env();
    let kid = opts.kernel.unwrap_or(KernelId::Atax);
    let gpu = opts.gpu.unwrap_or(Gpu::K20);
    let n = kid.input_sizes()[2];

    // "Current": a deliberately suboptimal block size, as in the figure.
    let current = compile(&kid.ast(n), gpu.spec(), TuningParams::with_geometry(160, 48))
        .expect("compiles");
    let suggestion = suggest::suggest(&current);

    println!("Fig. 7: occupancy calculator, current (top) vs potential (bottom).\n");
    println!(
        "{}",
        report::occupancy_calculator_report(
            gpu.spec(),
            kid.name(),
            current.params.tc,
            current.regs_per_thread(),
            current.smem_per_block,
            &suggestion,
        )
    );
}
