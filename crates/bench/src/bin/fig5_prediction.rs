//! Regenerates **Fig. 5**: execution time estimated from static
//! instruction mixes — normalized predicted vs measured series per
//! kernel/architecture, summarized by mean absolute error (MAE) and rank
//! agreement.
//!
//! ```sh
//! cargo run --release -p oriole-bench --bin fig5_prediction [--quick]
//! ```

use oriole_bench::{ExpOptions, TextTable};
use oriole_codegen::compile;
use oriole_core::predict::{predict_time_with, PredictedSeries};
use oriole_sim::{measure, TrialProtocol};

fn main() {
    let opts = ExpOptions::from_env();
    let space = opts.space();
    let mut table =
        TextTable::new(&["Kernel", "Arch", "variants", "MAE", "rank agreement"]);

    for kid in opts.kernels() {
        // Middle input size, as a representative workload.
        let n = kid.input_sizes()[2];
        for gpu in opts.gpus() {
            // One Table II column for the whole sweep.
            let throughput = gpu.spec().throughput();
            let mut pairs = Vec::new();
            for params in space.iter() {
                let Ok(kernel) = compile(&kid.ast(n), gpu.spec(), params) else {
                    continue;
                };
                let predicted =
                    predict_time_with(throughput, &kernel.program, kernel.geometry(n));
                let Ok(trials) = measure(&kernel, n, 10, 0xF16_5EED) else {
                    continue;
                };
                pairs.push((predicted, trials.selected(TrialProtocol::FifthOfTen)));
            }
            let series = PredictedSeries::build(&pairs);
            table.row(vec![
                kid.name().to_string(),
                gpu.spec().family.letter().to_string(),
                pairs.len().to_string(),
                format!("{:.4}", series.mae()),
                format!("{:.2}", series.rank_agreement()),
            ]);
            eprintln!("  done: {} on {gpu}", kid.name());
        }
    }
    println!("Fig. 5: execution time from static instruction mixes (Eq. 6).\n");
    println!("{}", table.render());
    println!(
        "Shape targets (paper): normalized MAE small for the matrix kernels; the \
         divergent, guard-heavy ex14fj is the hardest case. Rank agreement > 0.5 means \
         the static model orders variants better than chance."
    );
}
