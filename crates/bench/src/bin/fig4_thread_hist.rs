//! Regenerates **Fig. 4**: thread-count histograms of the exhaustive
//! autotuning search, split by rank (1 = good performers, 2 = poor),
//! comparing architectures and kernels.
//!
//! ```sh
//! cargo run --release -p oriole-bench --bin fig4_thread_hist [--quick] [--store-dir DIR]
//! ```

use oriole_bench::{exhaustive_measurements_in, thread_histogram, ExpOptions};
use oriole_tuner::split_ranks;

fn main() {
    let opts = ExpOptions::from_env();
    let space = opts.space();
    // One store for the whole run: sweeps share front-ends and model
    // caches across GPUs of one kernel (and with any future re-sweep).
    // Under --store-dir the measurement tiers persist across runs.
    let store = opts.store();
    println!("Fig. 4: thread counts for Orio autotuning exhaustive search.\n");

    for kid in opts.kernels() {
        let sizes = opts.sizes(kid);
        for gpu in opts.gpus() {
            let measurements = exhaustive_measurements_in(&store, kid, gpu, &space, &sizes);
            let (rank1, rank2) = split_ranks(&measurements);
            println!("=== kernel {} | arch {} ===", kid.name(), gpu.spec().name);
            for (name, rank) in [("rank 1 (good)", &rank1), ("rank 2 (poor)", &rank2)] {
                let threads: Vec<u32> = rank.iter().map(|m| m.params.tc).collect();
                println!("-- {name} ({} variants)", threads.len());
                print!("{}", thread_histogram(&threads, 128, 40));
            }
            println!();
        }
    }
    println!(
        "Shape targets (paper): atax/bicg rank-1 mass in the low thread range with \
         rank-2 high; matvec2d reversed; ex14fj diffuse."
    );
    let summary = opts.store_summary(&store);
    if !summary.is_empty() {
        eprintln!("{summary}");
    }
}
