//! Regenerates **Fig. 6**: improved search time over exhaustive
//! autotuning, comparing the static and rule-based approaches — and
//! validates that the pruned searches still find near-optimal variants.
//!
//! ```sh
//! cargo run --release -p oriole-bench --bin fig6_search_improvement [--quick] [--store-dir DIR]
//! ```

use oriole_bench::{ExpOptions, TextTable};
use oriole_codegen::{compile, TuningParams};
use oriole_core::analyze_in;
use oriole_tuner::{ExhaustiveSearch, PruneLevel, Searcher, StaticSearch};

fn main() {
    let opts = ExpOptions::from_env();
    let space = opts.space();
    // One store for the run: the exhaustive sweep warms the measurement
    // tier, so both pruned searches below are pure cache hits instead of
    // re-measuring their (large) subspaces from scratch. Under
    // --store-dir the tiers persist, so a killed run resumes warm.
    let store = opts.store();
    let mut table = TextTable::new(&[
        "Kernel",
        "Arch",
        "Static improv.",
        "RB improv.",
        "exhaustive best (ms)",
        "static best (ms)",
        "RB best (ms)",
    ]);

    for kid in opts.kernels() {
        let sizes = opts.sizes(kid);
        for gpu in opts.gpus() {
            let builder = move |n: u64| kid.ast(n);

            let evaluator = store.evaluator(kid.name(), &builder, gpu.spec(), &sizes);
            let exhaustive = ExhaustiveSearch.search(&space, &evaluator, usize::MAX);

            let probe_n = sizes[sizes.len() / 2];
            let probe = compile(
                &kid.ast(probe_n),
                gpu.spec(),
                TuningParams::with_geometry(128, 48),
            )
            .expect("compiles");
            let analysis = analyze_in(store.context(gpu.spec()).occupancy_table(), &probe, probe_n);

            let run_pruned = |level: PruneLevel| {
                let ev = store.evaluator(kid.name(), &builder, gpu.spec(), &sizes);
                let mut s = StaticSearch::new(analysis.clone(), level);
                let r = s.search(&space, &ev, usize::MAX);
                (s.report.expect("ran").improvement, r.best_time)
            };
            let (static_improv, static_best) = run_pruned(PruneLevel::Static);
            let (rb_improv, rb_best) = run_pruned(PruneLevel::RuleBased);

            table.row(vec![
                kid.name().to_string(),
                gpu.spec().name.to_string(),
                format!("{:.1}%", static_improv * 100.0),
                format!("{:.1}%", rb_improv * 100.0),
                format!("{:.4}", exhaustive.best_time),
                format!("{:.4}", static_best),
                format!("{:.4}", rb_best),
            ]);
            eprintln!("  done: {} on {gpu}", kid.name());
        }
    }
    println!("Fig. 6: improved search over exhaustive autotuning (static vs rule-based).\n");
    println!("{}", table.render());
    println!(
        "Shape targets (paper): static pruning ~84% (Fermi, 5/32 thread values) to 87.5% \
         (Kepler/Maxwell/Pascal, 4-5/32); static+rules ~93.8%; pruned searches stay \
         competitive with the exhaustive optimum."
    );
    let summary = opts.store_summary(&store);
    if !summary.is_empty() {
        eprintln!("{summary}");
    }
}
