//! Ablation study: which simulator mechanisms carry the paper's
//! qualitative results?
//!
//! DESIGN.md §5 names the mechanisms the Fig. 4 shape depends on. This
//! binary disables them one at a time and reports the ATAX (low-TC
//! winner) and matVec2D (high-TC winner) preference gaps under each
//! ablation — if an ablation flips or erases a preference, that mechanism
//! is load-bearing.
//!
//! ```sh
//! cargo run --release -p oriole-bench --bin ablation_sim
//! ```

use oriole_arch::Gpu;
use oriole_bench::TextTable;
use oriole_codegen::{compile, TuningParams};
use oriole_kernels::KernelId;
use oriole_sim::{simulate_with, SimConfig};

/// Sum of model times over the paper input sizes at a block size.
fn total_time(kid: KernelId, gpu: Gpu, tc: u32, cfg: &SimConfig) -> f64 {
    kid.input_sizes()
        .iter()
        .map(|&n| {
            let kernel =
                compile(&kid.ast(n), gpu.spec(), TuningParams::with_geometry(tc, 24))
                    .expect("compiles");
            simulate_with(&kernel, n, cfg).expect("launches").time_ms
        })
        .sum()
}

/// Preference ratio: time at TC=896 over time at TC=128. > 1 means small
/// blocks win; < 1 means large blocks win.
fn preference(kid: KernelId, gpu: Gpu, cfg: &SimConfig) -> f64 {
    total_time(kid, gpu, 896, cfg) / total_time(kid, gpu, 128, cfg)
}

fn main() {
    let gpu = Gpu::K20;
    let base = SimConfig::for_family(gpu.spec().family);

    let ablations: Vec<(&str, SimConfig)> = vec![
        ("full model", base.clone()),
        ("no issue-efficiency penalty", SimConfig { issue_warmup: 0.0, ..base.clone() }),
        ("no DRAM latency (perfect hiding)", SimConfig { dram_latency: 0.0, ..base.clone() }),
        ("free barriers", SimConfig {
            barrier_base_cycles: 0.0,
            barrier_per_warp_cycles: 0.0,
            ..base.clone()
        }),
        ("free block dispatch", SimConfig { block_dispatch_cycles: 0.0, ..base.clone() }),
        ("free divergence", SimConfig { reconvergence_cycles: 0.0, ..base.clone() }),
        ("infinite DRAM bandwidth", SimConfig {
            dram_cycles_per_transaction: 0.0,
            ..base.clone()
        }),
    ];

    let mut table = TextTable::new(&[
        "ablation",
        "atax T896/T128",
        "matvec2d T896/T128",
        "verdict",
    ]);
    for (name, cfg) in &ablations {
        let atax = preference(KernelId::Atax, gpu, cfg);
        let matvec = preference(KernelId::MatVec2D, gpu, cfg);
        let verdict = if atax > 1.05 && matvec < 1.3 {
            "shape holds"
        } else {
            "shape degraded"
        };
        table.row(vec![
            name.to_string(),
            format!("{atax:.2}"),
            format!("{matvec:.2}"),
            verdict.to_string(),
        ]);
    }
    println!("Simulator mechanism ablations on {} (ratios > 1: small blocks win).\n", gpu);
    println!("{}", table.render());
    println!(
        "Reading: ATAX must keep a strong small-block preference (ratio well above 1); \
         matVec2D must not. Mechanisms whose removal collapses the ATAX ratio toward 1 \
         are the ones carrying the paper's Fig. 4 behaviour."
    );
}
