//! Regenerates **Table IV**: kernel specifications.
//!
//! ```sh
//! cargo run -p oriole-bench --bin table4_kernels
//! ```

use oriole_bench::TextTable;
use oriole_kernels::ALL_KERNELS;

fn main() {
    let mut t = TextTable::new(&["Kernel", "Category", "Operation", "Input sizes"]);
    for kid in ALL_KERNELS {
        t.row(vec![
            kid.name().to_string(),
            kid.category().to_string(),
            kid.operation().to_string(),
            format!("{:?}", kid.input_sizes()),
        ]);
    }
    println!("Table IV: kernel specifications.\n");
    println!("{}", t.render());

    // Structural summary of the AST encodings.
    let mut s = TextTable::new(&["Kernel", "loop depth", "divergent", "shared decls"]);
    for kid in ALL_KERNELS {
        let ast = kid.ast(kid.input_sizes()[2]);
        s.row(vec![
            kid.name().to_string(),
            ast.loop_depth().to_string(),
            ast.has_divergence().to_string(),
            ast.shared.len().to_string(),
        ]);
    }
    println!("{}", s.render());
}
