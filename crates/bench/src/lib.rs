//! # oriole-bench — experiment harness
//!
//! One binary per table and figure of the paper's evaluation (§IV); see
//! DESIGN.md §4 for the experiment index. This library holds the shared
//! drivers: exhaustive sweeps, rank statistics, text-table and
//! ASCII-histogram rendering.
//!
//! Every binary accepts `--quick` to run a thinned sweep (coarser TC
//! axis, fewer sizes) and `--gpu`/`--kernel` filters where meaningful.

#![warn(missing_docs)]

use oriole_arch::Gpu;
use oriole_kernels::KernelId;
use oriole_tuner::{ArtifactStore, Evaluator, Measurement, SearchSpace};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Common experiment options parsed from `argv`.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Thin the sweep for a fast smoke run.
    pub quick: bool,
    /// Restrict to one GPU.
    pub gpu: Option<Gpu>,
    /// Restrict to one kernel.
    pub kernel: Option<KernelId>,
    /// Persistent artifact-store directory: sweeps spill their
    /// measurement tiers here and a re-run (or a run killed half-way)
    /// resumes as pure, bit-identical cache hits.
    pub store_dir: Option<String>,
}

impl ExpOptions {
    /// Parses `--quick`, `--gpu <name>`, `--kernel <name>` and
    /// `--store-dir <dir>` from argv.
    pub fn from_env() -> ExpOptions {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut opts = ExpOptions { quick: false, gpu: None, kernel: None, store_dir: None };
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--quick" => {
                    opts.quick = true;
                    i += 1;
                }
                "--gpu" => {
                    opts.gpu = argv.get(i + 1).and_then(|s| Gpu::parse(s));
                    i += 2;
                }
                "--kernel" => {
                    opts.kernel = argv.get(i + 1).and_then(|s| KernelId::parse(s));
                    i += 2;
                }
                "--store-dir" => {
                    opts.store_dir = argv.get(i + 1).cloned();
                    i += 2;
                }
                _ => i += 1,
            }
        }
        opts
    }

    /// The run's [`ArtifactStore`]: disk-backed under `--store-dir`
    /// (the sweep resumes across processes), memory-only otherwise.
    pub fn store(&self) -> ArtifactStore {
        match &self.store_dir {
            Some(dir) => ArtifactStore::with_disk(dir)
                .unwrap_or_else(|e| panic!("cannot open --store-dir `{dir}`: {e}")),
            None => ArtifactStore::new(),
        }
    }

    /// One line summarizing what the disk tier did this run (empty for
    /// memory-only stores) — printed to stderr by the experiment bins.
    pub fn store_summary(&self, store: &ArtifactStore) -> String {
        match (store.stats().disk, &self.store_dir) {
            (Some(d), Some(dir)) => format!(
                "store {dir}: {} measurement(s) loaded from disk, {} spilled, {} rejected",
                d.measurements_loaded, d.measurements_written, d.rejected
            ),
            _ => String::new(),
        }
    }

    /// GPUs selected by the options.
    pub fn gpus(&self) -> Vec<Gpu> {
        match self.gpu {
            Some(g) => vec![g],
            None => oriole_arch::ALL_GPUS.to_vec(),
        }
    }

    /// Kernels selected by the options.
    pub fn kernels(&self) -> Vec<KernelId> {
        match self.kernel {
            Some(k) => vec![k],
            None => oriole_kernels::ALL_KERNELS.to_vec(),
        }
    }

    /// The search space for sweeps: the paper's 5,120-variant space, or a
    /// 640-variant thinning under `--quick`.
    pub fn space(&self) -> SearchSpace {
        let mut space = SearchSpace::paper_default();
        if self.quick {
            space.tc = (1..=16).map(|i| i * 64).collect();
            space.uif = vec![1, 3, 5];
            space.pl = vec![oriole_codegen::PreferredL1::Kb16];
            // 16 × 8 × 3 × 1 × 1 × 2 = 768 variants.
        }
        space
    }

    /// Input sizes for a kernel (paper's five, or three under `--quick`).
    pub fn sizes(&self, kid: KernelId) -> Vec<u64> {
        let all = kid.input_sizes();
        if self.quick {
            vec![all[0], all[2], all[4]]
        } else {
            all.to_vec()
        }
    }
}

/// Runs the §IV-B exhaustive sweep for one kernel on one GPU: every
/// variant in `space`, measured with the paper's 10-trials/fifth-selected
/// protocol over `sizes` — with a private, throwaway evaluator.
pub fn exhaustive_measurements(
    kid: KernelId,
    gpu: Gpu,
    space: &SearchSpace,
    sizes: &[u64],
) -> Vec<Arc<Measurement>> {
    let builder = move |n: u64| kid.ast(n);
    let evaluator = Evaluator::new(&builder, gpu.spec(), sizes);
    evaluator.evaluate_space(space)
}

/// [`exhaustive_measurements`] borrowing tiers from a process-level
/// [`ArtifactStore`]: repeated or overlapping sweeps (the experiment
/// bins loop over kernels × GPUs, and several figures share sweeps)
/// reuse front-ends, model reports and whole measurements. Results are
/// bit-identical to the throwaway-evaluator path.
pub fn exhaustive_measurements_in(
    store: &ArtifactStore,
    kid: KernelId,
    gpu: Gpu,
    space: &SearchSpace,
    sizes: &[u64],
) -> Vec<Arc<Measurement>> {
    let builder = move |n: u64| kid.ast(n);
    let evaluator = store.evaluator(kid.name(), &builder, gpu.spec(), sizes);
    evaluator.evaluate_space(space)
}

/// Renders an ASCII histogram of thread counts (Fig. 4 panels): buckets
/// over the TC axis, one row per bucket.
pub fn thread_histogram(threads: &[u32], bucket: u32, max_width: usize) -> String {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for &t in threads {
        *counts.entry((t / bucket) * bucket).or_default() += 1;
    }
    let peak = counts.values().copied().max().unwrap_or(1);
    let mut out = String::new();
    for (start, count) in counts {
        let bar = (count * max_width).div_ceil(peak);
        out.push_str(&format!(
            "{:>5}-{:<5} |{:<width$}| {count}\n",
            start,
            start + bucket - 1,
            "#".repeat(bar),
            width = max_width
        ));
    }
    out
}

/// Markdown-ish fixed-width table renderer.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with per-column width fitting.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:>width$}  ", cell, width = widths[c]));
            }
            line.trim_end().to_string() + "\n"
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_scales() {
        let h = thread_histogram(&[32, 33, 64, 65, 66, 1024], 32, 10);
        assert!(h.contains("32-63"));
        assert!(h.contains("| 3\n"), "{h}");
        assert!(h.contains("1024-1055"));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["kernel", "time"]);
        t.row(vec!["atax".into(), "1.5".into()]);
        t.row(vec!["ex14fj".into(), "12.25".into()]);
        let r = t.render();
        assert!(r.contains("kernel"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_wrong_arity() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn quick_space_is_smaller() {
        let full = ExpOptions { quick: false, gpu: None, kernel: None, store_dir: None };
        let quick = ExpOptions { quick: true, gpu: None, kernel: None, store_dir: None };
        assert_eq!(full.space().len(), 5120);
        assert!(quick.space().len() < 1000);
        assert_eq!(quick.sizes(KernelId::Atax), vec![32, 128, 512]);
    }

    #[test]
    fn exhaustive_runs_on_tiny_space() {
        let space = SearchSpace::tiny();
        let ms = exhaustive_measurements(KernelId::Atax, Gpu::K20, &space, &[64]);
        assert_eq!(ms.len(), space.len());
        assert!(ms.iter().all(|m| m.feasible));
    }

    #[test]
    fn store_dir_option_makes_sweeps_resumable() {
        let dir = std::env::temp_dir()
            .join(format!("oriole-bench-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ExpOptions {
            quick: true,
            gpu: None,
            kernel: None,
            store_dir: Some(dir.to_string_lossy().into_owned()),
        };
        let space = SearchSpace::tiny();

        let first = opts.store();
        let cold = exhaustive_measurements_in(&first, KernelId::Atax, Gpu::K20, &space, &[64]);
        assert!(opts.store_summary(&first).contains("16 spilled"));
        drop(first);

        let second = opts.store();
        let warm = exhaustive_measurements_in(&second, KernelId::Atax, Gpu::K20, &space, &[64]);
        assert_eq!(warm, cold);
        assert_eq!(second.stats().unique_evaluations, 0, "resumed sweep computed nothing");
        assert!(opts.store_summary(&second).contains("16 measurement(s) loaded"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_backed_sweep_matches_throwaway_sweep() {
        let space = SearchSpace::tiny();
        let fresh = exhaustive_measurements(KernelId::Atax, Gpu::K20, &space, &[64]);
        let store = ArtifactStore::new();
        let cold = exhaustive_measurements_in(&store, KernelId::Atax, Gpu::K20, &space, &[64]);
        let warm = exhaustive_measurements_in(&store, KernelId::Atax, Gpu::K20, &space, &[64]);
        assert_eq!(cold, fresh);
        assert_eq!(warm, fresh);
        // The warm sweep re-measured nothing.
        assert_eq!(store.stats().unique_evaluations, space.len());
    }
}
