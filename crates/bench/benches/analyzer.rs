//! Criterion bench: the static analyzer.
//!
//! §IV-C's cost argument rests on static analysis being much cheaper than
//! empirical measurement: "static analysis does not suffer from the
//! effects of noise and hence only has to be performed once on each code
//! version." These benches quantify "once".

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oriole_arch::Gpu;
use oriole_codegen::{compile, TuningParams};
use oriole_core::{analyze, analyze_disassembly, predict_time};
use oriole_ir::LaunchGeometry;
use oriole_kernels::{KernelId, ALL_KERNELS};

fn bench_analyzer(c: &mut Criterion) {
    let gpu = Gpu::K20.spec();
    let mut g = c.benchmark_group("analyzer");

    for kid in ALL_KERNELS {
        let n = kid.input_sizes()[2];
        let kernel = compile(&kid.ast(n), gpu, TuningParams::with_geometry(128, 48)).unwrap();
        g.bench_function(format!("full_analysis/{kid}"), |b| {
            b.iter(|| analyze(black_box(&kernel), n))
        });
    }

    let kernel = compile(
        &KernelId::Atax.ast(256),
        gpu,
        TuningParams::with_geometry(128, 48),
    )
    .unwrap();
    let listing = kernel.disassembly();
    g.bench_function("parse_disassembly/atax", |b| {
        b.iter(|| oriole_ir::text::parse(black_box(&listing)).unwrap())
    });
    g.bench_function("analysis_from_text/atax", |b| {
        b.iter(|| {
            analyze_disassembly(black_box(&listing), gpu, LaunchGeometry::new(256, 128, 48))
                .unwrap()
        })
    });
    g.bench_function("eq6_prediction/atax", |b| {
        b.iter(|| predict_time(black_box(&kernel.program), LaunchGeometry::new(256, 128, 48)))
    });
    g.finish();
}

criterion_group!(benches, bench_analyzer);
criterion_main!(benches);
