//! Criterion bench: the GPU timing simulator — the cost of one
//! "empirical" measurement, the quantity the paper's static approach
//! avoids paying thousands of times.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oriole_arch::Gpu;
use oriole_codegen::{compile, TuningParams};
use oriole_kernels::ALL_KERNELS;
use oriole_sim::{dynamic_mix, measure, simulate};

fn bench_simulator(c: &mut Criterion) {
    let gpu = Gpu::K20.spec();
    let mut g = c.benchmark_group("simulator");

    for kid in ALL_KERNELS {
        let n = kid.input_sizes()[2];
        let kernel = compile(&kid.ast(n), gpu, TuningParams::with_geometry(128, 48)).unwrap();
        g.bench_function(format!("simulate/{kid}"), |b| {
            b.iter(|| simulate(black_box(&kernel), n).unwrap())
        });
    }

    let kid = ALL_KERNELS[0];
    let n = kid.input_sizes()[2];
    let kernel = compile(&kid.ast(n), gpu, TuningParams::with_geometry(128, 48)).unwrap();
    g.bench_function("ten_trials_protocol/atax", |b| {
        b.iter(|| measure(black_box(&kernel), n, 10, 42).unwrap())
    });
    g.bench_function("dynamic_counters/atax", |b| {
        b.iter(|| dynamic_mix(black_box(&kernel), n))
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
