//! Criterion bench: end-to-end `evaluate_space` throughput on the
//! paper's Fig. 3 space — the search-layer hot path this repo's
//! split-phase compilation cache and sharded memo exist to accelerate.
//!
//! Four scenarios bracket the engine:
//!
//! * `cold/1thread` — fresh evaluator, sequential sweep: every point
//!   pays the back-end + simulate cost, front-ends amortize across the
//!   space.
//! * `cold/Nthreads` — fresh evaluator, parallel batch: adds the
//!   self-scheduling worker pool and in-flight dedup.
//! * `warm/1thread` and `warm/Nthreads` — pre-populated memo: pure
//!   cache-hit traversal, the cost stochastic searchers pay on
//!   revisits.
//!
//! The space is the 5,120-variant Fig. 3 instantiation thinned on the
//! `TC` axis (640 points) so a bench iteration stays affordable; pass
//! through `evaluate_space` is end-to-end either way.
//!
//! The `disk/*` scenarios exercise the persistent tier: a cold sweep
//! with write-through spilling, and a warm-from-disk re-sweep where a
//! **fresh store** (standing in for a new process) serves the whole
//! space from its on-disk artifact — the repo's acceptance bar is the
//! warm-from-disk re-sweep ≥ 2× faster than the cold sweep. Pass
//! `--store-dir DIR` to persist the scenario artifacts (and resume a
//! killed run); the default is a throwaway temp directory. Pass
//! `--json PATH` (a shim extension) to also write every result as
//! machine-readable JSON, e.g. `BENCH_eval.json`.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use oriole_arch::Gpu;
use oriole_codegen::{compile, front_end, FrontEnd, TuningParams};
use oriole_fleet::{FleetEvaluator, FleetSpec};
use oriole_kernels::KernelId;
use oriole_ir::lower::{lower_indexed, LowerOptions};
use oriole_service::{Client, EvalScope, RemoteEvaluator, RetryPolicy, ServeConfig, Server};
use oriole_sim::{dynamic_mix, measure, simulate, TrialProtocol};
use oriole_tuner::{ArtifactStore, EvalProtocol, Evaluator, Oracle, SearchSpace};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The disk-scenario base directory: `--store-dir` when given (kept on
/// exit), a process-unique temp directory otherwise (removed on exit).
fn disk_base_dir() -> (PathBuf, bool) {
    let argv: Vec<String> = std::env::args().collect();
    if let Some(i) = argv.iter().position(|a| a == "--store-dir") {
        if let Some(dir) = argv.get(i + 1) {
            return (PathBuf::from(dir), true);
        }
    }
    (
        std::env::temp_dir().join(format!("oriole-eval-throughput-{}", std::process::id())),
        false,
    )
}

fn thinned_fig3_space() -> SearchSpace {
    let mut space = SearchSpace::paper_default();
    // Thin TC 32→4 steps: 4 × 8 × 5 × 2 × 1 × 2 = 640 points, the same
    // mix of front-end keys (UIF × CFLAGS) as the full space.
    space.tc = vec![128, 256, 512, 1024];
    space
}

fn bench_eval_throughput(c: &mut Criterion) {
    let gpu = Gpu::K20.spec();
    let kid = KernelId::Atax;
    let sizes = [128u64];
    let builder = move |n: u64| kid.ast(n);
    let space = thinned_fig3_space();

    let mut g = c.benchmark_group("eval_throughput");
    g.sample_size(10);

    // The seed engine's per-point cost: rebuild the AST and run the
    // monolithic compile (validate → unroll → lower → regalloc) for
    // every (variant × size), then measure — no caching anywhere. This
    // is the baseline the split-phase engine is judged against.
    g.bench_function("baseline/uncached_compile_per_point", |b| {
        b.iter(|| {
            let mut total = 0.0f64;
            for p in space.iter() {
                for &n in &sizes {
                    let ast = builder(n);
                    let kernel = compile(black_box(&ast), gpu, p).expect("feasible space");
                    let trials = measure(&kernel, n, 10, 0x0012_101e ^ n).expect("simulates");
                    total += trials.selected(TrialProtocol::FifthOfTen);
                    black_box(dynamic_mix(&kernel, n));
                }
            }
            total
        })
    });

    // The program-index pair: both scenarios drive every point through
    // specialize + simulate + dynamic_mix directly (no evaluator tiers),
    // so the only difference is where the front end runs.
    // `frontend/cold_index_build` pays unroll + lower + ProgramIndex
    // construction for each distinct (UIF, CFLAGS) key inside the timed
    // region; `frontend/indexed_resweep` reuses prebuilt front-end
    // artifacts, so every analysis replays the shared index. The delta
    // prices the once-per-artifact index build against the per-query
    // sweep it amortizes.
    g.bench_function("frontend/cold_index_build", |b| {
        b.iter(|| {
            let mut fes: HashMap<(u32, bool), FrontEnd> = HashMap::new();
            let mut total = 0.0f64;
            for p in space.iter() {
                for &n in &sizes {
                    let fe = fes.entry((p.uif, p.cflags.fast_math)).or_insert_with(|| {
                        front_end(&builder(n), gpu, p.uif, p.cflags).expect("feasible space")
                    });
                    let kernel = fe.specialize(p).expect("feasible space");
                    total += simulate(&kernel, n).expect("simulates").time_ms;
                    black_box(dynamic_mix(&kernel, n));
                }
            }
            total
        })
    });

    g.bench_function("frontend/indexed_resweep", |b| {
        b.iter_batched(
            || {
                let mut fes: HashMap<(u32, bool), FrontEnd> = HashMap::new();
                for p in space.iter() {
                    for &n in &sizes {
                        fes.entry((p.uif, p.cflags.fast_math)).or_insert_with(|| {
                            front_end(&builder(n), gpu, p.uif, p.cflags).expect("feasible space")
                        });
                    }
                }
                fes
            },
            |fes| {
                let mut total = 0.0f64;
                for p in space.iter() {
                    for &n in &sizes {
                        let fe = &fes[&(p.uif, p.cflags.fast_math)];
                        let kernel = fe.specialize(p).expect("feasible space");
                        total += simulate(&kernel, n).expect("simulates").time_ms;
                        black_box(dynamic_mix(&kernel, n));
                    }
                }
                total
            },
            BatchSize::SmallInput,
        )
    });

    // Per-phase microbenches over the space's distinct front-end keys
    // (UIF × fast-math): each isolates one stage of the front-end/
    // back-end pipeline, so a regression in `frontend/cold_index_build`
    // can be attributed without re-profiling. `phase_unroll` times the
    // source transformation, `phase_lower` the arena-interned lowering
    // with fused index construction, `phase_optimize` the dense-alias
    // peephole pass, and `phase_regalloc` the linear-scan estimator —
    // the same stages the `tune --stats` phase profiler reports.
    let phase_n = sizes[0];
    let phase_ast = builder(phase_n);
    let uifs = thinned_fig3_space().uif;
    let fast_maths = [false, true];
    g.bench_function("frontend/phase_unroll", |b| {
        b.iter(|| {
            for &uif in &uifs {
                black_box(oriole_codegen::unroll(black_box(&phase_ast), uif));
            }
        })
    });

    let unrolled: Vec<_> = uifs.iter().map(|&uif| oriole_codegen::unroll(&phase_ast, uif)).collect();
    g.bench_function("frontend/phase_lower", |b| {
        b.iter(|| {
            for ast in &unrolled {
                for &fast_math in &fast_maths {
                    black_box(lower_indexed(
                        black_box(ast),
                        gpu.family,
                        LowerOptions { fast_math },
                    ));
                }
            }
        })
    });

    let lowered: Vec<_> = unrolled
        .iter()
        .flat_map(|ast| {
            fast_maths
                .iter()
                .map(|&fast_math| lower_indexed(ast, gpu.family, LowerOptions { fast_math }).0)
        })
        .collect();
    g.bench_function("frontend/phase_optimize", |b| {
        b.iter(|| {
            for program in &lowered {
                black_box(oriole_codegen::peephole(black_box(program)));
            }
        })
    });

    g.bench_function("frontend/phase_regalloc", |b| {
        b.iter(|| {
            for program in &lowered {
                black_box(oriole_codegen::regalloc::allocate(
                    black_box(program),
                    gpu.regs_per_thread_max,
                ));
            }
        })
    });

    g.bench_function("cold/1thread", |b| {
        b.iter_batched(
            || Evaluator::new(&builder, gpu, &sizes),
            |evaluator| {
                space.iter().map(|p| evaluator.evaluate(p).time_ms).sum::<f64>()
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("cold/Nthreads", |b| {
        b.iter_batched(
            || Evaluator::new(&builder, gpu, &sizes),
            |evaluator| evaluator.evaluate_space(&space).len(),
            BatchSize::SmallInput,
        )
    });

    g.bench_function("warm/1thread", |b| {
        b.iter_batched(
            || {
                let evaluator = Evaluator::new(&builder, gpu, &sizes);
                evaluator.evaluate_space(&space);
                evaluator
            },
            |evaluator| {
                space.iter().map(|p| evaluator.evaluate(p).time_ms).sum::<f64>()
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("warm/Nthreads", |b| {
        b.iter_batched(
            || {
                let evaluator = Evaluator::new(&builder, gpu, &sizes);
                evaluator.evaluate_space(&space);
                evaluator
            },
            |evaluator| evaluator.evaluate_space(&space).len(),
            BatchSize::SmallInput,
        )
    });

    // The cross-sweep scenario the process-level ArtifactStore exists
    // for: an experiment driver runs the same (kernel, GPU, sizes) sweep
    // three times (e.g. an exhaustive pass plus two pruned re-sweeps,
    // as fig6 does). `fresh_per_sweep` is the old world — a throwaway
    // evaluator per sweep recomputes everything; `shared_store` borrows
    // tiers from one store, so sweeps 2 and 3 are pure cache hits. The
    // acceptance bar for this repo is shared_store ≥ 2× faster, with
    // bit-identical measurements (asserted in tests/store_reuse.rs).
    const SWEEPS: usize = 3;

    g.bench_function("sweeps/fresh_per_sweep", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..SWEEPS {
                let evaluator = Evaluator::new(&builder, gpu, &sizes);
                total += evaluator.evaluate_space(&space).len();
            }
            total
        })
    });

    g.bench_function("sweeps/shared_store", |b| {
        b.iter(|| {
            let store = ArtifactStore::new();
            let mut total = 0usize;
            for _ in 0..SWEEPS {
                let evaluator = store.evaluator("atax", &builder, gpu, &sizes);
                total += evaluator.evaluate_space(&space).len();
            }
            total
        })
    });

    // The persistent tier. `disk/cold_sweep_writethrough` is a first
    // run against an empty directory — every measurement is computed
    // and spilled; `disk/warm_from_disk_resweep` rebuilds the store
    // from scratch per iteration (a stand-in for a new process) and
    // serves the identical sweep purely from the on-disk artifact. The
    // acceptance bar: warm-from-disk ≥ 2× faster than cold (asserted
    // with measurements in tests/persist.rs; observable here).
    let (base, keep) = disk_base_dir();
    let cold_counter = AtomicUsize::new(0);
    g.bench_function("disk/cold_sweep_writethrough", |b| {
        b.iter_batched(
            || {
                let dir =
                    base.join(format!("cold-{}", cold_counter.fetch_add(1, Ordering::Relaxed)));
                let _ = std::fs::remove_dir_all(&dir);
                ArtifactStore::with_disk(&dir).expect("writable store dir")
            },
            |store| store.evaluator("atax", &builder, gpu, &sizes).evaluate_space(&space).len(),
            BatchSize::SmallInput,
        )
    });

    let warm_dir = base.join("warm");
    {
        // Populate once (or resume, under --store-dir).
        let store = ArtifactStore::with_disk(&warm_dir).expect("writable store dir");
        store.evaluator("atax", &builder, gpu, &sizes).evaluate_space(&space);
    }
    g.bench_function("disk/warm_from_disk_resweep", |b| {
        b.iter_batched(
            || ArtifactStore::with_disk(&warm_dir).expect("writable store dir"),
            |store| store.evaluator("atax", &builder, gpu, &sizes).evaluate_space(&space).len(),
            BatchSize::SmallInput,
        )
    });

    if !keep {
        let _ = std::fs::remove_dir_all(&base);
    }

    // The serving path (`oriole serve` / `--remote`): the same sweep
    // through a real TCP + framed-RPC boundary against an in-process
    // daemon. `service/remote_cold_sweep` spins a fresh daemon (empty
    // memory store) per iteration — the whole space is computed
    // server-side and every measurement crosses the wire; compared
    // against `cold/Nthreads` it prices the RPC + canonical-
    // serialization overhead of remote evaluation.
    let points: Vec<TuningParams> = space.iter().collect();
    let scope = EvalScope {
        kernel: "atax".to_string(),
        gpu: gpu.clone(),
        sizes: sizes.to_vec(),
        protocol: EvalProtocol::default(),
    };
    g.bench_function("service/remote_cold_sweep", |b| {
        b.iter_batched(
            || {
                let server =
                    Server::bind("127.0.0.1:0", ArtifactStore::new()).expect("bind loopback");
                let addr = server.local_addr().expect("local addr").to_string();
                let handle = std::thread::spawn(move || server.run().expect("serve"));
                let client = Client::connect(&addr).expect("connect");
                (client, handle)
            },
            |(client, handle)| {
                let served = client.evaluate(&scope, &points).expect("evaluate").1.len();
                client.shutdown().expect("shutdown");
                handle.join().expect("server thread");
                served
            },
            BatchSize::PerIteration,
        )
    });

    // `service/warm_shared_clients`: one long-lived daemon whose store
    // already holds the space, N concurrent client connections each
    // traversing all of it — the multi-tenant serving hot path (pure
    // tier hits plus framing), the scenario the sharded service
    // exists for.
    const CLIENTS: usize = 4;
    let server = Server::bind("127.0.0.1:0", ArtifactStore::new()).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let server_handle = std::thread::spawn(move || server.run().expect("serve"));
    Client::connect(&addr)
        .expect("connect")
        .evaluate(&scope, &points)
        .expect("warm the daemon store");
    g.bench_function("service/warm_shared_clients", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..CLIENTS)
                    .map(|_| {
                        s.spawn(|| {
                            let client = Client::connect(&addr).expect("connect");
                            client.evaluate(&scope, &points).expect("evaluate").1.len()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("client thread")).sum::<usize>()
            })
        })
    });
    Client::connect(&addr).expect("connect").shutdown().expect("shutdown");
    server_handle.join().expect("server thread");

    // `service/warm_gated_clients`: the same multi-tenant warm sweep
    // through a deliberately serialized admission gate
    // (`max_inflight: 1`). Against `warm_shared_clients` it prices the
    // fault-hardening layer itself: the condvar slot hand-off every
    // request now passes through, at its worst-case contention.
    let gated = ServeConfig { max_inflight: 1, ..ServeConfig::default() };
    let server = Server::bind_with("127.0.0.1:0", ArtifactStore::new(), gated)
        .expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let server_handle = std::thread::spawn(move || server.run().expect("serve"));
    Client::connect(&addr)
        .expect("connect")
        .evaluate(&scope, &points)
        .expect("warm the daemon store");
    g.bench_function("service/warm_gated_clients", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..CLIENTS)
                    .map(|_| {
                        s.spawn(|| {
                            let client = Client::connect(&addr).expect("connect");
                            client.evaluate(&scope, &points).expect("evaluate").1.len()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("client thread")).sum::<usize>()
            })
        })
    });
    Client::connect(&addr).expect("connect").shutdown().expect("shutdown");
    server_handle.join().expect("server thread");

    // The client-scaling curve on a warm daemon: N concurrent clients,
    // each sweeping the whole space, in two wire disciplines.
    // `service/scaling_seq/cN` is the pre-reactor client pattern — one
    // point per `evaluate` exchange, one exchange in flight per
    // connection — so the daemon's aggregate throughput is bounded by
    // per-client round-trip latency. `service/scaling_pipe/cN` sends
    // the same sweep through coalescing pipelined evaluators (64-point
    // frames, 8 in flight per connection). The PR's acceptance bar is
    // pipe ≥ 2× seq aggregate throughput at c64; the full 1→128 curve
    // lands in BENCH_eval.json.
    let big = ServeConfig { workers: 512, ..ServeConfig::default() };
    let server =
        Server::bind_with("127.0.0.1:0", ArtifactStore::new(), big).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let server_handle = std::thread::spawn(move || server.run().expect("serve"));
    Client::connect(&addr)
        .expect("connect")
        .evaluate(&scope, &points)
        .expect("warm the daemon store");
    {
        // Untimed bit-identity gate: the pipelined coalesced sweep and
        // the one-point-per-exchange sweep must agree byte-for-byte
        // before either is worth timing.
        let single = Client::connect(&addr).expect("connect");
        let one_at_a_time: Vec<_> = points
            .iter()
            .map(|&p| single.evaluate(&scope, &[p]).expect("evaluate").1.remove(0))
            .collect();
        let remote =
            RemoteEvaluator::new(Client::connect(&addr).expect("connect"), scope.clone());
        let piped = remote.evaluate_batch(&points).expect("pipelined sweep");
        assert!(remote.take_error().is_none());
        assert_eq!(piped, one_at_a_time, "pipelining must not change a single bit");
    }
    g.sample_size(3);
    for &n in &[1usize, 4, 16, 64, 128] {
        g.bench_function(format!("service/scaling_seq/c{n}"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..n)
                        .map(|_| {
                            s.spawn(|| {
                                let client = Client::connect(&addr).expect("connect");
                                let mut served = 0usize;
                                for &p in &points {
                                    served +=
                                        client.evaluate(&scope, &[p]).expect("evaluate").1.len();
                                }
                                served
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("client")).sum::<usize>()
                })
            })
        });
        g.bench_function(format!("service/scaling_pipe/c{n}"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..n)
                        .map(|_| {
                            s.spawn(|| {
                                let remote = RemoteEvaluator::new(
                                    Client::connect(&addr).expect("connect"),
                                    scope.clone(),
                                );
                                let got =
                                    remote.evaluate_batch(&points).expect("pipelined sweep");
                                assert!(remote.take_error().is_none());
                                got.len()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("client")).sum::<usize>()
                })
            })
        });
    }
    Client::connect(&addr).expect("connect").shutdown().expect("shutdown");
    server_handle.join().expect("server thread");

    // The fleet-scaling curve: the same warm sweep multiplexed across s
    // daemons by the work-stealing `FleetEvaluator`. Every daemon is
    // bound over a clone of ONE pre-warmed store (clones share tiers),
    // so each iteration measures pure fleet serving — scheduling,
    // stealing, and s-way RPC concurrency — not simulation. A fresh
    // evaluator per iteration keeps the client-side memo from absorbing
    // the sweep. The acceptance bar — s4 ≥ 2× s1 throughput — is gated
    // in CI on runners with ≥ 4 cores (the s1 sweep serializes client
    // and daemon work on one synchronous connection; the fleet overlaps
    // s of those pipelines, which needs real cores to show up). The
    // rows land in BENCH_eval.json as `fleet/scaling_s{1,2,4}`.
    // 32-point chunks give the 640-point sweep 20 steal granules —
    // perfect 4-way balance with per-RPC overhead still amortized.
    const FLEET_CHUNK: usize = 32;
    let fleet_store = ArtifactStore::new();
    let warm_times: Vec<f64> = {
        let evaluator = fleet_store.evaluator("atax", &builder, gpu, &sizes);
        evaluator.evaluate_space(&space);
        points.iter().map(|&p| evaluator.evaluate(p).time_ms).collect()
    };
    for &s in &[1usize, 2, 4] {
        let daemons: Vec<_> = (0..s)
            .map(|_| {
                let server =
                    Server::bind("127.0.0.1:0", fleet_store.clone()).expect("bind loopback");
                let addr = server.local_addr().expect("local addr").to_string();
                let handle = std::thread::spawn(move || server.run().expect("serve"));
                (addr, handle)
            })
            .collect();
        let spec = FleetSpec::from_addrs(daemons.iter().map(|(a, _)| a.clone()).collect())
            .expect("fleet spec");
        {
            // Untimed bit-identity gate: the fleet sweep must agree
            // with the local evaluator byte-for-byte before it is
            // worth timing.
            let fleet = FleetEvaluator::with_policy(
                spec.clone(),
                scope.clone(),
                RetryPolicy::default(),
                FLEET_CHUNK,
            );
            let got = fleet.eval_many(&points);
            assert!(fleet.take_error().is_none(), "fleet gate failed");
            assert_eq!(got.len(), warm_times.len());
            for (g_t, l_t) in got.iter().zip(&warm_times) {
                assert_eq!(g_t.to_bits(), l_t.to_bits(), "fleet sweep must match local bits");
            }
        }
        g.bench_function(format!("fleet/scaling_s{s}"), |b| {
            b.iter_batched(
                || {
                    FleetEvaluator::with_policy(
                        spec.clone(),
                        scope.clone(),
                        RetryPolicy::default(),
                        FLEET_CHUNK,
                    )
                },
                |fleet| {
                    let served = fleet.eval_many(&points).len();
                    assert!(fleet.take_error().is_none(), "fleet sweep failed mid-bench");
                    served
                },
                BatchSize::PerIteration,
            )
        });
        for (addr, handle) in daemons {
            Client::connect(&addr).expect("connect").shutdown().expect("shutdown");
            handle.join().expect("server thread");
        }
    }

    g.finish();
}

criterion_group!(benches, bench_eval_throughput);
criterion_main!(benches);
