//! Criterion bench: the occupancy calculator (Eqs. 1–5).
//!
//! The static-search module calls this for every candidate block size;
//! its cost bounds how cheaply the analyzer can prune.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oriole_arch::{occupancy, Gpu, OccupancyInput, ALL_GPUS};

fn bench_occupancy(c: &mut Criterion) {
    let mut g = c.benchmark_group("occupancy");
    for gpu in ALL_GPUS {
        g.bench_function(format!("single/{gpu}"), |b| {
            b.iter(|| {
                occupancy(
                    gpu.spec(),
                    black_box(OccupancyInput {
                        tc: 256,
                        regs_per_thread: 27,
                        smem_per_block: 3072,
                        shmem_per_mp: None,
                    }),
                )
            })
        });
    }
    // The analyzer's T* scan: every warp-multiple block size.
    g.bench_function("t_star_scan/K20", |b| {
        b.iter(|| oriole_core::suggest::full_occupancy_block_sizes(Gpu::K20.spec()))
    });
    g.finish();
}

criterion_group!(benches, bench_occupancy);
criterion_main!(benches);
