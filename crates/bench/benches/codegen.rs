//! Criterion bench: the compiler substrate — per-variant compilation
//! cost, which both exhaustive and static-pruned autotuning pay for every
//! candidate ("the model-based search space reduction does involve
//! generating and compiling the code versions", §IV-C).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oriole_arch::Gpu;
use oriole_codegen::{compile, regalloc, transform, TuningParams};
use oriole_ir::lower::{lower, LowerOptions};
use oriole_kernels::{KernelId, ALL_KERNELS};

fn bench_codegen(c: &mut Criterion) {
    let gpu = Gpu::K20.spec();
    let mut g = c.benchmark_group("codegen");

    for kid in ALL_KERNELS {
        let ast = kid.ast(kid.input_sizes()[2]);
        g.bench_function(format!("compile/{kid}"), |b| {
            b.iter(|| {
                compile(
                    black_box(&ast),
                    gpu,
                    TuningParams::with_geometry(128, 48),
                )
                .unwrap()
            })
        });
    }

    let ast = KernelId::Ex14Fj.ast(64);
    for uif in [1u32, 5] {
        g.bench_function(format!("unroll/ex14fj/u{uif}"), |b| {
            b.iter(|| transform::unroll(black_box(&ast), uif))
        });
    }
    let unrolled = transform::unroll(&ast, 5);
    let program = lower(&unrolled, oriole_arch::Family::Kepler, LowerOptions::default());
    g.bench_function("regalloc/ex14fj_u5", |b| {
        b.iter(|| regalloc::allocate(black_box(&program), 255))
    });
    g.bench_function("emit_disassembly/ex14fj_u5", |b| {
        b.iter(|| oriole_ir::text::emit(black_box(&program)))
    });
    g.finish();
}

criterion_group!(benches, bench_codegen);
criterion_main!(benches);
