//! Criterion bench: search strategies at a fixed evaluation budget —
//! the Fig. 6 cost story end-to-end, with real compile+simulate
//! evaluations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oriole_arch::Gpu;
use oriole_codegen::{compile, TuningParams};
use oriole_core::analyze;
use oriole_kernels::KernelId;
use oriole_tuner::{
    AnnealingSearch, Evaluator, ExhaustiveSearch, GeneticSearch, NelderMeadSearch, PruneLevel,
    RandomSearch, SearchSpace, Searcher, StaticSearch,
};

fn bench_search(c: &mut Criterion) {
    let gpu = Gpu::K20.spec();
    let kid = KernelId::Atax;
    let sizes = [128u64];
    let builder = move |n: u64| kid.ast(n);

    // A reduced space keeps exhaustive affordable inside a bench loop.
    let mut space = SearchSpace::tiny();
    space.tc = vec![64, 128, 256, 512, 768, 1024];
    space.bc = vec![24, 96, 192];
    let budget = 18;

    let mut g = c.benchmark_group("search");
    g.sample_size(10);

    macro_rules! bench_strategy {
        ($name:expr, $mk:expr) => {
            g.bench_function($name, |b| {
                b.iter_batched(
                    || Evaluator::new(&builder, gpu, &sizes),
                    |evaluator| {
                        let mut s = $mk;
                        s.search(&space, &evaluator, budget)
                    },
                    BatchSize::SmallInput,
                )
            });
        };
    }

    bench_strategy!("exhaustive_18pts", ExhaustiveSearch);
    bench_strategy!("random_18evals", RandomSearch { seed: 1 });
    bench_strategy!("anneal_18evals", AnnealingSearch { seed: 1, ..Default::default() });
    bench_strategy!("genetic_18evals", GeneticSearch { seed: 1, population: 6, ..Default::default() });
    bench_strategy!("neldermead_18evals", NelderMeadSearch { seed: 1, ..Default::default() });

    let probe = compile(&kid.ast(128), gpu, TuningParams::with_geometry(128, 48)).unwrap();
    let analysis = analyze(&probe, 128);
    g.bench_function("static_pruned_exhaustive", |b| {
        b.iter_batched(
            || Evaluator::new(&builder, gpu, &sizes),
            |evaluator| {
                let mut s = StaticSearch::new(analysis.clone(), PruneLevel::RuleBased);
                s.search(&space, &evaluator, usize::MAX)
            },
            BatchSize::SmallInput,
        )
    });
    // The pruning decision alone (what the analyzer adds per kernel).
    g.bench_function("static_analysis_probe", |b| {
        b.iter(|| analyze(&probe, 128))
    });
    g.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
