//! The Table II instruction-throughput model.
//!
//! Table II of the paper lists, for each of twelve operation categories
//! and each compute capability (SM20/SM35/SM52/SM60), the number of
//! operations a streaming multiprocessor can process per cycle (IPC). The
//! paper weights instruction mixes by the *reciprocal* of IPC — cycles per
//! instruction (CPI) — so a low-throughput operation contributes more to
//! predicted execution time (Eq. 6).

use crate::family::Family;
use std::fmt;

/// Coarse instruction class: the "Category" column of Table II collapsed
/// to the four buckets used by the instruction-mix metrics
/// (`O_fl`, `O_mem`, `O_ctrl`, `O_reg` in the paper's §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstrClass {
    /// Floating-point / arithmetic operations (`O_fl`).
    Flops,
    /// Memory operations: texture, load/store, surface (`O_mem`).
    Mem,
    /// Control operations: predicates, branches, moves (`O_ctrl`).
    Ctrl,
    /// Register-file operations (`O_reg`).
    Reg,
}

impl InstrClass {
    /// All four classes in mix-vector order.
    pub const ALL: [InstrClass; 4] = [
        InstrClass::Flops,
        InstrClass::Mem,
        InstrClass::Ctrl,
        InstrClass::Reg,
    ];
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrClass::Flops => "FLOPS",
            InstrClass::Mem => "MEM",
            InstrClass::Ctrl => "CTRL",
            InstrClass::Reg => "REG",
        };
        f.write_str(s)
    }
}

/// Operation category — one row of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// 32-bit floating point (add/mul/fma).
    FpIns32,
    /// 64-bit floating point.
    FpIns64,
    /// Integer/float compare, min, max.
    CompMinMax,
    /// Shift, bit extract, shuffle, sum-of-absolute-difference.
    ShiftShuffle,
    /// Conversions involving 64-bit types.
    Conv64,
    /// Conversions among 32-bit types.
    Conv32,
    /// Special functions: log, sin, cos, reciprocal, sqrt.
    LogSinCos,
    /// 32-bit integer add/sub.
    IntAdd32,
    /// Texture fetch instructions.
    TexIns,
    /// Global/local/shared load & store.
    LdStIns,
    /// Surface load/store.
    SurfIns,
    /// Predicate-setting instructions.
    PredIns,
    /// Control flow: branch, call, return, barrier.
    CtrlIns,
    /// Register-to-register moves.
    MoveIns,
    /// Register-file accesses.
    Regs,
}

/// Every [`OpClass`] in Table II row order.
pub const ALL_OP_CLASSES: [OpClass; 15] = [
    OpClass::FpIns32,
    OpClass::FpIns64,
    OpClass::CompMinMax,
    OpClass::ShiftShuffle,
    OpClass::Conv64,
    OpClass::Conv32,
    OpClass::LogSinCos,
    OpClass::IntAdd32,
    OpClass::TexIns,
    OpClass::LdStIns,
    OpClass::SurfIns,
    OpClass::PredIns,
    OpClass::CtrlIns,
    OpClass::MoveIns,
    OpClass::Regs,
];

impl OpClass {
    /// The coarse class ("Category" column of Table II).
    pub fn class(self) -> InstrClass {
        match self {
            OpClass::FpIns32
            | OpClass::FpIns64
            | OpClass::CompMinMax
            | OpClass::ShiftShuffle
            | OpClass::Conv64
            | OpClass::Conv32
            | OpClass::LogSinCos
            | OpClass::IntAdd32 => InstrClass::Flops,
            OpClass::TexIns | OpClass::LdStIns | OpClass::SurfIns => InstrClass::Mem,
            OpClass::PredIns | OpClass::CtrlIns | OpClass::MoveIns => InstrClass::Ctrl,
            OpClass::Regs => InstrClass::Reg,
        }
    }

    /// Table II row label.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::FpIns32 => "FPIns32",
            OpClass::FpIns64 => "FPIns64",
            OpClass::CompMinMax => "CompMinMax",
            OpClass::ShiftShuffle => "Shift/Extract/Shuffle/SAD",
            OpClass::Conv64 => "Conv64",
            OpClass::Conv32 => "Conv32",
            OpClass::LogSinCos => "LogSinCos",
            OpClass::IntAdd32 => "IntAdd32",
            OpClass::TexIns => "TexIns",
            OpClass::LdStIns => "LdStIns",
            OpClass::SurfIns => "SurfIns",
            OpClass::PredIns => "PredIns",
            OpClass::CtrlIns => "CtrlIns",
            OpClass::MoveIns => "MoveIns",
            OpClass::Regs => "Regs",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Instruction throughput for one compute capability — one column of
/// Table II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThroughputTable {
    family: Family,
    /// Operations per cycle per SM, indexed in [`ALL_OP_CLASSES`] order.
    ipc: [u32; 15],
}

impl ThroughputTable {
    /// The throughput column for a family's compute capability.
    pub fn for_family(family: Family) -> &'static ThroughputTable {
        match family {
            Family::Fermi => &SM20,
            Family::Kepler => &SM35,
            Family::Maxwell => &SM52,
            Family::Pascal => &SM60,
        }
    }

    /// Which family (column) this table describes.
    pub fn family(&self) -> Family {
        self.family
    }

    /// Instructions per cycle for an operation class (Table II cell).
    pub fn ipc(&self, op: OpClass) -> u32 {
        self.ipc[index_of(op)]
    }

    /// Cycles per instruction: the Eq. 6 weight, `1 / ipc`.
    pub fn cpi(&self, op: OpClass) -> f64 {
        1.0 / f64::from(self.ipc(op))
    }

    /// The representative CPI for a coarse class, used when only class
    /// totals are known (Eq. 6 with class-granularity mixes). We take the
    /// *throughput-weighted* convention of the paper's coefficients: the
    /// canonical member of each class (FP32 for FLOPS, load/store for MEM,
    /// control for CTRL, register file for REG).
    pub fn class_cpi(&self, class: InstrClass) -> f64 {
        let canonical = match class {
            InstrClass::Flops => OpClass::FpIns32,
            InstrClass::Mem => OpClass::LdStIns,
            InstrClass::Ctrl => OpClass::CtrlIns,
            InstrClass::Reg => OpClass::Regs,
        };
        self.cpi(canonical)
    }
}

fn index_of(op: OpClass) -> usize {
    ALL_OP_CLASSES
        .iter()
        .position(|&o| o == op)
        .expect("ALL_OP_CLASSES is exhaustive")
}

/// Table II, SM20 column (Fermi).
pub static SM20: ThroughputTable = ThroughputTable {
    family: Family::Fermi,
    ipc: [32, 16, 32, 16, 16, 16, 4, 32, 16, 16, 16, 16, 16, 32, 16],
};

/// Table II, SM35 column (Kepler).
pub static SM35: ThroughputTable = ThroughputTable {
    family: Family::Kepler,
    ipc: [192, 64, 160, 32, 8, 128, 32, 160, 32, 32, 32, 32, 32, 32, 32],
};

/// Table II, SM52 column (Maxwell).
pub static SM52: ThroughputTable = ThroughputTable {
    family: Family::Maxwell,
    ipc: [128, 4, 64, 64, 4, 32, 32, 64, 64, 64, 64, 64, 64, 32, 32],
};

/// Table II, SM60 column (Pascal).
pub static SM60: ThroughputTable = ThroughputTable {
    family: Family::Pascal,
    ipc: [64, 32, 32, 32, 16, 16, 16, 32, 16, 16, 16, 16, 16, 32, 16],
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_spot_checks() {
        // Row FPIns32: 32 / 192 / 128 / 64.
        assert_eq!(SM20.ipc(OpClass::FpIns32), 32);
        assert_eq!(SM35.ipc(OpClass::FpIns32), 192);
        assert_eq!(SM52.ipc(OpClass::FpIns32), 128);
        assert_eq!(SM60.ipc(OpClass::FpIns32), 64);
        // Row FPIns64: 16 / 64 / 4 / 32.
        assert_eq!(SM20.ipc(OpClass::FpIns64), 16);
        assert_eq!(SM35.ipc(OpClass::FpIns64), 64);
        assert_eq!(SM52.ipc(OpClass::FpIns64), 4);
        assert_eq!(SM60.ipc(OpClass::FpIns64), 32);
        // Row LogSinCos: 4 / 32 / 32 / 16.
        assert_eq!(SM20.ipc(OpClass::LogSinCos), 4);
        assert_eq!(SM35.ipc(OpClass::LogSinCos), 32);
        // Row LdStIns (Tex/LdSt/Surf share): 16 / 32 / 64 / 16.
        assert_eq!(SM20.ipc(OpClass::LdStIns), 16);
        assert_eq!(SM52.ipc(OpClass::SurfIns), 64);
        // Row MoveIns: 32 everywhere.
        for f in Family::ALL {
            assert_eq!(ThroughputTable::for_family(f).ipc(OpClass::MoveIns), 32);
        }
        // Row Regs: 16 / 32 / 32 / 16.
        assert_eq!(SM20.ipc(OpClass::Regs), 16);
        assert_eq!(SM35.ipc(OpClass::Regs), 32);
        assert_eq!(SM52.ipc(OpClass::Regs), 32);
        assert_eq!(SM60.ipc(OpClass::Regs), 16);
    }

    #[test]
    fn cpi_is_reciprocal_of_ipc() {
        for family in Family::ALL {
            let t = ThroughputTable::for_family(family);
            for &op in &ALL_OP_CLASSES {
                let ipc = t.ipc(op);
                assert!(ipc > 0, "{family} {op}");
                let product = t.cpi(op) * f64::from(ipc);
                assert!((product - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn class_assignment_matches_table_ii_category_column() {
        assert_eq!(OpClass::FpIns32.class(), InstrClass::Flops);
        assert_eq!(OpClass::IntAdd32.class(), InstrClass::Flops);
        assert_eq!(OpClass::LogSinCos.class(), InstrClass::Flops);
        assert_eq!(OpClass::TexIns.class(), InstrClass::Mem);
        assert_eq!(OpClass::LdStIns.class(), InstrClass::Mem);
        assert_eq!(OpClass::SurfIns.class(), InstrClass::Mem);
        assert_eq!(OpClass::PredIns.class(), InstrClass::Ctrl);
        assert_eq!(OpClass::CtrlIns.class(), InstrClass::Ctrl);
        assert_eq!(OpClass::MoveIns.class(), InstrClass::Ctrl);
        assert_eq!(OpClass::Regs.class(), InstrClass::Reg);
    }

    #[test]
    fn class_cpi_uses_canonical_member() {
        // On Kepler: FLOPS class CPI = 1/192, MEM = 1/32.
        assert!((SM35.class_cpi(InstrClass::Flops) - 1.0 / 192.0).abs() < 1e-12);
        assert!((SM35.class_cpi(InstrClass::Mem) - 1.0 / 32.0).abs() < 1e-12);
        assert!((SM35.class_cpi(InstrClass::Ctrl) - 1.0 / 32.0).abs() < 1e-12);
        assert!((SM35.class_cpi(InstrClass::Reg) - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn memory_ops_cost_at_least_as_much_as_fp32() {
        // The paper's premise: memory ops have lower or equal throughput
        // than FP32 arithmetic on every generation.
        for family in Family::ALL {
            let t = ThroughputTable::for_family(family);
            assert!(t.ipc(OpClass::LdStIns) <= t.ipc(OpClass::FpIns32), "{family}");
        }
    }
}
