//! # oriole-arch — GPU architecture models
//!
//! This crate is the architectural-constants substrate for the Oriole
//! autotuning framework, reproducing the hardware description used by
//! Lim, Norris & Malony, *"Autotuning GPU Kernels via Static and
//! Predictive Analysis"* (ICPP 2017):
//!
//! * [`GpuSpec`] carries every quantity in the paper's **Table I** for the
//!   four evaluation GPUs (Fermi M2050, Kepler K20, Maxwell M40, Pascal
//!   P100), plus the per-SM shared-memory capacity each family actually
//!   ships (needed by the occupancy shared-memory limiter, Eq. 5).
//! * [`ThroughputTable`] reproduces **Table II**: instruction throughput
//!   (operations per cycle per SM) for twelve operation classes across the
//!   four compute capabilities, and its reciprocal, cycles-per-instruction
//!   (CPI), which weights the instruction-mix execution-time model (Eq. 6).
//!
//! Nothing in this crate performs analysis; it only answers questions such
//! as "how many registers does one SM of a K20 have?" or "what is the CPI
//! of a 32-bit float op on compute capability 5.2?". Higher layers (the
//! occupancy calculator, the simulator, the predictive models) consume
//! these answers.
//!
//! ```
//! use oriole_arch::{Gpu, OpClass};
//!
//! let k20 = Gpu::K20.spec();
//! assert_eq!(k20.warps_per_mp, 64);
//! // FP32 operations issue at 192/cycle on Kepler (Table II, row 1):
//! assert_eq!(k20.throughput().ipc(OpClass::FpIns32), 192);
//! ```

#![warn(missing_docs)]

mod family;
mod limits;
pub mod occupancy;
mod spec;
pub mod table;
mod throughput;

pub use family::{ComputeCapability, Family};
pub use limits::{validate_launch, LaunchCheck, LaunchError};
pub use occupancy::{occupancy, Limiter, Occupancy, OccupancyInput};
pub use table::OccupancyTable;
pub use spec::{Gpu, GpuSpec, ALL_GPUS};
pub use throughput::{InstrClass, OpClass, ThroughputTable, ALL_OP_CLASSES};
