//! GPU architecture families and compute capabilities.

use std::fmt;

/// NVIDIA GPU architecture generation, as named in the last row of the
/// paper's Table I.
///
/// The family determines the compute capability targeted by the compiler
/// substrate and selects the column of the instruction-throughput table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// Fermi (compute capability 2.0) — the M2050 in the paper.
    Fermi,
    /// Kepler (compute capability 3.5) — the K20.
    Kepler,
    /// Maxwell (compute capability 5.2) — the M40.
    Maxwell,
    /// Pascal (compute capability 6.0) — the P100.
    Pascal,
}

impl Family {
    /// All families, in chronological (and Table I column) order.
    pub const ALL: [Family; 4] = [
        Family::Fermi,
        Family::Kepler,
        Family::Maxwell,
        Family::Pascal,
    ];

    /// Compute capability of the family's representative in Table I.
    pub fn compute_capability(self) -> ComputeCapability {
        match self {
            Family::Fermi => ComputeCapability::new(2, 0),
            Family::Kepler => ComputeCapability::new(3, 5),
            Family::Maxwell => ComputeCapability::new(5, 2),
            Family::Pascal => ComputeCapability::new(6, 0),
        }
    }

    /// Short label used in the paper's figures ("F", "K", "M", "P").
    pub fn letter(self) -> char {
        match self {
            Family::Fermi => 'F',
            Family::Kepler => 'K',
            Family::Maxwell => 'M',
            Family::Pascal => 'P',
        }
    }

    /// The `sm_xx` architecture string `nvcc -arch=` would receive.
    pub fn sm_arch(self) -> &'static str {
        match self {
            Family::Fermi => "sm_20",
            Family::Kepler => "sm_35",
            Family::Maxwell => "sm_52",
            Family::Pascal => "sm_60",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Family::Fermi => "Fermi",
            Family::Kepler => "Kepler",
            Family::Maxwell => "Maxwell",
            Family::Pascal => "Pascal",
        };
        f.write_str(name)
    }
}

/// CUDA compute capability (`cc` in the paper's notation), e.g. 3.5.
///
/// Ordered lexicographically on (major, minor) so version gates such as
/// "register allocation is per-warp from Kepler on" can be written as
/// simple comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComputeCapability {
    /// Major version (the architecture generation).
    pub major: u8,
    /// Minor version (the revision within a generation).
    pub minor: u8,
}

impl ComputeCapability {
    /// Creates a compute capability from major/minor parts.
    pub const fn new(major: u8, minor: u8) -> Self {
        Self { major, minor }
    }

    /// `major.minor` as a float, matching the paper's "CUDA capability"
    /// row (2, 3.5, 5.2, 6.0).
    pub fn as_f32(self) -> f32 {
        f32::from(self.major) + f32::from(self.minor) / 10.0
    }

    /// Whether register allocation on this capability is performed at warp
    /// granularity (Kepler and newer) rather than block granularity
    /// (Fermi). This distinction feeds the Eq. 4 register limiter.
    pub fn warp_granularity_regalloc(self) -> bool {
        self.major >= 3
    }
}

impl fmt::Display for ComputeCapability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_capabilities_match_table_i() {
        assert_eq!(Family::Fermi.compute_capability().as_f32(), 2.0);
        assert_eq!(Family::Kepler.compute_capability().as_f32(), 3.5);
        assert_eq!(Family::Maxwell.compute_capability().as_f32(), 5.2);
        assert_eq!(Family::Pascal.compute_capability().as_f32(), 6.0);
    }

    #[test]
    fn capability_ordering_is_chronological() {
        let ccs: Vec<_> = Family::ALL.iter().map(|f| f.compute_capability()).collect();
        let mut sorted = ccs.clone();
        sorted.sort();
        assert_eq!(ccs, sorted);
    }

    #[test]
    fn regalloc_granularity_gate() {
        assert!(!Family::Fermi.compute_capability().warp_granularity_regalloc());
        assert!(Family::Kepler.compute_capability().warp_granularity_regalloc());
        assert!(Family::Pascal.compute_capability().warp_granularity_regalloc());
    }

    #[test]
    fn letters_and_arch_strings() {
        assert_eq!(Family::Fermi.letter(), 'F');
        assert_eq!(Family::Maxwell.sm_arch(), "sm_52");
        let letters: Vec<_> = Family::ALL.iter().map(|f| f.letter()).collect();
        assert_eq!(letters, vec!['F', 'K', 'M', 'P']);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Family::Kepler.to_string(), "Kepler");
        assert_eq!(ComputeCapability::new(5, 2).to_string(), "5.2");
    }
}
