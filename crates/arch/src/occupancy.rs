//! Mechanical occupancy calculation.
//!
//! This module implements the resource-limit arithmetic of the CUDA
//! Occupancy Calculator — the quantity the paper formalizes as
//! Eqs. 1–5. It lives in `oriole-arch` because both the simulator (to
//! know how many blocks an SM can host) and the static analyzer (to
//! attribute limiters and suggest parameters, `oriole-core`) need it.
//!
//! Deviations from the paper's printed formulas are intentional and
//! documented in DESIGN.md §1: we use the standard calculator algorithm
//! (floor semantics, CC-specific register-allocation granularity), which
//! reproduces the paper's own Table VII occupancy values where the
//! printed equations do not.

use crate::family::Family;
use crate::spec::GpuSpec;

/// Resource inputs of the occupancy calculation — the paper's
/// user-superscript quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyInput {
    /// `T_u` — threads per block.
    pub tc: u32,
    /// `R_u` — registers per thread (0 = compiler-chosen minimum; the
    /// calculator then assumes no register constraint, Eq. 4 case 3).
    pub regs_per_thread: u32,
    /// `S_u` — shared memory per block, bytes (0 = none, Eq. 5 case 3).
    pub smem_per_block: u32,
    /// Effective shared memory per SM, when the L1/shared split (`PL`)
    /// reduces it below the device default. `None` = device default.
    pub shmem_per_mp: Option<u32>,
}

impl OccupancyInput {
    /// Input with only a block size (no register/shared pressure).
    pub fn of_block(tc: u32) -> Self {
        Self { tc, regs_per_thread: 0, smem_per_block: 0, shmem_per_mp: None }
    }
}

/// Which resource capped the active-block count (Eq. 1's argmin).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// Warp/thread capacity (`G_ψW`, Eq. 3) or the raw block-slot limit.
    Warps,
    /// Register file (`G_ψR`, Eq. 4).
    Registers,
    /// Shared memory (`G_ψS`, Eq. 5).
    SharedMem,
    /// The configuration is illegal (zero blocks fit).
    Illegal,
}

/// Result of the occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// `B*_mp` — active blocks per SM (Eq. 1).
    pub active_blocks: u32,
    /// `W*_mp` — active warps per SM (block-quantized).
    pub active_warps: u32,
    /// `occ_mp` — active warps over the device maximum (Eq. 2).
    pub occupancy: f64,
    /// The binding resource.
    pub limiter: Limiter,
    /// Block limit imposed by warp capacity (Eq. 3).
    pub blocks_by_warps: u32,
    /// Block limit imposed by registers (Eq. 4); `u32::MAX` when
    /// unconstrained.
    pub blocks_by_regs: u32,
    /// Block limit imposed by shared memory (Eq. 5); `u32::MAX` when
    /// unconstrained.
    pub blocks_by_smem: u32,
    /// Register-limited warp capacity *before* block quantization —
    /// the ratio the paper reports as `occ*` in Table VII.
    pub warp_limit_by_regs: u32,
}

/// Rounds `v` up to a multiple of `unit`.
fn ceil_to(v: u32, unit: u32) -> u32 {
    if unit == 0 {
        return v;
    }
    v.div_ceil(unit) * unit
}

/// Shared-memory allocation granularity per family (bytes).
pub(crate) fn smem_alloc_unit(family: Family) -> u32 {
    match family {
        Family::Fermi => 128,
        _ => 256,
    }
}

/// Computes occupancy for `input` on `spec`.
pub fn occupancy(spec: &GpuSpec, input: OccupancyInput) -> Occupancy {
    let warps_per_block = spec.warps_per_block(input.tc);
    let illegal = |limiter: Limiter| Occupancy {
        active_blocks: 0,
        active_warps: 0,
        occupancy: 0.0,
        limiter,
        blocks_by_warps: 0,
        blocks_by_regs: 0,
        blocks_by_smem: 0,
        warp_limit_by_regs: 0,
    };

    if input.tc == 0 || input.tc > spec.threads_per_block {
        return illegal(Limiter::Illegal);
    }
    if input.regs_per_thread > spec.regs_per_thread_max {
        // Eq. 4 case 1: illegal register request.
        return illegal(Limiter::Registers);
    }
    if input.smem_per_block > spec.shmem_per_block {
        // Eq. 5 case 1: illegal shared-memory request.
        return illegal(Limiter::SharedMem);
    }

    // Eq. 3: block limit from warp capacity (and raw block slots).
    let blocks_by_warps = spec.blocks_per_mp.min(spec.warps_per_mp / warps_per_block);

    // Eq. 4: block limit from the register file.
    let (blocks_by_regs, warp_limit_by_regs) = if input.regs_per_thread == 0 {
        (u32::MAX, spec.warps_per_mp)
    } else {
        let cc = spec.compute_capability;
        if cc.warp_granularity_regalloc() {
            // Kepler+: registers allocate per warp, rounded to R^cc_B.
            let regs_per_warp =
                ceil_to(input.regs_per_thread * spec.threads_per_warp, spec.reg_alloc_unit);
            let warps = spec.regfile_per_mp / regs_per_warp;
            (warps / warps_per_block, warps.min(spec.warps_per_mp))
        } else {
            // Fermi: registers allocate per block, rounded to R^cc_B.
            let regs_per_block = ceil_to(
                input.regs_per_thread * spec.threads_per_warp * warps_per_block,
                spec.reg_alloc_unit,
            );
            let blocks = spec.regfile_per_mp / regs_per_block;
            // Warp-granular capacity for the Table VII-style ratio.
            let regs_per_warp =
                ceil_to(input.regs_per_thread * spec.threads_per_warp, spec.reg_alloc_unit);
            let warps = spec.regfile_per_mp / regs_per_warp;
            (blocks, warps.min(spec.warps_per_mp))
        }
    };

    // Eq. 5: block limit from shared memory.
    let shmem_per_mp = input.shmem_per_mp.unwrap_or(spec.shmem_per_mp);
    let blocks_by_smem = if input.smem_per_block == 0 {
        u32::MAX
    } else {
        let per_block = ceil_to(input.smem_per_block, smem_alloc_unit(spec.family));
        shmem_per_mp / per_block
    };

    // Eq. 1: the argmin.
    let active_blocks = blocks_by_warps.min(blocks_by_regs).min(blocks_by_smem);
    let limiter = if active_blocks == blocks_by_smem && blocks_by_smem < blocks_by_warps.min(blocks_by_regs) {
        Limiter::SharedMem
    } else if active_blocks == blocks_by_regs && blocks_by_regs < blocks_by_warps {
        Limiter::Registers
    } else if active_blocks > 0 {
        Limiter::Warps
    } else {
        // Zero blocks with no single resource below the others can only
        // mean the warp path zeroed out (oversized block), which the
        // guards above already rejected — keep the attribution total.
        if blocks_by_smem == 0 {
            Limiter::SharedMem
        } else if blocks_by_regs == 0 {
            Limiter::Registers
        } else {
            Limiter::Warps
        }
    };
    let active_warps = active_blocks.saturating_mul(warps_per_block).min(spec.warps_per_mp);
    Occupancy {
        active_blocks,
        active_warps,
        occupancy: f64::from(active_warps) / f64::from(spec.warps_per_mp),
        limiter,
        blocks_by_warps,
        blocks_by_regs,
        blocks_by_smem,
        warp_limit_by_regs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Gpu;

    #[test]
    fn unconstrained_full_occupancy_block_sizes() {
        // Kepler: 64 warps/SM, ≤16 blocks → TC ∈ {128, 256, 512, 1024}
        // reach occupancy 1 with no other pressure (paper Table VII).
        let spec = Gpu::K20.spec();
        for tc in [128u32, 256, 512, 1024] {
            let o = occupancy(spec, OccupancyInput::of_block(tc));
            assert_eq!(o.occupancy, 1.0, "TC={tc}");
            assert_eq!(o.limiter, Limiter::Warps);
        }
        // TC=64 → needs 32 blocks, only 16 slots → 32 warps → 0.5.
        let o = occupancy(spec, OccupancyInput::of_block(64));
        assert_eq!(o.active_blocks, 16);
        assert_eq!(o.occupancy, 0.5);
    }

    #[test]
    fn fermi_full_occupancy_block_sizes_match_table_vii() {
        // Fermi T* = {192, 256, 384, 512, 768}: exactly the block sizes
        // whose warp counts divide 48 within 8 block slots.
        let spec = Gpu::M2050.spec();
        for tc in [192u32, 256, 384, 512, 768] {
            let o = occupancy(spec, OccupancyInput::of_block(tc));
            assert_eq!(o.occupancy, 1.0, "TC={tc}");
        }
        for tc in [32u32, 64, 128, 1024] {
            let o = occupancy(spec, OccupancyInput::of_block(tc));
            assert!(o.occupancy < 1.0, "TC={tc} unexpectedly reaches 1.0");
        }
    }

    #[test]
    fn register_limited_warp_ratios_match_table_vii() {
        // Fermi BiCG: 27 regs → ceil64(27·32)=896 → ⌊32768/896⌋=36 warps
        // → 36/48 = 0.75 (paper occ* = .75).
        let spec = Gpu::M2050.spec();
        let o = occupancy(
            spec,
            OccupancyInput { tc: 192, regs_per_thread: 27, smem_per_block: 0, shmem_per_mp: None },
        );
        assert_eq!(o.warp_limit_by_regs, 36);
        assert!((f64::from(o.warp_limit_by_regs) / 48.0 - 0.75).abs() < 1e-12);

        // Fermi ex14FJ: 30 regs → ⌊32768/960⌋=34 warps → .71.
        let o = occupancy(
            spec,
            OccupancyInput { tc: 192, regs_per_thread: 30, smem_per_block: 0, shmem_per_mp: None },
        );
        assert_eq!(o.warp_limit_by_regs, 34);
        assert!((f64::from(o.warp_limit_by_regs) / 48.0 - 0.708).abs() < 0.01);
    }

    #[test]
    fn kepler_register_headroom_matches_table_vii() {
        // Kepler ATAX [27 : 5]: at 27 regs full occupancy holds; the
        // max register count preserving 64 warps is 32 (headroom 5).
        let spec = Gpu::K20.spec();
        for regs in [27u32, 32] {
            let o = occupancy(
                spec,
                OccupancyInput {
                    tc: 256,
                    regs_per_thread: regs,
                    smem_per_block: 0,
                    shmem_per_mp: None,
                },
            );
            assert_eq!(o.occupancy, 1.0, "regs={regs}");
        }
        let o = occupancy(
            spec,
            OccupancyInput { tc: 256, regs_per_thread: 33, smem_per_block: 0, shmem_per_mp: None },
        );
        assert!(o.occupancy < 1.0, "33 regs must break full occupancy");
    }

    #[test]
    fn shared_memory_limits_blocks() {
        let spec = Gpu::K20.spec();
        // 12 KiB/block → ⌊48K/12K⌋ = 4 blocks → with TC=256 (8 warps),
        // 32 warps → 0.5.
        let o = occupancy(
            spec,
            OccupancyInput {
                tc: 256,
                regs_per_thread: 0,
                smem_per_block: 12 * 1024,
                shmem_per_mp: None,
            },
        );
        assert_eq!(o.active_blocks, 4);
        assert_eq!(o.limiter, Limiter::SharedMem);
        assert_eq!(o.occupancy, 0.5);
    }

    #[test]
    fn l1_split_reduces_shared_capacity() {
        // Kepler with PreferL1 (48K L1) leaves 16K shared: a 12 KiB/block
        // kernel fits only one block.
        let spec = Gpu::K20.spec();
        let o = occupancy(
            spec,
            OccupancyInput {
                tc: 256,
                regs_per_thread: 0,
                smem_per_block: 12 * 1024,
                shmem_per_mp: Some(16 * 1024),
            },
        );
        assert_eq!(o.active_blocks, 1);
    }

    #[test]
    fn illegal_inputs_zero_occupancy() {
        let spec = Gpu::M2050.spec();
        // Eq. 4 case 1: >63 regs on Fermi.
        let o = occupancy(
            spec,
            OccupancyInput { tc: 256, regs_per_thread: 64, smem_per_block: 0, shmem_per_mp: None },
        );
        assert_eq!(o.active_blocks, 0);
        assert_eq!(o.limiter, Limiter::Registers);
        // Eq. 5 case 1: >48 KiB shared.
        let o = occupancy(
            spec,
            OccupancyInput {
                tc: 256,
                regs_per_thread: 0,
                smem_per_block: 50 * 1024,
                shmem_per_mp: None,
            },
        );
        assert_eq!(o.limiter, Limiter::SharedMem);
        // Zero or oversized block.
        assert_eq!(occupancy(spec, OccupancyInput::of_block(0)).limiter, Limiter::Illegal);
        assert_eq!(occupancy(spec, OccupancyInput::of_block(2048)).limiter, Limiter::Illegal);
    }

    #[test]
    fn occupancy_monotone_in_resource_generosity() {
        // More registers per thread can never increase occupancy.
        let spec = Gpu::M40.spec();
        let mut prev = f64::INFINITY;
        for regs in [0u32, 16, 32, 64, 128, 255] {
            let o = occupancy(
                spec,
                OccupancyInput {
                    tc: 256,
                    regs_per_thread: regs,
                    smem_per_block: 0,
                    shmem_per_mp: None,
                },
            );
            assert!(o.occupancy <= prev, "regs={regs}");
            prev = o.occupancy;
        }
    }

    #[test]
    fn odd_block_sizes_round_to_warps() {
        let spec = Gpu::P100.spec();
        // 33 threads occupy 2 warps.
        let o = occupancy(spec, OccupancyInput::of_block(33));
        assert_eq!(o.active_blocks, 32);
        assert_eq!(o.active_warps, 64);
    }
}
