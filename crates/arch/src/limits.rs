//! Launch-configuration validation against hardware limits.
//!
//! The occupancy equations (Eqs. 4 and 5) have explicit "illegal input"
//! cases: a user-declared register count beyond `R^cc_T`, or shared memory
//! beyond `S^cc_B`, yields zero allocable blocks. This module centralizes
//! those checks so the compiler substrate, the analyzer, and the tuner all
//! agree on what constitutes a launchable configuration.

use crate::spec::GpuSpec;
use std::fmt;

/// A reason a launch configuration is invalid on a given GPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Block size of zero threads.
    ZeroThreads,
    /// Block size exceeds `T^cc_B` (1024 on all Table I GPUs).
    TooManyThreads {
        /// Requested threads per block.
        requested: u32,
        /// Hardware maximum.
        max: u32,
    },
    /// Registers per thread exceed `R^cc_T` — Eq. 4 case 1.
    TooManyRegisters {
        /// Requested registers per thread.
        requested: u32,
        /// Hardware maximum.
        max: u32,
    },
    /// Shared memory per block exceeds `S^cc_B` — Eq. 5 case 1.
    TooMuchSharedMem {
        /// Requested bytes per block.
        requested: u32,
        /// Hardware maximum.
        max: u32,
    },
    /// Grid with zero blocks.
    ZeroBlocks,
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::ZeroThreads => write!(f, "block size must be at least one thread"),
            LaunchError::TooManyThreads { requested, max } => {
                write!(f, "block size {requested} exceeds device maximum {max}")
            }
            LaunchError::TooManyRegisters { requested, max } => {
                write!(f, "{requested} registers/thread exceeds device maximum {max}")
            }
            LaunchError::TooMuchSharedMem { requested, max } => {
                write!(f, "{requested} B shared memory/block exceeds device maximum {max}")
            }
            LaunchError::ZeroBlocks => write!(f, "grid must contain at least one block"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// A launch configuration to validate: the user-supplied (`u`-superscript)
/// quantities of the paper's occupancy inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchCheck {
    /// `T_u` — threads per block.
    pub threads_per_block: u32,
    /// Number of blocks in the grid.
    pub blocks: u32,
    /// `R_u` — registers per thread (0 = "let the compiler decide",
    /// Eq. 4 case 3).
    pub regs_per_thread: u32,
    /// `S_u` — shared memory per block in bytes (0 = none, Eq. 5 case 3).
    pub shmem_per_block: u32,
}

/// Validates a launch configuration against a device's hard limits.
///
/// Returns all violations, not just the first, so callers can report a
/// complete diagnosis (the CLI prints each).
pub fn validate_launch(spec: &GpuSpec, check: LaunchCheck) -> Result<(), Vec<LaunchError>> {
    let mut errors = Vec::new();
    if check.threads_per_block == 0 {
        errors.push(LaunchError::ZeroThreads);
    } else if check.threads_per_block > spec.threads_per_block {
        errors.push(LaunchError::TooManyThreads {
            requested: check.threads_per_block,
            max: spec.threads_per_block,
        });
    }
    if check.blocks == 0 {
        errors.push(LaunchError::ZeroBlocks);
    }
    if check.regs_per_thread > spec.regs_per_thread_max {
        errors.push(LaunchError::TooManyRegisters {
            requested: check.regs_per_thread,
            max: spec.regs_per_thread_max,
        });
    }
    if check.shmem_per_block > spec.shmem_per_block {
        errors.push(LaunchError::TooMuchSharedMem {
            requested: check.shmem_per_block,
            max: spec.shmem_per_block,
        });
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Gpu;

    fn ok_launch() -> LaunchCheck {
        LaunchCheck {
            threads_per_block: 256,
            blocks: 64,
            regs_per_thread: 32,
            shmem_per_block: 4096,
        }
    }

    #[test]
    fn valid_launch_passes_everywhere() {
        for gpu in crate::spec::ALL_GPUS {
            assert!(validate_launch(gpu.spec(), ok_launch()).is_ok(), "{gpu}");
        }
    }

    #[test]
    fn zero_threads_rejected() {
        let mut launch = ok_launch();
        launch.threads_per_block = 0;
        let errs = validate_launch(Gpu::K20.spec(), launch).unwrap_err();
        assert!(errs.contains(&LaunchError::ZeroThreads));
    }

    #[test]
    fn register_limit_is_cc_specific() {
        // 100 regs/thread is legal on Kepler (max 255) but illegal on
        // Fermi (max 63) — Eq. 4 case 1.
        let mut launch = ok_launch();
        launch.regs_per_thread = 100;
        assert!(validate_launch(Gpu::K20.spec(), launch).is_ok());
        let errs = validate_launch(Gpu::M2050.spec(), launch).unwrap_err();
        assert_eq!(
            errs,
            vec![LaunchError::TooManyRegisters { requested: 100, max: 63 }]
        );
    }

    #[test]
    fn shared_memory_limit() {
        let mut launch = ok_launch();
        launch.shmem_per_block = 49_153;
        for gpu in crate::spec::ALL_GPUS {
            let errs = validate_launch(gpu.spec(), launch).unwrap_err();
            assert!(matches!(errs[0], LaunchError::TooMuchSharedMem { .. }), "{gpu}");
        }
    }

    #[test]
    fn multiple_violations_all_reported() {
        let launch = LaunchCheck {
            threads_per_block: 2048,
            blocks: 0,
            regs_per_thread: 999,
            shmem_per_block: 99_999,
        };
        let errs = validate_launch(Gpu::P100.spec(), launch).unwrap_err();
        assert_eq!(errs.len(), 4);
    }

    #[test]
    fn errors_display_cleanly() {
        let msg = LaunchError::TooManyRegisters { requested: 300, max: 255 }.to_string();
        assert!(msg.contains("300") && msg.contains("255"));
    }
}
