//! The Table I GPU database.

use crate::family::{ComputeCapability, Family};
use crate::throughput::ThroughputTable;
use std::fmt;

/// The four GPUs used in the paper's experiments (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gpu {
    /// Tesla M2050 (Fermi, cc 2.0).
    M2050,
    /// Tesla K20 (Kepler, cc 3.5).
    K20,
    /// Tesla M40 (Maxwell, cc 5.2).
    M40,
    /// Tesla P100 (Pascal, cc 6.0).
    P100,
}

/// All four evaluation GPUs in Table I column order.
pub const ALL_GPUS: [Gpu; 4] = [Gpu::M2050, Gpu::K20, Gpu::M40, Gpu::P100];

impl Gpu {
    /// The full hardware description for this GPU.
    pub fn spec(self) -> &'static GpuSpec {
        match self {
            Gpu::M2050 => &M2050,
            Gpu::K20 => &K20,
            Gpu::M40 => &M40,
            Gpu::P100 => &P100,
        }
    }

    /// The GPU of a given architecture family (Table I has exactly one
    /// representative per family).
    pub fn of_family(family: Family) -> Gpu {
        match family {
            Family::Fermi => Gpu::M2050,
            Family::Kepler => Gpu::K20,
            Family::Maxwell => Gpu::M40,
            Family::Pascal => Gpu::P100,
        }
    }

    /// Looks a GPU up by its marketing name (`"K20"`), family name
    /// (`"Kepler"`), or single-letter figure label (`"K"`);
    /// case-insensitive.
    pub fn parse(name: &str) -> Option<Gpu> {
        let lower = name.trim().to_ascii_lowercase();
        let gpu = match lower.as_str() {
            "m2050" | "fermi" | "f" => Gpu::M2050,
            "k20" | "kepler" | "k" => Gpu::K20,
            "m40" | "maxwell" | "m" => Gpu::M40,
            "p100" | "pascal" | "p" => Gpu::P100,
            _ => return None,
        };
        Some(gpu)
    }
}

impl fmt::Display for Gpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// Hardware description of one GPU: every row of the paper's Table I plus
/// the per-SM shared-memory capacity (needed by Eq. 5 but omitted from the
/// printed table — see DESIGN.md §1).
///
/// Field names follow the paper's symbols where one exists; each doc
/// comment states the symbol.
///
/// `Eq`/`Hash` are structural over every field, so a spec clone can key
/// process-level caches without relying on `&'static` pointer identity —
/// synthetic and custom devices participate on equal footing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GpuSpec {
    /// Marketing name ("M2050", "K20", "M40", "P100").
    pub name: &'static str,
    /// Architecture family (final row of Table I).
    pub family: Family,
    /// `cc` — CUDA compute capability.
    pub compute_capability: ComputeCapability,
    /// Global memory in MiB.
    pub global_mem_mib: u32,
    /// `mp` — number of streaming multiprocessors.
    pub multiprocessors: u32,
    /// CUDA cores per multiprocessor.
    pub cores_per_mp: u32,
    /// GPU core clock in MHz.
    pub gpu_clock_mhz: u32,
    /// Memory clock in MHz.
    pub mem_clock_mhz: u32,
    /// L2 cache size in bytes.
    pub l2_cache_bytes: u64,
    /// Constant memory in bytes.
    pub const_mem_bytes: u32,
    /// `S^cc_B` — maximum shared memory per block, bytes.
    pub shmem_per_block: u32,
    /// `S^cc_mp` — shared memory per multiprocessor, bytes (not printed in
    /// Table I; family datasheet value).
    pub shmem_per_mp: u32,
    /// `R^cc_fs` — register file size per multiprocessor (32-bit regs).
    pub regfile_per_mp: u32,
    /// `W_B` — warp size in threads (32 on all four GPUs).
    pub warp_size: u32,
    /// `T^cc_mp` — maximum resident threads per multiprocessor.
    pub threads_per_mp: u32,
    /// `T^cc_B` — maximum threads per block.
    pub threads_per_block: u32,
    /// `B^cc_mp` — maximum resident blocks per multiprocessor.
    pub blocks_per_mp: u32,
    /// `T^cc_W` — threads per warp (identical to `warp_size`; the paper
    /// lists both, so we carry both).
    pub threads_per_warp: u32,
    /// `W^cc_mp` — maximum resident warps per multiprocessor.
    pub warps_per_mp: u32,
    /// `R^cc_B` — register allocation granularity (registers are allocated
    /// in units of this size).
    pub reg_alloc_unit: u32,
    /// `R^cc_T` — maximum registers per thread.
    pub regs_per_thread_max: u32,
}

impl GpuSpec {
    /// Total CUDA cores (`multiprocessors * cores_per_mp`), the "CUDA
    /// cores" row of Table I.
    pub fn total_cores(&self) -> u32 {
        self.multiprocessors * self.cores_per_mp
    }

    /// The Table II throughput model for this GPU's compute capability.
    pub fn throughput(&self) -> &'static ThroughputTable {
        ThroughputTable::for_family(self.family)
    }

    /// Warps needed to hold `threads` threads: `ceil(threads / T^cc_W)`.
    /// This is the paper's `W_B` for a user block size `T_u`.
    pub fn warps_per_block(&self, threads: u32) -> u32 {
        threads.div_ceil(self.threads_per_warp)
    }

    /// Maximum resident threads across the whole device.
    pub fn max_resident_threads(&self) -> u32 {
        self.threads_per_mp * self.multiprocessors
    }

    /// Peak single-precision GFLOP/s assuming one FMA (2 flops) per core
    /// per cycle — a coarse roofline anchor used by reports.
    pub fn peak_gflops_fp32(&self) -> f64 {
        2.0 * f64::from(self.total_cores()) * f64::from(self.gpu_clock_mhz) / 1000.0
    }
}

impl fmt::Display for GpuSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, cc {}, {} SMs, {} cores)",
            self.name,
            self.family,
            self.compute_capability,
            self.multiprocessors,
            self.total_cores()
        )
    }
}

/// Tesla M2050 (Fermi) — Table I column 1.
pub static M2050: GpuSpec = GpuSpec {
    name: "M2050",
    family: Family::Fermi,
    compute_capability: ComputeCapability::new(2, 0),
    global_mem_mib: 3072,
    multiprocessors: 14,
    cores_per_mp: 32,
    gpu_clock_mhz: 1147,
    mem_clock_mhz: 1546,
    l2_cache_bytes: 786_432,
    const_mem_bytes: 65_536,
    shmem_per_block: 49_152,
    shmem_per_mp: 49_152,
    regfile_per_mp: 32_768,
    warp_size: 32,
    threads_per_mp: 1536,
    threads_per_block: 1024,
    blocks_per_mp: 8,
    threads_per_warp: 32,
    warps_per_mp: 48,
    reg_alloc_unit: 64,
    regs_per_thread_max: 63,
};

/// Tesla K20 (Kepler) — Table I column 2.
pub static K20: GpuSpec = GpuSpec {
    name: "K20",
    family: Family::Kepler,
    compute_capability: ComputeCapability::new(3, 5),
    global_mem_mib: 11_520,
    multiprocessors: 13,
    cores_per_mp: 192,
    gpu_clock_mhz: 824,
    mem_clock_mhz: 2505,
    l2_cache_bytes: 1_572_864,
    const_mem_bytes: 65_536,
    shmem_per_block: 49_152,
    shmem_per_mp: 49_152,
    regfile_per_mp: 65_536,
    warp_size: 32,
    threads_per_mp: 2048,
    threads_per_block: 1024,
    blocks_per_mp: 16,
    threads_per_warp: 32,
    warps_per_mp: 64,
    reg_alloc_unit: 256,
    regs_per_thread_max: 255,
};

/// Tesla M40 (Maxwell) — Table I column 3.
pub static M40: GpuSpec = GpuSpec {
    name: "M40",
    family: Family::Maxwell,
    compute_capability: ComputeCapability::new(5, 2),
    global_mem_mib: 12_288,
    multiprocessors: 24,
    cores_per_mp: 128,
    gpu_clock_mhz: 1140,
    mem_clock_mhz: 5000,
    l2_cache_bytes: 3_145_728,
    const_mem_bytes: 65_536,
    shmem_per_block: 49_152,
    shmem_per_mp: 98_304,
    regfile_per_mp: 65_536,
    warp_size: 32,
    threads_per_mp: 2048,
    threads_per_block: 1024,
    blocks_per_mp: 32,
    threads_per_warp: 32,
    warps_per_mp: 64,
    reg_alloc_unit: 256,
    regs_per_thread_max: 255,
};

/// Tesla P100 (Pascal) — Table I column 4.
pub static P100: GpuSpec = GpuSpec {
    name: "P100",
    family: Family::Pascal,
    compute_capability: ComputeCapability::new(6, 0),
    global_mem_mib: 17_066,
    multiprocessors: 56,
    cores_per_mp: 64,
    gpu_clock_mhz: 405,
    mem_clock_mhz: 715,
    l2_cache_bytes: 4_194_304,
    const_mem_bytes: 65_536,
    shmem_per_block: 49_152,
    shmem_per_mp: 65_536,
    regfile_per_mp: 65_536,
    warp_size: 32,
    threads_per_mp: 2048,
    threads_per_block: 1024,
    blocks_per_mp: 32,
    threads_per_warp: 32,
    warps_per_mp: 64,
    reg_alloc_unit: 256,
    regs_per_thread_max: 255,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_total_cores() {
        // "CUDA cores" row: 448, 2496, 3072, 3584.
        assert_eq!(Gpu::M2050.spec().total_cores(), 448);
        assert_eq!(Gpu::K20.spec().total_cores(), 2496);
        assert_eq!(Gpu::M40.spec().total_cores(), 3072);
        assert_eq!(Gpu::P100.spec().total_cores(), 3584);
    }

    #[test]
    fn table_i_resident_limits() {
        let fermi = Gpu::M2050.spec();
        assert_eq!(fermi.threads_per_mp, 1536);
        assert_eq!(fermi.warps_per_mp, 48);
        assert_eq!(fermi.blocks_per_mp, 8);
        assert_eq!(fermi.regfile_per_mp, 32_768);
        assert_eq!(fermi.reg_alloc_unit, 64);
        assert_eq!(fermi.regs_per_thread_max, 63);

        for gpu in [Gpu::K20, Gpu::M40, Gpu::P100] {
            let s = gpu.spec();
            assert_eq!(s.threads_per_mp, 2048, "{}", s.name);
            assert_eq!(s.warps_per_mp, 64, "{}", s.name);
            assert_eq!(s.regfile_per_mp, 65_536, "{}", s.name);
            assert_eq!(s.reg_alloc_unit, 256, "{}", s.name);
            assert_eq!(s.regs_per_thread_max, 255, "{}", s.name);
        }
        assert_eq!(Gpu::K20.spec().blocks_per_mp, 16);
        assert_eq!(Gpu::M40.spec().blocks_per_mp, 32);
        assert_eq!(Gpu::P100.spec().blocks_per_mp, 32);
    }

    #[test]
    fn warp_invariants() {
        for gpu in ALL_GPUS {
            let s = gpu.spec();
            assert_eq!(s.warp_size, 32);
            assert_eq!(s.threads_per_warp, s.warp_size);
            // Resident-warp and resident-thread limits must agree.
            assert_eq!(s.threads_per_mp, s.warps_per_mp * s.warp_size, "{}", s.name);
            assert_eq!(s.shmem_per_block, 49_152, "{}", s.name);
            assert_eq!(s.const_mem_bytes, 65_536, "{}", s.name);
            // Per-SM shared memory can never be smaller than per-block.
            assert!(s.shmem_per_mp >= s.shmem_per_block, "{}", s.name);
        }
    }

    #[test]
    fn warps_per_block_rounds_up() {
        let s = Gpu::K20.spec();
        assert_eq!(s.warps_per_block(1), 1);
        assert_eq!(s.warps_per_block(32), 1);
        assert_eq!(s.warps_per_block(33), 2);
        assert_eq!(s.warps_per_block(1024), 32);
    }

    #[test]
    fn lookup_by_family_and_name() {
        for family in Family::ALL {
            assert_eq!(Gpu::of_family(family).spec().family, family);
        }
        assert_eq!(Gpu::parse("k20"), Some(Gpu::K20));
        assert_eq!(Gpu::parse("Maxwell"), Some(Gpu::M40));
        assert_eq!(Gpu::parse(" P "), Some(Gpu::P100));
        assert_eq!(Gpu::parse("Volta"), None);
    }

    #[test]
    fn display_is_informative() {
        let text = Gpu::K20.spec().to_string();
        assert!(text.contains("K20") && text.contains("Kepler") && text.contains("3.5"));
    }

    #[test]
    fn peak_flops_sane() {
        // M2050: 448 cores * 1.147 GHz * 2 = ~1028 GFLOP/s.
        let gf = Gpu::M2050.spec().peak_gflops_fp32();
        assert!((gf - 1027.7).abs() < 1.0, "{gf}");
    }
}
