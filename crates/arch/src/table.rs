//! Device-scoped memoized occupancy table.
//!
//! [`occupancy`](crate::occupancy::occupancy) is pure arithmetic, but the
//! simulator runs it once per trial batch and the analyzer's suggestion
//! loops probe it hundreds of times per kernel. Its *effective* input
//! domain per device is tiny once quantized: the block size only acts
//! through its warp count, shared memory only through its
//! allocation-granule count, and the L1/shared split takes at most a few
//! values per family. [`OccupancyTable`] exploits exactly that
//! quantization to memoize results per device — a service a
//! model context holds for the lifetime of a device.
//!
//! Lookups are **bit-identical** to the direct calculator: quantization
//! only merges inputs the calculator itself cannot distinguish
//! (property- and exhaustively tested, including the Kepler/Fermi
//! L1-split cases).

use crate::occupancy::{occupancy, smem_alloc_unit, Occupancy, OccupancyInput};
use crate::spec::GpuSpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Quantized occupancy-table key: everything the calculator can actually
/// distinguish for legal inputs on a fixed device.
///
/// * the block size acts only through `ceil(tc / warp)` — warps per block;
/// * registers per thread enter the Eq. 4 rounding directly (the rounding
///   depends on the warp count on Fermi, so registers are *not* folded
///   into granules here);
/// * shared memory acts only through its granule-rounded footprint
///   (Eq. 5 rounds to the family allocation unit before dividing);
/// * the effective per-SM shared capacity (the `PL` split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TableKey {
    warps_per_block: u32,
    regs_per_thread: u32,
    smem_rounded: u32,
    /// `u32::MAX` encodes "device default" (`shmem_per_mp: None`).
    shmem_per_mp: u32,
}

/// Shard count: occupancy lookups come from every evaluation worker, so
/// spread the read-mostly maps over a few locks.
const SHARDS: usize = 8;

/// A per-device memo of the occupancy calculation over its quantized
/// input domain.
///
/// Constructed once per device (typically owned by a model context) and
/// shared by reference; lookups populate lazily and concurrently.
#[derive(Debug)]
pub struct OccupancyTable {
    spec: GpuSpec,
    shards: Vec<RwLock<HashMap<TableKey, Occupancy>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl OccupancyTable {
    /// Creates an empty table for `spec` (the spec is captured by value,
    /// so the table works for synthetic devices too).
    pub fn new(spec: &GpuSpec) -> OccupancyTable {
        OccupancyTable {
            spec: spec.clone(),
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The device this table serves.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The quantized key for `input`, or `None` when the input is
    /// illegal (illegal inputs produce constant results and bypass the
    /// table).
    fn key(&self, input: OccupancyInput) -> Option<TableKey> {
        let spec = &self.spec;
        if input.tc == 0
            || input.tc > spec.threads_per_block
            || input.regs_per_thread > spec.regs_per_thread_max
            || input.smem_per_block > spec.shmem_per_block
        {
            return None;
        }
        let unit = smem_alloc_unit(spec.family);
        let smem_rounded = if input.smem_per_block == 0 {
            0
        } else {
            input.smem_per_block.div_ceil(unit) * unit
        };
        Some(TableKey {
            warps_per_block: spec.warps_per_block(input.tc),
            regs_per_thread: input.regs_per_thread,
            smem_rounded,
            shmem_per_mp: input.shmem_per_mp.unwrap_or(u32::MAX),
        })
    }

    /// The occupancy for `input`, computed at most once per quantized
    /// key. Bit-identical to `occupancy(self.spec(), input)`.
    pub fn lookup(&self, input: OccupancyInput) -> Occupancy {
        let Some(key) = self.key(input) else {
            // Illegal inputs short-circuit in the calculator; don't
            // spend table entries on them.
            return occupancy(&self.spec, input);
        };
        let shard = &self.shards[(key.warps_per_block as usize
            ^ key.regs_per_thread as usize
            ^ key.smem_rounded as usize)
            % SHARDS];
        if let Some(hit) = shard.read().expect("occupancy table lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *hit;
        }
        // Compute outside the write lock: the calculation is trivial
        // arithmetic, so racing threads recomputing beats blocking
        // (unlike the evaluation memos, which dedup in-flight work).
        let computed = occupancy(&self.spec, input);
        let mut map = shard.write().expect("occupancy table lock");
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                // A racer inserted first; this lookup was served by the
                // table all the same. Keeps `misses == len()` exact.
                self.hits.fetch_add(1, Ordering::Relaxed);
                *e.get()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                *v.insert(computed)
            }
        }
    }

    /// Distinct quantized keys materialized so far.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().expect("occupancy table lock").len()).sum()
    }

    /// Whether any entry has been materialized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction (legal inputs only; illegal
    /// inputs bypass the table and count as neither).
    pub fn counters(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Gpu, ALL_GPUS};

    #[test]
    fn lookup_matches_direct_calculator() {
        for gpu in ALL_GPUS {
            let spec = gpu.spec();
            let table = OccupancyTable::new(spec);
            for tc in [0u32, 1, 31, 32, 33, 96, 128, 256, 1024, 2048] {
                for regs in [0u32, 1, 27, 63, 64, 255, 300] {
                    for smem in [0u32, 1, 128, 4096, 49_152, 49_153] {
                        for shmem in [None, Some(16 * 1024), Some(48 * 1024)] {
                            let input = OccupancyInput {
                                tc,
                                regs_per_thread: regs,
                                smem_per_block: smem,
                                shmem_per_mp: shmem,
                            };
                            assert_eq!(
                                table.lookup(input),
                                occupancy(spec, input),
                                "{gpu} {input:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn quantization_merges_indistinguishable_inputs() {
        // 33..=64 threads are all two warps; 1..=256 B shared all round
        // to one Kepler granule. Each family of inputs fills one key.
        let table = OccupancyTable::new(Gpu::K20.spec());
        for tc in 33..=64 {
            for smem in [1u32, 100, 256] {
                table.lookup(OccupancyInput {
                    tc,
                    regs_per_thread: 32,
                    smem_per_block: smem,
                    shmem_per_mp: None,
                });
            }
        }
        assert_eq!(table.len(), 1, "quantized domain should collapse to one entry");
        let (hits, misses) = table.counters();
        assert_eq!(misses, 1);
        assert_eq!(hits, 32 * 3 - 1);
    }

    #[test]
    fn illegal_inputs_bypass_the_table() {
        let table = OccupancyTable::new(Gpu::M2050.spec());
        let bad = OccupancyInput {
            tc: 256,
            regs_per_thread: 64, // > Fermi cap
            smem_per_block: 0,
            shmem_per_mp: None,
        };
        assert_eq!(table.lookup(bad), occupancy(Gpu::M2050.spec(), bad));
        assert!(table.is_empty());
        assert_eq!(table.counters(), (0, 0));
    }

    #[test]
    fn concurrent_lookups_agree() {
        let table = OccupancyTable::new(Gpu::P100.spec());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for tc in (32..=1024).step_by(32) {
                        let input = OccupancyInput::of_block(tc);
                        assert_eq!(table.lookup(input), occupancy(Gpu::P100.spec(), input));
                    }
                });
            }
        });
        assert_eq!(table.len(), 32);
        // Miss counting stays exact under racing cold lookups: a racer
        // that loses the insert counts as a (served-from-table) hit.
        let (hits, misses) = table.counters();
        assert_eq!(misses as usize, table.len());
        assert_eq!(hits + misses, 8 * 32);
    }
}
