//! Register-pressure estimation: the `ptxas` allocator stand-in.
//!
//! The occupancy model (Eq. 4) and the paper's Table VII suggestions key
//! off a single number — registers per thread — that in the real
//! toolchain only `ptxas` knows. We estimate it with a linear-scan
//! live-interval analysis over the lowered program:
//!
//! * virtual registers get intervals `[def, last use]` in linear
//!   instruction order;
//! * values live across a loop's body (used after a back edge region)
//!   are extended to the loop end, as a rotating allocator would keep
//!   them resident;
//! * peak overlap plus a fixed system reserve (thread-index registers,
//!   parameter pointers, ABI scratch) is the reported figure;
//! * demand beyond the per-thread architectural cap spills: each
//!   overflowed register becomes 4 bytes of local memory, which the
//!   simulator charges as extra global-latency traffic.

use oriole_ir::{BlockId, Program, Terminator};

/// Registers the ABI reserves outside allocatable program values
/// (thread/block indices, parameter base pointers, stack pointer).
pub const SYSTEM_RESERVED_REGS: u32 = 8;

/// Result of register allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegAllocation {
    /// Registers per thread reported to occupancy (`R_u`), capped at the
    /// architectural maximum.
    pub regs_per_thread: u32,
    /// Uncapped demand (diagnostics; equals `regs_per_thread` when no
    /// spilling occurred).
    pub demand: u32,
    /// Bytes of local memory per thread holding spilled values.
    pub spill_bytes: u32,
}

/// Runs the estimator against `program` for a device allowing
/// `max_regs_per_thread` registers (Table I `R^cc_T`).
pub fn allocate(program: &Program, max_regs_per_thread: u32) -> RegAllocation {
    crate::profile::time(crate::profile::Phase::Regalloc, || {
        let demand = SYSTEM_RESERVED_REGS + peak_pressure(program);
        if demand <= max_regs_per_thread {
            RegAllocation { regs_per_thread: demand, demand, spill_bytes: 0 }
        } else {
            let spilled = demand - max_regs_per_thread;
            RegAllocation {
                regs_per_thread: max_regs_per_thread,
                demand,
                spill_bytes: spilled * 4,
            }
        }
    })
}

/// Sentinel for registers never seen in the program.
const UNSEEN: usize = usize::MAX;

/// Peak number of simultaneously live virtual registers in linear order.
fn peak_pressure(program: &Program) -> u32 {
    // Dense def/last-use position maps indexed by register number —
    // lowering assigns small dense ids, so a flat Vec beats hashing.
    let nregs = program
        .blocks
        .iter()
        .flat_map(|b| &b.instrs)
        .flat_map(|i| i.def().into_iter().chain(i.uses()))
        .map(|r| r.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut def_pos = vec![UNSEEN; nregs];
    let mut last_use = vec![UNSEEN; nregs];
    // Linear positions of every instruction; block boundaries are
    // positions too, so empty blocks don't collapse intervals.
    let mut block_span: Vec<(usize, usize)> = Vec::with_capacity(program.blocks.len());
    let mut pos = 0usize;
    for block in &program.blocks {
        let start = pos;
        for instr in &block.instrs {
            if let Some(d) = instr.def() {
                let r = d.0 as usize;
                if def_pos[r] == UNSEEN {
                    def_pos[r] = pos;
                }
                // A def is also the start of its own liveness.
                if last_use[r] == UNSEEN {
                    last_use[r] = pos;
                }
            }
            for u in instr.uses() {
                let r = u.0 as usize;
                last_use[r] = pos;
                // Uses of registers never defined (parser input) start
                // life at first sight.
                if def_pos[r] == UNSEEN {
                    def_pos[r] = pos;
                }
            }
            pos += 1;
        }
        pos += 1; // terminator slot
        block_span.push((start, pos - 1));
    }

    // Loop-carried extension: a value defined before a loop and used
    // inside it stays live through the whole loop body (the back edge
    // re-enters). Extend last_use to the latch position.
    let extend = |last_use: &mut [usize], body_start: usize, latch_end: usize| {
        for (def, lu) in def_pos.iter().zip(last_use.iter_mut()) {
            // Live range touches the loop body → extend to latch.
            if *def != UNSEEN && *def < body_start && *lu >= body_start && *lu < latch_end {
                *lu = latch_end;
            }
        }
    };
    for (i, block) in program.blocks.iter().enumerate() {
        if let Terminator::LoopBack { target, .. } = &block.term {
            let latch_end = block_span[i].1;
            let body_start = block_span[target.0 as usize].0;
            extend(&mut last_use, body_start, latch_end);
        }
        if let Terminator::CondBranch { taken, fallthrough, .. } = &block.term {
            // Back edge expressed as a plain conditional branch (e.g.
            // parsed listings): same extension.
            for t in [taken, fallthrough] {
                if back_edge(program, BlockId(i as u32), *t) {
                    let latch_end = block_span[i].1;
                    let body_start = block_span[t.0 as usize].0;
                    extend(&mut last_use, body_start, latch_end);
                }
            }
        }
    }

    // Sweep: +1 at def, −1 after last use.
    let mut events: Vec<(usize, i32)> = Vec::with_capacity(nregs * 2);
    for (def, lu) in def_pos.iter().zip(last_use.iter()) {
        if *def == UNSEEN {
            continue;
        }
        events.push((*def, 1));
        events.push((lu + 1, -1));
    }
    events.sort_unstable();
    let mut live = 0i32;
    let mut peak = 0i32;
    for (_, delta) in events {
        live += delta;
        peak = peak.max(live);
    }
    peak.max(0) as u32
}

/// Whether `to` precedes `from` in block order (a backward edge).
fn back_edge(_program: &Program, from: BlockId, to: BlockId) -> bool {
    to <= from
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Family;
    use oriole_ir::lower::{lower, LowerOptions};
    use oriole_ir::{AccessPattern, AluOp, KernelAst, Loop, MemSpace, SizeExpr, Stmt, TripCount};

    fn alloc_for(body: Vec<Stmt>, cap: u32) -> RegAllocation {
        let mut k = KernelAst::new("ra");
        k.body = body;
        let p = lower(&k, Family::Kepler, LowerOptions::default());
        allocate(&p, cap)
    }

    #[test]
    fn small_kernel_uses_few_registers() {
        let a = alloc_for(vec![Stmt::ops(AluOp::AddF32, 1)], 255);
        assert!(a.regs_per_thread >= SYSTEM_RESERVED_REGS);
        assert!(a.regs_per_thread < 24, "{a:?}");
        assert_eq!(a.spill_bytes, 0);
    }

    #[test]
    fn unrolling_increases_pressure() {
        let base = Loop {
            trip: TripCount::Size(SizeExpr::N),
            unrollable: true,
            body: vec![
                Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1),
                Stmt::load(MemSpace::Global, AccessPattern::Broadcast, 1),
                Stmt::ops(AluOp::FmaF32, 1),
            ],
        };
        let mut k = KernelAst::new("u");
        k.body = vec![Stmt::Loop(base)];
        let mut prev = 0;
        for u in [1u32, 2, 4, 8] {
            let unrolled = crate::transform::unroll(&k, u);
            let p = lower(&unrolled, Family::Kepler, LowerOptions::default());
            let a = allocate(&p, 255);
            assert!(
                a.regs_per_thread >= prev,
                "u={u}: {} < {prev}",
                a.regs_per_thread
            );
            prev = a.regs_per_thread;
        }
        // Monotone and actually grew overall.
        let p1 = lower(&crate::transform::unroll(&k, 1), Family::Kepler, LowerOptions::default());
        let p8 = lower(&crate::transform::unroll(&k, 8), Family::Kepler, LowerOptions::default());
        assert!(allocate(&p8, 255).regs_per_thread > allocate(&p1, 255).regs_per_thread);
    }

    #[test]
    fn cap_produces_spills() {
        // Force demand above a tiny cap.
        let body = vec![Stmt::ops(AluOp::FmaF32, 40)];
        let a = alloc_for(body, 10);
        assert_eq!(a.regs_per_thread, 10);
        assert!(a.demand > 10);
        assert_eq!(a.spill_bytes, (a.demand - 10) * 4);
    }

    #[test]
    fn fermi_cap_spills_before_kepler() {
        // A register-hungry unrolled kernel can exceed Fermi's 63-reg cap
        // while fitting in Kepler's 255.
        let inner = Loop {
            trip: TripCount::Size(SizeExpr::N),
            unrollable: true,
            body: vec![
                Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 4),
                Stmt::ops(AluOp::FmaF32, 4),
            ],
        };
        let mut k = KernelAst::new("hungry");
        k.body = vec![Stmt::Loop(inner)];
        let unrolled = crate::transform::unroll(&k, 8);
        let p = lower(&unrolled, Family::Fermi, LowerOptions::default());
        let fermi = allocate(&p, 63);
        let kepler = allocate(&p, 255);
        assert!(fermi.demand == kepler.demand);
        assert!(fermi.spill_bytes >= kepler.spill_bytes);
    }

    #[test]
    fn kernels_land_in_realistic_register_band() {
        // Paper Table V "Allocated" column: 13–32 registers across the
        // four kernels at UIF=1.
        for kid in oriole_kernels::ALL_KERNELS {
            let ast = kid.ast(128);
            let p = lower(&ast, Family::Kepler, LowerOptions::default());
            let a = allocate(&p, 255);
            assert!(
                (10..=48).contains(&a.regs_per_thread),
                "{kid}: {} regs",
                a.regs_per_thread
            );
        }
    }
}
