//! Source-level transformations: loop unrolling.
//!
//! Orio's `UIF` parameter unrolls the innermost loops of the annotated C
//! kernel before CUDA generation. Unrolling by `u` has two effects this
//! module reproduces at the AST level:
//!
//! 1. **Loop overhead drops.** The transformed loop runs `⌈trips/u⌉`
//!    iterations, so induction updates, exit tests and branches execute
//!    `u×` less often.
//! 2. **Register pressure grows.** A real scheduler interleaves the
//!    unrolled copies — all loads first, then arithmetic, then stores —
//!    so `u` loaded values are live simultaneously. We perform the same
//!    reorder (load hoisting), which the register allocator then observes
//!    as longer live ranges.
//!
//! Loops whose [`Loop::unrollable`](oriole_ir::Loop) flag is false (grid-stride drivers,
//! reduction trees with barriers) are left untouched, as Orio's
//! annotations restrict unrolling to the innermost compute loops.

use oriole_ir::{KernelAst, Loop, SizeExpr, Stmt, TripCount};

/// Applies unroll-and-interleave with factor `u` to every unrollable loop
/// of the kernel. `u = 1` returns the AST unchanged.
pub fn unroll(ast: &KernelAst, u: u32) -> KernelAst {
    if u <= 1 {
        return ast.clone();
    }
    let mut scratch = UnrollScratch::default();
    let mut out = ast.clone();
    out.body = unroll_stmts(&out.body, u, &mut scratch);
    out
}

/// Scratch buffers for [`interleave_copies`], reused across every loop
/// body of one `unroll` walk so the interleave classification never
/// re-allocates per body. Buffers are always drained back to empty
/// before returning, so reuse cannot leak statements across bodies.
#[derive(Default)]
struct UnrollScratch {
    loads: Vec<Stmt>,
    ops: Vec<Stmt>,
    stores: Vec<Stmt>,
}

fn unroll_stmts(stmts: &[Stmt], u: u32, scratch: &mut UnrollScratch) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Loop(l) => Stmt::Loop(unroll_loop(l, u, scratch)),
            Stmt::If(b) => {
                let mut nb = b.clone();
                nb.then_body = unroll_stmts(&b.then_body, u, scratch);
                nb.else_body = unroll_stmts(&b.else_body, u, scratch);
                Stmt::If(nb)
            }
            other => other.clone(),
        })
        .collect()
}

fn unroll_loop(l: &Loop, u: u32, scratch: &mut UnrollScratch) -> Loop {
    if !l.unrollable {
        // Recurse: inner loops may still be unrollable.
        return Loop {
            trip: l.trip,
            unrollable: false,
            body: unroll_stmts(&l.body, u, scratch),
        };
    }
    // Only straight-line bodies are interleaved; bodies with nested
    // control flow are duplicated in sequence (classic unrolling without
    // scheduling).
    let straight_line = l
        .body
        .iter()
        .all(|s| matches!(s, Stmt::Op(_) | Stmt::Load(_) | Stmt::Store(_)));
    let new_trip = divide_trip(l.trip, u);
    let body = if straight_line {
        interleave_copies(&l.body, u, scratch)
    } else {
        let inner = unroll_stmts(&l.body, u, scratch);
        let mut out = Vec::with_capacity(inner.len() * u as usize);
        for _ in 0..u {
            out.extend(inner.iter().cloned());
        }
        out
    };
    Loop { trip: new_trip, unrollable: true, body }
}

/// `⌈trips/u⌉`, symbolically.
fn divide_trip(trip: TripCount, u: u32) -> TripCount {
    let uf = f64::from(u);
    match trip {
        TripCount::Const(c) => TripCount::Const(c.div_ceil(u64::from(u))),
        TripCount::Size(s) => TripCount::Size(SizeExpr::new(s.coeff / uf, s.power)),
        TripCount::GridStride(s) => TripCount::GridStride(SizeExpr::new(s.coeff / uf, s.power)),
        TripCount::BlockShare(s) => TripCount::BlockShare(SizeExpr::new(s.coeff / uf, s.power)),
    }
}

/// Schedules `u` copies of a straight-line body as loads → ops → stores,
/// modeling the software pipelining a real scheduler performs on unrolled
/// iterations.
fn interleave_copies(body: &[Stmt], u: u32, scratch: &mut UnrollScratch) -> Vec<Stmt> {
    debug_assert!(
        scratch.loads.is_empty() && scratch.ops.is_empty() && scratch.stores.is_empty(),
        "scratch must be drained between bodies"
    );
    for _ in 0..u {
        for s in body {
            match s {
                Stmt::Load(_) => scratch.loads.push(s.clone()),
                Stmt::Store(_) => scratch.stores.push(s.clone()),
                _ => scratch.ops.push(s.clone()),
            }
        }
    }
    let mut out =
        Vec::with_capacity(scratch.loads.len() + scratch.ops.len() + scratch.stores.len());
    out.append(&mut scratch.loads);
    out.append(&mut scratch.ops);
    out.append(&mut scratch.stores);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_ir::{AccessPattern, AluOp, MemSpace};

    fn dot_loop(trips: TripCount, unrollable: bool) -> Loop {
        Loop {
            trip: trips,
            unrollable,
            body: vec![
                Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1),
                Stmt::ops(AluOp::FmaF32, 1),
                Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
            ],
        }
    }

    fn ast_with(l: Loop) -> KernelAst {
        let mut k = KernelAst::new("t");
        k.body = vec![Stmt::Loop(l)];
        k
    }

    #[test]
    fn factor_one_is_identity() {
        let k = ast_with(dot_loop(TripCount::Size(SizeExpr::N), true));
        assert_eq!(unroll(&k, 1), k);
        assert_eq!(unroll(&k, 0), k);
    }

    #[test]
    fn unroll_divides_trip_and_duplicates_body() {
        let k = ast_with(dot_loop(TripCount::Size(SizeExpr::N), true));
        let u4 = unroll(&k, 4);
        let Stmt::Loop(l) = &u4.body[0] else { panic!() };
        // N/4 iterations.
        assert_eq!(l.trip.eval(128, 1, 1), 32.0);
        // 3 stmts × 4 copies.
        assert_eq!(l.body.len(), 12);
        // Interleaved: all loads first, all stores last.
        assert!(matches!(l.body[0], Stmt::Load(_)));
        assert!(matches!(l.body[3], Stmt::Load(_)));
        assert!(matches!(l.body[4], Stmt::Op(_)));
        assert!(matches!(l.body[11], Stmt::Store(_)));
    }

    #[test]
    fn const_trip_rounds_up() {
        let k = ast_with(dot_loop(TripCount::Const(10), true));
        let u4 = unroll(&k, 4);
        let Stmt::Loop(l) = &u4.body[0] else { panic!() };
        assert_eq!(l.trip, TripCount::Const(3));
    }

    #[test]
    fn non_unrollable_loops_untouched_but_recursed() {
        let inner = dot_loop(TripCount::Size(SizeExpr::N), true);
        let outer = Loop {
            trip: TripCount::GridStride(SizeExpr::N),
            unrollable: false,
            body: vec![Stmt::Loop(inner)],
        };
        let k = ast_with(outer);
        let u2 = unroll(&k, 2);
        let Stmt::Loop(o) = &u2.body[0] else { panic!() };
        // Outer trip unchanged.
        assert_eq!(o.trip, TripCount::GridStride(SizeExpr::N));
        // Inner loop unrolled.
        let Stmt::Loop(i) = &o.body[0] else { panic!() };
        assert_eq!(i.body.len(), 6);
        assert_eq!(i.trip.eval(64, 1, 1), 32.0);
    }

    #[test]
    fn total_work_preserved() {
        // trips × body-ops invariant: N iterations of 1 FMA = N/u of u.
        let k = ast_with(dot_loop(TripCount::Size(SizeExpr::N), true));
        for u in [1u32, 2, 4, 5] {
            let uk = unroll(&k, u);
            let Stmt::Loop(l) = &uk.body[0] else { panic!() };
            let fmas_per_iter = l
                .body
                .iter()
                .filter(|s| matches!(s, Stmt::Op(o) if o.op == AluOp::FmaF32))
                .count() as f64;
            let total = l.trip.eval(640, 1, 1) * fmas_per_iter;
            assert_eq!(total, 640.0, "u={u}");
        }
    }

    #[test]
    fn branch_bodies_are_recursed() {
        let mut k = KernelAst::new("b");
        k.body = vec![Stmt::If(oriole_ir::Branch {
            divergence: oriole_ir::DivergenceKind::Uniform,
            taken_fraction: 0.5,
            then_body: vec![Stmt::Loop(dot_loop(TripCount::Const(8), true))],
            else_body: vec![],
        })];
        let u2 = unroll(&k, 2);
        let Stmt::If(b) = &u2.body[0] else { panic!() };
        let Stmt::Loop(l) = &b.then_body[0] else { panic!() };
        assert_eq!(l.trip, TripCount::Const(4));
        assert_eq!(l.body.len(), 6);
    }
}
