//! Tuning parameters: the Table III / Fig. 3 feature space.

use oriole_arch::GpuSpec;
use std::fmt;

/// Preferred L1/shared-memory split (the `PL` parameter, in KiB of L1).
///
/// Fermi through Kepler expose `cudaFuncCachePreferL1` /
/// `PreferShared`; Orio's spec sweeps `PL ∈ {16, 48}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PreferredL1 {
    /// 16 KiB L1, 48 KiB shared memory (`cudaFuncCachePreferShared`).
    #[default]
    Kb16,
    /// 48 KiB L1, 16 KiB shared memory (`cudaFuncCachePreferL1`).
    Kb48,
}

impl PreferredL1 {
    /// L1 capacity in bytes.
    pub fn l1_bytes(self) -> u32 {
        match self {
            PreferredL1::Kb16 => 16 * 1024,
            PreferredL1::Kb48 => 48 * 1024,
        }
    }

    /// Parses the Orio spec values 16 / 48.
    pub fn from_kb(kb: u32) -> Option<PreferredL1> {
        match kb {
            16 => Some(PreferredL1::Kb16),
            48 => Some(PreferredL1::Kb48),
            _ => None,
        }
    }

    /// The spec value in KiB.
    pub fn kb(self) -> u32 {
        self.l1_bytes() / 1024
    }
}

/// Compiler flags (the `CFLAGS` parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CompilerFlags {
    /// `-use_fast_math`: approximate div/sqrt/exp/log/sin sequences.
    pub fast_math: bool,
}

impl fmt::Display for CompilerFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.fast_math {
            f.write_str("-use_fast_math")
        } else {
            f.write_str("''")
        }
    }
}

/// One point in the Orio tuning space (Fig. 3's `performance_params`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TuningParams {
    /// `TC` — threads per block (32–1024, step 32 in the paper's spec).
    pub tc: u32,
    /// `BC` — number of thread blocks (24–192, step 24).
    pub bc: u32,
    /// `UIF` — unroll factor for innermost unrollable loops (1–5).
    pub uif: u32,
    /// `PL` — preferred L1 size.
    pub pl: PreferredL1,
    /// `SC` — CUDA stream count for chunked execution (1–5).
    pub sc: u32,
    /// `CFLAGS` — compiler flags.
    pub cflags: CompilerFlags,
}

impl Default for TuningParams {
    fn default() -> Self {
        Self {
            tc: 128,
            bc: 96,
            uif: 1,
            pl: PreferredL1::default(),
            sc: 1,
            cflags: CompilerFlags::default(),
        }
    }
}

impl TuningParams {
    /// A configuration with the given block and grid size, other
    /// parameters at their defaults.
    pub fn with_geometry(tc: u32, bc: u32) -> Self {
        Self { tc, bc, ..Self::default() }
    }

    /// The validation problem with an unroll factor, if any — shared
    /// between full-point validation and the compile front-end (which
    /// sees only `UIF`/`CFLAGS`), so the two can never drift.
    pub fn uif_problem(uif: u32) -> Option<String> {
        (uif == 0 || uif > 8).then(|| format!("UIF {uif} outside supported range 1..=8"))
    }

    /// Validation problems for this configuration on `gpu` (empty =
    /// valid). Mirrors the checks `nvcc`/the runtime would raise.
    pub fn problems(&self, gpu: &GpuSpec) -> Vec<String> {
        let mut out = Vec::new();
        if self.tc == 0 {
            out.push("TC must be positive".into());
        } else {
            if self.tc > gpu.threads_per_block {
                out.push(format!(
                    "TC {} exceeds device limit {}",
                    self.tc, gpu.threads_per_block
                ));
            }
            if !self.tc.is_multiple_of(gpu.warp_size) {
                out.push(format!(
                    "TC {} is not a multiple of the warp size {}",
                    self.tc, gpu.warp_size
                ));
            }
        }
        if self.bc == 0 {
            out.push("BC must be positive".into());
        }
        if let Some(problem) = Self::uif_problem(self.uif) {
            out.push(problem);
        }
        if self.sc == 0 || self.sc > 8 {
            out.push(format!("SC {} outside supported range 1..=8", self.sc));
        }
        out
    }

    /// Whether the configuration is valid on `gpu`.
    pub fn is_valid(&self, gpu: &GpuSpec) -> bool {
        self.problems(gpu).is_empty()
    }
}

impl fmt::Display for TuningParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TC={} BC={} UIF={} PL={} SC={} CFLAGS={}",
            self.tc,
            self.bc,
            self.uif,
            self.pl.kb(),
            self.sc,
            self.cflags
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Gpu;

    #[test]
    fn preferred_l1_mapping() {
        assert_eq!(PreferredL1::from_kb(16), Some(PreferredL1::Kb16));
        assert_eq!(PreferredL1::from_kb(48), Some(PreferredL1::Kb48));
        assert_eq!(PreferredL1::from_kb(32), None);
        assert_eq!(PreferredL1::Kb48.l1_bytes(), 49_152);
        assert_eq!(PreferredL1::Kb16.kb(), 16);
    }

    #[test]
    fn default_params_valid_everywhere() {
        for gpu in oriole_arch::ALL_GPUS {
            assert!(TuningParams::default().is_valid(gpu.spec()), "{gpu}");
        }
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // exercising one bad field at a time
    fn invalid_configurations_flagged() {
        let gpu = Gpu::K20.spec();
        let mut p = TuningParams::default();
        p.tc = 0;
        assert!(!p.is_valid(gpu));
        p.tc = 2048;
        assert!(!p.is_valid(gpu));
        p.tc = 100; // not a warp multiple
        assert!(!p.is_valid(gpu));
        p = TuningParams::default();
        p.uif = 0;
        assert!(!p.is_valid(gpu));
        p = TuningParams::default();
        p.bc = 0;
        assert!(!p.is_valid(gpu));
        p = TuningParams::default();
        p.sc = 99;
        assert!(!p.is_valid(gpu));
    }

    #[test]
    fn all_problems_reported_together() {
        let p = TuningParams { tc: 0, bc: 0, uif: 0, sc: 0, ..TuningParams::default() };
        let problems = p.problems(Gpu::P100.spec());
        assert_eq!(problems.len(), 4, "{problems:?}");
    }

    #[test]
    fn display_shows_orio_names() {
        let p = TuningParams::with_geometry(256, 48);
        let s = p.to_string();
        assert!(s.contains("TC=256") && s.contains("BC=48") && s.contains("UIF=1"));
    }
}
