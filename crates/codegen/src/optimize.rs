//! Post-lowering peephole optimizations.
//!
//! Infrastructure for the paper's §VII direction ("we will investigate
//! several avenues for enhancing our static models, including
//! algorithm-specific optimizations"): cleanup passes over the linear IR
//! that a production `ptxas` would perform. The passes are *not* part of
//! the default [`crate::compile`] pipeline — the evaluation reproduces
//! the paper against unoptimized lowering — but the analyzer accepts
//! optimized programs transparently, and the ablation benches use these
//! passes to quantify how much static-mix conclusions depend on compiler
//! cleanup.
//!
//! Passes:
//! * **move forwarding** — `mov %b, %a` followed by uses of `%b` becomes
//!   direct uses of `%a` (register-to-register moves only);
//! * **dead-code elimination** — instructions whose destination register
//!   is never read and that have no side effects (stores, barriers,
//!   predicate definitions, control flow) are removed, iterating to a
//!   fixed point.
//!
//! Both passes run on dense register numbers: the alias map is a
//! Vec-indexed union-find (path halving) and the liveness set is a
//! `Vec<bool>`, replacing the original `HashMap`/`HashSet` versions,
//! which are retained below as `#[cfg(test)]` oracles pinning the
//! rewrite bit-identical.

use oriole_ir::{OpKind, Operand, Program, Reg};

/// What the optimizer did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Moves whose uses were forwarded to the source.
    pub moves_forwarded: usize,
    /// Instructions removed as dead.
    pub dead_removed: usize,
}

/// Runs move forwarding followed by iterated dead-code elimination.
/// Returns the optimized program and statistics. Control flow, stores,
/// barriers and predicates are always preserved, so block structure and
/// execution frequencies are untouched.
pub fn peephole(program: &Program) -> (Program, OptStats) {
    crate::profile::time(crate::profile::Phase::Optimize, || {
        let mut out = program.clone();
        let mut stats =
            OptStats { moves_forwarded: forward_moves(&mut out), ..OptStats::default() };
        loop {
            let removed = eliminate_dead(&mut out);
            if removed == 0 {
                break;
            }
            stats.dead_removed += removed;
        }
        (out, stats)
    })
}

/// Sentinel for "no alias recorded" in [`AliasMap`].
const NO_ALIAS: u32 = u32::MAX;

/// A register-to-register alias map as a Vec-indexed union-find over
/// dense register numbers, with path halving on lookup.
///
/// `target[r]` is the forwarding target of `%r` (`NO_ALIAS` when `%r` is
/// a root). Moves record edges whose targets are already fully resolved
/// — the move's source operand is rewritten *before* the alias is
/// recorded — so chains are at most one hop long and path halving is a
/// no-op in practice; it is kept (with the oracle's defensive 64-hop
/// cap) so lookups stay near-constant even if a future pass records
/// deeper chains. The `touched` list makes per-block `reset` and
/// definition invalidation O(registers actually aliased) instead of
/// O(register space).
struct AliasMap {
    target: Vec<u32>,
    touched: Vec<u32>,
}

impl AliasMap {
    fn with_capacity(regs: usize) -> AliasMap {
        AliasMap { target: vec![NO_ALIAS; regs], touched: Vec::new() }
    }

    /// Clears all recorded aliases (block boundary), leaving capacity.
    fn reset(&mut self) {
        for &r in &self.touched {
            self.target[r as usize] = NO_ALIAS;
        }
        self.touched.clear();
    }

    /// Follows the alias chain from `r` to its root, halving the path as
    /// it goes. Returns `r` itself when no alias is recorded.
    fn resolve(&mut self, r: Reg) -> Reg {
        let mut cur = r.0;
        let mut hops = 0;
        while let Some(&next) = self.target.get(cur as usize) {
            if next == NO_ALIAS {
                break;
            }
            // Path halving: point the current node at its grandparent.
            if let Some(&grand) = self.target.get(next as usize) {
                if grand != NO_ALIAS {
                    self.target[cur as usize] = grand;
                }
            }
            cur = next;
            hops += 1;
            if hops > 64 {
                break; // defensive: cycles cannot happen, but stay total
            }
        }
        Reg(cur)
    }

    /// Records `%d → %src` for a plain reg-to-reg move.
    fn record(&mut self, d: Reg, src: Reg) {
        let i = d.0 as usize;
        if i >= self.target.len() {
            self.target.resize(i + 1, NO_ALIAS);
        }
        if self.target[i] == NO_ALIAS {
            self.touched.push(d.0);
        }
        self.target[i] = src.0;
    }

    /// A definition of `%d` invalidates the alias *of* `%d` and every
    /// alias resolving *through* `%d` (same semantics as the oracle's
    /// `remove` + `retain`).
    fn define(&mut self, d: Reg) {
        if let Some(t) = self.target.get_mut(d.0 as usize) {
            *t = NO_ALIAS;
        }
        for &r in &self.touched {
            if self.target[r as usize] == d.0 {
                self.target[r as usize] = NO_ALIAS;
            }
        }
    }
}

/// Forwards register-to-register moves within each block (conservative:
/// the mapping resets at block boundaries, so no dataflow is needed).
/// One [`AliasMap`] allocation serves the whole program.
fn forward_moves(program: &mut Program) -> usize {
    let regs = program
        .blocks
        .iter()
        .flat_map(|b| &b.instrs)
        .filter_map(|i| i.dst)
        .map(|d| d.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut alias = AliasMap::with_capacity(regs);
    let mut forwarded = 0;
    for block in program.blocks.make_mut() {
        alias.reset();
        for instr in &mut block.instrs {
            // Rewrite sources through the alias map (resolving chains).
            for src in &mut instr.srcs {
                if let Operand::Reg(r) = src {
                    let cur = alias.resolve(*r);
                    if cur != *r {
                        *src = Operand::Reg(cur);
                        forwarded += 1;
                    }
                }
            }
            // A definition invalidates aliases *through* the defined reg.
            if let Some(d) = instr.dst {
                alias.define(d);
                // Record new alias for plain reg-to-reg moves.
                if instr.opcode.kind == OpKind::Mov && instr.srcs.len() == 1 {
                    if let Operand::Reg(src) = instr.srcs[0] {
                        alias.record(d, src);
                    }
                }
            }
        }
    }
    forwarded
}

/// Removes side-effect-free instructions whose destination is never read
/// anywhere in the program. Returns the number removed. The used-set is
/// a `Vec<bool>` over dense register numbers.
fn eliminate_dead(program: &mut Program) -> usize {
    let mut used: Vec<bool> = Vec::new();
    for block in &program.blocks {
        for instr in &block.instrs {
            for r in instr.uses() {
                let i = r.0 as usize;
                if i >= used.len() {
                    used.resize(i + 1, false);
                }
                used[i] = true;
            }
        }
    }
    let mut removed = 0;
    for block in program.blocks.make_mut() {
        let before = block.instrs.len();
        block.instrs.retain(|instr| {
            let side_effect = matches!(
                instr.opcode.kind,
                OpKind::St(_) | OpKind::Bar | OpKind::Bra | OpKind::Exit | OpKind::Surf
            ) || instr.dst_pred.is_some()
                || instr.guard.is_some();
            if side_effect {
                return true;
            }
            match instr.dst {
                Some(d) => used.get(d.0 as usize).copied().unwrap_or(false),
                // No destination and no side effect: defensive keep.
                None => true,
            }
        });
        removed += before - block.instrs.len();
    }
    removed
}

/// The original `HashMap`/`HashSet` passes, retained verbatim as the
/// oracle for the dense rewrite: tests pin `peephole` bit-identical to
/// `oracle::peephole` across every bundled kernel.
#[cfg(test)]
pub(crate) mod oracle {
    use super::*;
    use std::collections::{HashMap, HashSet};

    pub(crate) fn peephole(program: &Program) -> (Program, OptStats) {
        let mut out = program.clone();
        let mut stats =
            OptStats { moves_forwarded: forward_moves(&mut out), ..OptStats::default() };
        loop {
            let removed = eliminate_dead(&mut out);
            if removed == 0 {
                break;
            }
            stats.dead_removed += removed;
        }
        (out, stats)
    }

    fn forward_moves(program: &mut Program) -> usize {
        let mut forwarded = 0;
        for block in program.blocks.make_mut() {
            let mut alias: HashMap<Reg, Reg> = HashMap::new();
            for instr in &mut block.instrs {
                for src in &mut instr.srcs {
                    if let Operand::Reg(r) = src {
                        let mut cur = *r;
                        let mut hops = 0;
                        while let Some(&next) = alias.get(&cur) {
                            cur = next;
                            hops += 1;
                            if hops > 64 {
                                break;
                            }
                        }
                        if cur != *r {
                            *src = Operand::Reg(cur);
                            forwarded += 1;
                        }
                    }
                }
                if let Some(d) = instr.dst {
                    alias.remove(&d);
                    alias.retain(|_, v| *v != d);
                    if instr.opcode.kind == OpKind::Mov && instr.srcs.len() == 1 {
                        if let Operand::Reg(src) = instr.srcs[0] {
                            alias.insert(d, src);
                        }
                    }
                }
            }
        }
        forwarded
    }

    fn eliminate_dead(program: &mut Program) -> usize {
        let mut used: HashSet<Reg> = HashSet::new();
        for block in &program.blocks {
            for instr in &block.instrs {
                for r in instr.uses() {
                    used.insert(r);
                }
            }
        }
        let mut removed = 0;
        for block in program.blocks.make_mut() {
            let before = block.instrs.len();
            block.instrs.retain(|instr| {
                let side_effect = matches!(
                    instr.opcode.kind,
                    OpKind::St(_) | OpKind::Bar | OpKind::Bra | OpKind::Exit | OpKind::Surf
                ) || instr.dst_pred.is_some()
                    || instr.guard.is_some();
                if side_effect {
                    return true;
                }
                match instr.dst {
                    Some(d) => used.contains(&d),
                    None => true,
                }
            });
            removed += before - block.instrs.len();
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::{Family, Gpu};
    use oriole_ir::lower::{lower, LowerOptions};
    use oriole_ir::{
        count, AluOp, BasicBlock, FreqExpr, Instr, KernelAst, LaunchGeometry, Opcode, ProgramMeta,
        Stmt, Terminator, Ty,
    };
    use oriole_kernels::KernelId;

    fn lowered(kid: KernelId, n: u64) -> Program {
        lower(&kid.ast(n), Family::Kepler, LowerOptions::default())
    }

    #[test]
    fn optimized_programs_stay_well_formed() {
        for kid in oriole_kernels::ALL_KERNELS {
            let p = lowered(kid, 64);
            let (opt, stats) = peephole(&p);
            assert!(opt.validate().is_empty(), "{kid}");
            assert!(opt.static_len() <= p.static_len());
            assert!(stats.dead_removed > 0 || stats.moves_forwarded > 0, "{kid}");
            // Round-trips through the disassembler like any program.
            let text = oriole_ir::text::emit(&opt);
            assert_eq!(oriole_ir::text::parse(&text).unwrap(), opt);
        }
    }

    #[test]
    fn dense_passes_bit_identical_to_hashmap_oracle() {
        for kid in oriole_kernels::ALL_KERNELS {
            for n in [32, 64, 256] {
                let p = lowered(kid, n);
                assert_eq!(peephole(&p), oracle::peephole(&p), "{kid} n={n}");
            }
        }
    }

    /// Pins the alias resolution order of the union-find map: move
    /// chains resolve to their final root, a redefinition of the source
    /// cuts every alias running through it, and a redefinition of the
    /// moved-to register drops its own alias. Expected operands are
    /// written out literally so any change to resolution order fails
    /// loudly rather than silently matching a changed oracle.
    #[test]
    fn alias_resolution_order_is_pinned() {
        let mov = |d: u32, s: u32| {
            Instr::new(Opcode::new(OpKind::Mov, Ty::F32), Some(Reg(d)), vec![Operand::Reg(
                Reg(s),
            )])
        };
        let add = |d: u32, a: u32, b: u32| {
            Instr::new(Opcode::new(OpKind::Add, Ty::F32), Some(Reg(d)), vec![
                Operand::Reg(Reg(a)),
                Operand::Reg(Reg(b)),
            ])
        };
        let instrs = vec![
            mov(1, 0),    // %1 → %0
            mov(2, 1),    // %2 → %0 (chain resolved at record time)
            add(3, 2, 1), // uses rewrite to (%0, %0)
            add(1, 3, 3), // redefines %1: drops %1's own alias; %2 → %0 is unaffected
            add(4, 2, 1), // %2 still → %0; %1 now a root
            mov(0, 4),    // redefines %0: kills %1→%0-style aliases through %0, records %0 → %4
            add(5, 2, 0), // %2's alias through %0 was cut, %0 → %4
        ];
        let mut program = Program {
            name: "alias_pin".to_string(),
            meta: ProgramMeta {
                family: Family::Kepler,
                regs_per_thread: 0,
                smem_static: 0,
                spill_bytes: 0,
            },
            blocks: vec![BasicBlock {
                label: "entry".to_string(),
                instrs,
                term: Terminator::Ret,
                freq: FreqExpr::Once,
            }]
            .into(),
        };
        let forwarded = forward_moves(&mut program);
        let srcs: Vec<Vec<Operand>> =
            program.blocks[0].instrs.iter().map(|i| i.srcs.clone()).collect();
        let r = |n: u32| Operand::Reg(Reg(n));
        assert_eq!(srcs, vec![
            vec![r(0)],       // mov %1, %0 untouched
            vec![r(0)],       // mov %2, %1 rewritten to %0
            vec![r(0), r(0)], // both uses forwarded to the root
            vec![r(3), r(3)], // no aliases for %3
            vec![r(0), r(1)], // %2 → %0 survives, %1 redefined → itself
            vec![r(4)],       // source of the %0 redefinition untouched
            vec![r(2), r(4)], // %2's alias cut by the %0 redef; %0 → %4
        ]);
        assert_eq!(forwarded, 5);
    }

    #[test]
    fn stores_barriers_and_control_survive() {
        let p = lowered(KernelId::MatVec2D, 64);
        let count_kind = |prog: &Program, pred: fn(&OpKind) -> bool| {
            prog.blocks
                .iter()
                .flat_map(|b| &b.instrs)
                .filter(|i| pred(&i.opcode.kind))
                .count()
        };
        let (opt, _) = peephole(&p);
        assert_eq!(
            count_kind(&p, |k| matches!(k, OpKind::St(_))),
            count_kind(&opt, |k| matches!(k, OpKind::St(_)))
        );
        assert_eq!(
            count_kind(&p, |k| matches!(k, OpKind::Bar)),
            count_kind(&opt, |k| matches!(k, OpKind::Bar))
        );
        assert_eq!(p.blocks.len(), opt.blocks.len(), "block structure untouched");
    }

    #[test]
    fn loads_feeding_stores_survive() {
        // A load whose value reaches a store must never be eliminated.
        let p = lowered(KernelId::Atax, 64);
        let loads = |prog: &Program| {
            prog.blocks
                .iter()
                .flat_map(|b| &b.instrs)
                .filter(|i| matches!(i.opcode.kind, OpKind::Ld(_)))
                .count()
        };
        let (opt, _) = peephole(&p);
        // Some loads may die (their values unused by our synthetic
        // chains), but not all: stores still need sources.
        assert!(loads(&opt) >= 1);
        let stores_have_reg_sources = opt
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i.opcode.kind, OpKind::St(_)))
            .all(|i| i.srcs.iter().any(|s| matches!(s, Operand::Reg(_))));
        assert!(stores_have_reg_sources);
    }

    #[test]
    fn dce_removes_straightline_garbage() {
        let mut k = KernelAst::new("garbage");
        // 16 FMAs whose results are never stored: all dead.
        k.body = vec![Stmt::ops(AluOp::FmaF32, 16)];
        let p = lower(&k, Family::Kepler, LowerOptions::default());
        let (opt, stats) = peephole(&p);
        assert!(stats.dead_removed >= 16, "{stats:?}");
        assert!(opt.static_len() < p.static_len());
    }

    #[test]
    fn optimization_reduces_register_pressure() {
        let p = lowered(KernelId::Ex14Fj, 32);
        let (opt, _) = peephole(&p);
        let base = crate::regalloc::allocate(&p, 255);
        let better = crate::regalloc::allocate(&opt, 255);
        assert!(better.demand <= base.demand);
    }

    #[test]
    fn analyzer_consumes_optimized_programs() {
        // Frequencies are untouched, so geometry-dependent counts still
        // evaluate; the mix shrinks but stays well-defined.
        let p = lowered(KernelId::Bicg, 128);
        let (opt, _) = peephole(&p);
        let geom = LaunchGeometry::new(128, 128, 48);
        let raw = count::expected_mix(&p, geom).total();
        let optimized = count::expected_mix(&opt, geom).total();
        assert!(optimized > 0.0 && optimized <= raw);
        let _ = Gpu::K20; // keep the import used on all paths
    }
}
