//! Post-lowering peephole optimizations.
//!
//! Infrastructure for the paper's §VII direction ("we will investigate
//! several avenues for enhancing our static models, including
//! algorithm-specific optimizations"): cleanup passes over the linear IR
//! that a production `ptxas` would perform. The passes are *not* part of
//! the default [`crate::compile`] pipeline — the evaluation reproduces
//! the paper against unoptimized lowering — but the analyzer accepts
//! optimized programs transparently, and the ablation benches use these
//! passes to quantify how much static-mix conclusions depend on compiler
//! cleanup.
//!
//! Passes:
//! * **move forwarding** — `mov %b, %a` followed by uses of `%b` becomes
//!   direct uses of `%a` (register-to-register moves only);
//! * **dead-code elimination** — instructions whose destination register
//!   is never read and that have no side effects (stores, barriers,
//!   predicate definitions, control flow) are removed, iterating to a
//!   fixed point.

use oriole_ir::{OpKind, Operand, Program, Reg};
use std::collections::{HashMap, HashSet};

/// What the optimizer did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Moves whose uses were forwarded to the source.
    pub moves_forwarded: usize,
    /// Instructions removed as dead.
    pub dead_removed: usize,
}

/// Runs move forwarding followed by iterated dead-code elimination.
/// Returns the optimized program and statistics. Control flow, stores,
/// barriers and predicates are always preserved, so block structure and
/// execution frequencies are untouched.
pub fn peephole(program: &Program) -> (Program, OptStats) {
    let mut out = program.clone();
    let mut stats = OptStats { moves_forwarded: forward_moves(&mut out), ..OptStats::default() };
    loop {
        let removed = eliminate_dead(&mut out);
        if removed == 0 {
            break;
        }
        stats.dead_removed += removed;
    }
    (out, stats)
}

/// Forwards register-to-register moves within each block (conservative:
/// the mapping resets at block boundaries, so no dataflow is needed).
fn forward_moves(program: &mut Program) -> usize {
    let mut forwarded = 0;
    for block in &mut program.blocks {
        let mut alias: HashMap<Reg, Reg> = HashMap::new();
        for instr in &mut block.instrs {
            // Rewrite sources through the alias map (resolving chains).
            for src in &mut instr.srcs {
                if let Operand::Reg(r) = src {
                    let mut cur = *r;
                    let mut hops = 0;
                    while let Some(&next) = alias.get(&cur) {
                        cur = next;
                        hops += 1;
                        if hops > 64 {
                            break; // defensive: cycles cannot happen, but stay total
                        }
                    }
                    if cur != *r {
                        *src = Operand::Reg(cur);
                        forwarded += 1;
                    }
                }
            }
            // A definition invalidates aliases *through* the defined reg.
            if let Some(d) = instr.dst {
                alias.remove(&d);
                alias.retain(|_, v| *v != d);
                // Record new alias for plain reg-to-reg moves.
                if instr.opcode.kind == OpKind::Mov && instr.srcs.len() == 1 {
                    if let Operand::Reg(src) = instr.srcs[0] {
                        alias.insert(d, src);
                    }
                }
            }
        }
    }
    forwarded
}

/// Removes side-effect-free instructions whose destination is never read
/// anywhere in the program. Returns the number removed.
fn eliminate_dead(program: &mut Program) -> usize {
    let mut used: HashSet<Reg> = HashSet::new();
    for block in &program.blocks {
        for instr in &block.instrs {
            for r in instr.uses() {
                used.insert(r);
            }
        }
    }
    let mut removed = 0;
    for block in &mut program.blocks {
        let before = block.instrs.len();
        block.instrs.retain(|instr| {
            let side_effect = matches!(
                instr.opcode.kind,
                OpKind::St(_) | OpKind::Bar | OpKind::Bra | OpKind::Exit | OpKind::Surf
            ) || instr.dst_pred.is_some()
                || instr.guard.is_some();
            if side_effect {
                return true;
            }
            match instr.dst {
                Some(d) => used.contains(&d),
                // No destination and no side effect: defensive keep.
                None => true,
            }
        });
        removed += before - block.instrs.len();
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::{Family, Gpu};
    use oriole_ir::lower::{lower, LowerOptions};
    use oriole_ir::{count, AluOp, KernelAst, LaunchGeometry, Stmt};
    use oriole_kernels::KernelId;

    fn lowered(kid: KernelId, n: u64) -> Program {
        lower(&kid.ast(n), Family::Kepler, LowerOptions::default())
    }

    #[test]
    fn optimized_programs_stay_well_formed() {
        for kid in oriole_kernels::ALL_KERNELS {
            let p = lowered(kid, 64);
            let (opt, stats) = peephole(&p);
            assert!(opt.validate().is_empty(), "{kid}");
            assert!(opt.static_len() <= p.static_len());
            assert!(stats.dead_removed > 0 || stats.moves_forwarded > 0, "{kid}");
            // Round-trips through the disassembler like any program.
            let text = oriole_ir::text::emit(&opt);
            assert_eq!(oriole_ir::text::parse(&text).unwrap(), opt);
        }
    }

    #[test]
    fn stores_barriers_and_control_survive() {
        let p = lowered(KernelId::MatVec2D, 64);
        let count_kind = |prog: &Program, pred: fn(&OpKind) -> bool| {
            prog.blocks
                .iter()
                .flat_map(|b| &b.instrs)
                .filter(|i| pred(&i.opcode.kind))
                .count()
        };
        let (opt, _) = peephole(&p);
        assert_eq!(
            count_kind(&p, |k| matches!(k, OpKind::St(_))),
            count_kind(&opt, |k| matches!(k, OpKind::St(_)))
        );
        assert_eq!(
            count_kind(&p, |k| matches!(k, OpKind::Bar)),
            count_kind(&opt, |k| matches!(k, OpKind::Bar))
        );
        assert_eq!(p.blocks.len(), opt.blocks.len(), "block structure untouched");
    }

    #[test]
    fn loads_feeding_stores_survive() {
        // A load whose value reaches a store must never be eliminated.
        let p = lowered(KernelId::Atax, 64);
        let loads = |prog: &Program| {
            prog.blocks
                .iter()
                .flat_map(|b| &b.instrs)
                .filter(|i| matches!(i.opcode.kind, OpKind::Ld(_)))
                .count()
        };
        let (opt, _) = peephole(&p);
        // Some loads may die (their values unused by our synthetic
        // chains), but not all: stores still need sources.
        assert!(loads(&opt) >= 1);
        let stores_have_reg_sources = opt
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i.opcode.kind, OpKind::St(_)))
            .all(|i| i.srcs.iter().any(|s| matches!(s, Operand::Reg(_))));
        assert!(stores_have_reg_sources);
    }

    #[test]
    fn dce_removes_straightline_garbage() {
        let mut k = KernelAst::new("garbage");
        // 16 FMAs whose results are never stored: all dead.
        k.body = vec![Stmt::ops(AluOp::FmaF32, 16)];
        let p = lower(&k, Family::Kepler, LowerOptions::default());
        let (opt, stats) = peephole(&p);
        assert!(stats.dead_removed >= 16, "{stats:?}");
        assert!(opt.static_len() < p.static_len());
    }

    #[test]
    fn optimization_reduces_register_pressure() {
        let p = lowered(KernelId::Ex14Fj, 32);
        let (opt, _) = peephole(&p);
        let base = crate::regalloc::allocate(&p, 255);
        let better = crate::regalloc::allocate(&opt, 255);
        assert!(better.demand <= base.demand);
    }

    #[test]
    fn analyzer_consumes_optimized_programs() {
        // Frequencies are untouched, so geometry-dependent counts still
        // evaluate; the mix shrinks but stays well-defined.
        let p = lowered(KernelId::Bicg, 128);
        let (opt, _) = peephole(&p);
        let geom = LaunchGeometry::new(128, 128, 48);
        let raw = count::expected_mix(&p, geom).total();
        let optimized = count::expected_mix(&opt, geom).total();
        assert!(optimized > 0.0 && optimized <= raw);
        let _ = Gpu::K20; // keep the import used on all paths
    }
}
