//! Phase-level compile profiler.
//!
//! Process-wide wall-clock and invocation counters for the four
//! front-end phases (unroll → lower → optimize → regalloc), accumulated
//! with relaxed atomics so instrumentation stays off the contended path.
//! The tuner snapshots [`telemetry`] into its `EvalStats`, `tune
//! --stats` prints the per-phase split, and the service surfaces it in
//! `service stats` — so future optimization work can see where cold
//! compile time goes without re-instrumenting.
//!
//! Counters are cumulative for the process lifetime, like the
//! `ProgramIndex` build counters in `oriole-ir`: consumers diff two
//! snapshots to attribute time to a window of work.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A front-end compile phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Loop unrolling (`transform::unroll`), keyed by UIF.
    Unroll,
    /// AST → linear IR lowering with fused index construction.
    Lower,
    /// Peephole cleanup (`optimize::peephole`), ablation path only.
    Optimize,
    /// Register allocation (`regalloc::allocate`).
    Regalloc,
}

static UNROLL_NS: AtomicU64 = AtomicU64::new(0);
static UNROLL_CALLS: AtomicU64 = AtomicU64::new(0);
static LOWER_NS: AtomicU64 = AtomicU64::new(0);
static LOWER_CALLS: AtomicU64 = AtomicU64::new(0);
static OPTIMIZE_NS: AtomicU64 = AtomicU64::new(0);
static OPTIMIZE_CALLS: AtomicU64 = AtomicU64::new(0);
static REGALLOC_NS: AtomicU64 = AtomicU64::new(0);
static REGALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

fn counters(phase: Phase) -> (&'static AtomicU64, &'static AtomicU64) {
    match phase {
        Phase::Unroll => (&UNROLL_NS, &UNROLL_CALLS),
        Phase::Lower => (&LOWER_NS, &LOWER_CALLS),
        Phase::Optimize => (&OPTIMIZE_NS, &OPTIMIZE_CALLS),
        Phase::Regalloc => (&REGALLOC_NS, &REGALLOC_CALLS),
    }
}

/// Times `f` and accounts its wall-clock cost to `phase`.
pub fn time<T>(phase: Phase, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let (ns_ctr, calls_ctr) = counters(phase);
    ns_ctr.fetch_add(ns, Ordering::Relaxed);
    calls_ctr.fetch_add(1, Ordering::Relaxed);
    out
}

/// A snapshot of the cumulative per-phase counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTelemetry {
    /// Nanoseconds spent unrolling.
    pub unroll_ns: u64,
    /// Unroll invocations.
    pub unroll_calls: u64,
    /// Nanoseconds spent lowering (including fused index construction).
    pub lower_ns: u64,
    /// Lower invocations.
    pub lower_calls: u64,
    /// Nanoseconds spent in peephole optimization.
    pub optimize_ns: u64,
    /// Peephole invocations.
    pub optimize_calls: u64,
    /// Nanoseconds spent in register allocation.
    pub regalloc_ns: u64,
    /// Register-allocation invocations.
    pub regalloc_calls: u64,
}

impl PhaseTelemetry {
    /// Counter-wise difference against an earlier snapshot (saturating,
    /// so a stale `before` cannot underflow).
    #[must_use]
    pub fn since(&self, before: &PhaseTelemetry) -> PhaseTelemetry {
        PhaseTelemetry {
            unroll_ns: self.unroll_ns.saturating_sub(before.unroll_ns),
            unroll_calls: self.unroll_calls.saturating_sub(before.unroll_calls),
            lower_ns: self.lower_ns.saturating_sub(before.lower_ns),
            lower_calls: self.lower_calls.saturating_sub(before.lower_calls),
            optimize_ns: self.optimize_ns.saturating_sub(before.optimize_ns),
            optimize_calls: self.optimize_calls.saturating_sub(before.optimize_calls),
            regalloc_ns: self.regalloc_ns.saturating_sub(before.regalloc_ns),
            regalloc_calls: self.regalloc_calls.saturating_sub(before.regalloc_calls),
        }
    }
}

/// Snapshots the process-wide per-phase counters.
pub fn telemetry() -> PhaseTelemetry {
    PhaseTelemetry {
        unroll_ns: UNROLL_NS.load(Ordering::Relaxed),
        unroll_calls: UNROLL_CALLS.load(Ordering::Relaxed),
        lower_ns: LOWER_NS.load(Ordering::Relaxed),
        lower_calls: LOWER_CALLS.load(Ordering::Relaxed),
        optimize_ns: OPTIMIZE_NS.load(Ordering::Relaxed),
        optimize_calls: OPTIMIZE_CALLS.load(Ordering::Relaxed),
        regalloc_ns: REGALLOC_NS.load(Ordering::Relaxed),
        regalloc_calls: REGALLOC_CALLS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accounts_to_the_right_phase() {
        let before = telemetry();
        let v = time(Phase::Lower, || 41 + 1);
        assert_eq!(v, 42);
        let delta = telemetry().since(&before);
        assert!(delta.lower_calls >= 1);
        // Other tests run concurrently in this process, so only the
        // phase we just drove has a guaranteed lower bound.
    }

    #[test]
    fn since_saturates() {
        let big = PhaseTelemetry { unroll_ns: 5, ..PhaseTelemetry::default() };
        let zero = PhaseTelemetry::default();
        assert_eq!(zero.since(&big), PhaseTelemetry::default());
        assert_eq!(big.since(&zero).unroll_ns, 5);
    }
}
