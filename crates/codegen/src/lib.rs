//! # oriole-codegen — the compiler substrate
//!
//! This crate stands in for the `nvcc` / `ptxas` / `nvdisasm` toolchain in
//! the paper's pipeline (§III, "Static Analysis" steps 1–2):
//!
//! * [`params`] — the Orio tuning parameters of Table III / Fig. 3:
//!   thread count `TC`, block count `BC`, unroll factor `UIF`, preferred
//!   L1 size `PL`, stream count `SC`, and compiler flags (`CFLAGS`,
//!   i.e. `-use_fast_math`).
//! * [`transform`] — source-level transformations applied before
//!   lowering: loop unrolling with load hoisting (software pipelining),
//!   the mechanism by which `UIF` trades register pressure for reduced
//!   loop overhead.
//! * [`regalloc`] — a linear-scan register-pressure estimator playing the
//!   role of `ptxas`'s allocator: it decides the `regs/thread` figure the
//!   occupancy model consumes, and converts overflow into local-memory
//!   spills.
//! * [`compile`] — the driver: AST + parameters + target GPU →
//!   [`CompiledKernel`], carrying the lowered program with filled-in
//!   metadata (what `--ptxas-options=-v` reports) and the textual
//!   disassembly the static analyzer parses.
//! * [`profile`] — process-wide per-phase compile counters
//!   (unroll/lower/optimize/regalloc wall-clock and invocations),
//!   surfaced through `tune --stats` and `service stats`.

#![warn(missing_docs)]

pub mod compile;
pub mod optimize;
pub mod params;
pub mod profile;
pub mod regalloc;
pub mod transform;

pub use compile::{compile, front_end, CompileError, CompiledKernel, FrontEnd};
pub use optimize::{peephole, OptStats};
pub use params::{CompilerFlags, PreferredL1, TuningParams};
pub use profile::PhaseTelemetry;
pub use regalloc::RegAllocation;
pub use transform::unroll;
