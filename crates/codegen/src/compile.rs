//! The compilation driver: AST + tuning point + target GPU →
//! [`CompiledKernel`].
//!
//! Compilation is **split-phase** so the autotuner can amortize the
//! expensive work across a search space:
//!
//! * The **front-end** ([`FrontEnd`], built by [`front_end`]) performs
//!   everything that depends only on the unroll factor `UIF` and the
//!   compiler flags `CFLAGS`: source transformation (unrolling) and
//!   lowering to the linear IR. The remaining tuning axes (`TC`, `BC`,
//!   `PL`, `SC`) do not affect lowering, so one front-end artifact is
//!   shared by every point that agrees on `(UIF, CFLAGS)` — in the
//!   paper's Fig. 3 space that is 5,120 / (5 × 2) = 512 points per
//!   artifact. The register-allocation result, which depends only on the
//!   lowered program and the device register cap, is computed once per
//!   artifact on first use and cached.
//! * The **back-end** ([`FrontEnd::specialize`]) is cheap and
//!   param-dependent: parameter validation, the shared-memory footprint
//!   (which scales with `TC` for block-scaled tiles), metadata fill-in,
//!   and launch validation.
//!
//! The monolithic [`compile`] remains as a thin wrapper running both
//! phases; it produces bit-identical [`CompiledKernel`]s to the split
//! pipeline (a property-tested invariant, see `tests/proptests.rs`).

use crate::params::{CompilerFlags, TuningParams};
use crate::profile::{self, Phase};
use crate::regalloc::{self, RegAllocation};
use crate::transform;
use oriole_arch::{validate_launch, GpuSpec, LaunchCheck};
use oriole_ir::lower::{lower_indexed, LowerOptions};
use oriole_ir::{KernelAst, LaunchGeometry, Program, ProgramIndex, SharedDecl};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The tuning parameters are invalid for the target device.
    InvalidParams(Vec<String>),
    /// The kernel's shared-memory requirement exceeds the per-block limit
    /// (Eq. 5 case 1).
    SharedMemExceeded {
        /// Bytes the kernel needs for this block size.
        needed: u32,
        /// Device per-block limit.
        limit: u32,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidParams(problems) => {
                write!(f, "invalid tuning parameters: {}", problems.join("; "))
            }
            CompileError::SharedMemExceeded { needed, limit } => {
                write!(f, "kernel needs {needed} B shared memory, device allows {limit}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled kernel variant: the lowered program with `ptxas`-style
/// resource metadata, plus everything the simulator and analyzer need to
/// reason about the launch.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    /// The tuning point this variant was compiled for.
    pub params: TuningParams,
    /// Target device (owned, so variants for synthetic or custom
    /// `GpuSpec`s — tests, future backends — need no static registry).
    pub gpu: GpuSpec,
    /// Lowered program; `meta` carries regs/thread, static shared memory
    /// and spill bytes.
    pub program: Program,
    /// Shared memory per block (depends on `TC` for block-scaled tiles).
    pub smem_per_block: u32,
    /// Uncapped register demand (diagnostics).
    pub reg_demand: u32,
    /// The per-lowered-program analysis index, built once by
    /// [`front_end`] and shared (`Arc`) by every variant of the same
    /// artifact. The blocks it summarizes are identical across
    /// specializations (only `program.meta` differs), so analysis
    /// phases combine it with this variant's `program` freely.
    pub index: Arc<ProgramIndex>,
}

impl CompiledKernel {
    /// The launch geometry for problem size `n`.
    pub fn geometry(&self, n: u64) -> LaunchGeometry {
        LaunchGeometry::new(n, self.params.tc, self.params.bc)
    }

    /// Registers per thread (`R_u` in the occupancy equations).
    pub fn regs_per_thread(&self) -> u32 {
        self.program.meta.regs_per_thread
    }

    /// The textual disassembly of this variant — the artifact the static
    /// analyzer consumes, as `nvdisasm` output is consumed in the paper.
    pub fn disassembly(&self) -> String {
        oriole_ir::text::emit(&self.program)
    }
}

/// The param-independent half of compilation: the unrolled, lowered
/// program for one `(AST, GPU, UIF, CFLAGS)` combination.
///
/// Build once with [`front_end`], then stamp out variants for any `TC`
/// / `BC` / `PL` / `SC` with [`FrontEnd::specialize`]. The register
/// allocation — a function of the lowered program and the device cap
/// only — is computed lazily on the first specialization and reused by
/// every subsequent one.
#[derive(Debug)]
pub struct FrontEnd {
    gpu: GpuSpec,
    uif: u32,
    cflags: CompilerFlags,
    /// Lowered program with zeroed metadata (the back-end fills it).
    program: Program,
    /// Shared-memory declarations of the source kernel (unrolling never
    /// changes them); the back-end sizes them for each `TC`.
    shared: Vec<SharedDecl>,
    /// The analysis index of `program`, built exactly once here and
    /// cloned (by `Arc`) into every specialization.
    index: Arc<ProgramIndex>,
    /// Lazily computed, shared by all specializations.
    alloc: OnceLock<RegAllocation>,
}

/// Runs the param-independent front-end: validates `uif`, unrolls, and
/// lowers `ast` for `gpu`.
///
/// Fails only when `uif` itself is out of range; all other parameter
/// problems are back-end concerns ([`FrontEnd::specialize`]).
pub fn front_end(
    ast: &KernelAst,
    gpu: &GpuSpec,
    uif: u32,
    cflags: CompilerFlags,
) -> Result<FrontEnd, CompileError> {
    if let Some(problem) = TuningParams::uif_problem(uif) {
        return Err(CompileError::InvalidParams(vec![problem]));
    }
    let transformed = profile::time(Phase::Unroll, || transform::unroll(ast, uif));
    // Lowering and index construction are one fused walk; the pair is
    // bit-identical to `lower` + `ProgramIndex::build` (property-tested
    // in `oriole-ir`) and still bumps the index-build counter once.
    let (program, index) = profile::time(Phase::Lower, || {
        lower_indexed(&transformed, gpu.family, LowerOptions { fast_math: cflags.fast_math })
    });
    let index = Arc::new(index);
    Ok(FrontEnd {
        gpu: gpu.clone(),
        uif,
        cflags,
        program,
        shared: ast.shared.clone(),
        index,
        alloc: OnceLock::new(),
    })
}

impl FrontEnd {
    /// The target device this artifact was lowered for.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// The shared-memory declarations of the source kernel — the inputs
    /// of the per-`TC` footprint the back-end computes. Exposed so
    /// content-addressed caches can key on everything a specialization
    /// depends on.
    pub fn shared_decls(&self) -> &[SharedDecl] {
        &self.shared
    }

    /// The unroll factor baked into the lowered program.
    pub fn uif(&self) -> u32 {
        self.uif
    }

    /// The compiler flags baked into the lowered program.
    pub fn cflags(&self) -> CompilerFlags {
        self.cflags
    }

    /// The lowered program before metadata fill-in.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The analysis index of the lowered program (built once at
    /// artifact creation; every specialization shares it).
    pub fn index(&self) -> &Arc<ProgramIndex> {
        &self.index
    }

    /// The cached register allocation for this lowered program at the
    /// device cap (computed on first use).
    pub fn allocation(&self) -> RegAllocation {
        *self
            .alloc
            .get_or_init(|| regalloc::allocate(&self.program, self.gpu.regs_per_thread_max))
    }

    /// The cheap param-dependent back-end: validation, shared-memory
    /// sizing, metadata fill-in, and launch checking.
    ///
    /// `params` must agree with this artifact on `uif` and `cflags`
    /// (debug-asserted): those axes are baked into the lowered program.
    pub fn specialize(&self, params: TuningParams) -> Result<CompiledKernel, CompileError> {
        debug_assert_eq!(params.uif, self.uif, "front-end artifact built for a different UIF");
        debug_assert_eq!(
            params.cflags, self.cflags,
            "front-end artifact built for different CFLAGS"
        );
        let problems = params.problems(&self.gpu);
        if !problems.is_empty() {
            return Err(CompileError::InvalidParams(problems));
        }

        let smem = oriole_ir::shared_bytes_for_block(&self.shared, params.tc);
        if smem > self.gpu.shmem_per_block {
            return Err(CompileError::SharedMemExceeded {
                needed: smem,
                limit: self.gpu.shmem_per_block,
            });
        }

        let alloc = self.allocation();
        let mut program = self.program.clone();
        program.meta.regs_per_thread = alloc.regs_per_thread;
        program.meta.smem_static = smem;
        program.meta.spill_bytes = alloc.spill_bytes;

        // Defensive: the launch itself must be legal now that resources
        // are known (registers were capped by the allocator, so only
        // pathological inputs can fail here).
        debug_assert!(
            validate_launch(
                &self.gpu,
                LaunchCheck {
                    threads_per_block: params.tc,
                    blocks: params.bc,
                    regs_per_thread: alloc.regs_per_thread,
                    shmem_per_block: smem,
                }
            )
            .is_ok()
        );

        Ok(CompiledKernel {
            params,
            gpu: self.gpu.clone(),
            program,
            smem_per_block: smem,
            reg_demand: alloc.demand,
            index: Arc::clone(&self.index),
        })
    }
}

/// Compiles `ast` for `gpu` at tuning point `params`.
///
/// Pipeline: validate → unroll (`UIF`) → lower (with `CFLAGS`) →
/// register-allocate → fill metadata. Deterministic: identical inputs
/// produce identical [`CompiledKernel`]s. Equivalent to
/// [`front_end`] + [`FrontEnd::specialize`] — use the split form when
/// compiling many points that share `(UIF, CFLAGS)`.
pub fn compile(
    ast: &KernelAst,
    gpu: &GpuSpec,
    params: TuningParams,
) -> Result<CompiledKernel, CompileError> {
    // Full validation first, so callers see every problem at once (the
    // front-end alone would only report UIF trouble).
    let problems = params.problems(gpu);
    if !problems.is_empty() {
        return Err(CompileError::InvalidParams(problems));
    }
    front_end(ast, gpu, params.uif, params.cflags)?.specialize(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CompilerFlags, PreferredL1};
    use oriole_arch::Gpu;
    use oriole_kernels::KernelId;

    fn params(tc: u32, bc: u32, uif: u32, fast: bool) -> TuningParams {
        TuningParams {
            tc,
            bc,
            uif,
            pl: PreferredL1::Kb16,
            sc: 1,
            cflags: CompilerFlags { fast_math: fast },
        }
    }

    #[test]
    fn compiles_all_kernels_on_all_gpus() {
        for kid in oriole_kernels::ALL_KERNELS {
            let ast = kid.ast(128);
            for gpu in oriole_arch::ALL_GPUS {
                let c = compile(&ast, gpu.spec(), params(128, 48, 1, false))
                    .unwrap_or_else(|e| panic!("{kid} on {gpu}: {e}"));
                assert!(c.regs_per_thread() > 0);
                assert!(c.program.validate().is_empty());
            }
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let ast = KernelId::Atax.ast(64);
        let e = compile(&ast, Gpu::K20.spec(), params(100, 48, 1, false)).unwrap_err();
        assert!(matches!(e, CompileError::InvalidParams(_)));
        assert!(e.to_string().contains("warp"));
    }

    #[test]
    fn shared_memory_overflow_rejected() {
        // A kernel demanding 64 B of shared memory per thread overflows
        // the 48 KiB block limit at TC=1024.
        let mut ast = KernelId::MatVec2D.ast(64);
        ast.shared[0].elems = 16; // 64 B/thread
        let e = compile(&ast, Gpu::K20.spec(), params(1024, 24, 1, false)).unwrap_err();
        assert!(matches!(e, CompileError::SharedMemExceeded { .. }));
        // Small blocks still fit.
        assert!(compile(&ast, Gpu::K20.spec(), params(128, 24, 1, false)).is_ok());
    }

    #[test]
    fn unroll_factor_changes_program_and_registers() {
        let ast = KernelId::Atax.ast(128);
        let gpu = Gpu::K20.spec();
        let u1 = compile(&ast, gpu, params(128, 48, 1, false)).unwrap();
        let u4 = compile(&ast, gpu, params(128, 48, 4, false)).unwrap();
        assert!(u4.regs_per_thread() >= u1.regs_per_thread());
        assert!(u4.program.static_len() > u1.program.static_len());
    }

    #[test]
    fn fast_math_shrinks_ex14fj() {
        let ast = KernelId::Ex14Fj.ast(32);
        let gpu = Gpu::M40.spec();
        let full = compile(&ast, gpu, params(256, 48, 1, false)).unwrap();
        let fast = compile(&ast, gpu, params(256, 48, 1, true)).unwrap();
        assert!(fast.program.static_len() < full.program.static_len());
    }

    #[test]
    fn smem_scales_with_tc_for_matvec() {
        let ast = KernelId::MatVec2D.ast(128);
        let gpu = Gpu::P100.spec();
        let small = compile(&ast, gpu, params(64, 48, 1, false)).unwrap();
        let large = compile(&ast, gpu, params(1024, 48, 1, false)).unwrap();
        // Block-scaled reduction slots (4 B/thread) plus the fixed
        // 1 KiB x-tile.
        assert_eq!(small.smem_per_block, 64 * 4 + 1024);
        assert_eq!(large.smem_per_block, 1024 * 4 + 1024);
        assert_eq!(small.program.meta.smem_static, small.smem_per_block);
    }

    #[test]
    fn deterministic_compilation() {
        let ast = KernelId::Bicg.ast(64);
        let a = compile(&ast, Gpu::M2050.spec(), params(192, 96, 3, true)).unwrap();
        let b = compile(&ast, Gpu::M2050.spec(), params(192, 96, 3, true)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn disassembly_parses_back() {
        let ast = KernelId::MatVec2D.ast(64);
        let c = compile(&ast, Gpu::K20.spec(), params(256, 48, 2, false)).unwrap();
        let text = c.disassembly();
        let parsed = oriole_ir::text::parse(&text).expect("disassembly parses");
        assert_eq!(parsed, c.program);
    }

    #[test]
    fn fermi_register_cap_respected() {
        // Heavy unrolling on Fermi must never report more than 63 regs.
        let ast = KernelId::Ex14Fj.ast(64);
        let c = compile(&ast, Gpu::M2050.spec(), params(512, 96, 5, false)).unwrap();
        assert!(c.regs_per_thread() <= 63);
    }

    #[test]
    fn geometry_accessor() {
        let ast = KernelId::Atax.ast(256);
        let c = compile(&ast, Gpu::K20.spec(), params(128, 24, 1, false)).unwrap();
        let g = c.geometry(256);
        assert_eq!((g.n, g.tc, g.bc), (256, 128, 24));
    }

    #[test]
    fn split_pipeline_matches_monolithic() {
        // One front-end artifact serves every (TC, BC, PL) point and
        // reproduces compile() bit-for-bit.
        let ast = KernelId::MatVec2D.ast(128);
        let gpu = Gpu::K20.spec();
        let fe = front_end(&ast, gpu, 3, CompilerFlags { fast_math: true }).unwrap();
        for tc in [64u32, 256, 1024] {
            for bc in [24u32, 96] {
                for pl in [PreferredL1::Kb16, PreferredL1::Kb48] {
                    let mut p = params(tc, bc, 3, true);
                    p.pl = pl;
                    assert_eq!(fe.specialize(p), compile(&ast, gpu, p), "{p}");
                }
            }
        }
    }

    #[test]
    fn front_end_rejects_bad_uif_only() {
        let ast = KernelId::Atax.ast(64);
        let gpu = Gpu::K20.spec();
        assert!(front_end(&ast, gpu, 0, CompilerFlags::default()).is_err());
        assert!(front_end(&ast, gpu, 9, CompilerFlags::default()).is_err());
        // TC trouble is a back-end concern.
        let fe = front_end(&ast, gpu, 1, CompilerFlags::default()).unwrap();
        let err = fe.specialize(params(100, 48, 1, false)).unwrap_err();
        assert!(matches!(err, CompileError::InvalidParams(_)));
    }

    #[test]
    fn index_is_shared_across_specializations() {
        let ast = KernelId::MatVec2D.ast(64);
        let gpu = Gpu::K20.spec();
        let fe = front_end(&ast, gpu, 1, CompilerFlags::default()).unwrap();
        let a = fe.specialize(params(128, 48, 1, false)).unwrap();
        let b = fe.specialize(params(512, 24, 1, false)).unwrap();
        // One index per front-end artifact: the very same allocation.
        assert!(Arc::ptr_eq(fe.index(), &a.index));
        assert!(Arc::ptr_eq(&a.index, &b.index));
        assert_eq!(a.index.len(), a.program.blocks.len());
    }

    #[test]
    fn allocation_is_computed_once_and_reused() {
        let ast = KernelId::Bicg.ast(64);
        let gpu = Gpu::K20.spec();
        let fe = front_end(&ast, gpu, 2, CompilerFlags::default()).unwrap();
        let a = fe.allocation();
        let k = fe.specialize(params(128, 48, 2, false)).unwrap();
        assert_eq!(k.regs_per_thread(), a.regs_per_thread);
        assert_eq!(k.reg_demand, a.demand);
    }
}
