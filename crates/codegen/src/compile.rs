//! The compilation driver: AST + tuning point + target GPU →
//! [`CompiledKernel`].

use crate::params::TuningParams;
use crate::regalloc;
use crate::transform;
use oriole_arch::{validate_launch, GpuSpec, LaunchCheck};
use oriole_ir::lower::{lower, LowerOptions};
use oriole_ir::{KernelAst, LaunchGeometry, Program};
use std::fmt;

/// Compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The tuning parameters are invalid for the target device.
    InvalidParams(Vec<String>),
    /// The kernel's shared-memory requirement exceeds the per-block limit
    /// (Eq. 5 case 1).
    SharedMemExceeded {
        /// Bytes the kernel needs for this block size.
        needed: u32,
        /// Device per-block limit.
        limit: u32,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidParams(problems) => {
                write!(f, "invalid tuning parameters: {}", problems.join("; "))
            }
            CompileError::SharedMemExceeded { needed, limit } => {
                write!(f, "kernel needs {needed} B shared memory, device allows {limit}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled kernel variant: the lowered program with `ptxas`-style
/// resource metadata, plus everything the simulator and analyzer need to
/// reason about the launch.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    /// The tuning point this variant was compiled for.
    pub params: TuningParams,
    /// Target device.
    pub gpu: &'static GpuSpec,
    /// Lowered program; `meta` carries regs/thread, static shared memory
    /// and spill bytes.
    pub program: Program,
    /// Shared memory per block (depends on `TC` for block-scaled tiles).
    pub smem_per_block: u32,
    /// Uncapped register demand (diagnostics).
    pub reg_demand: u32,
}

impl CompiledKernel {
    /// The launch geometry for problem size `n`.
    pub fn geometry(&self, n: u64) -> LaunchGeometry {
        LaunchGeometry::new(n, self.params.tc, self.params.bc)
    }

    /// Registers per thread (`R_u` in the occupancy equations).
    pub fn regs_per_thread(&self) -> u32 {
        self.program.meta.regs_per_thread
    }

    /// The textual disassembly of this variant — the artifact the static
    /// analyzer consumes, as `nvdisasm` output is consumed in the paper.
    pub fn disassembly(&self) -> String {
        oriole_ir::text::emit(&self.program)
    }
}

/// Compiles `ast` for `gpu` at tuning point `params`.
///
/// Pipeline: validate → unroll (`UIF`) → lower (with `CFLAGS`) →
/// register-allocate → fill metadata. Deterministic: identical inputs
/// produce identical [`CompiledKernel`]s.
pub fn compile(
    ast: &KernelAst,
    gpu: &'static GpuSpec,
    params: TuningParams,
) -> Result<CompiledKernel, CompileError> {
    let problems = params.problems(gpu);
    if !problems.is_empty() {
        return Err(CompileError::InvalidParams(problems));
    }

    let smem = ast.shared_bytes(params.tc);
    if smem > gpu.shmem_per_block {
        return Err(CompileError::SharedMemExceeded { needed: smem, limit: gpu.shmem_per_block });
    }

    let transformed = transform::unroll(ast, params.uif);
    let mut program = lower(
        &transformed,
        gpu.family,
        LowerOptions { fast_math: params.cflags.fast_math },
    );
    let alloc = regalloc::allocate(&program, gpu.regs_per_thread_max);
    program.meta.regs_per_thread = alloc.regs_per_thread;
    program.meta.smem_static = smem;
    program.meta.spill_bytes = alloc.spill_bytes;

    // Defensive: the launch itself must be legal now that resources are
    // known (registers were capped by the allocator, so only pathological
    // inputs can fail here).
    debug_assert!(
        validate_launch(
            gpu,
            LaunchCheck {
                threads_per_block: params.tc,
                blocks: params.bc,
                regs_per_thread: alloc.regs_per_thread,
                shmem_per_block: smem,
            }
        )
        .is_ok()
    );

    Ok(CompiledKernel { params, gpu, program, smem_per_block: smem, reg_demand: alloc.demand })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CompilerFlags, PreferredL1};
    use oriole_arch::Gpu;
    use oriole_kernels::KernelId;

    fn params(tc: u32, bc: u32, uif: u32, fast: bool) -> TuningParams {
        TuningParams {
            tc,
            bc,
            uif,
            pl: PreferredL1::Kb16,
            sc: 1,
            cflags: CompilerFlags { fast_math: fast },
        }
    }

    #[test]
    fn compiles_all_kernels_on_all_gpus() {
        for kid in oriole_kernels::ALL_KERNELS {
            let ast = kid.ast(128);
            for gpu in oriole_arch::ALL_GPUS {
                let c = compile(&ast, gpu.spec(), params(128, 48, 1, false))
                    .unwrap_or_else(|e| panic!("{kid} on {gpu}: {e}"));
                assert!(c.regs_per_thread() > 0);
                assert!(c.program.validate().is_empty());
            }
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let ast = KernelId::Atax.ast(64);
        let e = compile(&ast, Gpu::K20.spec(), params(100, 48, 1, false)).unwrap_err();
        assert!(matches!(e, CompileError::InvalidParams(_)));
        assert!(e.to_string().contains("warp"));
    }

    #[test]
    fn shared_memory_overflow_rejected() {
        // A kernel demanding 64 B of shared memory per thread overflows
        // the 48 KiB block limit at TC=1024.
        let mut ast = KernelId::MatVec2D.ast(64);
        ast.shared[0].elems = 16; // 64 B/thread
        let e = compile(&ast, Gpu::K20.spec(), params(1024, 24, 1, false)).unwrap_err();
        assert!(matches!(e, CompileError::SharedMemExceeded { .. }));
        // Small blocks still fit.
        assert!(compile(&ast, Gpu::K20.spec(), params(128, 24, 1, false)).is_ok());
    }

    #[test]
    fn unroll_factor_changes_program_and_registers() {
        let ast = KernelId::Atax.ast(128);
        let gpu = Gpu::K20.spec();
        let u1 = compile(&ast, gpu, params(128, 48, 1, false)).unwrap();
        let u4 = compile(&ast, gpu, params(128, 48, 4, false)).unwrap();
        assert!(u4.regs_per_thread() >= u1.regs_per_thread());
        assert!(u4.program.static_len() > u1.program.static_len());
    }

    #[test]
    fn fast_math_shrinks_ex14fj() {
        let ast = KernelId::Ex14Fj.ast(32);
        let gpu = Gpu::M40.spec();
        let full = compile(&ast, gpu, params(256, 48, 1, false)).unwrap();
        let fast = compile(&ast, gpu, params(256, 48, 1, true)).unwrap();
        assert!(fast.program.static_len() < full.program.static_len());
    }

    #[test]
    fn smem_scales_with_tc_for_matvec() {
        let ast = KernelId::MatVec2D.ast(128);
        let gpu = Gpu::P100.spec();
        let small = compile(&ast, gpu, params(64, 48, 1, false)).unwrap();
        let large = compile(&ast, gpu, params(1024, 48, 1, false)).unwrap();
        // Block-scaled reduction slots (4 B/thread) plus the fixed
        // 1 KiB x-tile.
        assert_eq!(small.smem_per_block, 64 * 4 + 1024);
        assert_eq!(large.smem_per_block, 1024 * 4 + 1024);
        assert_eq!(small.program.meta.smem_static, small.smem_per_block);
    }

    #[test]
    fn deterministic_compilation() {
        let ast = KernelId::Bicg.ast(64);
        let a = compile(&ast, Gpu::M2050.spec(), params(192, 96, 3, true)).unwrap();
        let b = compile(&ast, Gpu::M2050.spec(), params(192, 96, 3, true)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn disassembly_parses_back() {
        let ast = KernelId::MatVec2D.ast(64);
        let c = compile(&ast, Gpu::K20.spec(), params(256, 48, 2, false)).unwrap();
        let text = c.disassembly();
        let parsed = oriole_ir::text::parse(&text).expect("disassembly parses");
        assert_eq!(parsed, c.program);
    }

    #[test]
    fn fermi_register_cap_respected() {
        // Heavy unrolling on Fermi must never report more than 63 regs.
        let ast = KernelId::Ex14Fj.ast(64);
        let c = compile(&ast, Gpu::M2050.spec(), params(512, 96, 5, false)).unwrap();
        assert!(c.regs_per_thread() <= 63);
    }

    #[test]
    fn geometry_accessor() {
        let ast = KernelId::Atax.ast(256);
        let c = compile(&ast, Gpu::K20.spec(), params(128, 24, 1, false)).unwrap();
        let g = c.geometry(256);
        assert_eq!((g.n, g.tc, g.bc), (256, 128, 24));
    }
}
