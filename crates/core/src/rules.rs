//! The §III-C rule-based heuristic.
//!
//! "Through empirical observation, we have concluded that a threshold of
//! intensity > 4.0 would benefit from upper ranges of thread values
//! suggested by our static analyzer, whereas intensity ≤ 4.0 would
//! benefit from lower ranges of suggested thread values."

/// The paper's intensity threshold separating compute-leaning kernels
/// (upper thread ranges) from memory-leaning ones (lower ranges).
pub const INTENSITY_THRESHOLD: f64 = 4.0;

/// Which band of the suggested thread counts the heuristic selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadRange {
    /// The lower half of `T*` (memory-leaning kernels).
    Lower,
    /// The upper half of `T*` (compute-leaning kernels).
    Upper,
}

/// Applies the intensity rule.
pub fn range_for_intensity(intensity: f64) -> ThreadRange {
    if intensity > INTENSITY_THRESHOLD {
        ThreadRange::Upper
    } else {
        ThreadRange::Lower
    }
}

/// Restricts a suggested `T*` list to the heuristic's band. The split is
/// at the midpoint; odd-length lists give the middle element to both
/// bands (the paper keeps the suggestion non-empty either way).
pub fn apply_range(thread_counts: &[u32], range: ThreadRange) -> Vec<u32> {
    if thread_counts.len() <= 1 {
        return thread_counts.to_vec();
    }
    let mid = thread_counts.len() / 2;
    match range {
        ThreadRange::Lower => thread_counts[..mid.max(1)].to_vec(),
        ThreadRange::Upper => thread_counts[mid.min(thread_counts.len() - 1)..].to_vec(),
    }
}

/// One-call convenience: the rule-pruned thread suggestion for a kernel
/// with the given measured intensity.
pub fn rule_based_threads(thread_counts: &[u32], intensity: f64) -> Vec<u32> {
    apply_range(thread_counts, range_for_intensity(intensity))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_boundary() {
        assert_eq!(range_for_intensity(4.0), ThreadRange::Lower);
        assert_eq!(range_for_intensity(4.0001), ThreadRange::Upper);
        assert_eq!(range_for_intensity(0.0), ThreadRange::Lower);
        assert_eq!(range_for_intensity(16.3), ThreadRange::Upper);
    }

    #[test]
    fn split_even_list() {
        let t = vec![128, 256, 512, 1024];
        assert_eq!(apply_range(&t, ThreadRange::Lower), vec![128, 256]);
        assert_eq!(apply_range(&t, ThreadRange::Upper), vec![512, 1024]);
    }

    #[test]
    fn split_odd_list_keeps_middle_reachable() {
        let t = vec![192, 256, 384, 512, 768];
        let lower = apply_range(&t, ThreadRange::Lower);
        let upper = apply_range(&t, ThreadRange::Upper);
        assert_eq!(lower, vec![192, 256]);
        assert_eq!(upper, vec![384, 512, 768]);
        // Union covers everything.
        let mut all = lower;
        all.extend(upper);
        assert_eq!(all, t);
    }

    #[test]
    fn degenerate_lists() {
        assert_eq!(apply_range(&[], ThreadRange::Upper), Vec::<u32>::new());
        assert_eq!(apply_range(&[256], ThreadRange::Lower), vec![256]);
        assert_eq!(apply_range(&[256], ThreadRange::Upper), vec![256]);
    }

    #[test]
    fn paper_kernels_land_in_expected_bands() {
        // Measured intensities from our kernels (see oriole-kernels
        // tests): atax ≈ 2.3, bicg ≈ 1.5 → Lower; matvec ≈ 5.7,
        // ex14fj ≈ 12 → Upper. Matches the paper's Table VI bands.
        assert_eq!(range_for_intensity(2.3), ThreadRange::Lower);
        assert_eq!(range_for_intensity(1.5), ThreadRange::Lower);
        assert_eq!(range_for_intensity(5.7), ThreadRange::Upper);
        assert_eq!(range_for_intensity(12.1), ThreadRange::Upper);
    }
}
