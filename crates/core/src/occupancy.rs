//! The paper's occupancy model (Eqs. 1–5), analyzer-facing.

use oriole_arch::{occupancy as occ_calc, GpuSpec, Limiter, Occupancy, OccupancyInput, OccupancyTable};

/// Occupancy analysis of one compiled configuration: Eq. 1's argmin with
/// attribution, Eq. 2's ratio, and the per-resource block limits of
/// Eqs. 3–5.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyAnalysis {
    /// The raw calculator result.
    pub result: Occupancy,
    /// Inputs used (for reports).
    pub input: OccupancyInput,
    /// Device warp capacity (`W^cc_mp`), denominator of Eq. 2.
    pub warps_per_mp: u32,
}

impl OccupancyAnalysis {
    /// Runs the occupancy model for a block size / register count /
    /// shared-memory footprint triple (the `u`-superscript inputs).
    pub fn compute(spec: &GpuSpec, input: OccupancyInput) -> OccupancyAnalysis {
        OccupancyAnalysis {
            result: occ_calc(spec, input),
            input,
            warps_per_mp: spec.warps_per_mp,
        }
    }

    /// [`OccupancyAnalysis::compute`] served from a device
    /// [`OccupancyTable`] — bit-identical, but repeated analyses on one
    /// device (sweep reports, suggestion scans) hit the memo.
    pub fn compute_in(table: &OccupancyTable, input: OccupancyInput) -> OccupancyAnalysis {
        OccupancyAnalysis {
            result: table.lookup(input),
            input,
            warps_per_mp: table.spec().warps_per_mp,
        }
    }

    /// `occ_mp` of Eq. 2.
    pub fn occupancy(&self) -> f64 {
        self.result.occupancy
    }

    /// Human-readable limiter attribution.
    pub fn limiter_text(&self) -> &'static str {
        match self.result.limiter {
            Limiter::Warps => "warp capacity (Eq. 3)",
            Limiter::Registers => "register file (Eq. 4)",
            Limiter::SharedMem => "shared memory (Eq. 5)",
            Limiter::Illegal => "illegal configuration",
        }
    }

    /// Whether raising occupancy requires *lowering* a resource the user
    /// controls (the advice direction of Fig. 7).
    pub fn advice(&self) -> Option<String> {
        match self.result.limiter {
            Limiter::Registers => Some(format!(
                "register-limited: reducing below {} regs/thread raises occupancy",
                self.input.regs_per_thread
            )),
            Limiter::SharedMem => Some(format!(
                "shared-memory-limited: reducing below {} B/block raises occupancy",
                self.input.smem_per_block
            )),
            Limiter::Warps if self.result.occupancy < 1.0 => Some(
                "warp-limited: choose a block size whose warps divide the SM capacity"
                    .to_string(),
            ),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Gpu;

    #[test]
    fn analysis_carries_equation_pieces() {
        let spec = Gpu::K20.spec();
        let a = OccupancyAnalysis::compute(
            spec,
            OccupancyInput { tc: 256, regs_per_thread: 27, smem_per_block: 3072, shmem_per_mp: None },
        );
        assert_eq!(a.warps_per_mp, 64);
        assert_eq!(a.occupancy(), 1.0);
        assert!(a.advice().is_none());
        // All three limits materialized.
        assert!(a.result.blocks_by_warps >= 8);
        assert!(a.result.blocks_by_regs >= 8);
        assert!(a.result.blocks_by_smem >= 8);
    }

    #[test]
    fn register_limited_advice() {
        let spec = Gpu::M2050.spec();
        let a = OccupancyAnalysis::compute(
            spec,
            OccupancyInput { tc: 256, regs_per_thread: 63, smem_per_block: 0, shmem_per_mp: None },
        );
        assert!(a.occupancy() < 1.0);
        assert_eq!(a.limiter_text(), "register file (Eq. 4)");
        assert!(a.advice().unwrap().contains("63"));
    }

    #[test]
    fn smem_limited_advice() {
        let spec = Gpu::K20.spec();
        let a = OccupancyAnalysis::compute(
            spec,
            OccupancyInput {
                tc: 128,
                regs_per_thread: 16,
                smem_per_block: 24 * 1024,
                shmem_per_mp: None,
            },
        );
        assert_eq!(a.result.active_blocks, 2);
        assert!(a.advice().unwrap().contains("shared-memory"));
    }

    #[test]
    fn warp_limited_advice_for_awkward_block() {
        // Kepler TC=96 (3 warps): ⌊64/3⌋=21 > 16 slots → 16 blocks,
        // 48 warps → 0.75, warp/slot-limited.
        let spec = Gpu::K20.spec();
        let a = OccupancyAnalysis::compute(spec, OccupancyInput::of_block(96));
        assert!(a.occupancy() < 1.0);
        assert!(a.advice().unwrap().contains("warp-limited"));
    }
}
