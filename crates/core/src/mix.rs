//! Instruction-mix metrics (§III-B1).
//!
//! "Instruction mix is defined as the number of specific operations that
//! a processor executes. [...] In this work, we use instruction mixes to
//! characterize whether a kernel is memory-bound, compute-bound, or
//! relatively balanced."

use oriole_arch::{OpClass, ALL_OP_CLASSES};
use oriole_ir::{count, ClassMix, LaunchGeometry, MixCounts, Program, ProgramIndex};
use std::fmt;

/// The mix analysis of one kernel at one launch geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct MixReport {
    /// Raw static counts: one per instruction in the listing.
    pub static_counts: MixCounts,
    /// Trip-count-weighted per-thread expected counts at the geometry —
    /// the static *prediction* of dynamic behaviour.
    pub expected_counts: MixCounts,
    /// Coarse-class rollup of the expected counts.
    pub classes: ClassMix,
    /// Computational intensity: `O_fl / O_mem` (Table VI "Itns").
    pub intensity: f64,
}

/// Characterization bucket derived from the mix (§III-B1's discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelCharacter {
    /// Memory operations dominate the weighted mix.
    MemoryBound,
    /// Arithmetic dominates.
    ComputeBound,
    /// Neither dominates decisively.
    Balanced,
}

impl fmt::Display for KernelCharacter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelCharacter::MemoryBound => "memory-bound",
            KernelCharacter::ComputeBound => "compute-bound",
            KernelCharacter::Balanced => "balanced",
        };
        f.write_str(s)
    }
}

impl MixReport {
    /// Analyzes `program` at `geom` by walking the instruction vectors
    /// directly. Prefer [`MixReport::compute_with`] with the kernel's
    /// shared index on hot paths; both produce bit-identical reports.
    pub fn compute(program: &Program, geom: LaunchGeometry) -> MixReport {
        let static_counts = count::static_mix(program);
        let expected_counts = count::expected_mix(program, geom);
        let classes = expected_counts.classes();
        MixReport { static_counts, expected_counts, intensity: classes.intensity(), classes }
    }

    /// [`MixReport::compute`] replaying the prebuilt index's per-block
    /// summary tapes instead of re-walking `Instr` vectors.
    pub fn compute_with(
        index: &ProgramIndex,
        program: &Program,
        geom: LaunchGeometry,
    ) -> MixReport {
        let static_counts = index.static_mix();
        let expected_counts = index.expected_mix(program, geom);
        let classes = expected_counts.classes();
        MixReport { static_counts, expected_counts, intensity: classes.intensity(), classes }
    }

    /// §III-B1 characterization. The thresholds follow the paper's
    /// framing: intensity well above the rule threshold is
    /// compute-bound, well below is memory-bound.
    pub fn character(&self) -> KernelCharacter {
        if self.intensity > crate::rules::INTENSITY_THRESHOLD {
            KernelCharacter::ComputeBound
        } else if self.intensity < crate::rules::INTENSITY_THRESHOLD / 2.0 {
            KernelCharacter::MemoryBound
        } else {
            KernelCharacter::Balanced
        }
    }

    /// Expected counts for one Table II operation class.
    pub fn expected(&self, op: OpClass) -> f64 {
        self.expected_counts.get(op)
    }

    /// The per-class fractions of the four coarse classes
    /// `(O_fl, O_mem, O_ctrl, O_reg)` of the expected mix.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        self.classes.fractions()
    }

    /// Renders the per-class table (analysis-report section).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str("op class                    static      expected/thread\n");
        for &op in &ALL_OP_CLASSES {
            let s = self.static_counts.get(op);
            let e = self.expected_counts.get(op);
            if s == 0.0 && e == 0.0 {
                continue;
            }
            out.push_str(&format!("{:<26} {:>9.0} {:>18.1}\n", op.name(), s, e));
        }
        out.push_str(&format!(
            "classes: {} | intensity {:.2} ({})\n",
            self.classes,
            self.intensity,
            self.character()
        ));
        out
    }
}

/// Per-class error between a static estimate and observed dynamic
/// behaviour, the paper's Table VI quantity ("error rates calculated,
/// using sum of squares, when estimating dynamic behavior of the kernel
/// from static analysis of the instruction mix").
///
/// Both mixes are normalized to fractions of their totals per coarse
/// class; the error per class is the squared difference of fractions,
/// summed over the supplied geometries and scaled by 100 (percent² units
/// keep the numbers in the paper's 0.0–4.0 range).
pub fn static_vs_dynamic_error(
    pairs: &[(ClassMix, ClassMix)],
) -> ClassError {
    let mut e = ClassError::default();
    for (stat, dynamic) in pairs {
        let (sf, sm, sc, _) = stat.fractions();
        let (df, dm, dc, _) = dynamic.fractions();
        e.flops += (sf - df).powi(2) * 100.0;
        e.mem += (sm - dm).powi(2) * 100.0;
        e.ctrl += (sc - dc).powi(2) * 100.0;
    }
    e
}

/// Per-class sum-of-squares error (Table VI columns).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassError {
    /// FLOPS-class error.
    pub flops: f64,
    /// MEM-class error.
    pub mem: f64,
    /// CTRL-class error.
    pub ctrl: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::{Family, Gpu};
    use oriole_codegen::{compile, TuningParams};
    use oriole_kernels::KernelId;

    fn report(kid: KernelId, n: u64) -> MixReport {
        let kernel =
            compile(&kid.ast(n), Gpu::K20.spec(), TuningParams::with_geometry(128, 48)).unwrap();
        MixReport::compute(&kernel.program, LaunchGeometry::new(n, 128, 48))
    }

    #[test]
    fn kernel_characters_match_paper_bands() {
        assert_eq!(report(KernelId::Bicg, 256).character(), KernelCharacter::MemoryBound);
        assert_eq!(report(KernelId::MatVec2D, 256).character(), KernelCharacter::ComputeBound);
        assert_eq!(report(KernelId::Ex14Fj, 64).character(), KernelCharacter::ComputeBound);
        // ATAX sits between: balanced or memory-bound, never compute.
        assert_ne!(report(KernelId::Atax, 256).character(), KernelCharacter::ComputeBound);
    }

    #[test]
    fn intensity_ordering_matches_table_vi() {
        let bicg = report(KernelId::Bicg, 256).intensity;
        let atax = report(KernelId::Atax, 256).intensity;
        let matvec = report(KernelId::MatVec2D, 256).intensity;
        let ex14 = report(KernelId::Ex14Fj, 64).intensity;
        assert!(bicg < atax, "bicg {bicg} !< atax {atax}");
        assert!(atax < matvec, "atax {atax} !< matvec {matvec}");
        assert!(matvec < ex14, "matvec {matvec} !< ex14 {ex14}");
    }

    #[test]
    fn table_renders_nonempty() {
        let t = report(KernelId::Atax, 128).table();
        assert!(t.contains("FPIns32"));
        assert!(t.contains("intensity"));
    }

    #[test]
    fn fractions_sum_to_one() {
        let (a, b, c, d) = report(KernelId::Ex14Fj, 32).fractions();
        assert!((a + b + c + d - 1.0).abs() < 1e-9);
    }

    #[test]
    fn error_zero_for_identical_mixes() {
        let m = ClassMix { flops: 10.0, mem: 5.0, ctrl: 2.0, reg: 20.0 };
        let e = static_vs_dynamic_error(&[(m, m)]);
        assert_eq!(e.flops, 0.0);
        assert_eq!(e.mem, 0.0);
        assert_eq!(e.ctrl, 0.0);
    }

    #[test]
    fn error_grows_with_divergence_gap() {
        let stat = ClassMix { flops: 10.0, mem: 10.0, ctrl: 10.0, reg: 0.0 };
        let near = ClassMix { flops: 11.0, mem: 9.0, ctrl: 10.0, reg: 0.0 };
        let far = ClassMix { flops: 25.0, mem: 2.0, ctrl: 3.0, reg: 0.0 };
        let e_near = static_vs_dynamic_error(&[(stat, near)]);
        let e_far = static_vs_dynamic_error(&[(stat, far)]);
        assert!(e_far.flops > e_near.flops);
        assert!(e_far.mem > e_near.mem);
    }

    #[test]
    fn static_counts_independent_of_geometry() {
        let kernel = compile(
            &KernelId::Atax.ast(64),
            Gpu::M40.spec(),
            TuningParams::with_geometry(128, 48),
        )
        .unwrap();
        let a = MixReport::compute(&kernel.program, LaunchGeometry::new(64, 128, 48));
        let b = MixReport::compute(&kernel.program, LaunchGeometry::new(64, 512, 192));
        assert_eq!(a.static_counts, b.static_counts);
        assert_ne!(a.expected_counts, b.expected_counts);
        let _ = Family::Kepler; // silence unused-import lint paths
    }
}
