//! CFG-based divergence diagnosis.
//!
//! The paper distinguishes its analyzer from STATuner partly by building
//! "a CFG to help understand flow divergence" (§V). This module walks the
//! divergent regions the CFG analysis finds and quantifies the Fig. 1
//! effect: how much instruction issue a warp wastes executing both sides
//! of thread-dependent branches.

use oriole_ir::{LaunchGeometry, Program, ProgramIndex};

/// One divergent branch and its estimated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceFinding {
    /// Label of the block whose terminator diverges.
    pub branch_label: String,
    /// Label of the reconvergence block, if any.
    pub reconverges_at: Option<String>,
    /// Warp-level executions of the branch per thread (how often the
    /// split happens).
    pub executions: f64,
    /// Issue weight (instruction executions) in the region at
    /// *warp level* — both sides execute.
    pub warp_cost: f64,
    /// Issue weight at *thread level* — what a mask-aware machine would
    /// pay.
    pub thread_cost: f64,
}

impl DivergenceFinding {
    /// Serialization overhead ratio: warp-level over thread-level cost
    /// (1.0 = no waste; 2.0 = warps execute twice the useful work).
    pub fn overhead(&self) -> f64 {
        if self.thread_cost > 0.0 {
            self.warp_cost / self.thread_cost
        } else if self.warp_cost > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// Divergence analysis of a whole kernel.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DivergenceReport {
    /// Per-branch findings, in block order.
    pub findings: Vec<DivergenceFinding>,
    /// Kernel-wide issue overhead factor from divergence
    /// (warp-level total / thread-level total over the whole program).
    pub overall_overhead: f64,
}

impl DivergenceReport {
    /// Whether the kernel diverges at all.
    pub fn is_divergent(&self) -> bool {
        !self.findings.is_empty()
    }
}

/// Analyzes divergence of `program` at `geom`, building a throwaway
/// [`ProgramIndex`] first. Prefer [`analyze_divergence_with`] with the
/// kernel's shared index on hot paths.
pub fn analyze_divergence(program: &Program, geom: LaunchGeometry) -> DivergenceReport {
    analyze_divergence_with(&ProgramIndex::build(program), program, geom)
}

/// Analyzes divergence using a prebuilt index (the kernel's shared
/// artifact): precomputed regions, no per-call CFG construction, and a
/// branch-free fast path for divergence-free programs.
pub fn analyze_divergence_with(
    index: &ProgramIndex,
    program: &Program,
    geom: LaunchGeometry,
) -> DivergenceReport {
    let (n, tc, bc) = (geom.n, geom.tc, geom.bc);

    if index.divergence_fast_path() {
        // No divergent branch and no DivFraction factor anywhere: warp-
        // and thread-level weights coincide bitwise for every block, so
        // the totals are equal and the overhead is exactly their ratio
        // (reproducing the walk's inf/inf → NaN edge case included).
        let mut total_thread = 0.0;
        for (block, s) in program.blocks.iter().zip(index.summaries()) {
            total_thread += block.freq.eval_expected(n, tc, bc) * (s.instr_count as f64 + 1.0);
        }
        // t/t rather than a literal 1.0: a +inf total must yield NaN
        // here, exactly as the walk's warp/thread division does.
        #[allow(clippy::eq_op)]
        let overall_overhead =
            if total_thread > 0.0 { total_thread / total_thread } else { 1.0 };
        return DivergenceReport { findings: Vec::new(), overall_overhead };
    }

    let block_cost = |weights_warp: bool, id: oriole_ir::BlockId| -> f64 {
        let b = &program.blocks[id.0 as usize];
        let w = if weights_warp {
            b.freq.eval_warp(n, tc, bc)
        } else {
            b.freq.eval_expected(n, tc, bc)
        };
        w * (index.summary(id).instr_count as f64 + 1.0)
    };

    let mut findings = Vec::new();
    for region in index.divergent_regions() {
        let branch = &program.blocks[region.branch_block.0 as usize];
        let mut warp_cost = 0.0;
        let mut thread_cost = 0.0;
        // Region bodies are sorted block-id vectors: the summation order
        // is deterministic across processes and analysis paths.
        for &b in &region.body {
            warp_cost += block_cost(true, b);
            thread_cost += block_cost(false, b);
        }
        findings.push(DivergenceFinding {
            branch_label: branch.label.clone(),
            reconverges_at: region
                .reconvergence
                .map(|r| program.blocks[r.0 as usize].label.clone()),
            executions: branch.freq.eval_warp(n, tc, bc),
            warp_cost,
            thread_cost,
        });
    }

    let mut total_warp = 0.0;
    let mut total_thread = 0.0;
    for i in 0..program.blocks.len() {
        let id = oriole_ir::BlockId(i as u32);
        total_warp += block_cost(true, id);
        total_thread += block_cost(false, id);
    }
    let overall_overhead = if total_thread > 0.0 { total_warp / total_thread } else { 1.0 };

    DivergenceReport { findings, overall_overhead }
}

/// The pre-index walk-based implementation, retained as the oracle the
/// proptests compare against (region bodies summed in sorted order, as
/// the indexed path does).
#[cfg(test)]
pub(crate) fn analyze_divergence_walk(program: &Program, geom: LaunchGeometry) -> DivergenceReport {
    let cfg = oriole_ir::Cfg::build(program);
    let regions = cfg.divergent_regions(program);
    let (n, tc, bc) = (geom.n, geom.tc, geom.bc);

    let block_cost = |weights_warp: bool, id: oriole_ir::BlockId| -> f64 {
        let b = &program.blocks[id.0 as usize];
        let w = if weights_warp {
            b.freq.eval_warp(n, tc, bc)
        } else {
            b.freq.eval_expected(n, tc, bc)
        };
        w * (b.instrs.len() as f64 + 1.0)
    };

    let mut findings = Vec::new();
    for region in &regions {
        let branch = &program.blocks[region.branch_block.0 as usize];
        let mut body: Vec<oriole_ir::BlockId> = region.body.iter().copied().collect();
        body.sort_unstable();
        let mut warp_cost = 0.0;
        let mut thread_cost = 0.0;
        for &b in &body {
            warp_cost += block_cost(true, b);
            thread_cost += block_cost(false, b);
        }
        findings.push(DivergenceFinding {
            branch_label: branch.label.clone(),
            reconverges_at: region
                .reconvergence
                .map(|r| program.blocks[r.0 as usize].label.clone()),
            executions: branch.freq.eval_warp(n, tc, bc),
            warp_cost,
            thread_cost,
        });
    }

    let mut total_warp = 0.0;
    let mut total_thread = 0.0;
    for i in 0..program.blocks.len() {
        let id = oriole_ir::BlockId(i as u32);
        total_warp += block_cost(true, id);
        total_thread += block_cost(false, id);
    }
    let overall_overhead = if total_thread > 0.0 { total_warp / total_thread } else { 1.0 };

    DivergenceReport { findings, overall_overhead }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Family;
    use oriole_ir::lower::{lower, LowerOptions};
    use oriole_ir::{AluOp, Branch, DivergenceKind, KernelAst, Stmt};

    fn analyze_body(body: Vec<Stmt>) -> DivergenceReport {
        let mut k = KernelAst::new("d");
        k.body = body;
        let p = lower(&k, Family::Kepler, LowerOptions::default());
        analyze_divergence(&p, LaunchGeometry::new(64, 128, 8))
    }

    #[test]
    fn straight_line_kernel_clean() {
        let r = analyze_body(vec![Stmt::ops(AluOp::FmaF32, 8)]);
        assert!(!r.is_divergent());
        assert!((r.overall_overhead - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_branch_not_flagged() {
        let r = analyze_body(vec![Stmt::If(Branch {
            divergence: DivergenceKind::Uniform,
            taken_fraction: 0.5,
            then_body: vec![Stmt::ops(AluOp::AddF32, 4)],
            else_body: vec![Stmt::ops(AluOp::MulF32, 4)],
        })]);
        assert!(!r.is_divergent());
    }

    #[test]
    fn divergent_branch_quantified() {
        let r = analyze_body(vec![Stmt::If(Branch {
            divergence: DivergenceKind::ThreadDependent,
            taken_fraction: 0.1,
            then_body: vec![Stmt::ops(AluOp::AddF32, 20)],
            else_body: vec![Stmt::ops(AluOp::MulF32, 20)],
        })]);
        assert!(r.is_divergent());
        assert_eq!(r.findings.len(), 1);
        let f = &r.findings[0];
        // Warp executes both sides (≈ 2× the thread-level expectation of
        // 0.1·cost + 0.9·cost = 1× side cost).
        assert!(f.overhead() > 1.5, "overhead {}", f.overhead());
        assert!(f.reconverges_at.is_some());
        assert!(r.overall_overhead > 1.2);
    }

    #[test]
    fn fifty_fifty_divergence_costs_double() {
        // With p = 0.5 the thread-level cost is half of executing both
        // sides; warps pay everything → overhead ≈ 2.
        let r = analyze_body(vec![Stmt::If(Branch {
            divergence: DivergenceKind::ThreadDependent,
            taken_fraction: 0.5,
            then_body: vec![Stmt::ops(AluOp::AddF32, 30)],
            else_body: vec![Stmt::ops(AluOp::MulF32, 30)],
        })]);
        let f = &r.findings[0];
        assert!((f.overhead() - 2.0).abs() < 0.15, "overhead {}", f.overhead());
    }

    #[test]
    fn ex14fj_divergence_shrinks_with_n() {
        // Boundary fraction falls with N, so the overall overhead factor
        // falls too.
        let overhead = |n: u64| {
            let ast = oriole_kernels::ex14fj::ast(n);
            let p = lower(&ast, Family::Maxwell, LowerOptions::default());
            analyze_divergence(&p, LaunchGeometry::new(n, 128, 48)).overall_overhead
        };
        assert!(overhead(8) > overhead(64), "{} !> {}", overhead(8), overhead(64));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use oriole_arch::Family;
    use oriole_ir::lower::{lower, LowerOptions};
    use oriole_ir::{
        AccessPattern, AluOp, Branch, DivergenceKind, KernelAst, Loop, MemSpace, MemStmt,
        SizeExpr, Stmt, TripCount,
    };
    use proptest::prelude::*;

    fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
        let alu = prop_oneof![
            Just(AluOp::AddF32),
            Just(AluOp::MulF32),
            Just(AluOp::FmaF32),
            Just(AluOp::DivF32),
            Just(AluOp::SqrtF32),
            Just(AluOp::AddI32),
            Just(AluOp::CvtI32F32),
        ];
        let space = prop_oneof![
            Just(MemSpace::Global),
            Just(MemSpace::Shared),
            Just(MemSpace::Constant),
        ];
        let pattern = prop_oneof![
            Just(AccessPattern::Coalesced),
            Just(AccessPattern::Broadcast),
            Just(AccessPattern::Random),
            (1u32..=64).prop_map(AccessPattern::Strided),
        ];
        let leaf = prop_oneof![
            (alu, 1u32..4).prop_map(|(op, count)| Stmt::ops(op, count)),
            (space.clone(), pattern.clone(), 1u32..3).prop_map(|(s, p, c)| Stmt::load(s, p, c)),
            (space, pattern, 1u32..3).prop_map(|(s, p, c)| {
                Stmt::Store(MemStmt { space: s, pattern: p, elem_bytes: 4, count: c })
            }),
            Just(Stmt::SyncThreads),
        ];
        if depth == 0 {
            return leaf.boxed();
        }
        let trip = prop_oneof![
            (1u64..=64).prop_map(TripCount::Const),
            (0u8..=2).prop_map(|p| TripCount::Size(SizeExpr::new(1.0, p))),
            (1u8..=2).prop_map(|p| TripCount::GridStride(SizeExpr::new(1.0, p))),
        ];
        let inner = arb_stmt(depth - 1);
        prop_oneof![
            4 => leaf,
            2 => (trip, prop::collection::vec(inner.clone(), 1..4), any::<bool>()).prop_map(
                |(trip, body, unrollable)| Stmt::Loop(Loop { trip, body, unrollable })
            ),
            1 => (
                prop_oneof![Just(DivergenceKind::Uniform), Just(DivergenceKind::ThreadDependent)],
                0.0f64..=1.0,
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner, 0..3),
            )
                .prop_map(|(divergence, taken_fraction, then_body, else_body)| {
                    Stmt::If(Branch { divergence, taken_fraction, then_body, else_body })
                }),
        ]
        .boxed()
    }

    fn arb_kernel() -> impl Strategy<Value = KernelAst> {
        prop::collection::vec(arb_stmt(2), 1..5).prop_map(|body| {
            let mut k = KernelAst::new("div_prop");
            k.body = body;
            k
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn indexed_divergence_bit_identical(
            ast in arb_kernel(),
            fast in any::<bool>(),
            n in 1u64..256,
            tc_i in 0usize..4,
            bc in 1u32..49,
        ) {
            let tc = [32u32, 128, 512, 1024][tc_i];
            let p = lower(&ast, Family::Kepler, LowerOptions { fast_math: fast });
            let geom = LaunchGeometry::new(n, tc, bc);
            let indexed =
                analyze_divergence_with(&oriole_ir::ProgramIndex::build(&p), &p, geom);
            let walk = analyze_divergence_walk(&p, geom);
            prop_assert_eq!(&indexed, &walk);
            // The convenience wrapper builds an equivalent throwaway index.
            prop_assert_eq!(&analyze_divergence(&p, geom), &walk);
        }
    }
}
