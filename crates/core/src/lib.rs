//! # oriole-core — the static analyzer and predictive models
//!
//! This crate is the paper's primary contribution: a static analyzer for
//! GPU kernels that discovers near-optimal launch parameters **without
//! any program runs** (§III). It consumes the textual disassembly the
//! compiler substrate emits — exactly as the paper's tool consumes
//! `nvdisasm` output — and produces:
//!
//! * [`occupancy`] — the paper's occupancy model (Eqs. 1–5) with limiter
//!   attribution, presented over the mechanical calculator in
//!   [`oriole_arch::occupancy`].
//! * [`mix`] — instruction-mix metrics (§III-B1): static and
//!   trip-count-weighted per-class counts, and the computational
//!   *intensity* that drives the rule-based heuristic.
//! * [`pipeline`] — pipeline-utilization estimates (§III-B2): how issue
//!   cycles distribute over the functional-unit classes of Table II.
//! * [`predict`] — the execution-time model of Eq. 6,
//!   `f(N) = c_f·O_fl + c_m·O_mem + c_b·O_ctrl + c_r·O_reg`, with CPI
//!   coefficients taken from Table II (never fitted to the simulator),
//!   plus the normalization and MAE machinery of Fig. 5.
//! * [`suggest`] — Table VII's outputs: the thread counts `T*` achieving
//!   theoretical occupancy, register headroom `[R_u : R*]`, shared-memory
//!   headroom `S*`, and `occ*`.
//! * [`rules`] — the §III-C rule-based heuristic: kernels with intensity
//!   above 4.0 prefer the upper suggested thread range, others the lower.
//! * [`divergence`] — CFG-based divergence diagnosis (the Fig. 1
//!   problem): which branches split warps and what the serialization
//!   costs.
//! * [`report`] — the Fig. 7-style occupancy-calculator report comparing
//!   a kernel's current configuration with its suggested one.
//!
//! The umbrella entry point is [`analyze`] / [`StaticAnalysis`].

#![warn(missing_docs)]

pub mod divergence;
pub mod mix;
pub mod occupancy;
pub mod pipeline;
pub mod predict;
pub mod report;
pub mod rules;
pub mod suggest;

mod analyzer;

pub use analyzer::{analyze, analyze_disassembly, analyze_in, StaticAnalysis};
pub use divergence::{analyze_divergence, analyze_divergence_with, DivergenceFinding, DivergenceReport};
pub use mix::MixReport;
pub use occupancy::OccupancyAnalysis;
pub use pipeline::PipelineUtilization;
pub use predict::{mae, normalize, predict_time, predict_time_indexed, PredictedSeries};
pub use rules::{ThreadRange, INTENSITY_THRESHOLD};
pub use suggest::Suggestion;
