//! Execution-time prediction from static instruction mixes — Eq. 6.
//!
//! > `f(N) = c_f·O_fl + c_m·O_mem + c_b·O_ctrl + c_r·O_reg`
//! > where `c_f, c_m, c_b, c_r` are coefficients that represent the
//! > reciprocal of the number of instructions that can execute in a
//! > cycle, or CPI. Equation 6 represents how a program will perform for
//! > input size N *without running the application*.
//!
//! The coefficients come straight from Table II (class CPIs for the
//! target compute capability); they are **not** fitted against the
//! simulator, keeping the prediction honestly static. Output is in
//! arbitrary model units — Fig. 5 normalizes both predictions and
//! measurements before comparing, and so do we ([`normalize`], [`mae`]).
//!
//! Eq. 6 is also available as a pluggable timing backend: the
//! `StaticPredictModel` in `oriole_sim::model` wraps
//! [`predict_time_with`] behind the `TimingModel` trait, so the CLI's
//! `--model static` (on `tune`/`simulate`/`analyze`) and the
//! `model_agreement` experiment bin run this predictor through the same
//! memoized, content-addressed evaluation stack as the simulator.
//! [`predict_time_with`] takes the Table II column explicitly — for
//! callers that already hold the device's table (the analyzer resolves
//! one for its pipeline estimate, model contexts own their device), and
//! as the injection point for non-family tables (measured or synthetic
//! columns) later. [`predict_time`] is the convenience form that
//! resolves the column from the program's family — a cheap static
//! lookup, so pick whichever reads better at the call site.

use oriole_arch::{InstrClass, ThroughputTable};
use oriole_ir::{count, LaunchGeometry, Program, ProgramIndex};

/// Eq. 6: predicted execution cost of one kernel launch at geometry
/// `geom`, from the *static* (trip-count-weighted) per-thread mix.
///
/// Thin wrapper over [`predict_time_with`] with the Table II column
/// resolved from the program's family.
pub fn predict_time(program: &Program, geom: LaunchGeometry) -> f64 {
    predict_time_with(ThroughputTable::for_family(program.meta.family), program, geom)
}

/// [`predict_time`] with an explicit Table II column — for callers
/// that already hold one (the analyzer, the `StaticPredictModel`
/// backend) and for injecting non-family tables. Bit-identical to
/// [`predict_time`] when `table` matches the program's family.
pub fn predict_time_with(table: &ThroughputTable, program: &Program, geom: LaunchGeometry) -> f64 {
    let classes = count::expected_mix(program, geom).classes();
    eq6(table, classes)
}

/// [`predict_time_with`] replaying the prebuilt index's per-block mix
/// tapes instead of re-walking `Instr` vectors. The tape preserves the
/// walk's record order and weights, so the result is bit-identical.
pub fn predict_time_indexed(
    table: &ThroughputTable,
    index: &ProgramIndex,
    program: &Program,
    geom: LaunchGeometry,
) -> f64 {
    let classes = index.expected_mix(program, geom).classes();
    eq6(table, classes)
}

/// The Eq. 6 dot product shared by the walk and indexed entry points.
fn eq6(table: &ThroughputTable, classes: oriole_ir::ClassMix) -> f64 {
    let cf = table.class_cpi(InstrClass::Flops);
    let cm = table.class_cpi(InstrClass::Mem);
    let cb = table.class_cpi(InstrClass::Ctrl);
    let cr = table.class_cpi(InstrClass::Reg);
    cf * classes.flops + cm * classes.mem + cb * classes.ctrl + cr * classes.reg
}

/// A (prediction, measurement) series over a set of code variants,
/// prepared for Fig. 5-style comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictedSeries {
    /// Normalized predictions, sorted by ascending *measured* time.
    pub predicted: Vec<f64>,
    /// Normalized measurements, ascending.
    pub measured: Vec<f64>,
}

impl PredictedSeries {
    /// Builds the Fig. 5 series: sorts variants by measured time,
    /// normalizes both signals to `[0, 1]`.
    pub fn build(pairs: &[(f64, f64)]) -> PredictedSeries {
        let mut sorted: Vec<(f64, f64)> = pairs.to_vec();
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));
        let predicted = normalize(&sorted.iter().map(|p| p.0).collect::<Vec<_>>());
        let measured = normalize(&sorted.iter().map(|p| p.1).collect::<Vec<_>>());
        PredictedSeries { predicted, measured }
    }

    /// Mean absolute error between the normalized series (the Fig. 5
    /// y-axis quantity).
    pub fn mae(&self) -> f64 {
        mae(&self.predicted, &self.measured)
    }

    /// Spearman-style rank agreement: fraction of variant pairs ordered
    /// identically by prediction and measurement. 1.0 = the static model
    /// ranks exactly like the machine; 0.5 = no information.
    pub fn rank_agreement(&self) -> f64 {
        let n = self.predicted.len();
        if n < 2 {
            return 1.0;
        }
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let dp = self.predicted[i] - self.predicted[j];
                let dm = self.measured[i] - self.measured[j];
                if dp == 0.0 || dm == 0.0 {
                    continue;
                }
                total += 1;
                if (dp > 0.0) == (dm > 0.0) {
                    agree += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            agree as f64 / total as f64
        }
    }
}

/// Min–max normalization to `[0, 1]` (constant series map to zeros).
pub fn normalize(values: &[f64]) -> Vec<f64> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() || hi == lo {
        return vec![0.0; values.len()];
    }
    values.iter().map(|&v| (v - lo) / (hi - lo)).collect()
}

/// Mean absolute error between two equal-length series.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Gpu;
    use oriole_codegen::{compile, TuningParams};
    use oriole_kernels::KernelId;

    fn predict(kid: KernelId, n: u64, tc: u32) -> f64 {
        let kernel =
            compile(&kid.ast(n), Gpu::K20.spec(), TuningParams::with_geometry(tc, 48)).unwrap();
        predict_time(&kernel.program, LaunchGeometry::new(n, tc, 48))
    }

    #[test]
    fn prediction_grows_with_n() {
        // Eq. 6's premise: execution cost is proportional to problem
        // size.
        let small = predict(KernelId::Atax, 64, 128);
        let large = predict(KernelId::Atax, 256, 128);
        assert!(large > small * 3.0, "{large} vs {small}");
    }

    #[test]
    fn hoisted_table_is_bit_identical() {
        // The sweep-loop variant with a caller-resolved table must be the
        // same computation as the per-call convenience wrapper.
        let kernel = compile(
            &KernelId::Bicg.ast(128),
            Gpu::K20.spec(),
            TuningParams::with_geometry(256, 48),
        )
        .unwrap();
        let geom = kernel.geometry(128);
        let table = oriole_arch::ThroughputTable::for_family(kernel.program.meta.family);
        assert_eq!(
            predict_time_with(table, &kernel.program, geom),
            predict_time(&kernel.program, geom)
        );
    }

    #[test]
    fn prediction_is_static_only() {
        // The predictor touches no simulator state: two calls agree
        // bit-for-bit.
        assert_eq!(predict(KernelId::Bicg, 128, 256), predict(KernelId::Bicg, 128, 256));
    }

    #[test]
    fn normalize_bounds() {
        let v = normalize(&[5.0, 10.0, 7.5]);
        assert_eq!(v, vec![0.0, 1.0, 0.5]);
        assert_eq!(normalize(&[3.0, 3.0]), vec![0.0, 0.0]);
        assert_eq!(normalize(&[]), Vec::<f64>::new());
    }

    #[test]
    fn mae_basics() {
        assert_eq!(mae(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mae(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
        assert_eq!(mae(&[], &[]), 0.0);
    }

    #[test]
    fn series_sorted_by_measurement() {
        let pairs = vec![(3.0, 30.0), (1.0, 10.0), (2.0, 20.0)];
        let s = PredictedSeries::build(&pairs);
        assert_eq!(s.measured, vec![0.0, 0.5, 1.0]);
        assert_eq!(s.predicted, vec![0.0, 0.5, 1.0]);
        assert_eq!(s.mae(), 0.0);
        assert_eq!(s.rank_agreement(), 1.0);
    }

    #[test]
    fn rank_agreement_detects_anticorrelation() {
        let pairs = vec![(3.0, 10.0), (2.0, 20.0), (1.0, 30.0)];
        let s = PredictedSeries::build(&pairs);
        assert_eq!(s.rank_agreement(), 0.0);
        assert!(s.mae() > 0.3);
    }

    #[test]
    fn prediction_tracks_simulator_ranking_for_unroll_sweep() {
        // Within one kernel/geometry, sweeping UIF changes the mix; the
        // static prediction should rank variants consistently with the
        // simulator more often than not (Fig. 5's claim).
        let gpu = Gpu::K20.spec();
        let mut pairs = Vec::new();
        for uif in 1..=5u32 {
            let mut params = TuningParams::with_geometry(128, 48);
            params.uif = uif;
            let kernel = compile(&KernelId::Atax.ast(256), gpu, params).unwrap();
            let pred = predict_time(&kernel.program, kernel.geometry(256));
            let meas = oriole_sim::simulate(&kernel, 256).unwrap().time_ms;
            pairs.push((pred, meas));
        }
        let s = PredictedSeries::build(&pairs);
        assert!(s.rank_agreement() >= 0.5, "agreement {}", s.rank_agreement());
    }
}
