//! The umbrella analyzer: everything the paper's tool produces, in one
//! call.

use crate::divergence::{analyze_divergence_with, DivergenceReport};
use crate::mix::MixReport;
use crate::occupancy::OccupancyAnalysis;
use crate::pipeline::PipelineUtilization;
use crate::predict::predict_time_indexed;
use crate::rules;
use crate::suggest::{suggest_from, Suggestion};
use oriole_arch::{GpuSpec, OccupancyInput, OccupancyTable, ThroughputTable};
use oriole_codegen::CompiledKernel;
use oriole_ir::{text, LaunchGeometry, ParseError, Program, ProgramIndex};
use std::fmt::Write as _;

/// The combined static analysis of one kernel configuration: the
/// analyzer's full output for a single `(kernel, GPU, geometry)` triple.
///
/// Everything here is computed **without executing the kernel** — from
/// the disassembly listing, the `ptxas`-style resource metadata and the
/// architecture model alone.
#[derive(Debug, Clone)]
pub struct StaticAnalysis {
    /// Kernel name from the listing.
    pub kernel_name: String,
    /// Target device (owned, so analyses of synthetic/custom devices
    /// need no static registry).
    pub gpu: GpuSpec,
    /// Geometry analyzed.
    pub geometry: LaunchGeometry,
    /// Instruction-mix metrics (§III-B1).
    pub mix: MixReport,
    /// Occupancy model output (Eqs. 1–5).
    pub occupancy: OccupancyAnalysis,
    /// Pipeline-utilization estimate (§III-B2).
    pub pipeline: PipelineUtilization,
    /// Divergence diagnosis (Fig. 1 / CFG analysis).
    pub divergence: DivergenceReport,
    /// Table VII suggestion.
    pub suggestion: Suggestion,
    /// The rule-based heuristic's pruned thread list (§III-C).
    pub rule_threads: Vec<u32>,
    /// Eq. 6 predicted execution cost (model units).
    pub predicted_time: f64,
}

/// Analyzes a compiled kernel at problem size `n`, reusing the kernel's
/// shared [`ProgramIndex`] for the mix, divergence and prediction
/// phases.
pub fn analyze(kernel: &CompiledKernel, n: u64) -> StaticAnalysis {
    analyze_program(
        &kernel.index,
        &kernel.program,
        &kernel.gpu,
        None,
        LaunchGeometry::new(n, kernel.params.tc, kernel.params.bc),
    )
}

/// [`analyze`] with the occupancy model served from a device
/// [`OccupancyTable`] (usually a model context's). The suggestion scan
/// and occupancy analysis probe the same tiny quantized domain for every
/// kernel on a device, so batch analyses hit the memo; results are
/// bit-identical to [`analyze`].
pub fn analyze_in(table: &OccupancyTable, kernel: &CompiledKernel, n: u64) -> StaticAnalysis {
    debug_assert_eq!(*table.spec(), kernel.gpu, "table built for another device");
    analyze_program(
        &kernel.index,
        &kernel.program,
        &kernel.gpu,
        Some(table),
        LaunchGeometry::new(n, kernel.params.tc, kernel.params.bc),
    )
}

/// Analyzes a textual disassembly listing — the paper's actual tool
/// interface (`nvdisasm` output in, analysis out). The target GPU must
/// match the listing's `family=` header.
pub fn analyze_disassembly(
    listing: &str,
    gpu: &GpuSpec,
    geometry: LaunchGeometry,
) -> Result<StaticAnalysis, ParseError> {
    let program = text::parse(listing)?;
    if program.meta.family != gpu.family {
        return Err(ParseError {
            line: 0,
            msg: format!(
                "listing targets {} but analysis requested for {}",
                program.meta.family, gpu.family
            ),
        });
    }
    // Parsed listings carry no prebuilt index; build one for this
    // analysis (identical contents to the compiled path's, since the
    // parse round-trips the program exactly).
    let index = ProgramIndex::build(&program);
    Ok(analyze_program(&index, &program, gpu, None, geometry))
}

fn analyze_program(
    index: &ProgramIndex,
    program: &Program,
    gpu: &GpuSpec,
    table: Option<&OccupancyTable>,
    geometry: LaunchGeometry,
) -> StaticAnalysis {
    let mix = MixReport::compute_with(index, program, geometry);
    let occ_input = OccupancyInput {
        tc: geometry.tc,
        regs_per_thread: program.meta.regs_per_thread,
        smem_per_block: program.meta.smem_static,
        shmem_per_mp: None,
    };
    let occupancy = match table {
        Some(t) => OccupancyAnalysis::compute_in(t, occ_input),
        None => OccupancyAnalysis::compute(gpu, occ_input),
    };
    // One Table II column serves both the pipeline estimate and the
    // Eq. 6 prediction; the program's family always matches the GPU's
    // (`analyze_disassembly` rejects mismatches up front).
    let throughput = ThroughputTable::for_family(gpu.family);
    let pipeline = PipelineUtilization::compute(&mix.expected_counts, throughput);
    let divergence = analyze_divergence_with(index, program, geometry);
    let suggestion = match table {
        Some(t) => {
            crate::suggest::suggest_from_in(t, program.meta.regs_per_thread, program.meta.smem_static)
        }
        None => suggest_from(gpu, program.meta.regs_per_thread, program.meta.smem_static),
    };
    let rule_threads = rules::rule_based_threads(&suggestion.thread_counts, mix.intensity);
    let predicted_time = predict_time_indexed(throughput, index, program, geometry);
    StaticAnalysis {
        kernel_name: program.name.clone(),
        gpu: gpu.clone(),
        geometry,
        mix,
        occupancy,
        pipeline,
        divergence,
        suggestion,
        rule_threads,
        predicted_time,
    }
}

impl StaticAnalysis {
    /// Renders the complete analysis as a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== static analysis: {} on {} ({}) ===",
            self.kernel_name, self.gpu.name, self.geometry
        );
        out.push_str(&self.mix.table());
        let _ = writeln!(
            out,
            "occupancy: {:.2} ({} blocks/SM), limited by {}",
            self.occupancy.occupancy(),
            self.occupancy.result.active_blocks,
            self.occupancy.limiter_text()
        );
        if let Some(advice) = self.occupancy.advice() {
            let _ = writeln!(out, "advice: {advice}");
        }
        let (unit, share) = self.pipeline.bottleneck();
        let _ = writeln!(out, "pipeline bottleneck: {unit} ({:.0}% of issue cycles)", share * 100.0);
        if self.divergence.is_divergent() {
            let _ = writeln!(
                out,
                "divergence: {} branch(es), overall issue overhead {:.2}x",
                self.divergence.findings.len(),
                self.divergence.overall_overhead
            );
            for f in &self.divergence.findings {
                let _ = writeln!(
                    out,
                    "  @{}: {:.2}x serialization, reconverges at {}",
                    f.branch_label,
                    f.overhead(),
                    f.reconverges_at.as_deref().unwrap_or("<exit>")
                );
            }
        } else {
            let _ = writeln!(out, "divergence: none");
        }
        let _ = writeln!(out, "suggestion: {}", self.suggestion.row());
        let threads: Vec<String> = self.rule_threads.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(
            out,
            "rule-based threads (intensity {:.2} {} {:.1}): {{{}}}",
            self.mix.intensity,
            if self.mix.intensity > rules::INTENSITY_THRESHOLD { ">" } else { "<=" },
            rules::INTENSITY_THRESHOLD,
            threads.join(",")
        );
        let _ = writeln!(out, "predicted cost (Eq. 6): {:.3} model units", self.predicted_time);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Gpu;
    use oriole_codegen::{compile, TuningParams};
    use oriole_kernels::KernelId;

    fn compiled(kid: KernelId, gpu: Gpu, n: u64) -> CompiledKernel {
        compile(&kid.ast(n), gpu.spec(), TuningParams::with_geometry(128, 48)).unwrap()
    }

    #[test]
    fn analyze_all_kernels_all_gpus() {
        for kid in oriole_kernels::ALL_KERNELS {
            for gpu in oriole_arch::ALL_GPUS {
                let n = kid.input_sizes()[1];
                let a = analyze(&compiled(kid, gpu, n), n);
                assert_eq!(a.kernel_name, kid.name());
                assert!(a.predicted_time > 0.0);
                assert!(!a.suggestion.thread_counts.is_empty());
                assert!(!a.rule_threads.is_empty());
                assert!(a.occupancy.occupancy() > 0.0);
            }
        }
    }

    #[test]
    fn disassembly_path_equals_compiled_path() {
        // The analyzer consumes text exactly as the paper's tool consumes
        // nvdisasm output; results must match the direct path.
        let kernel = compiled(KernelId::Atax, Gpu::K20, 128);
        let direct = analyze(&kernel, 128);
        let listing = kernel.disassembly();
        let via_text = analyze_disassembly(
            &listing,
            Gpu::K20.spec(),
            LaunchGeometry::new(128, 128, 48),
        )
        .expect("parses");
        assert_eq!(via_text.mix, direct.mix);
        assert_eq!(via_text.predicted_time, direct.predicted_time);
        assert_eq!(via_text.suggestion, direct.suggestion);
        assert_eq!(via_text.rule_threads, direct.rule_threads);
    }

    #[test]
    fn family_mismatch_rejected() {
        let kernel = compiled(KernelId::Atax, Gpu::K20, 64);
        let err = analyze_disassembly(
            &kernel.disassembly(),
            Gpu::P100.spec(),
            LaunchGeometry::new(64, 128, 48),
        )
        .unwrap_err();
        assert!(err.msg.contains("Kepler"));
    }

    #[test]
    fn rule_threads_band_matches_kernel_class() {
        // Low-intensity kernels get the lower band; high-intensity the
        // upper (§III-C).
        let atax = analyze(&compiled(KernelId::Atax, Gpu::K20, 256), 256);
        let t_star = &atax.suggestion.thread_counts;
        assert_eq!(atax.rule_threads, t_star[..t_star.len() / 2].to_vec());

        let ex14 = analyze(&compiled(KernelId::Ex14Fj, Gpu::K20, 64), 64);
        let t_star = &ex14.suggestion.thread_counts;
        assert_eq!(ex14.rule_threads, t_star[t_star.len() / 2..].to_vec());
    }

    #[test]
    fn report_renders_sections() {
        let a = analyze(&compiled(KernelId::Ex14Fj, Gpu::M40, 32), 32);
        let text = a.render();
        for needle in [
            "static analysis",
            "occupancy:",
            "pipeline bottleneck",
            "divergence:",
            "suggestion:",
            "rule-based threads",
            "predicted cost",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        // ex14fj is divergent — the report must say so with a branch.
        assert!(text.contains("serialization"));
    }
}
