//! Fig. 7-style occupancy-calculator reports.
//!
//! The paper's Fig. 7 shows the classic occupancy-calculator panels —
//! occupancy as a function of block size, register count and shared
//! memory, with the current configuration marked — for the kernel as
//! compiled ("current") and as the analyzer suggests ("potential"). This
//! module renders the same content as text.

use crate::suggest::Suggestion;
use oriole_arch::{occupancy, GpuSpec, OccupancyInput};
use std::fmt::Write as _;

/// One panel: occupancy as a function of a single varying resource.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancySeries {
    /// The varying quantity's values.
    pub x: Vec<u32>,
    /// Occupancy at each value.
    pub occ: Vec<f64>,
    /// Index of the current configuration within `x` (if on-grid).
    pub current: Option<usize>,
}

impl OccupancySeries {
    /// Renders an ASCII bar panel (one row per x value).
    pub fn render(&self, title: &str) -> String {
        let mut out = format!("{title}\n");
        for (i, (&x, &o)) in self.x.iter().zip(&self.occ).enumerate() {
            let bars = (o * 32.0).round() as usize;
            let marker = if self.current == Some(i) { "<= current" } else { "" };
            let _ = writeln!(out, "{x:>6} |{:<32}| {:>5.2} {marker}", "#".repeat(bars), o);
        }
        out
    }
}

/// Occupancy vs block size, at fixed registers/shared memory.
pub fn vary_block_size(spec: &GpuSpec, regs: u32, smem: u32, current_tc: u32) -> OccupancySeries {
    let step = spec.warp_size * 2;
    let xs: Vec<u32> = (1..=(spec.threads_per_block / step)).map(|i| i * step).collect();
    series(spec, &xs, current_tc, |tc| OccupancyInput {
        tc,
        regs_per_thread: regs,
        smem_per_block: smem,
        shmem_per_mp: None,
    })
}

/// Occupancy vs registers per thread, at a fixed block size.
pub fn vary_registers(spec: &GpuSpec, tc: u32, smem: u32, current_regs: u32) -> OccupancySeries {
    let xs: Vec<u32> = (1..=(spec.regs_per_thread_max / 8)).map(|i| i * 8).collect();
    series(spec, &xs, current_regs, |r| OccupancyInput {
        tc,
        regs_per_thread: r,
        smem_per_block: smem,
        shmem_per_mp: None,
    })
}

/// Occupancy vs shared memory per block, at a fixed block size.
pub fn vary_shared_mem(spec: &GpuSpec, tc: u32, regs: u32, current_smem: u32) -> OccupancySeries {
    let step = 2048u32;
    let xs: Vec<u32> = (0..=(spec.shmem_per_block / step)).map(|i| i * step).collect();
    series(spec, &xs, current_smem, |s| OccupancyInput {
        tc,
        regs_per_thread: regs,
        smem_per_block: s,
        shmem_per_mp: None,
    })
}

fn series(
    spec: &GpuSpec,
    xs: &[u32],
    current: u32,
    input: impl Fn(u32) -> OccupancyInput,
) -> OccupancySeries {
    let occ: Vec<f64> = xs.iter().map(|&x| occupancy(spec, input(x)).occupancy).collect();
    let current_idx = xs.iter().position(|&x| x == current);
    OccupancySeries { x: xs.to_vec(), occ, current: current_idx }
}

/// The full Fig. 7 report: current configuration vs the analyzer's
/// suggested one, with all three panels for each.
pub fn occupancy_calculator_report(
    spec: &GpuSpec,
    kernel_name: &str,
    current_tc: u32,
    regs: u32,
    smem: u32,
    suggestion: &Suggestion,
) -> String {
    let mut out = String::new();
    let current_occ = occupancy(
        spec,
        OccupancyInput { tc: current_tc, regs_per_thread: regs, smem_per_block: smem, shmem_per_mp: None },
    );
    let _ = writeln!(
        out,
        "=== Occupancy calculator: {kernel_name} on {} ===",
        spec.name
    );
    let _ = writeln!(
        out,
        "current: TC={current_tc} regs={regs} smem={smem}B -> occupancy {:.2} ({} blocks/SM)",
        current_occ.occupancy, current_occ.active_blocks
    );
    out.push_str(&vary_block_size(spec, regs, smem, current_tc).render("\n-- occupancy vs block size --"));
    out.push_str(&vary_registers(spec, current_tc, smem, regs).render("\n-- occupancy vs registers/thread --"));
    out.push_str(&vary_shared_mem(spec, current_tc, regs, smem).render("\n-- occupancy vs shared memory/block --"));

    let best_tc = suggestion.thread_counts.first().copied().unwrap_or(current_tc);
    let potential = occupancy(
        spec,
        OccupancyInput { tc: best_tc, regs_per_thread: regs, smem_per_block: smem, shmem_per_mp: None },
    );
    let _ = writeln!(
        out,
        "\npotential: {} -> occupancy {:.2} at TC={best_tc}",
        suggestion.row(),
        potential.occupancy
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suggest::suggest_from;
    use oriole_arch::Gpu;

    #[test]
    fn block_size_series_peaks_at_t_star() {
        let spec = Gpu::K20.spec();
        let s = vary_block_size(spec, 20, 0, 256);
        // TC=256 is in the series and reaches 1.0.
        let idx = s.x.iter().position(|&x| x == 256).unwrap();
        assert_eq!(s.occ[idx], 1.0);
        assert_eq!(s.current, Some(idx));
        // Some off-grid size is below 1.0.
        let bad = s.x.iter().position(|&x| x == 192).unwrap();
        assert!(s.occ[bad] < 1.0);
    }

    #[test]
    fn register_series_monotone_nonincreasing() {
        let spec = Gpu::M2050.spec();
        let s = vary_registers(spec, 256, 0, 24);
        for w in s.occ.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn shared_series_starts_unconstrained() {
        let spec = Gpu::M40.spec();
        let s = vary_shared_mem(spec, 128, 24, 4096);
        assert_eq!(s.x[0], 0);
        assert!(s.occ[0] >= s.occ[s.occ.len() - 1]);
    }

    #[test]
    fn full_report_mentions_both_configs() {
        let spec = Gpu::K20.spec();
        let sug = suggest_from(spec, 27, 0);
        let report = occupancy_calculator_report(spec, "atax", 160, 27, 0, &sug);
        assert!(report.contains("current: TC=160"));
        assert!(report.contains("potential:"));
        assert!(report.contains("occupancy vs block size"));
        assert!(report.contains("<= current"));
    }

    #[test]
    fn render_handles_missing_current() {
        let s = OccupancySeries { x: vec![32, 64], occ: vec![0.5, 1.0], current: None };
        let text = s.render("panel");
        assert!(text.contains("panel"));
        assert!(!text.contains("<= current"));
    }
}
