//! Pipeline-utilization estimation (§III-B2).
//!
//! "Understanding the utilization of pipelines and its relation to peak
//! performance on target devices helps identify performance bottlenecks
//! in terms of oversubscription of pipelines based on instruction type."
//!
//! We estimate, per coarse functional-unit class, the share of issue
//! cycles the kernel's expected mix demands: counts weighted by CPI
//! (Table II), normalized over the total. A class near 1.0 is the
//! oversubscribed pipeline.

use oriole_arch::{InstrClass, ThroughputTable};
use oriole_ir::MixCounts;

/// Estimated utilization share per pipeline class (sums to 1 for a
/// non-empty mix).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PipelineUtilization {
    /// Arithmetic pipelines (FP/int ALUs + SFU).
    pub flops: f64,
    /// Load/store and texture units.
    pub mem: f64,
    /// Control/branch unit.
    pub ctrl: f64,
    /// Register-file ports.
    pub reg: f64,
}

impl PipelineUtilization {
    /// Computes utilization shares for `mix` under a family's throughput
    /// table.
    pub fn compute(mix: &MixCounts, table: &ThroughputTable) -> PipelineUtilization {
        let mut cycles = [0.0f64; 4];
        for (op, count) in mix.iter() {
            let idx = match op.class() {
                InstrClass::Flops => 0,
                InstrClass::Mem => 1,
                InstrClass::Ctrl => 2,
                InstrClass::Reg => 3,
            };
            cycles[idx] += count * table.cpi(op);
        }
        let total: f64 = cycles.iter().sum();
        if total == 0.0 {
            return PipelineUtilization::default();
        }
        PipelineUtilization {
            flops: cycles[0] / total,
            mem: cycles[1] / total,
            ctrl: cycles[2] / total,
            reg: cycles[3] / total,
        }
    }

    /// The dominating pipeline and its share.
    pub fn bottleneck(&self) -> (&'static str, f64) {
        let candidates = [
            ("arithmetic", self.flops),
            ("load/store", self.mem),
            ("control", self.ctrl),
            ("register file", self.reg),
        ];
        candidates
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::{Family, OpClass};

    #[test]
    fn empty_mix_is_all_zero() {
        let u = PipelineUtilization::compute(
            &MixCounts::new(),
            ThroughputTable::for_family(Family::Kepler),
        );
        assert_eq!(u, PipelineUtilization::default());
    }

    #[test]
    fn shares_sum_to_one() {
        let mut mix = MixCounts::new();
        mix.record(OpClass::FpIns32, 100.0);
        mix.record(OpClass::LdStIns, 20.0);
        mix.record(OpClass::CtrlIns, 10.0);
        mix.record(OpClass::Regs, 300.0);
        let u = PipelineUtilization::compute(&mix, ThroughputTable::for_family(Family::Maxwell));
        assert!((u.flops + u.mem + u.ctrl + u.reg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_heavy_mix_bottlenecks_lsu() {
        let mut mix = MixCounts::new();
        mix.record(OpClass::FpIns32, 10.0);
        mix.record(OpClass::LdStIns, 100.0);
        let u = PipelineUtilization::compute(&mix, ThroughputTable::for_family(Family::Kepler));
        let (name, share) = u.bottleneck();
        assert_eq!(name, "load/store");
        assert!(share > 0.9);
    }

    #[test]
    fn cpi_weighting_matters() {
        // Equal counts of FP32 and FP64 on Maxwell (IPC 128 vs 4): the
        // FP64's 32× higher CPI dominates the arithmetic share relative
        // to memory.
        let mut fp64 = MixCounts::new();
        fp64.record(OpClass::FpIns64, 10.0);
        fp64.record(OpClass::LdStIns, 10.0);
        let mut fp32 = MixCounts::new();
        fp32.record(OpClass::FpIns32, 10.0);
        fp32.record(OpClass::LdStIns, 10.0);
        let t = ThroughputTable::for_family(Family::Maxwell);
        let u64 = PipelineUtilization::compute(&fp64, t);
        let u32 = PipelineUtilization::compute(&fp32, t);
        assert!(u64.flops > u32.flops * 2.0, "{} vs {}", u64.flops, u32.flops);
    }
}
