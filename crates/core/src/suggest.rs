//! Parameter suggestion — the Table VII outputs.
//!
//! For a compiled kernel on a target GPU the analyzer suggests:
//!
//! * `T*` — the thread counts (block sizes) at which the warp math alone
//!   permits theoretical occupancy 1.0 (Fermi: {192, 256, 384, 512, 768};
//!   Kepler: {128, 256, 512, 1024}; Maxwell/Pascal: {64, 128, 256, 512,
//!   1024} — exactly the paper's sets);
//! * `[R_u : R*]` — registers used and the increase potential before
//!   occupancy at `T*` drops;
//! * `S*` — the shared-memory headroom per block at the achieved
//!   occupancy;
//! * `occ*` — the occupancy theoretically achievable given the kernel's
//!   actual register usage (the unquantized register-limited warp ratio;
//!   see DESIGN.md §1 on why the paper's own Table VII mixes quantized
//!   and unquantized values).

use oriole_arch::{occupancy, GpuSpec, Occupancy, OccupancyInput, OccupancyTable};
use oriole_codegen::CompiledKernel;

/// The analyzer's Table VII row for one kernel/GPU pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// `T*`: block sizes achieving theoretical occupancy (warp math).
    pub thread_counts: Vec<u32>,
    /// `R_u`: registers per thread the kernel currently uses.
    pub regs_used: u32,
    /// `R*`: how many more registers per thread fit before occupancy at
    /// the suggested block sizes drops.
    pub reg_headroom: u32,
    /// `S*`: shared-memory headroom per block (bytes) at the achieved
    /// active-block count.
    pub smem_headroom: u32,
    /// `occ*`: occupancy achievable with the kernel's register usage.
    pub occ_star: f64,
}

/// Block sizes (warp multiples up to the device limit) whose warp count
/// alone permits full occupancy — the `T*` candidate set.
pub fn full_occupancy_block_sizes(spec: &GpuSpec) -> Vec<u32> {
    full_occupancy_block_sizes_via(spec, &|input| occupancy(spec, input))
}

/// [`full_occupancy_block_sizes`] probing a device [`OccupancyTable`]
/// instead of recomputing (the probes repeat per kernel and per report).
pub fn full_occupancy_block_sizes_in(table: &OccupancyTable) -> Vec<u32> {
    full_occupancy_block_sizes_via(table.spec(), &|input| table.lookup(input))
}

fn full_occupancy_block_sizes_via(
    spec: &GpuSpec,
    occ_of: &dyn Fn(OccupancyInput) -> Occupancy,
) -> Vec<u32> {
    let mut out = Vec::new();
    let step = spec.warp_size;
    let mut tc = step;
    while tc <= spec.threads_per_block {
        let o = occ_of(OccupancyInput::of_block(tc));
        if o.occupancy == 1.0 {
            out.push(tc);
        }
        tc += step;
    }
    out
}

/// Computes the Table VII suggestion for a compiled kernel.
pub fn suggest(kernel: &CompiledKernel) -> Suggestion {
    suggest_from(&kernel.gpu, kernel.regs_per_thread(), kernel.smem_per_block)
}

/// [`suggest`] from raw resource numbers (the disassembly-header path:
/// everything needed is in the `ptxas`-style metadata).
pub fn suggest_from(spec: &GpuSpec, regs_per_thread: u32, smem: u32) -> Suggestion {
    suggest_via(spec, &|input| occupancy(spec, input), regs_per_thread, smem)
}

/// [`suggest_from`] backed by a device [`OccupancyTable`]. The register
/// headroom scan alone probes the calculator up to `R^cc_T` times with
/// inputs that repeat across kernels and reports, so the memoized path
/// pays off wherever a table (usually a model context's) is at hand.
/// Bit-identical to [`suggest_from`].
pub fn suggest_from_in(table: &OccupancyTable, regs_per_thread: u32, smem: u32) -> Suggestion {
    suggest_via(table.spec(), &|input| table.lookup(input), regs_per_thread, smem)
}

fn suggest_via(
    spec: &GpuSpec,
    occ_of: &dyn Fn(OccupancyInput) -> Occupancy,
    regs_per_thread: u32,
    smem: u32,
) -> Suggestion {
    let regs_used = regs_per_thread.max(1);

    let thread_counts = full_occupancy_block_sizes_via(spec, occ_of);

    // occ*: the register-limited warp capacity ratio at the kernel's
    // actual register usage (unquantized, as Table VII reports it).
    let probe_tc = thread_counts.first().copied().unwrap_or(spec.warp_size);
    let at_regs = occ_of(OccupancyInput {
        tc: probe_tc,
        regs_per_thread: regs_used,
        smem_per_block: smem,
        shmem_per_mp: None,
    });
    let occ_star =
        f64::from(at_regs.warp_limit_by_regs.min(spec.warps_per_mp)) / f64::from(spec.warps_per_mp);

    // R*: the largest register count that keeps the register-limited
    // warp capacity at its current level.
    let current_cap = at_regs.warp_limit_by_regs.min(spec.warps_per_mp);
    let mut max_regs = regs_used;
    for r in regs_used..=spec.regs_per_thread_max {
        let o = occ_of(OccupancyInput {
            tc: probe_tc,
            regs_per_thread: r,
            smem_per_block: smem,
            shmem_per_mp: None,
        });
        if o.warp_limit_by_regs.min(spec.warps_per_mp) >= current_cap {
            max_regs = r;
        } else {
            break;
        }
    }

    // S*: shared headroom per block at the achieved active-block count
    // (paper convention: the S^cc_B pool divided over active blocks).
    let active = at_regs.active_blocks.max(1);
    let per_block_share = spec.shmem_per_block / active;
    let smem_headroom = per_block_share.saturating_sub(smem);

    Suggestion {
        thread_counts,
        regs_used,
        reg_headroom: max_regs - regs_used,
        smem_headroom,
        occ_star,
    }
}

impl Suggestion {
    /// Formats like a Table VII row: `T*`, `[Ru : R*]`, `S*`, `occ*`.
    pub fn row(&self) -> String {
        let threads: Vec<String> = self.thread_counts.iter().map(|t| t.to_string()).collect();
        format!(
            "T*={{{}}} [R={}:{}] S*={} occ*={:.2}",
            threads.join(","),
            self.regs_used,
            self.reg_headroom,
            self.smem_headroom,
            self.occ_star
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Gpu;
    use oriole_codegen::{compile, TuningParams};
    use oriole_kernels::KernelId;

    #[test]
    fn t_star_sets_match_table_vii_exactly() {
        assert_eq!(
            full_occupancy_block_sizes(Gpu::M2050.spec()),
            vec![192, 256, 384, 512, 768]
        );
        assert_eq!(
            full_occupancy_block_sizes(Gpu::K20.spec()),
            vec![128, 256, 512, 1024]
        );
        assert_eq!(
            full_occupancy_block_sizes(Gpu::M40.spec()),
            vec![64, 128, 256, 512, 1024]
        );
        assert_eq!(
            full_occupancy_block_sizes(Gpu::P100.spec()),
            vec![64, 128, 256, 512, 1024]
        );
    }

    fn suggestion(kid: KernelId, gpu: Gpu) -> Suggestion {
        let kernel =
            compile(&kid.ast(128), gpu.spec(), TuningParams::with_geometry(128, 48)).unwrap();
        suggest(&kernel)
    }

    #[test]
    fn kepler_headroom_is_complement_to_32() {
        // Kepler at full occupancy: 65536/2048 = 32 regs/thread is the
        // ceiling, so headroom = 32 − R_u whenever R_u ≤ 32 (paper rows
        // like ATAX [27:5], BiCG [28:4]).
        let s = suggestion(KernelId::Atax, Gpu::K20);
        if s.regs_used <= 32 {
            assert_eq!(s.regs_used + s.reg_headroom, 32, "{}", s.row());
            assert_eq!(s.occ_star, 1.0);
        }
    }

    #[test]
    fn fermi_occ_star_below_one_for_register_heavy_kernels() {
        // Fermi's 32 K register file: ≥27 regs/thread cannot sustain 48
        // warps (paper: BiCG .75, ex14FJ .71).
        let s = suggestion(KernelId::Ex14Fj, Gpu::M2050);
        if s.regs_used >= 27 {
            assert!(s.occ_star < 1.0, "{}", s.row());
        }
        let k = suggestion(KernelId::Ex14Fj, Gpu::K20);
        assert!(k.occ_star >= s.occ_star);
    }

    #[test]
    fn smem_headroom_positive_without_tiles() {
        // ATAX uses no shared memory: the whole per-block share is
        // headroom.
        let s = suggestion(KernelId::Atax, Gpu::K20);
        assert!(s.smem_headroom > 0);
        assert_eq!(s.smem_headroom % 1024, 0);
    }

    #[test]
    fn row_formats() {
        let s = suggestion(KernelId::MatVec2D, Gpu::P100);
        let row = s.row();
        assert!(row.contains("T*={64,128,256,512,1024}"), "{row}");
        assert!(row.contains("occ*="));
    }

    #[test]
    fn suggestions_deterministic() {
        assert_eq!(
            suggestion(KernelId::Bicg, Gpu::M40),
            suggestion(KernelId::Bicg, Gpu::M40)
        );
    }
}
