//! Fault injection for the service tier: a TCP proxy that sits between
//! a client and a daemon and damages the conversation on purpose.
//!
//! The acceptance suite (`tests/chaos.rs`) drives real sweeps through
//! a [`ChaosProxy`] to prove the hardening contract: **every injected
//! failure either heals (the client retries and the final trace is
//! bit-identical to a fault-free run) or aborts loudly (a latched
//! error) — and no thread, client or daemon, ever blocks past its
//! deadline.** The proxy is test infrastructure, but it ships in the
//! library so operators can smoke-test a deployment's timeout/retry
//! configuration against controlled faults.
//!
//! Faults are described per-connection by a [`FaultSpec`] and
//! sequenced by a [`ChaosPlan`]: the *n*-th accepted connection gets
//! the *n*-th spec, and connections past the end of the sequence get
//! the plan's default — so a test can say "corrupt the first exchange,
//! then behave" and watch the retry heal.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How one proxied connection misbehaves. [`FaultSpec::default`] is a
/// faithful forwarder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Close the client connection immediately, before any bytes flow
    /// (models a refused/reset dial).
    pub refuse: bool,
    /// Hold every server→client byte back this long (models a wedged
    /// daemon or a stalled network; with a delay past the client's
    /// deadline, a black hole).
    pub delay_response_ms: u64,
    /// Flip the bits of the server→client byte at this stream offset
    /// (models in-flight corruption; the frame checksum must catch it).
    pub corrupt_response_at: Option<u64>,
    /// Drop the connection after forwarding this many server→client
    /// bytes (models a peer dying mid-frame; a cut inside a frame's
    /// header or payload must surface as a frame error, never a hang).
    pub cut_response_after: Option<u64>,
    /// Drop the connection after forwarding this many client→server
    /// bytes (models the request side dying mid-frame).
    pub cut_request_after: Option<u64>,
}

impl FaultSpec {
    /// A faithful forwarder (no fault).
    pub fn clean() -> FaultSpec {
        FaultSpec::default()
    }
}

/// Which [`FaultSpec`] each accepted connection receives: an explicit
/// sequence for the first connections, then a default for the rest.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    sequence: Vec<FaultSpec>,
    default: FaultSpec,
}

impl ChaosPlan {
    /// Every connection forwards faithfully.
    pub fn clean() -> ChaosPlan {
        ChaosPlan { sequence: Vec::new(), default: FaultSpec::clean() }
    }

    /// Every connection gets `fault`.
    pub fn always(fault: FaultSpec) -> ChaosPlan {
        ChaosPlan { sequence: Vec::new(), default: fault }
    }

    /// The first connections get `sequence` in order; the rest forward
    /// faithfully. The canonical heal-test shape: fault once, then
    /// behave.
    pub fn sequence(sequence: Vec<FaultSpec>) -> ChaosPlan {
        ChaosPlan { sequence, default: FaultSpec::clean() }
    }

    fn for_connection(&self, index: u64) -> FaultSpec {
        self.sequence
            .get(usize::try_from(index).unwrap_or(usize::MAX))
            .copied()
            .unwrap_or(self.default)
    }
}

/// A fault-injecting TCP proxy in front of a daemon.
///
/// Every internal read runs under a short timeout and checks a stop
/// flag, so the proxy itself obeys the no-unbounded-blocking rule it
/// exists to test; [`ChaosProxy::stop`] returns promptly even with
/// connections mid-delay.
pub struct ChaosProxy {
    addr: SocketAddr,
    connections: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral localhost port forwarding to
    /// `upstream` (a daemon address) under `plan`.
    pub fn spawn(upstream: SocketAddr, plan: ChaosPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let connections = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let connections = Arc::clone(&connections);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let (client, _) = match listener.accept() {
                        Ok(conn) => conn,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                            continue;
                        }
                        Err(_) => return,
                    };
                    let index = connections.fetch_add(1, Ordering::SeqCst);
                    let fault = plan.for_connection(index);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let _ = proxy_connection(client, upstream, fault, &stop);
                    });
                }
            })
        };
        Ok(ChaosProxy {
            addr,
            connections,
            stop,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The proxy's listening address — what the client should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far. A healed retry is visible here: a
    /// fault that drops the connection forces a reconnect, so the count
    /// exceeds one.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::SeqCst)
    }

    /// Stops accepting and unwinds the pump threads.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.lock().expect("accept thread lock").take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("addr", &self.addr)
            .field("connections", &self.connections())
            .finish()
    }
}

/// One end of a pump: how many bytes to pass before acting up.
#[derive(Clone, Copy)]
struct PumpFault {
    corrupt_at: Option<u64>,
    cut_after: Option<u64>,
    delay_ms: u64,
}

fn proxy_connection(
    client: TcpStream,
    upstream: SocketAddr,
    fault: FaultSpec,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    if fault.refuse {
        // Drop both directions on the floor: the client sees an
        // immediate close, never a hang.
        return Ok(());
    }
    let server = TcpStream::connect_timeout(&upstream, Duration::from_secs(5))?;
    let c2s = PumpFault { corrupt_at: None, cut_after: fault.cut_request_after, delay_ms: 0 };
    let s2c = PumpFault {
        corrupt_at: fault.corrupt_response_at,
        cut_after: fault.cut_response_after,
        delay_ms: fault.delay_response_ms,
    };
    let up = {
        let from = client.try_clone()?;
        let to = server.try_clone()?;
        let stop = Arc::clone(stop);
        std::thread::spawn(move || pump(from, to, c2s, &stop))
    };
    let down = {
        let stop = Arc::clone(stop);
        std::thread::spawn(move || pump(server, client, s2c, &stop))
    };
    let _ = up.join();
    let _ = down.join();
    Ok(())
}

/// Forwards bytes `from` → `to`, applying the fault. Reads run under a
/// 50ms timeout so the stop flag is honored promptly; either side
/// closing (or the fault cutting) ends the pump, and dropping the
/// streams resets the other direction too.
fn pump(mut from: TcpStream, mut to: TcpStream, fault: PumpFault, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut passed: u64 = 0;
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) if stop.load(Ordering::SeqCst) => return,
            Ok(0) => return,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        let mut chunk = buf[..n].to_vec();
        if let Some(at) = fault.corrupt_at {
            if at >= passed && at < passed + n as u64 {
                let i = (at - passed) as usize;
                chunk[i] ^= 0xFF;
            }
        }
        if let Some(cut) = fault.cut_after {
            let remaining = cut.saturating_sub(passed);
            if remaining < n as u64 {
                // Forward the allowed prefix, then die mid-frame.
                let keep = remaining as usize;
                if keep > 0 {
                    let _ = sleepy_write(&mut to, &chunk[..keep], fault.delay_ms, stop);
                }
                return;
            }
        }
        if sleepy_write(&mut to, &chunk, fault.delay_ms, stop).is_err() {
            return;
        }
        passed += n as u64;
    }
}

/// Writes after an interruptible delay: the hold-back sleeps in 10ms
/// slices so [`ChaosProxy::stop`] is never blocked behind a long
/// injected latency.
fn sleepy_write(
    to: &mut TcpStream,
    chunk: &[u8],
    delay_ms: u64,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let mut left = delay_ms;
    while left > 0 {
        if stop.load(Ordering::SeqCst) {
            return Err(std::io::Error::other("proxy stopped"));
        }
        let nap = left.min(10);
        std::thread::sleep(Duration::from_millis(nap));
        left -= nap;
    }
    to.write_all(chunk)
}
