//! Client library: a framed-RPC [`Client`], a [`Pipeline`] that keeps
//! many request frames in flight on one connection, and the
//! [`RemoteEvaluator`] facade that makes a remote daemon look like a
//! local oracle.
//!
//! [`RemoteEvaluator`] implements [`Oracle`], so every existing search
//! strategy — `RandomSearch`, `AnnealingSearch`, `GeneticSearch`,
//! `HybridSearch` with replay validation, all of them — runs unchanged
//! against a daemon. Batched oracle queries become pipelined `evaluate`
//! frames for the batch's cache misses; revisits (stochastic searchers
//! revisit constantly) are served from a client-side memo without
//! touching the network. Concurrent searches sharing one evaluator are
//! **coalesced**: misses arriving together ride one batched frame
//! ([`CoalesceConfig`]), so a fleet of search threads shares one
//! socket instead of serializing whole round-trips. Because evaluation
//! is deterministic and the wire format is bit-exact, a remote search
//! produces the *identical trace* a local one does — pipelined,
//! coalesced, or one point at a time.
//!
//! # Fault handling
//!
//! Every RPC runs under a deadline ([`RetryPolicy::rpc_timeout`] set as
//! the socket read/write timeout), so no call can block forever on a
//! dead or wedged daemon. Transient failures — connection loss, a
//! damaged frame, an expired deadline, a [`Response::Busy`]
//! backpressure answer — are retried with exponential backoff and
//! jitter, reconnecting as needed, up to [`RetryPolicy::max_retries`]
//! times.
//!
//! **Why retrying is safe** (the idempotency argument): the retried
//! verbs — `ping`, `stats`, `evaluate`, `simulate` — are all
//! *deterministic reads* of state the daemon either already holds or
//! computes reproducibly. Evaluation is deterministic and the shared
//! [`ArtifactStore`](oriole_tuner::ArtifactStore) deduplicates points,
//! so replaying an `evaluate` whose response was lost re-serves the
//! memoized measurements, bit-identical, without recomputing or
//! double-counting anything. The one verb with a side effect —
//! `shutdown` — is **never** auto-retried.
//!
//! After any failed or half-completed exchange the connection is
//! **poisoned** (dropped and re-dialed before the next use). Frames
//! carry correlation ids (protocol v3), and both the single-shot
//! [`Client`] and the [`Pipeline`] verify every response's id against
//! an outstanding request — a response that matches nothing is a loud
//! [`ServiceError::Protocol`] failure, never a mislabeled answer.

use crate::protocol::{self, EvalScope, Request, Response, ServiceStats};
use oriole_arch::GpuSpec;
use oriole_codegen::TuningParams;
use oriole_sim::{ModelId, SimReport};
use oriole_tuner::persist::{
    classify_frame_io, read_frame_tagged, write_frame_tagged, FrameError,
};
use oriole_tuner::{Measurement, Oracle};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why an RPC failed.
#[derive(Debug)]
pub enum ServiceError {
    /// Connection-level failure (connect, send, receive).
    Io(std::io::Error),
    /// The response frame was damaged or unparseable.
    Frame(FrameError),
    /// The response parsed but was not the expected shape, or carried a
    /// wire error.
    Protocol(String),
    /// The daemon answered with an error (its message included —
    /// unknown kernel, infeasible request, version skew, …).
    Remote(String),
    /// The daemon shed the request with backpressure and the retry
    /// policy is exhausted; carries the daemon's last `retry_after_ms`
    /// hint.
    Busy(u64),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "service I/O error: {e}"),
            ServiceError::Frame(e) => write!(f, "service frame error: {e}"),
            ServiceError::Protocol(m) => write!(f, "service protocol error: {m}"),
            ServiceError::Remote(m) => write!(f, "daemon error: {m}"),
            ServiceError::Busy(ms) => {
                write!(f, "daemon busy: retries exhausted (daemon suggested retry in {ms}ms)")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> ServiceError {
        ServiceError::Io(e)
    }
}

impl From<FrameError> for ServiceError {
    fn from(e: FrameError) -> ServiceError {
        ServiceError::Frame(e)
    }
}

impl ServiceError {
    /// Whether retrying can possibly change the answer. Transport
    /// failures and backpressure are transient; a daemon-side error or
    /// a malformed exchange is deterministic and retrying would only
    /// repeat it. Fleet schedulers use the same split to decide between
    /// rebalancing a shard's queue (transient: the shard is slow or
    /// lost) and aborting the whole run (deterministic: every shard
    /// would answer the same error).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ServiceError::Io(_) | ServiceError::Frame(_) | ServiceError::Busy(_)
        )
    }
}

/// Deadline and retry configuration for one [`Client`].
///
/// Backoff is exponential from [`RetryPolicy::base_backoff`], capped at
/// [`RetryPolicy::max_backoff`], with deterministic jitter (seeded by
/// [`RetryPolicy::jitter_seed`]) in the upper half of each step so a
/// fleet of shed clients does not re-stampede the daemon in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 = fail fast).
    /// Only *transient* failures (I/O, frame damage, deadline expiry,
    /// `Busy` backpressure) are retried, and never for `shutdown`.
    pub max_retries: u32,
    /// First backoff step.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Socket read/write deadline on every exchange; also declared to
    /// the daemon in `evaluate` so it can shed work it cannot start in
    /// time. [`Duration::ZERO`] means no deadline (not recommended
    /// outside tests).
    pub rpc_timeout: Duration,
    /// Seed of the deterministic jitter stream (vary per client so
    /// backoffs decorrelate; keep fixed in tests for stability).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            rpc_timeout: Duration::from_secs(10),
            jitter_seed: 0x6f72696f6c65, // "oriole"
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and keeps the default deadline —
    /// the pre-hardening fail-fast behaviour, for tests that assert on
    /// first-failure semantics.
    pub fn fail_fast() -> RetryPolicy {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }

    /// The backoff before retry attempt `attempt` (1-based):
    /// exponential, capped, jittered into the upper half of the step.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let base = self.base_backoff.as_millis() as u64;
        if base == 0 {
            return Duration::ZERO;
        }
        let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
        let capped = exp.min(self.max_backoff.as_millis() as u64).max(1);
        // xorshift64* over (seed, attempt): deterministic, no clock or
        // RNG dependency, stable under test.
        let mut x = self.jitter_seed ^ (u64::from(attempt).wrapping_mul(0x9e3779b97f4a7c15));
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let jittered = capped / 2 + x % (capped / 2 + 1);
        Duration::from_millis(jittered)
    }

    /// The deadline to declare in an `evaluate` request (milliseconds;
    /// 0 = none declared).
    fn deadline_ms(&self) -> u64 {
        self.rpc_timeout.as_millis() as u64
    }

    fn socket_timeout(&self) -> Option<Duration> {
        if self.rpc_timeout.is_zero() {
            None
        } else {
            Some(self.rpc_timeout)
        }
    }
}

/// One session with a tuner daemon. All methods are `&self` (the
/// stream sits behind a mutex), and each issues one request/response
/// exchange — transparently reconnecting and retrying transient
/// failures per the session's [`RetryPolicy`].
pub struct Client {
    /// `None` = poisoned (or never dialed): the next exchange
    /// re-connects. Poisoning after any failed exchange keeps
    /// request/response pairing sound even before the correlation-id
    /// check gets a say.
    stream: Mutex<Option<TcpStream>>,
    addr: String,
    policy: RetryPolicy,
    retries: AtomicU64,
    /// Monotonic correlation ids for this session's frames (id 0 is
    /// reserved for connection-level server notices).
    corr: AtomicU64,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:7733`) with the
    /// default [`RetryPolicy`]. Fails fast if the daemon is not there —
    /// retry loops around the *initial* dial belong to
    /// [`Client::connect_retry`].
    pub fn connect(addr: &str) -> Result<Client, ServiceError> {
        Client::connect_with(addr, RetryPolicy::default())
    }

    /// [`Client::connect`] under an explicit policy.
    pub fn connect_with(addr: &str, policy: RetryPolicy) -> Result<Client, ServiceError> {
        let stream = dial(addr, &policy)?;
        Ok(Client {
            stream: Mutex::new(Some(stream)),
            addr: addr.to_string(),
            policy,
            retries: AtomicU64::new(0),
            corr: AtomicU64::new(0),
        })
    }

    /// [`Client::connect`] retried until `timeout` elapses — the
    /// "daemon was just spawned" path (CI smoke jobs, tests, scripts).
    /// Sleeps the policy's backoff schedule between dials and returns
    /// the **last error observed within the window** — the standing
    /// cause when time ran out, not whatever a straggling post-deadline
    /// dial happened to produce.
    pub fn connect_retry(addr: &str, timeout: Duration) -> Result<Client, ServiceError> {
        Client::connect_retry_with(addr, timeout, RetryPolicy::default())
    }

    /// [`Client::connect_retry`] under an explicit policy.
    pub fn connect_retry_with(
        addr: &str,
        timeout: Duration,
        policy: RetryPolicy,
    ) -> Result<Client, ServiceError> {
        let start = Instant::now();
        let mut attempt: u32 = 0;
        let mut last_err: Option<ServiceError> = None;
        loop {
            let within_window = start.elapsed() < timeout;
            match Client::connect_with(addr, policy) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    // Record the error only if its dial *started* inside
                    // the window; an attempt straddling the deadline
                    // must not replace the standing cause with a
                    // possibly different late failure.
                    if within_window || last_err.is_none() {
                        last_err = Some(e);
                    }
                }
            }
            if start.elapsed() >= timeout {
                let cause = last_err.expect("at least one dial attempted");
                // Keep the Io class so retry classification still sees a
                // transient connection failure, but tell the operator how
                // hard we tried: fleet debugging needs "4 attempts over
                // 10.0s", not just the final cause.
                return Err(ServiceError::Io(std::io::Error::other(format!(
                    "no daemon reachable at `{addr}` after {} attempt(s) over {:.1}s: {cause}",
                    attempt + 1,
                    start.elapsed().as_secs_f64()
                ))));
            }
            attempt += 1;
            let nap = policy.backoff(attempt).min(timeout.saturating_sub(start.elapsed()));
            std::thread::sleep(nap);
        }
    }

    /// The address this client dialed.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The session's deadline/retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Exchanges retried so far over this session's lifetime (transient
    /// failures that healed; an exhausted policy surfaces as the final
    /// error instead).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// One request/response exchange on the (re)connected stream.
    /// Any failure — or a `Busy` answer — poisons the stream: the
    /// daemon's conn-level shed closes the socket, and after a desynced
    /// exchange a stale in-flight response could otherwise be
    /// mislabeled as the answer to the next request.
    fn exchange(&self, req: &Request) -> Result<Response, ServiceError> {
        let mut slot = self.stream.lock().expect("client stream lock");
        if slot.is_none() {
            *slot = Some(dial(&self.addr, &self.policy)?);
        }
        let stream = slot.as_mut().expect("stream just ensured");
        let corr = self.corr.fetch_add(1, Ordering::Relaxed) + 1;
        let result = (|| -> Result<Response, ServiceError> {
            write_frame_tagged(stream, corr, &protocol::emit_request(req))
                .map_err(|e| classify_frame_error(classify_frame_io(e)))?;
            let (resp_corr, payload) = read_frame_tagged(stream).map_err(classify_frame_error)?;
            // Id 0 is a connection-level notice (an admission shed or a
            // framing error answered before any request was decoded);
            // anything else must echo this request's id exactly.
            if resp_corr != 0 && resp_corr != corr {
                return Err(ServiceError::Protocol(format!(
                    "response correlation id {resp_corr} does not match request {corr}"
                )));
            }
            protocol::parse_response(&payload).map_err(|e| ServiceError::Protocol(e.to_string()))
        })();
        match &result {
            Ok(Response::Busy { .. }) | Err(_) => *slot = None,
            Ok(_) => {}
        }
        match result {
            // A wire-level error frame is a *completed* exchange: the
            // stream stays in sync and the connection is kept.
            Ok(Response::Error { message }) => Err(ServiceError::Remote(message)),
            other => other,
        }
    }

    /// Issues `req`, retrying transient failures (reconnect + backoff)
    /// per the policy. `retryable` is false for the one verb with a
    /// side effect (`shutdown`).
    fn call_with_retry(
        &self,
        req: &Request,
        retryable: bool,
    ) -> Result<Response, ServiceError> {
        let mut attempt: u32 = 0;
        loop {
            let outcome = match self.exchange(req) {
                Ok(Response::Busy { retry_after_ms }) => Err(ServiceError::Busy(retry_after_ms)),
                other => other,
            };
            match outcome {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    if !retryable || !e.is_transient() || attempt >= self.policy.max_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    let mut nap = self.policy.backoff(attempt);
                    if let ServiceError::Busy(hint_ms) = e {
                        // Honor the daemon's own hint when it is the
                        // longer wait — it knows its queue better.
                        nap = nap.max(Duration::from_millis(hint_ms));
                    }
                    std::thread::sleep(nap);
                }
            }
        }
    }

    fn call(&self, req: &Request) -> Result<Response, ServiceError> {
        // shutdown is the one verb with a side effect; everything else
        // is a deterministic read (see the module-level idempotency
        // argument) and safe to replay.
        let retryable = !matches!(req, Request::Shutdown);
        self.call_with_retry(req, retryable)
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), ServiceError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ServiceError::Protocol(format!("expected pong, got {other:?}"))),
        }
    }

    /// Server + store telemetry.
    pub fn stats(&self) -> Result<ServiceStats, ServiceError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ServiceError::Protocol(format!("expected stats, got {other:?}"))),
        }
    }

    /// Asks the daemon to drain and exit. Returns once the shutdown is
    /// acknowledged (the daemon may still be draining in-flight work).
    /// Never auto-retried: a lost ack does not prove the daemon missed
    /// the request, and replaying could stop a freshly restarted one.
    pub fn shutdown(&self) -> Result<(), ServiceError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ServiceError::Protocol(format!("expected shutdown ack, got {other:?}"))),
        }
    }

    /// Evaluates a batch of points under `scope`. Returns the
    /// fresh-computation count of this request window and one
    /// measurement per point, in request order, bit-identical to local
    /// evaluation. Declares the session deadline so the daemon can shed
    /// work it cannot start in time.
    pub fn evaluate(
        &self,
        scope: &EvalScope,
        points: &[TuningParams],
    ) -> Result<(u64, Vec<Measurement>), ServiceError> {
        let req = Request::Evaluate {
            scope: scope.clone(),
            points: points.to_vec(),
            deadline_ms: self.policy.deadline_ms(),
        };
        match self.call(&req)? {
            Response::Evaluate { computed, measurements } => {
                if measurements.len() != points.len() {
                    return Err(ServiceError::Protocol(format!(
                        "evaluate returned {} measurements for {} points",
                        measurements.len(),
                        points.len()
                    )));
                }
                // The ordering contract is positional; verify it rather
                // than trust it, so a confused daemon surfaces as a
                // protocol error instead of mislabeled measurements.
                for (p, m) in points.iter().zip(&measurements) {
                    if m.params != *p {
                        return Err(ServiceError::Protocol(format!(
                            "evaluate returned measurement for {} where {} was requested",
                            m.params, p
                        )));
                    }
                }
                Ok((computed, measurements))
            }
            other => Err(ServiceError::Protocol(format!("expected measurements, got {other:?}"))),
        }
    }

    /// Compiles and simulates one variant remotely; returns the
    /// selected trial time and the full report.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate(
        &self,
        kernel: &str,
        gpu: &GpuSpec,
        n: u64,
        params: TuningParams,
        model: ModelId,
        trials: u32,
        seed: u64,
    ) -> Result<(f64, SimReport), ServiceError> {
        let req = Request::Simulate {
            kernel: kernel.to_string(),
            gpu: gpu.clone(),
            n,
            params,
            model,
            trials,
            seed,
        };
        match self.call(&req)? {
            Response::Simulate { selected, report } => Ok((selected, report)),
            other => Err(ServiceError::Protocol(format!("expected report, got {other:?}"))),
        }
    }
}

/// Dials `addr` and arms the per-exchange socket deadlines.
fn dial(addr: &str, policy: &RetryPolicy) -> Result<TcpStream, ServiceError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(policy.socket_timeout()).ok();
    stream.set_write_timeout(policy.socket_timeout()).ok();
    Ok(stream)
}

/// Maps frame-layer failures into [`ServiceError`], folding transport
/// I/O back into the Io class so retry classification sees one kind of
/// connection failure.
fn classify_frame_error(e: FrameError) -> ServiceError {
    match e {
        FrameError::Io(io) => ServiceError::Io(io),
        other => ServiceError::Frame(other),
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr)
            .field("policy", &self.policy)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Pipelined connection
// ---------------------------------------------------------------------------

/// A pipeline failure, recorded once and answered to every outstanding
/// and future caller: transient failures (transport loss, stalls,
/// connection-level Busy) invite the caller to rebuild the pipeline
/// and retry; deterministic ones do not.
struct PipeFailure {
    transient: bool,
    message: String,
}

impl PipeFailure {
    fn to_error(&self) -> ServiceError {
        if self.transient {
            ServiceError::Io(std::io::Error::other(self.message.clone()))
        } else {
            ServiceError::Protocol(self.message.clone())
        }
    }
}

struct PipeShared {
    /// Responses matched by correlation id; a present value means the
    /// response arrived before its waiter.
    pending: HashMap<u64, Option<Response>>,
    /// Requests still awaiting their response frame (pending entries
    /// whose slot is `None`). This — not `pending.len()` — is what the
    /// depth cap bounds: an answered-but-unclaimed ticket costs no
    /// daemon-side work, so it must not block further sends (a caller
    /// that sends a burst of frames before waiting any would otherwise
    /// deadlock itself at the cap).
    in_flight: usize,
    /// Send instants of outstanding requests, keyed by correlation id —
    /// the reader subtracts these from arrival time to feed the RTT
    /// EWMA. Entries are removed on match, send failure, or wait error.
    sent: HashMap<u64, Instant>,
    failure: Option<PipeFailure>,
    /// Last instant the reader made frame progress; waiters poison the
    /// pipeline when it goes stale past the rpc deadline with requests
    /// outstanding.
    last_progress: Instant,
}

struct PipeInner {
    writer: Mutex<TcpStream>,
    shared: Mutex<PipeShared>,
    changed: Condvar,
    /// A second handle on the socket, used to shut it down on poison so
    /// the blocked reader thread exits promptly.
    breaker: TcpStream,
    depth: usize,
    rpc_timeout: Duration,
    next_corr: AtomicU64,
    /// EWMA (alpha 1/8) of observed request→response round-trip time in
    /// nanoseconds; 0 means no sample yet. Feeds adaptive coalescing.
    rtt_ewma_ns: AtomicU64,
}

impl PipeInner {
    fn poison(&self, transient: bool, message: String) {
        {
            let mut shared = self.shared.lock().expect("pipeline lock");
            if shared.failure.is_none() {
                shared.failure = Some(PipeFailure { transient, message });
            }
        }
        // Unblock the reader (and any peer writes); best-effort.
        let _ = self.breaker.shutdown(std::net::Shutdown::Both);
        self.changed.notify_all();
    }
}

/// A handle on one in-flight pipelined request; redeem it with
/// [`Pipeline::wait`]. Dropping a ticket without waiting leaks its
/// depth slot for the life of the pipeline — always wait.
#[must_use = "a ticket holds a pipeline depth slot until waited"]
pub struct Ticket {
    corr: u64,
}

/// One connection with up to `depth` request frames in flight,
/// responses matched by correlation id — out-of-order arrival is
/// expected and fine (protocol v3).
///
/// A `Pipeline` is **not** self-healing: any transport failure, stall
/// past the rpc deadline, or response for an unknown id poisons the
/// whole pipeline and fails every outstanding ticket. Callers that
/// want retry semantics rebuild the pipeline and resend (evaluation is
/// deterministic and the store dedups, so replays are safe) — that is
/// exactly what [`RemoteEvaluator`] does.
pub struct Pipeline {
    inner: Arc<PipeInner>,
}

impl Pipeline {
    /// Dials `addr` and starts the reader thread. `depth` bounds the
    /// frames in flight ([`Pipeline::send`] blocks at the cap);
    /// `policy` supplies only the rpc deadline — retries are the
    /// caller's business.
    pub fn connect(addr: &str, depth: usize, policy: &RetryPolicy) -> Result<Pipeline, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        // The reader blocks on the socket without its own deadline —
        // liveness is enforced by waiters watching `last_progress`, and
        // poison breaks the socket under the reader.
        let writer = stream.try_clone()?;
        let breaker = stream.try_clone()?;
        let rpc_timeout = if policy.rpc_timeout.is_zero() {
            Duration::from_secs(3600)
        } else {
            policy.rpc_timeout
        };
        let inner = Arc::new(PipeInner {
            writer: Mutex::new(writer),
            shared: Mutex::new(PipeShared {
                pending: HashMap::new(),
                in_flight: 0,
                sent: HashMap::new(),
                failure: None,
                last_progress: Instant::now(),
            }),
            changed: Condvar::new(),
            breaker,
            depth: depth.max(1),
            rpc_timeout,
            next_corr: AtomicU64::new(0),
            rtt_ewma_ns: AtomicU64::new(0),
        });
        let reader_inner = Arc::clone(&inner);
        std::thread::spawn(move || reader_loop(stream, &reader_inner));
        Ok(Pipeline { inner })
    }

    /// Whether the pipeline has failed (every outstanding and future
    /// call answers the recorded failure).
    pub fn is_poisoned(&self) -> bool {
        self.inner.shared.lock().expect("pipeline lock").failure.is_some()
    }

    /// Sends one request frame, blocking while the pipeline is at its
    /// depth cap. Returns the ticket to redeem for this request's
    /// response.
    pub fn send(&self, req: &Request) -> Result<Ticket, ServiceError> {
        let inner = &self.inner;
        let corr = {
            let mut shared = inner.shared.lock().expect("pipeline lock");
            loop {
                if let Some(f) = &shared.failure {
                    return Err(f.to_error());
                }
                if shared.in_flight < inner.depth {
                    break;
                }
                let (guard, timed_out) = inner
                    .changed
                    .wait_timeout(shared, inner.rpc_timeout)
                    .expect("pipeline wait");
                shared = guard;
                if timed_out.timed_out() && shared.in_flight >= inner.depth {
                    drop(shared);
                    inner.poison(
                        true,
                        "pipeline stalled at its depth cap past the rpc deadline".to_string(),
                    );
                    shared = inner.shared.lock().expect("pipeline lock");
                }
            }
            let corr = inner.next_corr.fetch_add(1, Ordering::Relaxed) + 1;
            shared.pending.insert(corr, None);
            shared.sent.insert(corr, Instant::now());
            shared.in_flight += 1;
            corr
        };
        let wrote = {
            let mut writer = inner.writer.lock().expect("pipeline writer lock");
            write_frame_tagged(&mut *writer, corr, &protocol::emit_request(req))
        };
        if let Err(e) = wrote {
            {
                let mut shared = inner.shared.lock().expect("pipeline lock");
                if matches!(shared.pending.remove(&corr), Some(None)) {
                    shared.in_flight -= 1;
                }
                shared.sent.remove(&corr);
            }
            inner.poison(true, format!("pipeline send failed: {e}"));
            return Err(ServiceError::Io(e));
        }
        Ok(Ticket { corr })
    }

    /// Blocks until `ticket`'s response arrives (or the pipeline
    /// fails, or frame progress stalls past the rpc deadline).
    pub fn wait(&self, ticket: Ticket) -> Result<Response, ServiceError> {
        let inner = &self.inner;
        let mut shared = inner.shared.lock().expect("pipeline lock");
        loop {
            if matches!(shared.pending.get(&ticket.corr), Some(Some(_))) {
                let resp = shared
                    .pending
                    .remove(&ticket.corr)
                    .flatten()
                    .expect("checked present");
                inner.changed.notify_all();
                return Ok(resp);
            }
            if let Some(f) = &shared.failure {
                let err = f.to_error();
                if matches!(shared.pending.remove(&ticket.corr), Some(None)) {
                    shared.in_flight -= 1;
                }
                shared.sent.remove(&ticket.corr);
                return Err(err);
            }
            // The deadline is measured from the reader's last frame
            // progress, not from this wait's start: a deep pipeline
            // making steady progress is healthy no matter how long the
            // tail ticket waits; a silent daemon is not.
            let stale_at = shared.last_progress + inner.rpc_timeout;
            let now = Instant::now();
            if now >= stale_at {
                drop(shared);
                inner.poison(
                    true,
                    format!(
                        "no response frame for {:?} with requests in flight",
                        inner.rpc_timeout
                    ),
                );
                shared = inner.shared.lock().expect("pipeline lock");
                continue;
            }
            let (guard, _) = inner
                .changed
                .wait_timeout(shared, stale_at - now)
                .expect("pipeline wait");
            shared = guard;
        }
    }

    /// [`Pipeline::send`] + [`Pipeline::wait`] as one call — the
    /// single-shot convenience for tests and probes.
    pub fn call(&self, req: &Request) -> Result<Response, ServiceError> {
        self.wait(self.send(req)?)
    }

    /// The smoothed round-trip time observed on this connection (EWMA,
    /// alpha 1/8), or `None` before the first matched response. Feeds
    /// [`CoalesceConfig::flush_idle_from_rtt`] when adaptive coalescing
    /// is on.
    pub fn rtt_ewma(&self) -> Option<Duration> {
        match self.inner.rtt_ewma_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        self.inner.poison(true, "pipeline dropped".to_string());
    }
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shared = self.inner.shared.lock().expect("pipeline lock");
        f.debug_struct("Pipeline")
            .field("depth", &self.inner.depth)
            .field("in_flight", &shared.in_flight)
            .field("poisoned", &shared.failure.is_some())
            .finish()
    }
}

/// The pipeline's reader: matches every arriving frame to its
/// outstanding request by correlation id. A response that matches no
/// outstanding id — or one the daemon tagged with an id we never
/// issued — poisons the pipeline as a protocol error: **no response is
/// ever delivered to the wrong correlation id.**
fn reader_loop(mut stream: TcpStream, inner: &PipeInner) {
    loop {
        let (corr, payload) = match read_frame_tagged(&mut stream) {
            Ok(frame) => frame,
            Err(FrameError::Eof) => {
                inner.poison(true, "daemon closed the pipelined connection".to_string());
                return;
            }
            Err(e) => {
                inner.poison(true, format!("pipelined read failed: {e}"));
                return;
            }
        };
        let resp = match protocol::parse_response(&payload) {
            Ok(resp) => resp,
            Err(e) => {
                inner.poison(false, format!("unparseable response: {e}"));
                return;
            }
        };
        if corr == 0 {
            // Connection-level notice, addressed to no request: an
            // admission shed (Busy) or a pre-decode error. Either way
            // the whole pipeline is done.
            match resp {
                Response::Busy { retry_after_ms } => inner.poison(
                    true,
                    format!("daemon shed the connection (retry in {retry_after_ms}ms)"),
                ),
                Response::Error { message } => inner.poison(false, message),
                other => inner.poison(
                    false,
                    format!("connection-level frame carried unexpected {other:?}"),
                ),
            }
            return;
        }
        let mut shared = inner.shared.lock().expect("pipeline lock");
        match shared.pending.get_mut(&corr) {
            Some(slot @ None) => {
                *slot = Some(resp);
                shared.in_flight -= 1;
                let now = Instant::now();
                shared.last_progress = now;
                if let Some(sent_at) = shared.sent.remove(&corr) {
                    let sample = now.duration_since(sent_at).as_nanos().min(u128::from(u64::MAX))
                        as u64;
                    // EWMA with alpha 1/8; the first sample seeds it.
                    let old = inner.rtt_ewma_ns.load(Ordering::Relaxed);
                    let new = if old == 0 { sample } else { old - old / 8 + sample / 8 };
                    inner.rtt_ewma_ns.store(new.max(1), Ordering::Relaxed);
                }
                drop(shared);
                inner.changed.notify_all();
            }
            _ => {
                drop(shared);
                inner.poison(
                    false,
                    format!("response for unknown correlation id {corr}"),
                );
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Remote evaluator with batch coalescing
// ---------------------------------------------------------------------------

/// How [`RemoteEvaluator`] packs concurrent cache misses into
/// pipelined `evaluate` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceConfig {
    /// Maximum points per `evaluate` frame: a large batch is split into
    /// chunks of this size and the chunks pipelined, so the daemon's
    /// workers parallelize *within* one logical batch.
    pub max_batch_points: usize,
    /// Pipeline depth for the evaluator's connection — evaluate frames
    /// concurrently in flight.
    pub max_frames: usize,
    /// How long a flush waits for more concurrent misses to coalesce
    /// before sending. Only applied when other threads are actively
    /// inside the evaluator — a single sequential searcher never pays
    /// it.
    pub flush_idle: Duration,
    /// When set, size the flush beat from the connection's observed
    /// round-trip time ([`Pipeline::rtt_ewma`] through
    /// [`CoalesceConfig::flush_idle_from_rtt`]) instead of the fixed
    /// `flush_idle`, which then only serves as the pre-first-sample
    /// fallback. CLI: `--flush-idle-us auto`.
    pub adaptive: bool,
}

impl Default for CoalesceConfig {
    fn default() -> CoalesceConfig {
        CoalesceConfig {
            max_batch_points: 64,
            max_frames: 8,
            flush_idle: Duration::from_micros(200),
            adaptive: false,
        }
    }
}

impl CoalesceConfig {
    /// Derives a flush beat from an observed round-trip time: a quarter
    /// of the RTT (long enough for concurrent misses to pile on, short
    /// against the wire cost it amortizes), clamped to [25µs, 5ms] so a
    /// loopback RTT never spins the beat to zero and a WAN RTT never
    /// stalls a flush for whole RPC lifetimes.
    pub fn flush_idle_from_rtt(rtt: Duration) -> Duration {
        (rtt / 4).clamp(Duration::from_micros(25), Duration::from_millis(5))
    }
}

/// A remote [`Oracle`]: one experiment scope evaluated through a daemon,
/// with a client-side memo so revisits never re-cross the network.
///
/// Cache misses are **coalesced**: the first thread to find pending
/// misses becomes the flusher, waits one [`CoalesceConfig::flush_idle`]
/// beat for concurrent threads' misses to pile on (skipped when alone),
/// then drains the pending set into chunked, pipelined `evaluate`
/// frames over one shared [`Pipeline`]. Everyone else parks until the
/// cache fills. Results are bit-identical to sequential one-at-a-time
/// evaluation — the daemon's store dedups, the wire format is exact,
/// and the memo is keyed by point, so scheduling never shows in the
/// data.
///
/// Transient RPC failures are healed by retrying with a fresh pipeline
/// under the [`Client`]'s policy; an error surfaces only once that
/// policy is exhausted. The oracle contract has no error channel, so
/// such a *final* failure is **latched**: the failing point scores
/// `f64::INFINITY`, every later query short-circuits the same way, and
/// the driver must check [`RemoteEvaluator::take_error`] after the
/// search — a lost daemon aborts the run loudly instead of silently
/// returning garbage winners.
pub struct RemoteEvaluator {
    client: Client,
    scope: EvalScope,
    coalesce: CoalesceConfig,
    state: Mutex<EvalState>,
    changed: Condvar,
    fetched: AtomicU64,
    computed_remote: AtomicU64,
    batches_sent: AtomicU64,
    peak_batch: AtomicU64,
    error: Mutex<Option<String>>,
    poisoned: AtomicBool,
}

struct EvalState {
    cache: HashMap<TuningParams, Measurement>,
    /// Misses queued for the next flush (insertion order — determinism
    /// of the *data* comes from the store, not from this ordering).
    pending: Vec<TuningParams>,
    pending_set: HashSet<TuningParams>,
    /// Points the current flush has in flight; threads needing one park
    /// instead of re-queueing it.
    inflight: HashSet<TuningParams>,
    flushing: bool,
    /// Threads currently inside `evaluate_batch` — the flusher skips
    /// its coalesce beat when it is alone.
    waiters: usize,
    /// The healthy pipeline from the last flush, reused across flushes.
    pipe: Option<Arc<Pipeline>>,
}

impl RemoteEvaluator {
    /// A remote evaluator over `scope`, speaking through `client`, with
    /// default coalescing.
    pub fn new(client: Client, scope: EvalScope) -> RemoteEvaluator {
        RemoteEvaluator::with_coalesce(client, scope, CoalesceConfig::default())
    }

    /// [`RemoteEvaluator::new`] with explicit coalescing knobs.
    pub fn with_coalesce(
        client: Client,
        scope: EvalScope,
        coalesce: CoalesceConfig,
    ) -> RemoteEvaluator {
        RemoteEvaluator {
            client,
            scope,
            coalesce,
            state: Mutex::new(EvalState {
                cache: HashMap::new(),
                pending: Vec::new(),
                pending_set: HashSet::new(),
                inflight: HashSet::new(),
                flushing: false,
                waiters: 0,
                pipe: None,
            }),
            changed: Condvar::new(),
            fetched: AtomicU64::new(0),
            computed_remote: AtomicU64::new(0),
            batches_sent: AtomicU64::new(0),
            peak_batch: AtomicU64::new(0),
            error: Mutex::new(None),
            poisoned: AtomicBool::new(false),
        }
    }

    /// The experiment scope every query runs under.
    pub fn scope(&self) -> &EvalScope {
        &self.scope
    }

    /// The underlying single-shot connection (for side-channel requests
    /// like [`Client::stats`] on the same session).
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// The coalescing configuration in effect.
    pub fn coalesce_config(&self) -> CoalesceConfig {
        self.coalesce
    }

    /// Distinct points fetched over the wire so far (client-side cache
    /// misses; deterministic for a deterministic search).
    pub fn fetched(&self) -> u64 {
        self.fetched.load(Ordering::Relaxed)
    }

    /// Points the *daemon* computed fresh across this evaluator's
    /// requests — 0 on a fully warm store.
    pub fn computed_remote(&self) -> u64 {
        self.computed_remote.load(Ordering::Relaxed)
    }

    /// `evaluate` frames sent over the wire (each carries one coalesced
    /// chunk of at most [`CoalesceConfig::max_batch_points`] points).
    pub fn batches_sent(&self) -> u64 {
        self.batches_sent.load(Ordering::Relaxed)
    }

    /// The largest point count any single frame carried — evidence of
    /// coalescing actually happening.
    pub fn peak_batch(&self) -> u64 {
        self.peak_batch.load(Ordering::Relaxed)
    }

    /// The latched RPC failure, if any. Drivers must call this after a
    /// search and treat `Some` as an aborted run. Taking the message
    /// does **not** revive the evaluator: once poisoned it answers
    /// `None`/infinity forever, so a partially failed run can never mix
    /// stale and fresh answers.
    pub fn take_error(&self) -> Option<String> {
        self.error.lock().expect("error lock").take()
    }

    fn latch_error(&self, e: ServiceError) {
        self.poisoned.store(true, Ordering::SeqCst);
        let mut slot = self.error.lock().expect("error lock");
        if slot.is_none() {
            *slot = Some(e.to_string());
        }
    }

    /// Evaluates one point (memoized client-side). `None` after an RPC
    /// failure — see [`RemoteEvaluator::take_error`].
    pub fn evaluate(&self, params: TuningParams) -> Option<Measurement> {
        self.evaluate_batch(&[params]).map(|mut v| v.remove(0))
    }

    /// Evaluates a batch: misses join the shared pending set, one
    /// thread flushes them (plus any concurrent threads' misses) as
    /// chunked pipelined frames, everything else is served from the
    /// memo. Results in input order, `None` on (final,
    /// policy-exhausted) RPC failure.
    pub fn evaluate_batch(&self, points: &[TuningParams]) -> Option<Vec<Measurement>> {
        if self.poisoned.load(Ordering::SeqCst) {
            return None;
        }
        let mut st = self.state.lock().expect("remote evaluator lock");
        st.waiters += 1;
        for p in points {
            if !st.cache.contains_key(p)
                && !st.pending_set.contains(p)
                && !st.inflight.contains(p)
            {
                st.pending.push(*p);
                st.pending_set.insert(*p);
            }
        }
        loop {
            if self.poisoned.load(Ordering::SeqCst) {
                st.waiters -= 1;
                return None;
            }
            if points.iter().all(|p| st.cache.contains_key(p)) {
                let out = points.iter().map(|p| st.cache[p].clone()).collect();
                st.waiters -= 1;
                return Some(out);
            }
            if !st.pending.is_empty() && !st.flushing {
                st.flushing = true;
                // The coalesce beat: give concurrently arriving misses
                // a moment to pile onto this flush — but never tax a
                // lone sequential searcher with it. Adaptive mode sizes
                // the beat from the live connection's RTT EWMA, falling
                // back to the fixed beat before the first sample.
                let beat = if self.coalesce.adaptive {
                    st.pipe
                        .as_deref()
                        .and_then(Pipeline::rtt_ewma)
                        .map(CoalesceConfig::flush_idle_from_rtt)
                        .unwrap_or(self.coalesce.flush_idle)
                } else {
                    self.coalesce.flush_idle
                };
                if st.waiters > 1 && !beat.is_zero() {
                    let (guard, _) =
                        self.changed.wait_timeout(st, beat).expect("coalesce wait");
                    st = guard;
                }
                let batch: Vec<TuningParams> = st.pending.drain(..).collect();
                st.pending_set.clear();
                for p in &batch {
                    st.inflight.insert(*p);
                }
                let pipe = st.pipe.take();
                drop(st);
                let outcome = self.fetch(&batch, pipe);
                st = self.state.lock().expect("remote evaluator lock");
                for p in &batch {
                    st.inflight.remove(p);
                }
                st.flushing = false;
                match outcome {
                    Ok((pipe, computed, measurements)) => {
                        st.pipe = Some(pipe);
                        self.fetched.fetch_add(batch.len() as u64, Ordering::Relaxed);
                        self.computed_remote.fetch_add(computed, Ordering::Relaxed);
                        for m in measurements {
                            st.cache.insert(m.params, m);
                        }
                        self.changed.notify_all();
                    }
                    Err(e) => {
                        st.waiters -= 1;
                        drop(st);
                        self.latch_error(e);
                        self.changed.notify_all();
                        return None;
                    }
                }
            } else {
                // Parked: another thread's flush is (or will be)
                // fetching our points. The timeout guards against a
                // missed wakeup, nothing more.
                let (guard, _) = self
                    .changed
                    .wait_timeout(st, Duration::from_millis(50))
                    .expect("remote evaluator wait");
                st = guard;
            }
        }
    }

    /// Fetches one coalesced batch: chunked into frames, pipelined,
    /// verified per chunk, retried per the [`Client`]'s policy with a
    /// fresh pipeline on transient failure. Returns the (still healthy)
    /// pipeline for reuse plus the daemon-computed count and all
    /// measurements in batch order.
    fn fetch(
        &self,
        batch: &[TuningParams],
        mut pipe: Option<Arc<Pipeline>>,
    ) -> Result<(Arc<Pipeline>, u64, Vec<Measurement>), ServiceError> {
        let policy = self.client.policy();
        let chunks: Vec<&[TuningParams]> = batch.chunks(self.coalesce.max_batch_points).collect();
        let mut results: Vec<Option<(u64, Vec<Measurement>)>> = vec![None; chunks.len()];
        let mut attempt: u32 = 0;
        loop {
            let p = match pipe.take().filter(|p| !p.is_poisoned()) {
                Some(p) => p,
                None => {
                    match Pipeline::connect(self.client.addr(), self.coalesce.max_frames, policy)
                    {
                        Ok(p) => Arc::new(p),
                        Err(e) => {
                            attempt = retry_or_bail(policy, attempt, e, None)?;
                            continue;
                        }
                    }
                }
            };
            // Send every unresolved chunk, then collect: the pipeline
            // keeps up to `max_frames` of them in flight at once.
            let mut tickets: Vec<(usize, Ticket)> = Vec::new();
            let mut failure: Option<ServiceError> = None;
            for (i, chunk) in chunks.iter().enumerate() {
                if results[i].is_some() {
                    continue;
                }
                let req = Request::Evaluate {
                    scope: self.scope.clone(),
                    points: chunk.to_vec(),
                    deadline_ms: policy.deadline_ms(),
                };
                match p.send(&req) {
                    Ok(t) => tickets.push((i, t)),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            let mut busy_hint: Option<u64> = None;
            for (i, ticket) in tickets {
                match p.wait(ticket) {
                    Ok(Response::Evaluate { computed, measurements }) => {
                        verify_measurements(chunks[i], &measurements)?;
                        self.batches_sent.fetch_add(1, Ordering::Relaxed);
                        self.peak_batch.fetch_max(chunks[i].len() as u64, Ordering::Relaxed);
                        results[i] = Some((computed, measurements));
                    }
                    Ok(Response::Busy { retry_after_ms }) => {
                        busy_hint = Some(retry_after_ms);
                        if failure.is_none() {
                            failure = Some(ServiceError::Busy(retry_after_ms));
                        }
                    }
                    Ok(Response::Error { message }) => {
                        return Err(ServiceError::Remote(message));
                    }
                    Ok(other) => {
                        return Err(ServiceError::Protocol(format!(
                            "expected measurements, got {other:?}"
                        )));
                    }
                    Err(e) => {
                        if failure.is_none() {
                            failure = Some(e);
                        }
                    }
                }
            }
            match failure {
                None => {
                    let mut computed = 0u64;
                    let mut measurements = Vec::with_capacity(batch.len());
                    for r in results {
                        let (c, ms) = r.expect("no failure means every chunk resolved");
                        computed += c;
                        measurements.extend(ms);
                    }
                    return Ok((p, computed, measurements));
                }
                Some(e) => {
                    attempt = retry_or_bail(policy, attempt, e, busy_hint)?;
                    // Busy leaves the pipeline healthy; transport
                    // failures poisoned it and the filter above drops
                    // it.
                    pipe = Some(p);
                }
            }
        }
    }
}

/// One retry-policy step: transient failures sleep the backoff (honoring
/// the daemon's Busy hint when longer) and return the bumped attempt
/// count; deterministic failures — or an exhausted policy — bail with
/// the error.
fn retry_or_bail(
    policy: &RetryPolicy,
    attempt: u32,
    e: ServiceError,
    busy_hint: Option<u64>,
) -> Result<u32, ServiceError> {
    if !e.is_transient() || attempt >= policy.max_retries {
        return Err(e);
    }
    let attempt = attempt + 1;
    let mut nap = policy.backoff(attempt);
    if let Some(hint_ms) = busy_hint {
        // Honor the daemon's own hint when it is the longer wait — it
        // knows its queue better.
        nap = nap.max(Duration::from_millis(hint_ms));
    }
    std::thread::sleep(nap);
    Ok(attempt)
}

/// The positional response contract, verified rather than trusted: one
/// measurement per requested point, in request order, so a confused
/// daemon surfaces as a protocol error instead of mislabeled
/// measurements.
fn verify_measurements(
    points: &[TuningParams],
    measurements: &[Measurement],
) -> Result<(), ServiceError> {
    if measurements.len() != points.len() {
        return Err(ServiceError::Protocol(format!(
            "evaluate returned {} measurements for {} points",
            measurements.len(),
            points.len()
        )));
    }
    for (p, m) in points.iter().zip(measurements) {
        if m.params != *p {
            return Err(ServiceError::Protocol(format!(
                "evaluate returned measurement for {} where {} was requested",
                m.params, p
            )));
        }
    }
    Ok(())
}

impl Oracle for RemoteEvaluator {
    fn eval(&self, params: TuningParams) -> f64 {
        self.evaluate(params).map_or(f64::INFINITY, |m| m.time_ms)
    }

    fn eval_many(&self, points: &[TuningParams]) -> Vec<f64> {
        match self.evaluate_batch(points) {
            Some(ms) => ms.into_iter().map(|m| m.time_ms).collect(),
            None => vec![f64::INFINITY; points.len()],
        }
    }
}

impl fmt::Debug for RemoteEvaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteEvaluator")
            .field("addr", &self.client.addr)
            .field("kernel", &self.scope.kernel)
            .field("fetched", &self.fetched())
            .field("batches_sent", &self.batches_sent())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_capped_and_jittered_into_the_upper_half() {
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(400),
            rpc_timeout: Duration::from_secs(1),
            jitter_seed: 7,
        };
        let mut prev_cap = 0u128;
        for attempt in 1..=8u32 {
            let cap = (25u128 << (attempt - 1)).min(400);
            let b = p.backoff(attempt).as_millis();
            assert!(b >= cap / 2, "attempt {attempt}: {b}ms below half-cap {cap}");
            assert!(b <= cap, "attempt {attempt}: {b}ms above cap {cap}");
            assert!(cap >= prev_cap, "caps must be monotone");
            prev_cap = cap;
        }
        // Deterministic: same policy, same attempt, same nap.
        assert_eq!(p.backoff(3), p.backoff(3));
    }

    #[test]
    fn zero_base_backoff_means_no_sleeping() {
        let p = RetryPolicy { base_backoff: Duration::ZERO, ..RetryPolicy::default() };
        assert_eq!(p.backoff(1), Duration::ZERO);
        assert_eq!(p.backoff(7), Duration::ZERO);
    }

    #[test]
    fn flush_idle_from_rtt_is_quarter_rtt_clamped() {
        // Loopback-fast RTT clamps up to the floor.
        assert_eq!(
            CoalesceConfig::flush_idle_from_rtt(Duration::from_micros(4)),
            Duration::from_micros(25)
        );
        // Mid-range RTT: a quarter.
        assert_eq!(
            CoalesceConfig::flush_idle_from_rtt(Duration::from_millis(2)),
            Duration::from_micros(500)
        );
        // WAN-slow RTT clamps down to the ceiling.
        assert_eq!(
            CoalesceConfig::flush_idle_from_rtt(Duration::from_secs(1)),
            Duration::from_millis(5)
        );
    }

    #[test]
    fn connect_retry_error_reports_attempts_and_elapsed() {
        // Port 1 on loopback refuses immediately on any sane box.
        let err = Client::connect_retry_with(
            "127.0.0.1:1",
            Duration::from_millis(80),
            RetryPolicy {
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(20),
                ..RetryPolicy::default()
            },
        )
        .expect_err("nothing listens on port 1");
        assert!(err.is_transient(), "dial failure must stay transient: {err}");
        let text = err.to_string();
        assert!(
            text.contains("attempt(s) over") && text.contains("127.0.0.1:1"),
            "error must name the address, attempt count, and elapsed: {text}"
        );
    }

    #[test]
    fn transient_classification_splits_retryable_from_deterministic_failures() {
        assert!(ServiceError::Io(std::io::Error::other("x")).is_transient());
        assert!(ServiceError::Frame(FrameError::TimedOut).is_transient());
        assert!(ServiceError::Busy(25).is_transient());
        assert!(!ServiceError::Remote("unknown kernel".into()).is_transient());
        assert!(!ServiceError::Protocol("short response".into()).is_transient());
    }
}
