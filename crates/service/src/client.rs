//! Client library: a framed-RPC [`Client`] plus the [`RemoteEvaluator`]
//! facade that makes a remote daemon look like a local oracle.
//!
//! [`RemoteEvaluator`] implements [`Oracle`], so every existing search
//! strategy — `RandomSearch`, `AnnealingSearch`, `GeneticSearch`,
//! `HybridSearch` with replay validation, all of them — runs unchanged
//! against a daemon. Batched oracle queries become one `evaluate` RPC
//! for the batch's cache misses; revisits (stochastic searchers revisit
//! constantly) are served from a client-side memo without touching the
//! network. Because evaluation is deterministic and the wire format is
//! bit-exact, a remote search produces the *identical trace* a local
//! one does.
//!
//! # Fault handling
//!
//! Every RPC runs under a deadline ([`RetryPolicy::rpc_timeout`] set as
//! the socket read/write timeout), so no call can block forever on a
//! dead or wedged daemon. Transient failures — connection loss, a
//! damaged frame, an expired deadline, a [`Response::Busy`]
//! backpressure answer — are retried with exponential backoff and
//! jitter, reconnecting as needed, up to [`RetryPolicy::max_retries`]
//! times.
//!
//! **Why retrying is safe** (the idempotency argument): the retried
//! verbs — `ping`, `stats`, `evaluate`, `simulate` — are all
//! *deterministic reads* of state the daemon either already holds or
//! computes reproducibly. Evaluation is deterministic and the shared
//! [`ArtifactStore`](oriole_tuner::ArtifactStore) deduplicates points,
//! so replaying an `evaluate` whose response was lost re-serves the
//! memoized measurements, bit-identical, without recomputing or
//! double-counting anything. The one verb with a side effect —
//! `shutdown` — is **never** auto-retried.
//!
//! After any failed or half-completed exchange the connection is
//! **poisoned** (dropped and re-dialed before the next use), so a
//! response to an abandoned request can never be mislabeled as the
//! answer to a later one — the frame layer has no request IDs, and
//! poisoning is what makes that safe.

use crate::protocol::{self, EvalScope, Request, Response, ServiceStats};
use oriole_arch::GpuSpec;
use oriole_codegen::TuningParams;
use oriole_sim::{ModelId, SimReport};
use oriole_tuner::persist::{classify_frame_io, read_frame, write_frame, FrameError};
use oriole_tuner::{Measurement, Oracle};
use std::collections::HashMap;
use std::fmt;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Why an RPC failed.
#[derive(Debug)]
pub enum ServiceError {
    /// Connection-level failure (connect, send, receive).
    Io(std::io::Error),
    /// The response frame was damaged or unparseable.
    Frame(FrameError),
    /// The response parsed but was not the expected shape, or carried a
    /// wire error.
    Protocol(String),
    /// The daemon answered with an error (its message included —
    /// unknown kernel, infeasible request, version skew, …).
    Remote(String),
    /// The daemon shed the request with backpressure and the retry
    /// policy is exhausted; carries the daemon's last `retry_after_ms`
    /// hint.
    Busy(u64),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "service I/O error: {e}"),
            ServiceError::Frame(e) => write!(f, "service frame error: {e}"),
            ServiceError::Protocol(m) => write!(f, "service protocol error: {m}"),
            ServiceError::Remote(m) => write!(f, "daemon error: {m}"),
            ServiceError::Busy(ms) => {
                write!(f, "daemon busy: retries exhausted (daemon suggested retry in {ms}ms)")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> ServiceError {
        ServiceError::Io(e)
    }
}

impl From<FrameError> for ServiceError {
    fn from(e: FrameError) -> ServiceError {
        ServiceError::Frame(e)
    }
}

impl ServiceError {
    /// Whether retrying can possibly change the answer. Transport
    /// failures and backpressure are transient; a daemon-side error or
    /// a malformed exchange is deterministic and retrying would only
    /// repeat it.
    fn is_transient(&self) -> bool {
        matches!(
            self,
            ServiceError::Io(_) | ServiceError::Frame(_) | ServiceError::Busy(_)
        )
    }
}

/// Deadline and retry configuration for one [`Client`].
///
/// Backoff is exponential from [`RetryPolicy::base_backoff`], capped at
/// [`RetryPolicy::max_backoff`], with deterministic jitter (seeded by
/// [`RetryPolicy::jitter_seed`]) in the upper half of each step so a
/// fleet of shed clients does not re-stampede the daemon in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 = fail fast).
    /// Only *transient* failures (I/O, frame damage, deadline expiry,
    /// `Busy` backpressure) are retried, and never for `shutdown`.
    pub max_retries: u32,
    /// First backoff step.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Socket read/write deadline on every exchange; also declared to
    /// the daemon in `evaluate` so it can shed work it cannot start in
    /// time. [`Duration::ZERO`] means no deadline (not recommended
    /// outside tests).
    pub rpc_timeout: Duration,
    /// Seed of the deterministic jitter stream (vary per client so
    /// backoffs decorrelate; keep fixed in tests for stability).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            rpc_timeout: Duration::from_secs(10),
            jitter_seed: 0x6f72696f6c65, // "oriole"
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and keeps the default deadline —
    /// the pre-hardening fail-fast behaviour, for tests that assert on
    /// first-failure semantics.
    pub fn fail_fast() -> RetryPolicy {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }

    /// The backoff before retry attempt `attempt` (1-based):
    /// exponential, capped, jittered into the upper half of the step.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let base = self.base_backoff.as_millis() as u64;
        if base == 0 {
            return Duration::ZERO;
        }
        let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
        let capped = exp.min(self.max_backoff.as_millis() as u64).max(1);
        // xorshift64* over (seed, attempt): deterministic, no clock or
        // RNG dependency, stable under test.
        let mut x = self.jitter_seed ^ (u64::from(attempt).wrapping_mul(0x9e3779b97f4a7c15));
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let jittered = capped / 2 + x % (capped / 2 + 1);
        Duration::from_millis(jittered)
    }

    /// The deadline to declare in an `evaluate` request (milliseconds;
    /// 0 = none declared).
    fn deadline_ms(&self) -> u64 {
        self.rpc_timeout.as_millis() as u64
    }

    fn socket_timeout(&self) -> Option<Duration> {
        if self.rpc_timeout.is_zero() {
            None
        } else {
            Some(self.rpc_timeout)
        }
    }
}

/// One session with a tuner daemon. All methods are `&self` (the
/// stream sits behind a mutex), and each issues one request/response
/// exchange — transparently reconnecting and retrying transient
/// failures per the session's [`RetryPolicy`].
pub struct Client {
    /// `None` = poisoned (or never dialed): the next exchange
    /// re-connects. Poisoning after any failed exchange is what keeps
    /// request/response pairing sound without wire-level request IDs.
    stream: Mutex<Option<TcpStream>>,
    addr: String,
    policy: RetryPolicy,
    retries: AtomicU64,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:7733`) with the
    /// default [`RetryPolicy`]. Fails fast if the daemon is not there —
    /// retry loops around the *initial* dial belong to
    /// [`Client::connect_retry`].
    pub fn connect(addr: &str) -> Result<Client, ServiceError> {
        Client::connect_with(addr, RetryPolicy::default())
    }

    /// [`Client::connect`] under an explicit policy.
    pub fn connect_with(addr: &str, policy: RetryPolicy) -> Result<Client, ServiceError> {
        let stream = dial(addr, &policy)?;
        Ok(Client {
            stream: Mutex::new(Some(stream)),
            addr: addr.to_string(),
            policy,
            retries: AtomicU64::new(0),
        })
    }

    /// [`Client::connect`] retried until `timeout` elapses — the
    /// "daemon was just spawned" path (CI smoke jobs, tests, scripts).
    /// Sleeps the policy's backoff schedule between dials and returns
    /// the **last error observed within the window** — the standing
    /// cause when time ran out, not whatever a straggling post-deadline
    /// dial happened to produce.
    pub fn connect_retry(addr: &str, timeout: Duration) -> Result<Client, ServiceError> {
        Client::connect_retry_with(addr, timeout, RetryPolicy::default())
    }

    /// [`Client::connect_retry`] under an explicit policy.
    pub fn connect_retry_with(
        addr: &str,
        timeout: Duration,
        policy: RetryPolicy,
    ) -> Result<Client, ServiceError> {
        let start = Instant::now();
        let mut attempt: u32 = 0;
        let mut last_err: Option<ServiceError> = None;
        loop {
            let within_window = start.elapsed() < timeout;
            match Client::connect_with(addr, policy) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    // Record the error only if its dial *started* inside
                    // the window; an attempt straddling the deadline
                    // must not replace the standing cause with a
                    // possibly different late failure.
                    if within_window || last_err.is_none() {
                        last_err = Some(e);
                    }
                }
            }
            if start.elapsed() >= timeout {
                return Err(last_err.expect("at least one dial attempted"));
            }
            attempt += 1;
            let nap = policy.backoff(attempt).min(timeout.saturating_sub(start.elapsed()));
            std::thread::sleep(nap);
        }
    }

    /// The address this client dialed.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The session's deadline/retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Exchanges retried so far over this session's lifetime (transient
    /// failures that healed; an exhausted policy surfaces as the final
    /// error instead).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// One request/response exchange on the (re)connected stream.
    /// Any failure — or a `Busy` answer — poisons the stream: the
    /// daemon's conn-level shed closes the socket, and after a desynced
    /// exchange a stale in-flight response could otherwise be
    /// mislabeled as the answer to the next request.
    fn exchange(&self, req: &Request) -> Result<Response, ServiceError> {
        let mut slot = self.stream.lock().expect("client stream lock");
        if slot.is_none() {
            *slot = Some(dial(&self.addr, &self.policy)?);
        }
        let stream = slot.as_mut().expect("stream just ensured");
        let result = (|| -> Result<Response, ServiceError> {
            write_frame(stream, &protocol::emit_request(req))
                .map_err(|e| classify_frame_error(classify_frame_io(e)))?;
            let payload = read_frame(stream).map_err(classify_frame_error)?;
            protocol::parse_response(&payload).map_err(|e| ServiceError::Protocol(e.to_string()))
        })();
        match &result {
            Ok(Response::Busy { .. }) | Err(_) => *slot = None,
            Ok(_) => {}
        }
        match result {
            // A wire-level error frame is a *completed* exchange: the
            // stream stays in sync and the connection is kept.
            Ok(Response::Error { message }) => Err(ServiceError::Remote(message)),
            other => other,
        }
    }

    /// Issues `req`, retrying transient failures (reconnect + backoff)
    /// per the policy. `retryable` is false for the one verb with a
    /// side effect (`shutdown`).
    fn call_with_retry(
        &self,
        req: &Request,
        retryable: bool,
    ) -> Result<Response, ServiceError> {
        let mut attempt: u32 = 0;
        loop {
            let outcome = match self.exchange(req) {
                Ok(Response::Busy { retry_after_ms }) => Err(ServiceError::Busy(retry_after_ms)),
                other => other,
            };
            match outcome {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    if !retryable || !e.is_transient() || attempt >= self.policy.max_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    let mut nap = self.policy.backoff(attempt);
                    if let ServiceError::Busy(hint_ms) = e {
                        // Honor the daemon's own hint when it is the
                        // longer wait — it knows its queue better.
                        nap = nap.max(Duration::from_millis(hint_ms));
                    }
                    std::thread::sleep(nap);
                }
            }
        }
    }

    fn call(&self, req: &Request) -> Result<Response, ServiceError> {
        // shutdown is the one verb with a side effect; everything else
        // is a deterministic read (see the module-level idempotency
        // argument) and safe to replay.
        let retryable = !matches!(req, Request::Shutdown);
        self.call_with_retry(req, retryable)
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), ServiceError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ServiceError::Protocol(format!("expected pong, got {other:?}"))),
        }
    }

    /// Server + store telemetry.
    pub fn stats(&self) -> Result<ServiceStats, ServiceError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ServiceError::Protocol(format!("expected stats, got {other:?}"))),
        }
    }

    /// Asks the daemon to drain and exit. Returns once the shutdown is
    /// acknowledged (the daemon may still be draining in-flight work).
    /// Never auto-retried: a lost ack does not prove the daemon missed
    /// the request, and replaying could stop a freshly restarted one.
    pub fn shutdown(&self) -> Result<(), ServiceError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ServiceError::Protocol(format!("expected shutdown ack, got {other:?}"))),
        }
    }

    /// Evaluates a batch of points under `scope`. Returns the
    /// fresh-computation count of this request window and one
    /// measurement per point, in request order, bit-identical to local
    /// evaluation. Declares the session deadline so the daemon can shed
    /// work it cannot start in time.
    pub fn evaluate(
        &self,
        scope: &EvalScope,
        points: &[TuningParams],
    ) -> Result<(u64, Vec<Measurement>), ServiceError> {
        let req = Request::Evaluate {
            scope: scope.clone(),
            points: points.to_vec(),
            deadline_ms: self.policy.deadline_ms(),
        };
        match self.call(&req)? {
            Response::Evaluate { computed, measurements } => {
                if measurements.len() != points.len() {
                    return Err(ServiceError::Protocol(format!(
                        "evaluate returned {} measurements for {} points",
                        measurements.len(),
                        points.len()
                    )));
                }
                // The ordering contract is positional; verify it rather
                // than trust it, so a confused daemon surfaces as a
                // protocol error instead of mislabeled measurements.
                for (p, m) in points.iter().zip(&measurements) {
                    if m.params != *p {
                        return Err(ServiceError::Protocol(format!(
                            "evaluate returned measurement for {} where {} was requested",
                            m.params, p
                        )));
                    }
                }
                Ok((computed, measurements))
            }
            other => Err(ServiceError::Protocol(format!("expected measurements, got {other:?}"))),
        }
    }

    /// Compiles and simulates one variant remotely; returns the
    /// selected trial time and the full report.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate(
        &self,
        kernel: &str,
        gpu: &GpuSpec,
        n: u64,
        params: TuningParams,
        model: ModelId,
        trials: u32,
        seed: u64,
    ) -> Result<(f64, SimReport), ServiceError> {
        let req = Request::Simulate {
            kernel: kernel.to_string(),
            gpu: gpu.clone(),
            n,
            params,
            model,
            trials,
            seed,
        };
        match self.call(&req)? {
            Response::Simulate { selected, report } => Ok((selected, report)),
            other => Err(ServiceError::Protocol(format!("expected report, got {other:?}"))),
        }
    }
}

/// Dials `addr` and arms the per-exchange socket deadlines.
fn dial(addr: &str, policy: &RetryPolicy) -> Result<TcpStream, ServiceError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(policy.socket_timeout()).ok();
    stream.set_write_timeout(policy.socket_timeout()).ok();
    Ok(stream)
}

/// Maps frame-layer failures into [`ServiceError`], folding transport
/// I/O back into the Io class so retry classification sees one kind of
/// connection failure.
fn classify_frame_error(e: FrameError) -> ServiceError {
    match e {
        FrameError::Io(io) => ServiceError::Io(io),
        other => ServiceError::Frame(other),
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr)
            .field("policy", &self.policy)
            .finish()
    }
}

/// A remote [`Oracle`]: one experiment scope evaluated through a daemon,
/// with a client-side memo so revisits never re-cross the network.
///
/// Transient RPC failures are healed by the [`Client`]'s retry policy
/// underneath; an error surfaces here only once that policy is
/// exhausted. The oracle contract has no error channel, so such a
/// *final* failure is **latched**: the failing point scores
/// `f64::INFINITY`, every later query short-circuits the same way, and
/// the driver must check [`RemoteEvaluator::take_error`] after the
/// search — a lost daemon aborts the run loudly instead of silently
/// returning garbage winners.
pub struct RemoteEvaluator {
    client: Client,
    scope: EvalScope,
    cache: Mutex<HashMap<TuningParams, Measurement>>,
    fetched: AtomicU64,
    computed_remote: AtomicU64,
    error: Mutex<Option<String>>,
    poisoned: std::sync::atomic::AtomicBool,
}

impl RemoteEvaluator {
    /// A remote evaluator over `scope`, speaking through `client`.
    pub fn new(client: Client, scope: EvalScope) -> RemoteEvaluator {
        RemoteEvaluator {
            client,
            scope,
            cache: Mutex::new(HashMap::new()),
            fetched: AtomicU64::new(0),
            computed_remote: AtomicU64::new(0),
            error: Mutex::new(None),
            poisoned: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// The experiment scope every query runs under.
    pub fn scope(&self) -> &EvalScope {
        &self.scope
    }

    /// The underlying connection (for side-channel requests like
    /// [`Client::stats`] on the same session).
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// Distinct points fetched over the wire so far (client-side cache
    /// misses; deterministic for a deterministic search).
    pub fn fetched(&self) -> u64 {
        self.fetched.load(Ordering::Relaxed)
    }

    /// Points the *daemon* computed fresh across this evaluator's
    /// requests — 0 on a fully warm store.
    pub fn computed_remote(&self) -> u64 {
        self.computed_remote.load(Ordering::Relaxed)
    }

    /// The latched RPC failure, if any. Drivers must call this after a
    /// search and treat `Some` as an aborted run. Taking the message
    /// does **not** revive the evaluator: once poisoned it answers
    /// `None`/infinity forever, so a partially failed run can never mix
    /// stale and fresh answers.
    pub fn take_error(&self) -> Option<String> {
        self.error.lock().expect("error lock").take()
    }

    fn latch_error(&self, e: ServiceError) {
        self.poisoned.store(true, Ordering::SeqCst);
        let mut slot = self.error.lock().expect("error lock");
        if slot.is_none() {
            *slot = Some(e.to_string());
        }
    }

    /// Evaluates one point (memoized client-side). `None` after an RPC
    /// failure — see [`RemoteEvaluator::take_error`].
    pub fn evaluate(&self, params: TuningParams) -> Option<Measurement> {
        self.evaluate_batch(&[params]).map(|mut v| v.remove(0))
    }

    /// Evaluates a batch: one RPC for the cache misses, everything else
    /// from the memo. Results in input order, `None` on (final, policy-
    /// exhausted) RPC failure.
    pub fn evaluate_batch(&self, points: &[TuningParams]) -> Option<Vec<Measurement>> {
        if self.poisoned.load(Ordering::SeqCst) {
            return None;
        }
        let mut cache = self.cache.lock().expect("remote cache lock");
        let mut missing: Vec<TuningParams> = Vec::new();
        let mut queued: std::collections::HashSet<TuningParams> = std::collections::HashSet::new();
        for p in points {
            if !cache.contains_key(p) && queued.insert(*p) {
                missing.push(*p);
            }
        }
        if !missing.is_empty() {
            match self.client.evaluate(&self.scope, &missing) {
                Ok((computed, measurements)) => {
                    self.fetched.fetch_add(missing.len() as u64, Ordering::Relaxed);
                    self.computed_remote.fetch_add(computed, Ordering::Relaxed);
                    for m in measurements {
                        cache.insert(m.params, m);
                    }
                }
                Err(e) => {
                    drop(cache);
                    self.latch_error(e);
                    return None;
                }
            }
        }
        Some(points.iter().map(|p| cache[p].clone()).collect())
    }
}

impl Oracle for RemoteEvaluator {
    fn eval(&self, params: TuningParams) -> f64 {
        self.evaluate(params).map_or(f64::INFINITY, |m| m.time_ms)
    }

    fn eval_many(&self, points: &[TuningParams]) -> Vec<f64> {
        match self.evaluate_batch(points) {
            Some(ms) => ms.into_iter().map(|m| m.time_ms).collect(),
            None => vec![f64::INFINITY; points.len()],
        }
    }
}

impl fmt::Debug for RemoteEvaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteEvaluator")
            .field("addr", &self.client.addr)
            .field("kernel", &self.scope.kernel)
            .field("fetched", &self.fetched())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_capped_and_jittered_into_the_upper_half() {
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(400),
            rpc_timeout: Duration::from_secs(1),
            jitter_seed: 7,
        };
        let mut prev_cap = 0u128;
        for attempt in 1..=8u32 {
            let cap = (25u128 << (attempt - 1)).min(400);
            let b = p.backoff(attempt).as_millis();
            assert!(b >= cap / 2, "attempt {attempt}: {b}ms below half-cap {cap}");
            assert!(b <= cap, "attempt {attempt}: {b}ms above cap {cap}");
            assert!(cap >= prev_cap, "caps must be monotone");
            prev_cap = cap;
        }
        // Deterministic: same policy, same attempt, same nap.
        assert_eq!(p.backoff(3), p.backoff(3));
    }

    #[test]
    fn zero_base_backoff_means_no_sleeping() {
        let p = RetryPolicy { base_backoff: Duration::ZERO, ..RetryPolicy::default() };
        assert_eq!(p.backoff(1), Duration::ZERO);
        assert_eq!(p.backoff(7), Duration::ZERO);
    }

    #[test]
    fn transient_classification_splits_retryable_from_deterministic_failures() {
        assert!(ServiceError::Io(std::io::Error::other("x")).is_transient());
        assert!(ServiceError::Frame(FrameError::TimedOut).is_transient());
        assert!(ServiceError::Busy(25).is_transient());
        assert!(!ServiceError::Remote("unknown kernel".into()).is_transient());
        assert!(!ServiceError::Protocol("short response".into()).is_transient());
    }
}
