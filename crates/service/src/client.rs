//! Client library: a framed-RPC [`Client`] plus the [`RemoteEvaluator`]
//! facade that makes a remote daemon look like a local oracle.
//!
//! [`RemoteEvaluator`] implements [`Oracle`], so every existing search
//! strategy — `RandomSearch`, `AnnealingSearch`, `GeneticSearch`,
//! `HybridSearch` with replay validation, all of them — runs unchanged
//! against a daemon. Batched oracle queries become one `evaluate` RPC
//! for the batch's cache misses; revisits (stochastic searchers revisit
//! constantly) are served from a client-side memo without touching the
//! network. Because evaluation is deterministic and the wire format is
//! bit-exact, a remote search produces the *identical trace* a local
//! one does.

use crate::protocol::{self, EvalScope, Request, Response, ServiceStats};
use oriole_arch::GpuSpec;
use oriole_codegen::TuningParams;
use oriole_sim::{ModelId, SimReport};
use oriole_tuner::persist::{read_frame, write_frame, FrameError};
use oriole_tuner::{Measurement, Oracle};
use std::collections::HashMap;
use std::fmt;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Why an RPC failed.
#[derive(Debug)]
pub enum ServiceError {
    /// Connection-level failure (connect, send, receive).
    Io(std::io::Error),
    /// The response frame was damaged or unparseable.
    Frame(FrameError),
    /// The response parsed but was not the expected shape, or carried a
    /// wire error.
    Protocol(String),
    /// The daemon answered with an error (its message included —
    /// unknown kernel, infeasible request, version skew, …).
    Remote(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "service I/O error: {e}"),
            ServiceError::Frame(e) => write!(f, "service frame error: {e}"),
            ServiceError::Protocol(m) => write!(f, "service protocol error: {m}"),
            ServiceError::Remote(m) => write!(f, "daemon error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> ServiceError {
        ServiceError::Io(e)
    }
}

impl From<FrameError> for ServiceError {
    fn from(e: FrameError) -> ServiceError {
        ServiceError::Frame(e)
    }
}

/// One connection to a tuner daemon. All methods are `&self` (the
/// stream sits behind a mutex), and each issues exactly one
/// request/response exchange.
pub struct Client {
    stream: Mutex<TcpStream>,
    addr: String,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:7733`).
    pub fn connect(addr: &str) -> Result<Client, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream: Mutex::new(stream), addr: addr.to_string() })
    }

    /// [`Client::connect`] retried until `timeout` elapses — the
    /// "daemon was just spawned" path (CI smoke jobs, tests, scripts).
    pub fn connect_retry(addr: &str, timeout: Duration) -> Result<Client, ServiceError> {
        let start = Instant::now();
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= timeout => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// The address this client dialed.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn call(&self, req: &Request) -> Result<Response, ServiceError> {
        let mut stream = self.stream.lock().expect("client stream lock");
        write_frame(&mut *stream, &protocol::emit_request(req))?;
        let payload = read_frame(&mut *stream)?;
        match protocol::parse_response(&payload) {
            Ok(Response::Error { message }) => Err(ServiceError::Remote(message)),
            Ok(resp) => Ok(resp),
            Err(e) => Err(ServiceError::Protocol(e.to_string())),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), ServiceError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ServiceError::Protocol(format!("expected pong, got {other:?}"))),
        }
    }

    /// Server + store telemetry.
    pub fn stats(&self) -> Result<ServiceStats, ServiceError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ServiceError::Protocol(format!("expected stats, got {other:?}"))),
        }
    }

    /// Asks the daemon to drain and exit. Returns once the shutdown is
    /// acknowledged (the daemon may still be draining in-flight work).
    pub fn shutdown(&self) -> Result<(), ServiceError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ServiceError::Protocol(format!("expected shutdown ack, got {other:?}"))),
        }
    }

    /// Evaluates a batch of points under `scope`. Returns the
    /// fresh-computation count of this request window and one
    /// measurement per point, in request order, bit-identical to local
    /// evaluation.
    pub fn evaluate(
        &self,
        scope: &EvalScope,
        points: &[TuningParams],
    ) -> Result<(u64, Vec<Measurement>), ServiceError> {
        let req = Request::Evaluate { scope: scope.clone(), points: points.to_vec() };
        match self.call(&req)? {
            Response::Evaluate { computed, measurements } => {
                if measurements.len() != points.len() {
                    return Err(ServiceError::Protocol(format!(
                        "evaluate returned {} measurements for {} points",
                        measurements.len(),
                        points.len()
                    )));
                }
                // The ordering contract is positional; verify it rather
                // than trust it, so a confused daemon surfaces as a
                // protocol error instead of mislabeled measurements.
                for (p, m) in points.iter().zip(&measurements) {
                    if m.params != *p {
                        return Err(ServiceError::Protocol(format!(
                            "evaluate returned measurement for {} where {} was requested",
                            m.params, p
                        )));
                    }
                }
                Ok((computed, measurements))
            }
            other => Err(ServiceError::Protocol(format!("expected measurements, got {other:?}"))),
        }
    }

    /// Compiles and simulates one variant remotely; returns the
    /// selected trial time and the full report.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate(
        &self,
        kernel: &str,
        gpu: &GpuSpec,
        n: u64,
        params: TuningParams,
        model: ModelId,
        trials: u32,
        seed: u64,
    ) -> Result<(f64, SimReport), ServiceError> {
        let req = Request::Simulate {
            kernel: kernel.to_string(),
            gpu: gpu.clone(),
            n,
            params,
            model,
            trials,
            seed,
        };
        match self.call(&req)? {
            Response::Simulate { selected, report } => Ok((selected, report)),
            other => Err(ServiceError::Protocol(format!("expected report, got {other:?}"))),
        }
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client").field("addr", &self.addr).finish()
    }
}

/// A remote [`Oracle`]: one experiment scope evaluated through a daemon,
/// with a client-side memo so revisits never re-cross the network.
///
/// The oracle contract has no error channel, so an RPC failure
/// mid-search is **latched**: the failing point scores
/// `f64::INFINITY`, every later query short-circuits the same way, and
/// the driver must check [`RemoteEvaluator::take_error`] after the
/// search — a lost daemon aborts the run loudly instead of silently
/// returning garbage winners.
pub struct RemoteEvaluator {
    client: Client,
    scope: EvalScope,
    cache: Mutex<HashMap<TuningParams, Measurement>>,
    fetched: AtomicU64,
    computed_remote: AtomicU64,
    error: Mutex<Option<String>>,
    poisoned: std::sync::atomic::AtomicBool,
}

impl RemoteEvaluator {
    /// A remote evaluator over `scope`, speaking through `client`.
    pub fn new(client: Client, scope: EvalScope) -> RemoteEvaluator {
        RemoteEvaluator {
            client,
            scope,
            cache: Mutex::new(HashMap::new()),
            fetched: AtomicU64::new(0),
            computed_remote: AtomicU64::new(0),
            error: Mutex::new(None),
            poisoned: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// The experiment scope every query runs under.
    pub fn scope(&self) -> &EvalScope {
        &self.scope
    }

    /// The underlying connection (for side-channel requests like
    /// [`Client::stats`] on the same session).
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// Distinct points fetched over the wire so far (client-side cache
    /// misses; deterministic for a deterministic search).
    pub fn fetched(&self) -> u64 {
        self.fetched.load(Ordering::Relaxed)
    }

    /// Points the *daemon* computed fresh across this evaluator's
    /// requests — 0 on a fully warm store.
    pub fn computed_remote(&self) -> u64 {
        self.computed_remote.load(Ordering::Relaxed)
    }

    /// The latched RPC failure, if any. Drivers must call this after a
    /// search and treat `Some` as an aborted run. Taking the message
    /// does **not** revive the evaluator: once poisoned it answers
    /// `None`/infinity forever, so a partially failed run can never mix
    /// stale and fresh answers.
    pub fn take_error(&self) -> Option<String> {
        self.error.lock().expect("error lock").take()
    }

    fn latch_error(&self, e: ServiceError) {
        self.poisoned.store(true, Ordering::SeqCst);
        let mut slot = self.error.lock().expect("error lock");
        if slot.is_none() {
            *slot = Some(e.to_string());
        }
    }

    /// Evaluates one point (memoized client-side). `None` after an RPC
    /// failure — see [`RemoteEvaluator::take_error`].
    pub fn evaluate(&self, params: TuningParams) -> Option<Measurement> {
        self.evaluate_batch(&[params]).map(|mut v| v.remove(0))
    }

    /// Evaluates a batch: one RPC for the cache misses, everything else
    /// from the memo. Results in input order, `None` on RPC failure.
    pub fn evaluate_batch(&self, points: &[TuningParams]) -> Option<Vec<Measurement>> {
        if self.poisoned.load(Ordering::SeqCst) {
            return None;
        }
        let mut cache = self.cache.lock().expect("remote cache lock");
        let mut missing: Vec<TuningParams> = Vec::new();
        let mut queued: std::collections::HashSet<TuningParams> = std::collections::HashSet::new();
        for p in points {
            if !cache.contains_key(p) && queued.insert(*p) {
                missing.push(*p);
            }
        }
        if !missing.is_empty() {
            match self.client.evaluate(&self.scope, &missing) {
                Ok((computed, measurements)) => {
                    self.fetched.fetch_add(missing.len() as u64, Ordering::Relaxed);
                    self.computed_remote.fetch_add(computed, Ordering::Relaxed);
                    for m in measurements {
                        cache.insert(m.params, m);
                    }
                }
                Err(e) => {
                    drop(cache);
                    self.latch_error(e);
                    return None;
                }
            }
        }
        Some(points.iter().map(|p| cache[p].clone()).collect())
    }
}

impl Oracle for RemoteEvaluator {
    fn eval(&self, params: TuningParams) -> f64 {
        self.evaluate(params).map_or(f64::INFINITY, |m| m.time_ms)
    }

    fn eval_many(&self, points: &[TuningParams]) -> Vec<f64> {
        match self.evaluate_batch(points) {
            Some(ms) => ms.into_iter().map(|m| m.time_ms).collect(),
            None => vec![f64::INFINITY; points.len()],
        }
    }
}

impl fmt::Debug for RemoteEvaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteEvaluator")
            .field("addr", &self.client.addr)
            .field("kernel", &self.scope.kernel)
            .field("fetched", &self.fetched())
            .finish()
    }
}
