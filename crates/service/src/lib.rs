//! # oriole-service — the sharded tuner service
//!
//! The evaluation engine as a long-lived daemon: one process owns one
//! process-level [`ArtifactStore`](oriole_tuner::ArtifactStore)
//! (optionally disk-backed) and serves it to any number of tuner
//! clients over localhost TCP, so concurrent searches sweeping
//! overlapping spaces share front-ends, model contexts and whole
//! measurement tiers instead of recomputing them per process.
//!
//! Three layers:
//!
//! * [`protocol`] — the RPC vocabulary: `evaluate` (a batch of tuning
//!   points under one experiment scope), `simulate`, `stats`, `ping`
//!   and `shutdown` requests, with responses carrying
//!   [`Measurement`](oriole_tuner::Measurement) /
//!   [`SimReport`](oriole_sim::SimReport) records in
//!   `oriole_tuner::persist`'s canonical serialization — floats as raw
//!   IEEE-754 bits, so remote results are **bit-identical** to local
//!   evaluation. Payloads travel in length-framed, checksummed,
//!   correlation-tagged frames
//!   ([`oriole_tuner::persist::write_frame_tagged`]): the id lets one
//!   connection pipeline many requests and receive responses out of
//!   order (protocol v3).
//! * [`server`] — the daemon: one **reactor** thread owns every socket
//!   (nonblocking, readiness-driven — see the private `reactor`
//!   module's `poll(2)` wrapper) and runs each connection as a small
//!   state machine: read-accumulate → decode → dispatch → write-drain.
//!   Evaluation executes on a **bounded worker pool** behind the same
//!   admission gate as before: requests that cannot start within their
//!   deadline — and connections past the bound — are shed with an
//!   explicit [`Response::Busy`](protocol::Response::Busy) instead of
//!   a hung socket, idle connections are reaped, writes that stop
//!   making progress drop the connection, and per-connection quotas
//!   keep any one client from monopolizing the daemon
//!   ([`ServeConfig`], including the per-connection
//!   [`pipeline_depth`](ServeConfig::pipeline_depth) cap, enforced by
//!   simply not reading a maxed-out socket). All workers evaluate
//!   through the one shared store, whose sharded
//!   in-flight-deduplicating tiers make "single writer per scope"
//!   automatic inside the process: two clients racing on one point
//!   compute it once. Malformed frames and version skew are rejected
//!   without poisoning the store; a client disconnecting mid-request
//!   costs only its own response. Shutdown (by RPC) drains queued
//!   work, busy workers and unwritten responses under a hard deadline
//!   before the reactor exits, so a daemon with a `--store-dir` never
//!   tears its own spill lines.
//! * [`client`] — the client library: a [`Client`] speaking the
//!   protocol under a [`RetryPolicy`] — a deadline on every exchange,
//!   automatic reconnect and retry with exponential backoff + jitter
//!   for the idempotent verbs (evaluation is deterministic and the
//!   store dedups, so replaying is always bit-identically safe) — a
//!   [`Pipeline`] holding up to N request frames in flight on one
//!   connection with responses matched by correlation id, and a
//!   [`RemoteEvaluator`] facade implementing
//!   [`oriole_tuner::Oracle`], so every existing search strategy runs
//!   unchanged against a daemon — `RandomSearch`, `GeneticSearch`,
//!   hybrid search with replay validation, all of them. The evaluator
//!   **coalesces** concurrent misses from parallel searches into
//!   batched pipelined `evaluate` frames ([`CoalesceConfig`]), so a
//!   fleet of search threads shares one socket instead of serializing
//!   exchanges. A *final* (policy-exhausted) failure latches: the run
//!   aborts loudly, never silently returns garbage winners.
//! * [`chaos`] — fault injection: a [`ChaosProxy`] that delays,
//!   corrupts, truncates and drops proxied frames on a configurable
//!   [`ChaosPlan`], backing the acceptance suite that proves every
//!   injected failure either heals (bit-identical final trace) or
//!   aborts loudly, with no unbounded blocking anywhere.
//!
//! The one discipline the daemon cannot check: a store *directory* must
//! have a single writing process. Run exactly one daemon per
//! `--store-dir` and point every client at it (readers of a quiescent
//! directory — `store stats`/`verify` — are always safe).

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod protocol;
mod reactor;
pub mod server;

pub use chaos::{ChaosPlan, ChaosProxy, FaultSpec};
pub use client::{
    Client, CoalesceConfig, Pipeline, RemoteEvaluator, RetryPolicy, ServiceError,
};
pub use protocol::{EvalScope, Request, Response, ServiceStats, RPC_VERSION};
pub use server::{ServeConfig, ServeSummary, Server};
