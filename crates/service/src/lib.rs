//! # oriole-service — the sharded tuner service
//!
//! The evaluation engine as a long-lived daemon: one process owns one
//! process-level [`ArtifactStore`](oriole_tuner::ArtifactStore)
//! (optionally disk-backed) and serves it to any number of tuner
//! clients over localhost TCP, so concurrent searches sweeping
//! overlapping spaces share front-ends, model contexts and whole
//! measurement tiers instead of recomputing them per process.
//!
//! Three layers:
//!
//! * [`protocol`] — the RPC vocabulary: `evaluate` (a batch of tuning
//!   points under one experiment scope), `simulate`, `stats`, `ping`
//!   and `shutdown` requests, with responses carrying
//!   [`Measurement`](oriole_tuner::Measurement) /
//!   [`SimReport`](oriole_sim::SimReport) records in
//!   `oriole_tuner::persist`'s canonical serialization — floats as raw
//!   IEEE-754 bits, so remote results are **bit-identical** to local
//!   evaluation. Payloads travel in length-framed, checksummed frames
//!   ([`oriole_tuner::persist::write_frame`]).
//! * [`server`] — the daemon: a blocking accept loop (woken for
//!   shutdown by a self-connection) handing each connection to a
//!   worker thread. All workers evaluate through the
//!   one shared store, whose sharded in-flight-deduplicating tiers make
//!   "single writer per scope" automatic inside the process: two
//!   clients racing on one point compute it once. Malformed frames and
//!   version skew are rejected without poisoning the store; a client
//!   disconnecting mid-request costs only its own response. Shutdown
//!   (by RPC) drains in-flight evaluations before the listener exits,
//!   so a daemon with a `--store-dir` never tears its own spill lines.
//! * [`client`] — the client library: a [`Client`] speaking the
//!   protocol and a [`RemoteEvaluator`] facade implementing
//!   [`oriole_tuner::Oracle`], so every existing search strategy runs
//!   unchanged against a daemon — `RandomSearch`, `GeneticSearch`,
//!   hybrid search with replay validation, all of them.
//!
//! The one discipline the daemon cannot check: a store *directory* must
//! have a single writing process. Run exactly one daemon per
//! `--store-dir` and point every client at it (readers of a quiescent
//! directory — `store stats`/`verify` — are always safe).

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, RemoteEvaluator, ServiceError};
pub use protocol::{EvalScope, Request, Response, ServiceStats, RPC_VERSION};
pub use server::{Server, ServeSummary};
