//! The tuner daemon: a TCP accept loop serving the RPC protocol over
//! one shared [`ArtifactStore`].
//!
//! # Concurrency model
//!
//! One worker thread per connection, all evaluating through the same
//! process-level store. That makes the sharing rules exactly the
//! in-process ones (PR 2–4): concurrent clients sweeping overlapping
//! spaces share ASTs, front-ends, model contexts and measurement tiers,
//! and the sharded in-flight-deduplicating memo guarantees each point
//! is computed **once** no matter how many connections race on it —
//! "single writer per scope" is structural, not a lock the clients must
//! take. With a disk-backed store the daemon is the directory's one
//! writing process, so the append-only spill discipline of
//! [`oriole_tuner::persist`] holds fleet-wide.
//!
//! # Failure containment
//!
//! * A **malformed frame** (bad magic/length/checksum) poisons only its
//!   connection: the worker answers with an error frame (best-effort)
//!   and hangs up. The store is never touched with unvalidated input.
//! * **Version skew** is answered with an error naming both versions,
//!   then the connection closes.
//! * A request that parses but names impossible values (unknown kernel,
//!   infeasible scope) is a per-request error; the connection survives.
//! * A client that **disconnects mid-request** costs only the response
//!   write; the computed measurements stay in the store for the next
//!   client (that's the point of the shared tier).
//! * **Shutdown** (by RPC) stops accepting, then drains in-flight
//!   evaluations before [`Server::run`] returns, so a daemon is never
//!   killed out from under its own spill writes.

use crate::protocol::{self, EvalScope, Request, Response, ServiceStats};
use oriole_codegen::{compile, TuningParams};
use oriole_kernels::KernelId;
use oriole_sim::TrialProtocol;
use oriole_tuner::persist::{read_frame, write_frame, FrameError};
use oriole_tuner::ArtifactStore;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Serving counters of one daemon run, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Requests served (all verbs).
    pub requests: u64,
    /// Tuning points served across all `evaluate` batches.
    pub points_served: u64,
}

struct ServerState {
    shutdown: AtomicBool,
    /// Workers currently inside an `evaluate`/`simulate` body — the
    /// drain gate shutdown waits on.
    busy: AtomicUsize,
    connections: AtomicU64,
    requests: AtomicU64,
    points_served: AtomicU64,
    /// Where the shutdown handler dials to pop the accept loop out of
    /// its blocking `accept`: the listener's own address, with an
    /// unspecified bind IP (`0.0.0.0`/`[::]`) rewritten to the
    /// matching loopback — the wildcard is bindable, not dialable
    /// everywhere.
    wake_addr: SocketAddr,
}

/// A bound (but not yet serving) daemon. Binding and serving are split
/// so callers can learn the actual address (`--addr 127.0.0.1:0` binds
/// an ephemeral port) before the accept loop blocks.
pub struct Server {
    listener: TcpListener,
    store: ArtifactStore,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener on `addr` over `store`. The store is the
    /// daemon's one process-level artifact store: every connection
    /// shares it for its whole lifetime.
    pub fn bind(addr: &str, store: ArtifactStore) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let mut wake_addr = listener.local_addr()?;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let state = Arc::new(ServerState {
            shutdown: AtomicBool::new(false),
            busy: AtomicUsize::new(0),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            points_served: AtomicU64::new(0),
            wake_addr,
        });
        Ok(Server { listener, store, state })
    }

    /// The bound address (resolves `:0` to the real ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop until a client sends `shutdown`, then
    /// drains in-flight work and returns the serving counters.
    ///
    /// Each accepted connection gets its own worker thread; workers
    /// exit when their client hangs up, so they are detached rather
    /// than joined — only *busy* workers (inside an evaluate/simulate)
    /// gate the drain.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let accept_error = loop {
            // Blocking accept — zero connect latency for clients; the
            // shutdown handler wakes it with a self-connection.
            let (stream, _peer) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // A dying listener still drains in-flight work below —
                // the store must never be abandoned mid-spill.
                Err(e) => break Some(e),
            };
            if self.state.shutdown.load(Ordering::SeqCst) {
                // `stream` may be a real client or the wake-up dial;
                // either way nothing new is served past shutdown.
                drop(stream);
                break None;
            }
            self.state.connections.fetch_add(1, Ordering::Relaxed);
            let store = self.store.clone();
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || handle_connection(stream, store, state));
        };
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Drain: no new requests are admitted (workers increment `busy`
        // *before* re-checking the shutdown flag, so this read cannot
        // miss a request that saw the flag clear), and workers mid-
        // evaluation finish (and spill) before we return — a
        // disk-backed store is left with whole records only.
        while self.state.busy.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        match accept_error {
            Some(e) => Err(e),
            None => Ok(ServeSummary {
                connections: self.state.connections.load(Ordering::Relaxed),
                requests: self.state.requests.load(Ordering::Relaxed),
                points_served: self.state.points_served.load(Ordering::Relaxed),
            }),
        }
    }
}

/// Decrements the busy gauge on every exit path of a request body.
struct BusyGuard<'a>(&'a AtomicUsize);

impl<'a> BusyGuard<'a> {
    fn enter(gauge: &'a AtomicUsize) -> BusyGuard<'a> {
        gauge.fetch_add(1, Ordering::SeqCst);
        BusyGuard(gauge)
    }
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(mut stream: TcpStream, store: ArtifactStore, state: Arc<ServerState>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            // Clean close between frames, or dropped mid-frame: either
            // way this connection is done; nothing shared is affected.
            Err(FrameError::Eof) | Err(FrameError::Io(_)) => return,
            // Malformed framing: no resynchronization exists, so answer
            // (best-effort) and hang up.
            Err(e) => {
                let resp = Response::Error { message: format!("malformed frame: {e}") };
                let _ = write_frame(&mut stream, &protocol::emit_response(&resp));
                return;
            }
        };
        // The busy guard is taken BEFORE the shutdown re-check: either
        // this thread observes the flag clear — in which case the drain
        // loop's `busy` read (which happens after the flag was set, in
        // SeqCst order) sees the increment and waits for us — or it
        // observes the flag set and refuses. A request can never slip
        // between "shutdown flagged" and "drain complete".
        let busy = BusyGuard::enter(&state.busy);
        if state.shutdown.load(Ordering::SeqCst) {
            // A connection lingering past shutdown is refused, not
            // served: the daemon has already drained and its store may
            // be about to go away with the process.
            drop(busy);
            let resp = Response::Error { message: "daemon is shutting down".to_string() };
            let _ = write_frame(&mut stream, &protocol::emit_response(&resp));
            return;
        }
        state.requests.fetch_add(1, Ordering::Relaxed);
        let (response, disconnect) = match protocol::parse_request(&payload) {
            Ok(req) => dispatch(req, &store, &state),
            // A frame that parsed but isn't a well-formed request:
            // per-request error. Version skew additionally drops the
            // connection — the peer will keep speaking the wrong
            // dialect.
            Err(e) => {
                let msg = e.to_string();
                let skew = msg.contains("version skew");
                (Response::Error { message: msg }, skew)
            }
        };
        let sent = write_frame(&mut stream, &protocol::emit_response(&response)).is_ok();
        drop(busy);
        if matches!(response, Response::ShuttingDown) {
            // Flag only after the ack is on the wire, so the requester
            // always hears back; then pop the accept loop out of its
            // blocking accept with a throwaway self-connection.
            state.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(state.wake_addr);
            return;
        }
        if disconnect || !sent {
            return;
        }
    }
}

fn dispatch(req: Request, store: &ArtifactStore, state: &ServerState) -> (Response, bool) {
    match req {
        Request::Ping => (Response::Pong, false),
        Request::Shutdown => (Response::ShuttingDown, false),
        Request::Stats => (Response::Stats(stats(store, state)), false),
        Request::Evaluate { scope, points } => {
            let resp = handle_evaluate(store, &scope, &points);
            if matches!(resp, Response::Evaluate { .. }) {
                state.points_served.fetch_add(points.len() as u64, Ordering::Relaxed);
            }
            (resp, false)
        }
        Request::Simulate { kernel, gpu, n, params, model, trials, seed } => {
            (handle_simulate(store, &kernel, &gpu, n, params, model, trials, seed), false)
        }
    }
}

fn stats(store: &ArtifactStore, state: &ServerState) -> ServiceStats {
    let s = store.stats();
    ServiceStats {
        connections: state.connections.load(Ordering::Relaxed),
        requests: state.requests.load(Ordering::Relaxed),
        points_served: state.points_served.load(Ordering::Relaxed),
        kernels: s.kernels as u64,
        front_end_tiers: s.front_end_tiers as u64,
        front_end_lowerings: s.front_end_lowerings as u64,
        measurement_tiers: s.measurement_tiers as u64,
        unique_evaluations: s.unique_evaluations as u64,
        contexts: s.contexts as u64,
        disk: s.disk,
    }
}

fn handle_evaluate(store: &ArtifactStore, scope: &EvalScope, points: &[TuningParams]) -> Response {
    let Some(kid) = KernelId::parse(&scope.kernel) else {
        return Response::Error { message: format!("unknown kernel `{}`", scope.kernel) };
    };
    if scope.sizes.is_empty() {
        return Response::Error { message: "empty size list".to_string() };
    }
    let builder = move |n: u64| kid.ast(n);
    let evaluator =
        store.evaluator_with(kid.name(), &builder, &scope.gpu, &scope.sizes, scope.protocol);
    // "Computed" is the measurement tier's fresh-computation delta over
    // this request window (tier-wide: under racing clients a point is
    // attributed to whichever window saw it; deterministically zero on
    // a warm re-run).
    let before = evaluator.unique_evaluations();
    let measurements = evaluator.evaluate_batch(points);
    let computed = (evaluator.unique_evaluations() - before) as u64;
    Response::Evaluate {
        computed,
        measurements: measurements.iter().map(|m| (**m).clone()).collect(),
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_simulate(
    store: &ArtifactStore,
    kernel: &str,
    gpu: &oriole_arch::GpuSpec,
    n: u64,
    params: TuningParams,
    model: oriole_sim::ModelId,
    trials: u32,
    seed: u64,
) -> Response {
    let Some(kid) = KernelId::parse(kernel) else {
        return Response::Error { message: format!("unknown kernel `{kernel}`") };
    };
    let compiled = match compile(&kid.ast(n), gpu, params) {
        Ok(k) => k,
        Err(e) => return Response::Error { message: e.to_string() },
    };
    let ctx = store.context_for(gpu, model);
    let report = match ctx.simulate(&compiled, n) {
        Ok(r) => r,
        Err(e) => return Response::Error { message: e.to_string() },
    };
    let times = match ctx.measure(&compiled, n, trials, seed) {
        Ok(t) => t,
        Err(e) => return Response::Error { message: e.to_string() },
    };
    Response::Simulate { selected: times.selected(TrialProtocol::FifthOfTen), report }
}
