//! The tuner daemon: a TCP accept loop serving the RPC protocol over
//! one shared [`ArtifactStore`].
//!
//! # Concurrency model
//!
//! A **bounded** worker pool: each accepted connection gets a worker
//! thread, but only up to [`ServeConfig::workers`] of them — a
//! connection past the bound is answered with [`Response::Busy`] and
//! closed instead of parking in an unbounded thread herd. Inside the
//! pool a second gate bounds the requests concurrently inside an
//! `evaluate`/`simulate` body ([`ServeConfig::max_inflight`]): a
//! request that cannot get a slot within its declared deadline (or the
//! server's own [`ServeConfig::request_timeout`]) is shed with `Busy`,
//! never queued invisibly on a hung socket.
//!
//! All admitted workers evaluate through the same process-level store,
//! so the sharing rules are exactly the in-process ones (PR 2–4):
//! concurrent clients sweeping overlapping spaces share ASTs,
//! front-ends, model contexts and measurement tiers, and the sharded
//! in-flight-deduplicating memo guarantees each point is computed
//! **once** no matter how many connections race on it — "single writer
//! per scope" is structural, not a lock the clients must take. With a
//! disk-backed store the daemon is the directory's one writing process,
//! so the append-only spill discipline of [`oriole_tuner::persist`]
//! holds fleet-wide.
//!
//! # Deadlines everywhere
//!
//! Every blocking socket operation carries a deadline:
//!
//! * reads run under [`ServeConfig::idle_timeout`] — an idle client (or
//!   one trickling a frame byte-at-a-time) is **reaped**, its worker
//!   slot reclaimed, instead of leaking a parked thread;
//! * writes run under [`ServeConfig::write_timeout`] — a client that
//!   stops reading its own responses loses the connection, not a
//!   daemon thread;
//! * the accept loop never blocks indefinitely: it polls a
//!   non-blocking listener, so shutdown is observed within the poll
//!   interval even if the shutdown wake-up dial fails;
//! * shutdown drains in-flight work on a condvar with a hard deadline
//!   ([`ServeConfig::drain_timeout`]) — a wedged evaluation cannot keep
//!   the daemon alive forever.
//!
//! # Failure containment
//!
//! * A **malformed frame** (bad magic/length/checksum) poisons only its
//!   connection: the worker answers with an error frame (best-effort)
//!   and hangs up. The store is never touched with unvalidated input.
//! * **Version skew** is answered with an error naming both versions,
//!   then the connection closes.
//! * A request that parses but names impossible values (unknown kernel,
//!   infeasible scope, a batch over the point quota) is a per-request
//!   error; the connection survives.
//! * A client that **disconnects mid-request** costs only the response
//!   write; the computed measurements stay in the store for the next
//!   client (that's the point of the shared tier).
//! * **Saturation** is an explicit [`Response::Busy`] with a retry
//!   hint — evaluation is deterministic and the store dedups, so a
//!   shed client retries for free.
//! * **Shutdown** (by RPC) stops accepting, then drains in-flight
//!   evaluations before [`Server::run`] returns, so a daemon is never
//!   killed out from under its own spill writes.

use crate::protocol::{self, EvalScope, Request, Response, ServiceStats};
use oriole_codegen::{compile, TuningParams};
use oriole_kernels::KernelId;
use oriole_sim::TrialProtocol;
use oriole_tuner::persist::{read_frame, write_frame, FrameError};
use oriole_tuner::ArtifactStore;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of one daemon run. [`ServeConfig::default`] is sized
/// for a localhost fleet of tuner clients; every bound exists so that
/// no failure mode — slow client, silent client, flood of clients —
/// can park a daemon thread forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum concurrent connections (worker threads). A connection
    /// past the bound is answered [`Response::Busy`] and closed.
    pub workers: usize,
    /// Maximum requests concurrently inside an `evaluate`/`simulate`
    /// body. Excess requests wait for a slot up to their deadline,
    /// then are shed with [`Response::Busy`].
    pub max_inflight: usize,
    /// The server-side cap on how long a request may wait for an
    /// inflight slot (a client's `deadline_ms` can only shorten it).
    pub request_timeout: Duration,
    /// Per-connection read deadline: a connection idle (or trickling a
    /// frame) past this is reaped and its worker slot reclaimed.
    pub idle_timeout: Duration,
    /// Per-connection write deadline: a client that stops reading its
    /// responses loses the connection after this long.
    pub write_timeout: Duration,
    /// Hard deadline on the shutdown drain: busy workers get this long
    /// to finish (and spill) before [`Server::run`] returns anyway.
    pub drain_timeout: Duration,
    /// The `retry_after_ms` hint carried in [`Response::Busy`].
    pub busy_retry_ms: u64,
    /// Per-request point quota: an `evaluate` batch larger than this is
    /// a per-request error (retrying cannot help, so it is not `Busy`).
    pub max_points_per_request: usize,
    /// Per-connection request quota (0 = unlimited): a connection that
    /// exhausts it is answered `Busy` and recycled, so one client
    /// cannot hold a worker slot forever — reconnecting re-enters the
    /// admission gate.
    pub max_requests_per_conn: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 64,
            max_inflight: 16,
            request_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(30),
            busy_retry_ms: 25,
            max_points_per_request: 100_000,
            max_requests_per_conn: 0,
        }
    }
}

/// Serving counters of one daemon run, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Requests served (all verbs).
    pub requests: u64,
    /// Tuning points served across all `evaluate` batches.
    pub points_served: u64,
    /// Requests and connections shed with [`Response::Busy`].
    pub shed_busy: u64,
    /// Connections reaped for idling past the read deadline.
    pub reaped_idle: u64,
    /// Whether the shutdown drain completed before its hard deadline
    /// (`false` means a worker was still evaluating when the deadline
    /// forced the exit).
    pub drained: bool,
}

/// The admission gate on concurrent `evaluate`/`simulate` bodies: a
/// condvar-guarded slot counter. Acquisition waits — bounded by the
/// caller's deadline — for a slot; the same condvar serves the
/// shutdown drain (wait for zero) with its own hard deadline.
struct InflightGate {
    slots: Mutex<usize>,
    changed: Condvar,
    cap: usize,
}

impl InflightGate {
    fn new(cap: usize) -> InflightGate {
        InflightGate { slots: Mutex::new(0), changed: Condvar::new(), cap: cap.max(1) }
    }

    /// Waits up to `deadline` for a free slot; `false` means the
    /// request must be shed.
    fn acquire(&self, deadline: Duration) -> bool {
        let mut used = self.slots.lock().expect("inflight gate lock");
        let end = Instant::now() + deadline;
        while *used >= self.cap {
            let now = Instant::now();
            if now >= end {
                return false;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(used, end - now)
                .expect("inflight gate wait");
            used = guard;
        }
        *used += 1;
        true
    }

    fn release(&self) {
        let mut used = self.slots.lock().expect("inflight gate lock");
        *used = used.saturating_sub(1);
        drop(used);
        self.changed.notify_all();
    }

    fn busy(&self) -> usize {
        *self.slots.lock().expect("inflight gate lock")
    }

    /// The shutdown drain: waits until no request is inside an
    /// `evaluate`/`simulate` body, or the hard deadline passes.
    /// Returns whether the drain completed clean.
    fn drain(&self, hard_deadline: Duration) -> bool {
        let mut used = self.slots.lock().expect("inflight gate lock");
        let end = Instant::now() + hard_deadline;
        while *used > 0 {
            let now = Instant::now();
            if now >= end {
                return false;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(used, end - now)
                .expect("inflight gate wait");
            used = guard;
        }
        true
    }
}

struct ServerState {
    cfg: ServeConfig,
    shutdown: AtomicBool,
    /// Gate on requests inside an `evaluate`/`simulate` body — the
    /// admission bound and the drain gate shutdown waits on.
    inflight: InflightGate,
    /// Connections currently owning a worker thread (the `workers`
    /// admission bound).
    conn_active: AtomicUsize,
    connections: AtomicU64,
    requests: AtomicU64,
    points_served: AtomicU64,
    shed_busy: AtomicU64,
    reaped_idle: AtomicU64,
    /// Where the shutdown handler dials to pop the accept loop out of
    /// its poll sleep early: the listener's own address, with an
    /// unspecified bind IP (`0.0.0.0`/`[::]`) rewritten to the
    /// matching loopback — the wildcard is bindable, not dialable
    /// everywhere. The dial is retried but remains best-effort: the
    /// accept loop polls a non-blocking listener, so even a fully
    /// failed wake only costs one poll interval of shutdown latency —
    /// never a hung daemon (regression-tested with a sabotaged dial
    /// address).
    wake_addr: Mutex<SocketAddr>,
}

/// A bound (but not yet serving) daemon. Binding and serving are split
/// so callers can learn the actual address (`--addr 127.0.0.1:0` binds
/// an ephemeral port) before the accept loop starts.
pub struct Server {
    listener: TcpListener,
    store: ArtifactStore,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener on `addr` over `store` with the default
    /// [`ServeConfig`]. The store is the daemon's one process-level
    /// artifact store: every connection shares it for its whole
    /// lifetime.
    pub fn bind(addr: &str, store: ArtifactStore) -> std::io::Result<Server> {
        Server::bind_with(addr, store, ServeConfig::default())
    }

    /// [`Server::bind`] with explicit serving bounds.
    pub fn bind_with(
        addr: &str,
        store: ArtifactStore,
        cfg: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let mut wake_addr = listener.local_addr()?;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let state = Arc::new(ServerState {
            inflight: InflightGate::new(cfg.max_inflight),
            cfg,
            shutdown: AtomicBool::new(false),
            conn_active: AtomicUsize::new(0),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            points_served: AtomicU64::new(0),
            shed_busy: AtomicU64::new(0),
            reaped_idle: AtomicU64::new(0),
            wake_addr: Mutex::new(wake_addr),
        });
        Ok(Server { listener, store, state })
    }

    /// The bound address (resolves `:0` to the real ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The serving bounds this daemon runs under.
    pub fn config(&self) -> ServeConfig {
        self.state.cfg
    }

    /// Test hook: points the shutdown wake dial at a dead address so
    /// the wake must fail, proving shutdown still completes through
    /// the accept loop's poll fallback.
    #[doc(hidden)]
    pub fn sabotage_wake_for_test(&self) {
        // Port 1 on loopback: nothing listens there, the dial is
        // refused immediately.
        *self.state.wake_addr.lock().expect("wake addr lock") =
            SocketAddr::from(([127, 0, 0, 1], 1));
    }

    /// Runs the accept loop until a client sends `shutdown`, then
    /// drains in-flight work (bounded by
    /// [`ServeConfig::drain_timeout`]) and returns the serving
    /// counters.
    ///
    /// The listener runs non-blocking and is polled with a short
    /// adaptive sleep: accepting a waiting client costs no latency,
    /// and the shutdown flag is observed within one poll interval even
    /// if the shutdown wake-up dial fails — the loop can never block
    /// forever in `accept`. Each admitted connection gets its own
    /// worker thread; workers exit when their client hangs up (or
    /// idles past the deadline), so they are detached rather than
    /// joined — only *busy* workers (inside an evaluate/simulate) gate
    /// the drain.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        const POLL_MIN: Duration = Duration::from_millis(1);
        const POLL_MAX: Duration = Duration::from_millis(10);
        self.listener.set_nonblocking(true)?;
        let mut poll = POLL_MIN;
        let accept_error = loop {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break None;
            }
            let (stream, _peer) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(poll);
                    poll = (poll * 2).min(POLL_MAX);
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // A dying listener still drains in-flight work below —
                // the store must never be abandoned mid-spill.
                Err(e) => break Some(e),
            };
            poll = POLL_MIN;
            if self.state.shutdown.load(Ordering::SeqCst) {
                // `stream` may be a real client or the wake-up dial;
                // either way nothing new is served past shutdown.
                drop(stream);
                break None;
            }
            // Accepted sockets may inherit the listener's non-blocking
            // mode on some platforms; workers expect deadline-based
            // blocking I/O.
            let _ = stream.set_nonblocking(false);
            if self.state.conn_active.load(Ordering::SeqCst) >= self.state.cfg.workers {
                // Worker pool saturated: shed the connection with an
                // explicit Busy instead of a hung socket. The frame is
                // tiny and the write deadline bounds even a client
                // that never reads.
                shed_connection(stream, &self.state);
                continue;
            }
            self.state.connections.fetch_add(1, Ordering::Relaxed);
            self.state.conn_active.fetch_add(1, Ordering::SeqCst);
            let store = self.store.clone();
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || {
                handle_connection(stream, store, &state);
                state.conn_active.fetch_sub(1, Ordering::SeqCst);
            });
        };
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Drain: no new requests are admitted (workers acquire their
        // inflight slot *before* re-checking the shutdown flag, so this
        // wait cannot miss a request that saw the flag clear), and
        // workers mid-evaluation finish (and spill) before we return —
        // a disk-backed store is left with whole records only. The
        // hard deadline bounds even a wedged evaluation.
        let drained = self.state.inflight.drain(self.state.cfg.drain_timeout);
        match accept_error {
            Some(e) => Err(e),
            None => Ok(ServeSummary {
                connections: self.state.connections.load(Ordering::Relaxed),
                requests: self.state.requests.load(Ordering::Relaxed),
                points_served: self.state.points_served.load(Ordering::Relaxed),
                shed_busy: self.state.shed_busy.load(Ordering::Relaxed),
                reaped_idle: self.state.reaped_idle.load(Ordering::Relaxed),
                drained,
            }),
        }
    }
}

/// Answers an over-admission connection with `Busy` and closes it.
fn shed_connection(mut stream: TcpStream, state: &ServerState) {
    state.shed_busy.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(state.cfg.write_timeout));
    let resp = Response::Busy { retry_after_ms: state.cfg.busy_retry_ms };
    let _ = write_frame(&mut stream, &protocol::emit_response(&resp));
}

/// Releases an inflight slot on every exit path of a request body.
struct SlotGuard<'a>(&'a InflightGate);

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

fn handle_connection(mut stream: TcpStream, store: ArtifactStore, state: &ServerState) {
    // Every read and write on this connection carries a deadline: a
    // silent or slow client is reaped, never a parked thread.
    let _ = stream.set_read_timeout(Some(state.cfg.idle_timeout));
    let _ = stream.set_write_timeout(Some(state.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut served: u64 = 0;
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            // Clean close between frames, or dropped mid-frame: either
            // way this connection is done; nothing shared is affected.
            Err(FrameError::Eof) | Err(FrameError::Io(_)) => return,
            // Idle past the read deadline (or trickling a frame): reap
            // the connection and reclaim its worker slot. No farewell
            // frame — an idle peer is not mid-exchange, and a stalled
            // one is not reading.
            Err(FrameError::TimedOut) => {
                state.reaped_idle.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // Malformed framing: no resynchronization exists, so answer
            // (best-effort) and hang up.
            Err(e) => {
                let resp = Response::Error { message: format!("malformed frame: {e}") };
                let _ = write_frame(&mut stream, &protocol::emit_response(&resp));
                return;
            }
        };
        // Per-connection request quota: a connection that exhausts it
        // is recycled with Busy — reconnecting re-enters the admission
        // gate, so no client monopolizes a worker slot indefinitely.
        if state.cfg.max_requests_per_conn > 0 && served >= state.cfg.max_requests_per_conn {
            state.shed_busy.fetch_add(1, Ordering::Relaxed);
            let resp = Response::Busy { retry_after_ms: state.cfg.busy_retry_ms };
            let _ = write_frame(&mut stream, &protocol::emit_response(&resp));
            return;
        }
        let (response, disconnect) = match protocol::parse_request(&payload) {
            Ok(req) => match admit(req, &store, state) {
                Admission::Served(resp, disconnect) => (resp, disconnect),
                Admission::Shed => {
                    state.shed_busy.fetch_add(1, Ordering::Relaxed);
                    (Response::Busy { retry_after_ms: state.cfg.busy_retry_ms }, false)
                }
                Admission::Refused => {
                    // A connection lingering past shutdown is refused,
                    // not served: the daemon has already drained and
                    // its store may be about to go away with the
                    // process.
                    let resp =
                        Response::Error { message: "daemon is shutting down".to_string() };
                    let _ = write_frame(&mut stream, &protocol::emit_response(&resp));
                    return;
                }
            },
            // A frame that parsed but isn't a well-formed request:
            // per-request error. Version skew additionally drops the
            // connection — the peer will keep speaking the wrong
            // dialect.
            Err(e) => {
                let msg = e.to_string();
                let skew = msg.contains("version skew");
                (Response::Error { message: msg }, skew)
            }
        };
        served += 1;
        state.requests.fetch_add(1, Ordering::Relaxed);
        let sent = write_frame(&mut stream, &protocol::emit_response(&response)).is_ok();
        if matches!(response, Response::ShuttingDown) {
            // Flag only after the ack is on the wire, so the requester
            // always hears back; then nudge the accept loop out of its
            // poll sleep with a throwaway self-connection. The dial is
            // retried but purely a latency optimization — the poll
            // observes the flag within one interval regardless.
            state.shutdown.store(true, Ordering::SeqCst);
            let wake = *state.wake_addr.lock().expect("wake addr lock");
            for _ in 0..3 {
                if TcpStream::connect_timeout(&wake, Duration::from_millis(100)).is_ok() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            return;
        }
        if disconnect || !sent {
            return;
        }
    }
}

/// The verdict of the admission gate on one parsed request.
enum Admission {
    /// Admitted and dispatched; carries the response and whether the
    /// connection must close after it.
    Served(Response, bool),
    /// Pool saturated past the request's deadline: shed with `Busy`.
    Shed,
    /// The daemon is past shutdown: refuse and hang up.
    Refused,
}

fn admit(req: Request, store: &ArtifactStore, state: &ServerState) -> Admission {
    // Only the verbs that do real work contend for an inflight slot;
    // ping/stats/shutdown stay cheap and always answerable (an
    // operator must be able to probe or stop a saturated daemon).
    let slot = match &req {
        Request::Evaluate { deadline_ms, .. } => {
            // The client's remaining patience can only shorten the
            // server's own cap: work that cannot start before the
            // client gives up is shed, not burned.
            let mut wait = state.cfg.request_timeout;
            if *deadline_ms > 0 {
                wait = wait.min(Duration::from_millis(*deadline_ms));
            }
            if !state.inflight.acquire(wait) {
                return Admission::Shed;
            }
            Some(SlotGuard(&state.inflight))
        }
        Request::Simulate { .. } => {
            if !state.inflight.acquire(state.cfg.request_timeout) {
                return Admission::Shed;
            }
            Some(SlotGuard(&state.inflight))
        }
        _ => None,
    };
    // The slot is acquired BEFORE the shutdown re-check: either this
    // thread observes the flag clear — in which case the drain (which
    // starts only after the flag is set) sees the occupied slot and
    // waits for us — or it observes the flag set and refuses. A
    // request can never slip between "shutdown flagged" and "drain
    // complete".
    if state.shutdown.load(Ordering::SeqCst) {
        drop(slot);
        return Admission::Refused;
    }
    let (response, disconnect) = dispatch(req, store, state);
    drop(slot);
    Admission::Served(response, disconnect)
}

fn dispatch(req: Request, store: &ArtifactStore, state: &ServerState) -> (Response, bool) {
    match req {
        Request::Ping => (Response::Pong, false),
        Request::Shutdown => (Response::ShuttingDown, false),
        Request::Stats => (Response::Stats(stats(store, state)), false),
        Request::Evaluate { scope, points, deadline_ms: _ } => {
            if points.len() > state.cfg.max_points_per_request {
                return (
                    Response::Error {
                        message: format!(
                            "evaluate batch of {} points exceeds the per-request quota of {}",
                            points.len(),
                            state.cfg.max_points_per_request
                        ),
                    },
                    false,
                );
            }
            let resp = handle_evaluate(store, &scope, &points);
            if matches!(resp, Response::Evaluate { .. }) {
                state.points_served.fetch_add(points.len() as u64, Ordering::Relaxed);
            }
            (resp, false)
        }
        Request::Simulate { kernel, gpu, n, params, model, trials, seed } => {
            (handle_simulate(store, &kernel, &gpu, n, params, model, trials, seed), false)
        }
    }
}

fn stats(store: &ArtifactStore, state: &ServerState) -> ServiceStats {
    let s = store.stats();
    ServiceStats {
        connections: state.connections.load(Ordering::Relaxed),
        requests: state.requests.load(Ordering::Relaxed),
        points_served: state.points_served.load(Ordering::Relaxed),
        kernels: s.kernels as u64,
        front_end_tiers: s.front_end_tiers as u64,
        front_end_lowerings: s.front_end_lowerings as u64,
        measurement_tiers: s.measurement_tiers as u64,
        unique_evaluations: s.unique_evaluations as u64,
        contexts: s.contexts as u64,
        workers_busy: state.inflight.busy() as u64,
        workers_max: state.cfg.max_inflight as u64,
        shed_busy: state.shed_busy.load(Ordering::Relaxed),
        reaped_idle: state.reaped_idle.load(Ordering::Relaxed),
        disk: s.disk,
    }
}

fn handle_evaluate(store: &ArtifactStore, scope: &EvalScope, points: &[TuningParams]) -> Response {
    let Some(kid) = KernelId::parse(&scope.kernel) else {
        return Response::Error { message: format!("unknown kernel `{}`", scope.kernel) };
    };
    if scope.sizes.is_empty() {
        return Response::Error { message: "empty size list".to_string() };
    }
    let builder = move |n: u64| kid.ast(n);
    let evaluator =
        store.evaluator_with(kid.name(), &builder, &scope.gpu, &scope.sizes, scope.protocol);
    // "Computed" is the measurement tier's fresh-computation delta over
    // this request window (tier-wide: under racing clients a point is
    // attributed to whichever window saw it; deterministically zero on
    // a warm re-run).
    let before = evaluator.unique_evaluations();
    let measurements = evaluator.evaluate_batch(points);
    let computed = (evaluator.unique_evaluations() - before) as u64;
    Response::Evaluate {
        computed,
        measurements: measurements.iter().map(|m| (**m).clone()).collect(),
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_simulate(
    store: &ArtifactStore,
    kernel: &str,
    gpu: &oriole_arch::GpuSpec,
    n: u64,
    params: TuningParams,
    model: oriole_sim::ModelId,
    trials: u32,
    seed: u64,
) -> Response {
    let Some(kid) = KernelId::parse(kernel) else {
        return Response::Error { message: format!("unknown kernel `{kernel}`") };
    };
    let compiled = match compile(&kid.ast(n), gpu, params) {
        Ok(k) => k,
        Err(e) => return Response::Error { message: e.to_string() },
    };
    let ctx = store.context_for(gpu, model);
    let report = match ctx.simulate(&compiled, n) {
        Ok(r) => r,
        Err(e) => return Response::Error { message: e.to_string() },
    };
    let times = match ctx.measure(&compiled, n, trials, seed) {
        Ok(t) => t,
        Err(e) => return Response::Error { message: e.to_string() },
    };
    Response::Simulate { selected: times.selected(TrialProtocol::FifthOfTen), report }
}
