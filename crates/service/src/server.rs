//! The tuner daemon: an event-driven reactor serving the RPC protocol
//! over one shared [`ArtifactStore`].
//!
//! # Concurrency model
//!
//! One **reactor** thread owns every socket: a nonblocking listener and
//! all accepted connections, driven by a readiness loop
//! ([`crate::reactor`]). Each connection is a small state machine —
//! read-accumulate → decode ([`decode_frame`]) → dispatch →
//! write-drain — so the daemon's thread count is bounded by work, not
//! by clients: thousands of idle connections cost one `poll(2)` entry
//! each, not a parked thread each.
//!
//! Frames carry a **correlation id** (protocol v3): a connection may
//! pipeline up to [`ServeConfig::pipeline_depth`] requests and receives
//! each response tagged with its request's id, in completion order —
//! out-of-order by design. At the cap the reactor simply stops reading
//! that socket (backpressure by TCP), never buffers unboundedly.
//!
//! Evaluation work still runs on a **bounded worker pool** of exactly
//! [`ServeConfig::max_inflight`] threads behind the same
//! [`InflightGate`] as before, so PR 6's admission semantics are
//! preserved verbatim: a request that cannot start within its declared
//! deadline (or the server's own [`ServeConfig::request_timeout`]) is
//! shed with [`Response::Busy`], never queued invisibly. `ping`,
//! `stats` and `shutdown` are answered inline on the reactor — an
//! operator can always probe or stop a saturated daemon.
//!
//! All workers evaluate through the same process-level store, so the
//! sharing rules are exactly the in-process ones (PR 2–4): concurrent
//! clients sweeping overlapping spaces share ASTs, front-ends, model
//! contexts and measurement tiers, and the sharded
//! in-flight-deduplicating memo guarantees each point is computed
//! **once** no matter how many connections race on it. With a
//! disk-backed store the daemon is the directory's one writing process,
//! so the append-only spill discipline of [`oriole_tuner::persist`]
//! holds fleet-wide.
//!
//! # Deadlines everywhere
//!
//! The reactor's readiness wait is bounded by a short tick, so every
//! time-based rule is enforced within a tick even if no socket ever
//! becomes ready and every wake-up is lost:
//!
//! * a connection idle past [`ServeConfig::idle_timeout`] with nothing
//!   in flight is **reaped**;
//! * a connection whose peer stops reading its responses is dropped
//!   after [`ServeConfig::write_timeout`] without write progress;
//! * a queued request that cannot reach a worker before its admission
//!   deadline is shed with `Busy` — by the worker if it pops it late,
//!   by the reactor's tick scan if no worker ever frees up;
//! * shutdown drains queued and in-flight work plus unwritten
//!   responses under the hard [`ServeConfig::drain_timeout`].
//!
//! # Failure containment
//!
//! * A **malformed frame** (bad magic/length/checksum) poisons only its
//!   connection: the reactor answers with an error frame (best-effort)
//!   and hangs up. The store is never touched with unvalidated input.
//! * **Version skew** is answered with an error naming both versions,
//!   then the connection closes.
//! * A request that parses but names impossible values (unknown kernel,
//!   infeasible scope, a batch over the point quota) is a per-request
//!   error; the connection survives.
//! * A client that **disconnects mid-request** costs only the response
//!   write; the computed measurements stay in the store for the next
//!   client (that's the point of the shared tier).
//! * **Saturation** is an explicit [`Response::Busy`] with a retry
//!   hint — evaluation is deterministic and the store dedups, so a
//!   shed client retries for free.
//! * **Shutdown** (by RPC) acks the requester, stops accepting, then
//!   drains queued work, busy workers and pending writes before
//!   [`Server::run`] returns, so a daemon is never killed out from
//!   under its own spill writes.

use crate::protocol::{self, EvalScope, Request, Response, ServiceStats};
use crate::reactor::{self, raw_fd, Interest, WakeHandle, WakePipe};
use oriole_codegen::{compile, TuningParams};
use oriole_kernels::KernelId;
use oriole_sim::TrialProtocol;
use oriole_tuner::persist::{decode_frame, write_frame, write_frame_tagged};
use oriole_tuner::ArtifactStore;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of one daemon run. [`ServeConfig::default`] is sized
/// for a localhost fleet of tuner clients; every bound exists so that
/// no failure mode — slow client, silent client, flood of clients —
/// can park the daemon forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum concurrent connections. A connection past the bound is
    /// answered [`Response::Busy`] and closed.
    pub workers: usize,
    /// Worker threads executing `evaluate`/`simulate` bodies — the
    /// bound on requests concurrently inside evaluation. Excess
    /// requests wait in the queue up to their deadline, then are shed
    /// with [`Response::Busy`].
    pub max_inflight: usize,
    /// The server-side cap on how long a request may wait for a worker
    /// (a client's `deadline_ms` can only shorten it).
    pub request_timeout: Duration,
    /// Per-connection read deadline: a connection idle past this with
    /// nothing in flight is reaped.
    pub idle_timeout: Duration,
    /// Per-connection write deadline: a client that stops reading its
    /// responses loses the connection after this long without write
    /// progress.
    pub write_timeout: Duration,
    /// Hard deadline on the shutdown drain: queued work, busy workers
    /// and unwritten responses get this long before [`Server::run`]
    /// returns anyway.
    pub drain_timeout: Duration,
    /// The `retry_after_ms` hint carried in [`Response::Busy`].
    pub busy_retry_ms: u64,
    /// Per-request point quota: an `evaluate` batch larger than this is
    /// a per-request error (retrying cannot help, so it is not `Busy`).
    pub max_points_per_request: usize,
    /// Per-connection request quota (0 = unlimited): a connection that
    /// exhausts it is answered `Busy` and recycled — reconnecting
    /// re-enters the admission gate, so one client cannot hold a
    /// connection slot forever.
    pub max_requests_per_conn: u64,
    /// Maximum requests one connection may have in flight (decoded but
    /// not yet answered). At the cap the reactor stops reading that
    /// socket until responses drain — pipelining backpressure lands on
    /// the sender's TCP window, not on daemon memory.
    pub pipeline_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 64,
            max_inflight: 16,
            request_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(30),
            busy_retry_ms: 25,
            max_points_per_request: 100_000,
            max_requests_per_conn: 0,
            pipeline_depth: 32,
        }
    }
}

/// Serving counters of one daemon run, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Requests served (all verbs).
    pub requests: u64,
    /// Tuning points served across all `evaluate` batches.
    pub points_served: u64,
    /// Requests and connections shed with [`Response::Busy`].
    pub shed_busy: u64,
    /// Connections reaped for idling past the read deadline.
    pub reaped_idle: u64,
    /// Whether the shutdown drain completed before its hard deadline
    /// (`false` means a worker was still evaluating — or a response
    /// still unwritten — when the deadline forced the exit).
    pub drained: bool,
}

/// The admission gate on concurrent `evaluate`/`simulate` bodies: a
/// condvar-guarded slot counter. The worker pool is sized to the cap so
/// acquisition never waits in practice, but the gate remains the one
/// source of truth for the `workers_busy` stat and the shutdown drain
/// (wait for zero) with its own hard deadline.
struct InflightGate {
    slots: Mutex<usize>,
    changed: Condvar,
    cap: usize,
}

impl InflightGate {
    fn new(cap: usize) -> InflightGate {
        InflightGate { slots: Mutex::new(0), changed: Condvar::new(), cap: cap.max(1) }
    }

    /// Waits up to `deadline` for a free slot; `false` means the
    /// request must be shed.
    fn acquire(&self, deadline: Duration) -> bool {
        let mut used = self.slots.lock().expect("inflight gate lock");
        let end = Instant::now() + deadline;
        while *used >= self.cap {
            let now = Instant::now();
            if now >= end {
                return false;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(used, end - now)
                .expect("inflight gate wait");
            used = guard;
        }
        *used += 1;
        true
    }

    fn release(&self) {
        let mut used = self.slots.lock().expect("inflight gate lock");
        *used = used.saturating_sub(1);
        drop(used);
        self.changed.notify_all();
    }

    fn busy(&self) -> usize {
        *self.slots.lock().expect("inflight gate lock")
    }
}

/// One decoded request handed to the worker pool, addressed back to its
/// connection by `(slot, gen)` so a completion can never reach a reused
/// slot.
struct Job {
    slot: usize,
    gen: u64,
    corr: u64,
    req: Request,
    /// The admission deadline: `min(request_timeout, client deadline)`
    /// past the decode instant. A job still unstarted by then is shed
    /// with [`Response::Busy`] — by the worker that pops it, or by the
    /// reactor's tick scan if no worker ever frees up.
    admit_by: Instant,
}

/// A worker's finished response, serialized off-reactor (response
/// emission parallelizes with other work) and delivered to the
/// connection's write buffer by the reactor.
struct Completion {
    slot: usize,
    gen: u64,
    corr: u64,
    payload: String,
    close: bool,
}

struct WorkQueue {
    jobs: VecDeque<Job>,
    stopped: bool,
}

struct ServerState {
    cfg: ServeConfig,
    shutdown: AtomicBool,
    /// Gate on requests inside an `evaluate`/`simulate` body — the
    /// `workers_busy` stat and the drain gate shutdown waits on.
    inflight: InflightGate,
    queue: Mutex<WorkQueue>,
    queue_changed: Condvar,
    completions: Mutex<Vec<Completion>>,
    connections: AtomicU64,
    requests: AtomicU64,
    points_served: AtomicU64,
    shed_busy: AtomicU64,
    reaped_idle: AtomicU64,
    open_conns: AtomicU64,
    frames_inflight: AtomicU64,
    pipelined_peak: AtomicU64,
    wakeups: AtomicU64,
    /// Test hook: when set, workers do not dial the reactor's wake pipe
    /// after queueing a completion — progress must come from the
    /// reactor's bounded tick alone.
    wake_disabled: AtomicBool,
}

impl ServerState {
    fn complete(&self, wake: &WakeHandle, completion: Completion) {
        self.completions.lock().expect("completions lock").push(completion);
        if !self.wake_disabled.load(Ordering::Relaxed) {
            wake.wake();
        }
    }
}

/// A bound (but not yet serving) daemon. Binding and serving are split
/// so callers can learn the actual address (`--addr 127.0.0.1:0` binds
/// an ephemeral port) before the reactor starts.
pub struct Server {
    listener: TcpListener,
    store: ArtifactStore,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener on `addr` over `store` with the default
    /// [`ServeConfig`]. The store is the daemon's one process-level
    /// artifact store: every connection shares it for its whole
    /// lifetime.
    pub fn bind(addr: &str, store: ArtifactStore) -> std::io::Result<Server> {
        Server::bind_with(addr, store, ServeConfig::default())
    }

    /// [`Server::bind`] with explicit serving bounds.
    pub fn bind_with(
        addr: &str,
        store: ArtifactStore,
        cfg: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(ServerState {
            inflight: InflightGate::new(cfg.max_inflight),
            cfg,
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(WorkQueue { jobs: VecDeque::new(), stopped: false }),
            queue_changed: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            points_served: AtomicU64::new(0),
            shed_busy: AtomicU64::new(0),
            reaped_idle: AtomicU64::new(0),
            open_conns: AtomicU64::new(0),
            frames_inflight: AtomicU64::new(0),
            pipelined_peak: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            wake_disabled: AtomicBool::new(false),
        });
        Ok(Server { listener, store, state })
    }

    /// The bound address (resolves `:0` to the real ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The serving bounds this daemon runs under.
    pub fn config(&self) -> ServeConfig {
        self.state.cfg
    }

    /// Test hook: suppresses the worker→reactor wake dial entirely, so
    /// completions and shutdown must make progress through the
    /// reactor's bounded tick alone — proving a lost wake can only cost
    /// latency, never a hang.
    #[doc(hidden)]
    pub fn sabotage_wake_for_test(&self) {
        self.state.wake_disabled.store(true, Ordering::SeqCst);
    }

    /// Runs the reactor until a client sends `shutdown`, then drains
    /// queued work, busy workers and unwritten responses (bounded by
    /// [`ServeConfig::drain_timeout`]) and returns the serving
    /// counters.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        // The tick bounds every timer's latency (idle reap, write
        // stall, admission expiry, drain) and doubles as the wake
        // fallback: even with every wake lost, progress happens within
        // one tick.
        const TICK: Duration = Duration::from_millis(10);
        self.listener.set_nonblocking(true)?;
        let (wake_pipe, wake_handle) = WakePipe::new()?;
        for _ in 0..self.state.cfg.max_inflight.max(1) {
            let store = self.store.clone();
            let state = Arc::clone(&self.state);
            let wake = wake_handle.clone();
            // Workers are detached: a wedged evaluation past the drain
            // deadline must not keep `run` from returning.
            std::thread::spawn(move || worker_loop(&store, &state, &wake));
        }

        let state = &self.state;
        let cfg = state.cfg;
        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut next_gen: u64 = 0;
        let mut draining: Option<Instant> = None;
        let mut accept_error: Option<std::io::Error> = None;
        let mut drained = true;

        enum Token {
            Listener,
            Wake,
            Conn { slot: usize, gen: u64 },
        }

        loop {
            // Build this tick's readiness set. A connection at its
            // pipeline cap (or poisoned) gets no read interest — TCP
            // backpressure does the rest; write interest only when
            // bytes are pending.
            let mut entries: Vec<(usize, i32, Interest)> = Vec::with_capacity(conns.len() + 2);
            let mut tokens: Vec<Token> = Vec::with_capacity(conns.len() + 2);
            if draining.is_none() && accept_error.is_none() {
                entries.push((tokens.len(), raw_fd(&self.listener), Interest::Read));
                tokens.push(Token::Listener);
            }
            entries.push((tokens.len(), wake_pipe.fd(), Interest::Read));
            tokens.push(Token::Wake);
            for (slot, conn) in conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                let read = !conn.closing && (conn.inflight as usize) < cfg.pipeline_depth;
                let write = conn.has_pending_write();
                let interest = match (read, write) {
                    (true, true) => Interest::Both,
                    (true, false) => Interest::Read,
                    (false, true) => Interest::Write,
                    (false, false) => continue,
                };
                entries.push((tokens.len(), raw_fd(&conn.stream), interest));
                tokens.push(Token::Conn { slot, gen: conn.gen });
            }
            let ready = reactor::wait(&entries, TICK);
            state.wakeups.fetch_add(1, Ordering::Relaxed);
            wake_pipe.drain();
            let now = Instant::now();

            let mut begin_drain = false;

            // 1. Deliver worker completions into write buffers (the
            //    generation check drops responses to recycled slots),
            //    then re-pump the affected connections: frames already
            //    accumulated past the pipeline cap decode now, without
            //    waiting for fresh socket readiness.
            let done: Vec<Completion> =
                std::mem::take(&mut *state.completions.lock().expect("completions lock"));
            let mut pump_slots: Vec<usize> = Vec::new();
            for completion in done {
                let slot = completion.slot;
                deliver(&mut conns, completion, state);
                if !pump_slots.contains(&slot) {
                    pump_slots.push(slot);
                }
            }
            for slot in pump_slots {
                if slot < conns.len() && conns[slot].is_some() {
                    begin_drain |=
                        pump_decoded(&mut conns, slot, &self.store, state, draining.is_some());
                }
            }

            // 2. Shed queued jobs whose admission deadline passed while
            //    every worker was busy — the client hears Busy at its
            //    deadline, not whenever a worker frees up.
            shed_expired_jobs(&mut conns, state, now);

            // 3. Socket readiness: reads decode and dispatch, writes
            //    drain. Accepts are handled last so a slot freed this
            //    tick cannot be reused while its stale readiness is
            //    still pending.
            let mut accepts_ready = false;
            for r in &ready {
                match tokens[r.token] {
                    Token::Listener => accepts_ready = r.readable,
                    Token::Wake => {}
                    Token::Conn { slot, gen } => {
                        if r.readable && matches!(&conns[slot], Some(c) if c.gen == gen) {
                            begin_drain |= conn_read(
                                &mut conns,
                                slot,
                                &self.store,
                                state,
                                draining.is_some(),
                            );
                        }
                        if r.writable && matches!(&conns[slot], Some(c) if c.gen == gen) {
                            conn_flush(&mut conns, slot, state);
                        }
                    }
                }
            }

            // 4. Timers: idle reaping and stalled-writer eviction.
            for slot in 0..conns.len() {
                let drop_reason = match &conns[slot] {
                    Some(c) => {
                        if c.inflight == 0
                            && !c.has_pending_write()
                            && !c.closing
                            && now.duration_since(c.last_activity) > cfg.idle_timeout
                        {
                            Some(true)
                        } else if c
                            .write_stalled_since
                            .is_some_and(|since| now.duration_since(since) > cfg.write_timeout)
                        {
                            Some(false)
                        } else {
                            None
                        }
                    }
                    None => None,
                };
                if let Some(reaped) = drop_reason {
                    if reaped {
                        state.reaped_idle.fetch_add(1, Ordering::Relaxed);
                    }
                    drop_conn(&mut conns, slot, state);
                }
            }

            // 5. Accepts (skipped while draining).
            if accepts_ready && draining.is_none() && accept_error.is_none() {
                match accept_all(&self.listener, &mut conns, &mut next_gen, state) {
                    Ok(()) => {}
                    Err(e) => {
                        // A dying listener still drains in-flight work
                        // below — the store must never be abandoned
                        // mid-spill.
                        accept_error = Some(e);
                        state.shutdown.store(true, Ordering::SeqCst);
                        draining.get_or_insert(now + cfg.drain_timeout);
                    }
                }
            }

            if begin_drain {
                state.shutdown.store(true, Ordering::SeqCst);
                draining.get_or_insert(now + cfg.drain_timeout);
            }

            // 6. Drain check: done when nothing is queued, executing,
            //    or pending in a write buffer — or the hard deadline
            //    passes.
            if let Some(deadline) = draining {
                let queue_empty =
                    state.queue.lock().expect("work queue lock").jobs.is_empty();
                let idle = state.frames_inflight.load(Ordering::SeqCst) == 0
                    && state.inflight.busy() == 0;
                let writes_flushed =
                    conns.iter().flatten().all(|c| !c.has_pending_write());
                if queue_empty && idle && writes_flushed {
                    break;
                }
                if Instant::now() >= deadline {
                    drained = false;
                    break;
                }
            }
        }

        // Stop the worker pool; wedged workers stay detached.
        {
            let mut q = state.queue.lock().expect("work queue lock");
            q.stopped = true;
        }
        state.queue_changed.notify_all();

        match accept_error {
            Some(e) => Err(e),
            None => Ok(ServeSummary {
                connections: state.connections.load(Ordering::Relaxed),
                requests: state.requests.load(Ordering::Relaxed),
                points_served: state.points_served.load(Ordering::Relaxed),
                shed_busy: state.shed_busy.load(Ordering::Relaxed),
                reaped_idle: state.reaped_idle.load(Ordering::Relaxed),
                drained,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Connection state machine
// ---------------------------------------------------------------------------

/// Per-connection state on the reactor: accumulation buffers for both
/// directions plus the counters the admission and timer rules read.
struct Conn {
    stream: TcpStream,
    /// Generation stamp: completions addressed to `(slot, gen)` are
    /// dropped if the slot was recycled in between.
    gen: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Requests decoded but not yet answered into the write buffer.
    inflight: u32,
    /// Requests decoded over this connection's lifetime (the
    /// `max_requests_per_conn` quota).
    served: u64,
    last_activity: Instant,
    /// Set when a write hit `WouldBlock` with bytes pending; cleared on
    /// progress. Stalled past `write_timeout` ⇒ the connection is
    /// dropped.
    write_stalled_since: Option<Instant>,
    /// Close once the write buffer drains; no further reads are decoded.
    closing: bool,
}

impl Conn {
    fn has_pending_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// Queues one tagged response frame for writing.
    fn push_frame(&mut self, corr: u64, resp: &Response) {
        let payload = protocol::emit_response(resp);
        self.push_payload(corr, &payload);
    }

    fn push_payload(&mut self, corr: u64, payload: &str) {
        write_frame_tagged(&mut self.write_buf, corr, payload)
            .expect("writing a frame to a Vec cannot fail");
    }
}

fn accept_all(
    listener: &TcpListener,
    conns: &mut Vec<Option<Conn>>,
    next_gen: &mut u64,
    state: &ServerState,
) -> std::io::Result<()> {
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if state.open_conns.load(Ordering::Relaxed) >= state.cfg.workers as u64 {
            // Connection bound reached: shed with an explicit Busy
            // instead of a hung socket. The frame is tiny and the
            // write deadline bounds even a client that never reads.
            shed_connection(stream, state);
            continue;
        }
        let _ = stream.set_nonblocking(true);
        let _ = stream.set_nodelay(true);
        state.connections.fetch_add(1, Ordering::Relaxed);
        state.open_conns.fetch_add(1, Ordering::Relaxed);
        *next_gen += 1;
        let conn = Conn {
            stream,
            gen: *next_gen,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            inflight: 0,
            served: 0,
            last_activity: Instant::now(),
            write_stalled_since: None,
            closing: false,
        };
        match conns.iter_mut().position(|c| c.is_none()) {
            Some(free) => conns[free] = Some(conn),
            None => conns.push(Some(conn)),
        }
    }
}

/// Answers an over-admission connection with `Busy` and closes it.
fn shed_connection(mut stream: TcpStream, state: &ServerState) {
    state.shed_busy.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(state.cfg.write_timeout));
    let resp = Response::Busy { retry_after_ms: state.cfg.busy_retry_ms };
    let _ = write_frame(&mut stream, &protocol::emit_response(&resp));
}

fn drop_conn(conns: &mut [Option<Conn>], slot: usize, state: &ServerState) {
    if conns[slot].take().is_some() {
        state.open_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Delivers one worker completion: decrements the in-flight counters
/// and, if the connection is still the same generation, appends the
/// response frame and flushes opportunistically.
fn deliver(conns: &mut [Option<Conn>], completion: Completion, state: &ServerState) {
    state.frames_inflight.fetch_sub(1, Ordering::SeqCst);
    let Completion { slot, gen, corr, payload, close } = completion;
    let alive = slot < conns.len() && matches!(&conns[slot], Some(c) if c.gen == gen);
    if !alive {
        // The connection went away mid-request: the response is
        // discarded, the computed measurements stay in the store.
        return;
    }
    {
        let conn = conns[slot].as_mut().expect("checked alive");
        conn.inflight = conn.inflight.saturating_sub(1);
        conn.push_payload(corr, &payload);
        if close {
            conn.closing = true;
        }
    }
    conn_flush(conns, slot, state);
}

/// Sheds every queued job whose admission deadline has passed: the
/// reactor answers Busy itself so a fully wedged worker pool cannot
/// postpone the shed past the client's declared patience.
fn shed_expired_jobs(conns: &mut [Option<Conn>], state: &ServerState, now: Instant) {
    let expired: Vec<Job> = {
        let mut q = state.queue.lock().expect("work queue lock");
        if q.jobs.iter().all(|j| now <= j.admit_by) {
            return;
        }
        let (keep, expired): (VecDeque<Job>, VecDeque<Job>) =
            q.jobs.drain(..).partition(|j| now <= j.admit_by);
        q.jobs = keep;
        expired.into()
    };
    for job in expired {
        state.shed_busy.fetch_add(1, Ordering::Relaxed);
        let resp = Response::Busy { retry_after_ms: state.cfg.busy_retry_ms };
        deliver(
            conns,
            Completion {
                slot: job.slot,
                gen: job.gen,
                corr: job.corr,
                payload: protocol::emit_response(&resp),
                close: false,
            },
            state,
        );
    }
}

/// Pulls available bytes off the socket and decodes/dispatches every
/// complete frame. Returns `true` when a `shutdown` request asks the
/// daemon to begin draining.
fn conn_read(
    conns: &mut [Option<Conn>],
    slot: usize,
    store: &ArtifactStore,
    state: &ServerState,
    draining: bool,
) -> bool {
    // Per-tick read cap: one greedy peer cannot starve the other
    // connections; level-triggered readiness re-reports the rest.
    const READ_CAP: usize = 256 * 1024;
    let mut eof = false;
    {
        let conn = conns[slot].as_mut().expect("caller checked slot");
        let mut total = 0;
        let mut tmp = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut tmp) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&tmp[..n]);
                    conn.last_activity = Instant::now();
                    total += n;
                    if total >= READ_CAP {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    eof = true;
                    break;
                }
            }
        }
    }
    let begin_drain = pump_decoded(conns, slot, store, state, draining);
    if eof {
        // Clean close between frames, or dropped mid-frame: either way
        // this connection is done; nothing shared is affected. Any
        // in-flight work finishes into the store for the next client.
        drop_conn(conns, slot, state);
    }
    begin_drain
}

/// Decodes every complete frame buffered on `slot` (up to the pipeline
/// cap) and dispatches each request. Also called after completions
/// drain, so frames that arrived while the connection was at its cap
/// are decoded without new socket readiness. Returns `true` on a
/// `shutdown` request.
fn pump_decoded(
    conns: &mut [Option<Conn>],
    slot: usize,
    store: &ArtifactStore,
    state: &ServerState,
    draining: bool,
) -> bool {
    let mut begin_drain = false;
    let mut jobs: Vec<Job> = Vec::new();
    {
        let Some(conn) = conns[slot].as_mut() else { return false };
        let mut consumed = 0;
        while !conn.closing && (conn.inflight as usize) < state.cfg.pipeline_depth {
            match decode_frame(&conn.read_buf[consumed..]) {
                Ok(None) => break,
                Ok(Some((corr, payload, used))) => {
                    consumed += used;
                    begin_drain |=
                        process_request(conn, slot, corr, &payload, store, state, &mut jobs, draining);
                }
                Err(e) => {
                    // Malformed framing: no resynchronization exists,
                    // so answer (best-effort) and hang up. The store is
                    // never touched with unvalidated input.
                    let resp = Response::Error { message: format!("malformed frame: {e}") };
                    conn.push_frame(0, &resp);
                    conn.closing = true;
                    break;
                }
            }
        }
        conn.read_buf.drain(..consumed);
    }
    if !jobs.is_empty() {
        let mut q = state.queue.lock().expect("work queue lock");
        for job in jobs {
            q.jobs.push_back(job);
            state.queue_changed.notify_one();
        }
    }
    conn_flush(conns, slot, state);
    begin_drain
}

/// Handles one decoded request on the reactor: quota and version
/// checks, inline answers for the cheap verbs, and work-queue dispatch
/// for `evaluate`/`simulate`. Returns `true` on a `shutdown` request.
#[allow(clippy::too_many_arguments)]
fn process_request(
    conn: &mut Conn,
    slot: usize,
    corr: u64,
    payload: &str,
    store: &ArtifactStore,
    state: &ServerState,
    jobs: &mut Vec<Job>,
    draining: bool,
) -> bool {
    let cfg = &state.cfg;
    // Per-connection request quota: a connection that exhausts it is
    // recycled with Busy — reconnecting re-enters the admission gate,
    // so no client monopolizes a connection slot indefinitely.
    if cfg.max_requests_per_conn > 0 && conn.served >= cfg.max_requests_per_conn {
        state.shed_busy.fetch_add(1, Ordering::Relaxed);
        conn.push_frame(corr, &Response::Busy { retry_after_ms: cfg.busy_retry_ms });
        conn.closing = true;
        return false;
    }
    let req = match protocol::parse_request(payload) {
        Ok(req) => req,
        // A frame that parsed but isn't a well-formed request:
        // per-request error. Version skew additionally drops the
        // connection — the peer will keep speaking the wrong dialect.
        Err(e) => {
            let msg = e.to_string();
            let skew = msg.contains("version skew");
            conn.served += 1;
            state.requests.fetch_add(1, Ordering::Relaxed);
            conn.push_frame(corr, &Response::Error { message: msg });
            if skew {
                conn.closing = true;
            }
            return false;
        }
    };
    if draining {
        // A connection lingering past shutdown is refused, not served:
        // the daemon has already begun draining and its store may be
        // about to go away with the process.
        conn.push_frame(corr, &Response::Error {
            message: "daemon is shutting down".to_string(),
        });
        conn.closing = true;
        return false;
    }
    conn.served += 1;
    state.requests.fetch_add(1, Ordering::Relaxed);
    match req {
        // The cheap verbs are answered inline on the reactor — always
        // answerable, even with every worker busy: an operator must be
        // able to probe or stop a saturated daemon.
        Request::Ping => {
            conn.push_frame(corr, &Response::Pong);
            false
        }
        Request::Stats => {
            conn.push_frame(corr, &Response::Stats(stats(store, state)));
            false
        }
        Request::Shutdown => {
            // Ack first (the frame is queued ahead of the drain and
            // flushed by the continuing loop, so the requester always
            // hears back), then begin draining and recycle the
            // connection.
            conn.push_frame(corr, &Response::ShuttingDown);
            conn.closing = true;
            true
        }
        req @ (Request::Evaluate { .. } | Request::Simulate { .. }) => {
            // The client's remaining patience can only shorten the
            // server's own admission cap: work that cannot start
            // before the client gives up is shed, not burned.
            let mut wait = cfg.request_timeout;
            if let Request::Evaluate { deadline_ms, .. } = &req {
                if *deadline_ms > 0 {
                    wait = wait.min(Duration::from_millis(*deadline_ms));
                }
            }
            conn.inflight += 1;
            let depth = u64::from(conn.inflight);
            state.frames_inflight.fetch_add(1, Ordering::SeqCst);
            state.pipelined_peak.fetch_max(depth, Ordering::Relaxed);
            jobs.push(Job {
                slot,
                gen: conn.gen,
                corr,
                req,
                admit_by: Instant::now() + wait,
            });
            false
        }
    }
}

/// Drains as much of the write buffer as the socket accepts; on a
/// write failure — or a completed flush of a closing connection — the
/// connection is dropped.
fn conn_flush(conns: &mut [Option<Conn>], slot: usize, state: &ServerState) {
    let Some(conn) = conns[slot].as_mut() else { return };
    let mut dead = false;
    while conn.has_pending_write() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => {
                dead = true;
                break;
            }
            Ok(n) => {
                conn.write_pos += n;
                conn.write_stalled_since = None;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if conn.write_stalled_since.is_none() {
                    conn.write_stalled_since = Some(Instant::now());
                }
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                dead = true;
                break;
            }
        }
    }
    if !conn.has_pending_write() {
        conn.write_buf.clear();
        conn.write_pos = 0;
        conn.write_stalled_since = None;
        if conn.closing {
            dead = true;
        }
    }
    if dead {
        drop_conn(conns, slot, state);
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// Releases an inflight slot on every exit path of a request body.
struct SlotGuard<'a>(&'a InflightGate);

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// One worker thread: pops jobs, sheds the ones whose admission
/// deadline passed in the queue, executes the rest through the shared
/// store, and hands the serialized response back to the reactor.
fn worker_loop(store: &ArtifactStore, state: &ServerState, wake: &WakeHandle) {
    loop {
        let job = {
            let mut q = state.queue.lock().expect("work queue lock");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.stopped {
                    return;
                }
                q = state.queue_changed.wait(q).expect("work queue wait");
            }
        };
        let (resp, close) = if Instant::now() > job.admit_by {
            // Queued past its admission deadline: shed, never started.
            state.shed_busy.fetch_add(1, Ordering::Relaxed);
            (Response::Busy { retry_after_ms: state.cfg.busy_retry_ms }, false)
        } else if !state.inflight.acquire(state.cfg.request_timeout) {
            // Unreachable in practice (the pool is sized to the gate),
            // kept as a defensive shed rather than a panic.
            state.shed_busy.fetch_add(1, Ordering::Relaxed);
            (Response::Busy { retry_after_ms: state.cfg.busy_retry_ms }, false)
        } else {
            let slot = SlotGuard(&state.inflight);
            // The slot is acquired BEFORE the shutdown re-check: either
            // this worker observes the flag clear — in which case the
            // drain (which starts only after the flag is set) sees the
            // occupied slot and waits for us — or it observes the flag
            // set and refuses. A request can never slip between
            // "shutdown flagged" and "drain complete".
            let out = if state.shutdown.load(Ordering::SeqCst) {
                (Response::Error { message: "daemon is shutting down".to_string() }, true)
            } else {
                let (resp, _) = dispatch(job.req, store, state);
                (resp, false)
            };
            drop(slot);
            out
        };
        state.complete(
            wake,
            Completion {
                slot: job.slot,
                gen: job.gen,
                corr: job.corr,
                payload: protocol::emit_response(&resp),
                close,
            },
        );
    }
}

fn dispatch(req: Request, store: &ArtifactStore, state: &ServerState) -> (Response, bool) {
    match req {
        Request::Ping => (Response::Pong, false),
        Request::Shutdown => (Response::ShuttingDown, false),
        Request::Stats => (Response::Stats(stats(store, state)), false),
        Request::Evaluate { scope, points, deadline_ms: _ } => {
            if points.len() > state.cfg.max_points_per_request {
                return (
                    Response::Error {
                        message: format!(
                            "evaluate batch of {} points exceeds the per-request quota of {}",
                            points.len(),
                            state.cfg.max_points_per_request
                        ),
                    },
                    false,
                );
            }
            let resp = handle_evaluate(store, &scope, &points);
            if matches!(resp, Response::Evaluate { .. }) {
                state.points_served.fetch_add(points.len() as u64, Ordering::Relaxed);
            }
            (resp, false)
        }
        Request::Simulate { kernel, gpu, n, params, model, trials, seed } => {
            (handle_simulate(store, &kernel, &gpu, n, params, model, trials, seed), false)
        }
    }
}

fn stats(store: &ArtifactStore, state: &ServerState) -> ServiceStats {
    let s = store.stats();
    ServiceStats {
        connections: state.connections.load(Ordering::Relaxed),
        requests: state.requests.load(Ordering::Relaxed),
        points_served: state.points_served.load(Ordering::Relaxed),
        kernels: s.kernels as u64,
        front_end_tiers: s.front_end_tiers as u64,
        front_end_lowerings: s.front_end_lowerings as u64,
        measurement_tiers: s.measurement_tiers as u64,
        unique_evaluations: s.unique_evaluations as u64,
        contexts: s.contexts as u64,
        workers_busy: state.inflight.busy() as u64,
        workers_max: state.cfg.max_inflight as u64,
        shed_busy: state.shed_busy.load(Ordering::Relaxed),
        reaped_idle: state.reaped_idle.load(Ordering::Relaxed),
        open_connections: state.open_conns.load(Ordering::Relaxed),
        frames_inflight: state.frames_inflight.load(Ordering::SeqCst),
        pipelined_peak: state.pipelined_peak.load(Ordering::Relaxed),
        reactor_wakeups: state.wakeups.load(Ordering::Relaxed),
        disk: s.disk,
        phases: s.phases,
    }
}

fn handle_evaluate(store: &ArtifactStore, scope: &EvalScope, points: &[TuningParams]) -> Response {
    let Some(kid) = KernelId::parse(&scope.kernel) else {
        return Response::Error { message: format!("unknown kernel `{}`", scope.kernel) };
    };
    if scope.sizes.is_empty() {
        return Response::Error { message: "empty size list".to_string() };
    }
    let builder = move |n: u64| kid.ast(n);
    let evaluator =
        store.evaluator_with(kid.name(), &builder, &scope.gpu, &scope.sizes, scope.protocol);
    // "Computed" is the measurement tier's fresh-computation delta over
    // this request window (tier-wide: under racing clients a point is
    // attributed to whichever window saw it; deterministically zero on
    // a warm re-run).
    let before = evaluator.unique_evaluations();
    let measurements = evaluator.evaluate_batch(points);
    let computed = (evaluator.unique_evaluations() - before) as u64;
    Response::Evaluate {
        computed,
        measurements: measurements.iter().map(|m| (**m).clone()).collect(),
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_simulate(
    store: &ArtifactStore,
    kernel: &str,
    gpu: &oriole_arch::GpuSpec,
    n: u64,
    params: TuningParams,
    model: oriole_sim::ModelId,
    trials: u32,
    seed: u64,
) -> Response {
    let Some(kid) = KernelId::parse(kernel) else {
        return Response::Error { message: format!("unknown kernel `{kernel}`") };
    };
    let compiled = match compile(&kid.ast(n), gpu, params) {
        Ok(k) => k,
        Err(e) => return Response::Error { message: e.to_string() },
    };
    let ctx = store.context_for(gpu, model);
    let report = match ctx.simulate(&compiled, n) {
        Ok(r) => r,
        Err(e) => return Response::Error { message: e.to_string() },
    };
    let times = match ctx.measure(&compiled, n, trials, seed) {
        Ok(t) => t,
        Err(e) => return Response::Error { message: e.to_string() },
    };
    Response::Simulate { selected: times.selected(TrialProtocol::FifthOfTen), report }
}
