//! Readiness primitives for the event-driven server core: a thin,
//! dependency-free wrapper over `poll(2)` plus a self-wake pipe.
//!
//! The daemon's reactor ([`crate::server`]) owns every socket
//! (listener, connections, wake pipe) in one thread and needs exactly
//! one OS facility: "block until any of these descriptors is ready, or
//! a timeout passes". On Unix that is `poll(2)`, declared here directly
//! against libc (the crate policy is no external dependencies). On
//! other platforms a degenerate fallback reports everything ready after
//! a short sleep — correct (all I/O is nonblocking and tolerates
//! spurious readiness) just not efficient.
//!
//! The wake pipe lets worker threads interrupt the reactor's wait when
//! a completion is queued: a byte written to one end of a socketpair
//! makes the other end readable. Waking is best-effort by design — the
//! reactor's wait is always bounded by a short timeout, so a lost (or
//! deliberately sabotaged) wake costs one tick of latency, never a
//! hang.

use std::time::Duration;

/// What a registered descriptor wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Interest {
    /// Readable only.
    Read,
    /// Writable only.
    Write,
    /// Readable or writable.
    Both,
}

/// One ready descriptor out of a [`wait`] call, named by the caller's
/// token. Error/hangup conditions are folded into both flags: the
/// owner performs its read or write and observes the failure there,
/// keeping exactly one error path per socket.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Readiness {
    /// The token the caller registered the descriptor under.
    pub token: usize,
    /// Ready to read (or in an error/hangup state).
    pub readable: bool,
    /// Ready to write (or in an error/hangup state).
    pub writable: bool,
}

#[cfg(unix)]
mod sys {
    use super::{Interest, Readiness};
    use std::time::Duration;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    // POLLERR | POLLHUP | POLLNVAL: always reported by the kernel
    // regardless of the requested events.
    const POLLBAD: i16 = 0x008 | 0x010 | 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: std::os::raw::c_int)
            -> std::os::raw::c_int;
    }

    pub(crate) fn wait(entries: &[(usize, i32, Interest)], timeout: Duration) -> Vec<Readiness> {
        let mut fds: Vec<PollFd> = entries
            .iter()
            .map(|&(_, fd, interest)| PollFd {
                fd,
                events: match interest {
                    Interest::Read => POLLIN,
                    Interest::Write => POLLOUT,
                    Interest::Both => POLLIN | POLLOUT,
                },
                revents: 0,
            })
            .collect();
        // Round up so a sub-millisecond timeout still sleeps instead of
        // spinning; the reactor's tick cap keeps this small anyway.
        let ms = timeout.as_millis().clamp(1, i32::MAX as u128) as std::os::raw::c_int;
        let rc =
            unsafe { poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, ms) };
        if rc <= 0 {
            // Timeout, EINTR, or a transient poll failure: report
            // nothing ready; the caller's own timers carry on.
            return Vec::new();
        }
        entries
            .iter()
            .zip(&fds)
            .filter(|(_, pfd)| pfd.revents != 0)
            .map(|(&(token, _, _), pfd)| Readiness {
                token,
                readable: pfd.revents & (POLLIN | POLLBAD) != 0,
                writable: pfd.revents & (POLLOUT | POLLBAD) != 0,
            })
            .collect()
    }
}

#[cfg(not(unix))]
mod sys {
    use super::{Interest, Readiness};
    use std::time::Duration;

    /// Degenerate fallback: sleep briefly and report every descriptor
    /// ready in both directions. All reactor I/O is nonblocking, so
    /// spurious readiness costs a `WouldBlock` per socket per tick —
    /// busy-ish, but correct.
    pub(crate) fn wait(entries: &[(usize, i32, Interest)], timeout: Duration) -> Vec<Readiness> {
        std::thread::sleep(timeout.min(Duration::from_millis(1)));
        entries
            .iter()
            .map(|&(token, _, _)| Readiness { token, readable: true, writable: true })
            .collect()
    }
}

/// Blocks until any registered descriptor is ready or `timeout`
/// passes; returns the ready subset (possibly empty). Entries are
/// `(token, raw fd, interest)` — tokens come back in the result so the
/// caller needs no fd-to-owner map.
pub(crate) fn wait(entries: &[(usize, i32, Interest)], timeout: Duration) -> Vec<Readiness> {
    sys::wait(entries, timeout)
}

/// The raw descriptor the poller registers for a socket.
#[cfg(unix)]
pub(crate) fn raw_fd<T: std::os::unix::io::AsRawFd>(sock: &T) -> i32 {
    sock.as_raw_fd()
}

/// Non-Unix: descriptors are never inspected (the fallback poller
/// reports everything ready), so any value serves.
#[cfg(not(unix))]
pub(crate) fn raw_fd<T>(_sock: &T) -> i32 {
    0
}

/// The reactor-side read end of the self-wake channel.
pub(crate) struct WakePipe {
    #[cfg(unix)]
    reader: std::os::unix::net::UnixStream,
}

/// The worker-side write end: cloneable, one byte per wake, always
/// best-effort (a full pipe or closed peer is silently ignored — the
/// reactor's bounded tick is the correctness backstop).
#[derive(Clone)]
pub(crate) struct WakeHandle {
    #[cfg(unix)]
    writer: std::sync::Arc<std::os::unix::net::UnixStream>,
}

impl WakePipe {
    /// Builds the wake channel; on non-Unix platforms it is inert and
    /// the reactor relies on its tick timeout alone.
    pub(crate) fn new() -> std::io::Result<(WakePipe, WakeHandle)> {
        #[cfg(unix)]
        {
            let (reader, writer) = std::os::unix::net::UnixStream::pair()?;
            reader.set_nonblocking(true)?;
            writer.set_nonblocking(true)?;
            Ok((
                WakePipe { reader },
                WakeHandle { writer: std::sync::Arc::new(writer) },
            ))
        }
        #[cfg(not(unix))]
        {
            Ok((WakePipe {}, WakeHandle {}))
        }
    }

    /// The descriptor to register with [`wait`] for read interest.
    pub(crate) fn fd(&self) -> i32 {
        #[cfg(unix)]
        {
            raw_fd(&self.reader)
        }
        #[cfg(not(unix))]
        {
            0
        }
    }

    /// Discards every pending wake byte (level-triggered poll would
    /// otherwise report the pipe ready forever).
    pub(crate) fn drain(&self) {
        #[cfg(unix)]
        {
            use std::io::Read;
            let mut sink = [0u8; 64];
            while matches!((&self.reader).read(&mut sink), Ok(n) if n > 0) {}
        }
    }
}

impl WakeHandle {
    /// Nudges the reactor out of its wait. Failure is ignored: the
    /// reactor's tick bound makes waking a latency optimization, not a
    /// correctness requirement.
    pub(crate) fn wake(&self) {
        #[cfg(unix)]
        {
            use std::io::Write;
            let _ = (&*self.writer).write(&[1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    #[test]
    fn wait_times_out_when_nothing_is_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let start = Instant::now();
        let ready = wait(
            &[(7, raw_fd(&listener), Interest::Read)],
            Duration::from_millis(20),
        );
        // Unix: a silent listener reports nothing. The fallback poller
        // reports spuriously, which callers must tolerate anyway.
        if cfg!(unix) {
            assert!(ready.is_empty(), "{ready:?}");
            assert!(start.elapsed() >= Duration::from_millis(10));
        }
    }

    #[test]
    fn wait_reports_an_accept_ready_listener_and_readable_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        // Wait until the pending connection is visible.
        let ready = wait(
            &[(1, raw_fd(&listener), Interest::Read)],
            Duration::from_millis(2_000),
        );
        assert!(ready.iter().any(|r| r.token == 1 && r.readable), "{ready:?}");
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        client.write_all(b"hello").unwrap();
        let ready = wait(
            &[(2, raw_fd(&server_side), Interest::Both)],
            Duration::from_millis(2_000),
        );
        let hit = ready.iter().find(|r| r.token == 2).expect("stream readiness");
        assert!(hit.readable && hit.writable, "{hit:?}");
        let mut buf = [0u8; 8];
        let n = (&server_side).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
    }

    #[test]
    fn wake_pipe_interrupts_a_wait_and_drains_clean() {
        let (pipe, handle) = WakePipe::new().unwrap();
        let waker = handle.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let start = Instant::now();
        let ready = wait(&[(0, pipe.fd(), Interest::Read)], Duration::from_secs(5));
        t.join().unwrap();
        if cfg!(unix) {
            assert!(ready.iter().any(|r| r.token == 0 && r.readable), "{ready:?}");
            assert!(start.elapsed() < Duration::from_secs(4), "wake did not interrupt");
            pipe.drain();
            // Drained: an immediate re-wait times out again.
            let ready = wait(&[(0, pipe.fd(), Interest::Read)], Duration::from_millis(20));
            assert!(ready.is_empty(), "{ready:?}");
        }
    }
}
