//! The RPC vocabulary: request/response payloads in
//! [`oriole_tuner::persist`]'s canonical, checksummed wire format.
//!
//! Every payload is text, versioned by its first line
//! (`oriole-rpc vN <verb>`), and travels inside one length-framed,
//! FNV-checksummed, correlation-tagged frame
//! ([`persist::write_frame_tagged`] / [`persist::read_frame_tagged`]) —
//! the id lets a connection pipeline requests and match out-of-order
//! responses. The records inside — [`GpuSpec`],
//! [`EvalProtocol`], [`TuningParams`], [`Measurement`], [`SimReport`] —
//! reuse the persist codecs verbatim: the same serialization the disk
//! tier trusts, floats as raw IEEE-754 bits, so a measurement that
//! crossed the wire is bit-identical to one computed locally.
//!
//! Version skew is detected (a peer announcing any other
//! `oriole-rpc vN` is answered with an error naming both versions, then
//! disconnected) and a payload that parses but names impossible values
//! is a per-request error — the connection survives, the store is never
//! touched with unvalidated input.

use oriole_arch::GpuSpec;
use oriole_codegen::{PhaseTelemetry, TuningParams};
use oriole_sim::{ModelId, SimReport};
use oriole_tuner::persist::{self, WireError};
use oriole_tuner::{EvalProtocol, Measurement};

/// The protocol version this build speaks; the first token pair of
/// every payload. v3 moves the transport to correlation-tagged frames
/// ([`persist::write_frame_tagged`]) so one connection can pipeline
/// many requests and receive responses out of order, and adds the
/// reactor/pipelining counters to `stats`. (v2 added request deadlines
/// on `evaluate`, the `busy` backpressure response and the pool/quota
/// counters.) Mixed-version peers are rejected by the existing skew
/// machinery — the error names both versions.
pub const RPC_VERSION: &str = "oriole-rpc v3";

/// The experiment scope of an `evaluate` batch: exactly the
/// measurement-tier key of the daemon's store, so two clients that
/// agree on a scope share each other's artifacts and measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalScope {
    /// Kernel name (must parse as a registry [`oriole_kernels::KernelId`]
    /// on the daemon).
    pub kernel: String,
    /// Full device spec by contents — synthetic devices evaluate
    /// remotely without any registry entry on the server.
    pub gpu: GpuSpec,
    /// Input sizes.
    pub sizes: Vec<u64>,
    /// Measurement protocol (trials, selection, seed, objective,
    /// timing-model backend).
    pub protocol: EvalProtocol,
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Ask the daemon to drain in-flight work and exit its accept loop.
    Shutdown,
    /// Server and store telemetry.
    Stats,
    /// Evaluate a batch of tuning points under one scope; the response
    /// carries one [`Measurement`] per point, in request order.
    Evaluate {
        /// Experiment scope (store tier key).
        scope: EvalScope,
        /// Points to evaluate.
        points: Vec<TuningParams>,
        /// The client's remaining patience in milliseconds (0 = none
        /// declared). A saturated daemon waits for a worker slot at
        /// most this long before shedding the request with
        /// [`Response::Busy`] — work it could no longer answer in time
        /// is never started.
        deadline_ms: u64,
    },
    /// Compile + simulate one variant; the response carries the
    /// [`SimReport`] plus the selected trial time.
    Simulate {
        /// Kernel name.
        kernel: String,
        /// Device spec by contents.
        gpu: GpuSpec,
        /// Input size.
        n: u64,
        /// Tuning point.
        params: TuningParams,
        /// Timing-model backend.
        model: ModelId,
        /// Noisy trials to run.
        trials: u32,
        /// Trial noise seed.
        seed: u64,
    },
}

/// Daemon-side counters returned by [`Request::Stats`]: the server's
/// serving telemetry plus a summary of its store's
/// [`StoreStats`](oriole_tuner::StoreStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Connections accepted since the daemon started.
    pub connections: u64,
    /// Requests served (all verbs).
    pub requests: u64,
    /// Tuning points served across all `evaluate` batches (hits and
    /// misses alike).
    pub points_served: u64,
    /// Kernels with an AST tier in the store.
    pub kernels: u64,
    /// `(kernel, gpu)` front-end tiers.
    pub front_end_tiers: u64,
    /// Front-end lowerings run across all tiers.
    pub front_end_lowerings: u64,
    /// Measurement tiers (distinct experiment scopes).
    pub measurement_tiers: u64,
    /// Distinct points computed across all tiers since start.
    pub unique_evaluations: u64,
    /// `(device, model)` contexts.
    pub contexts: u64,
    /// Requests currently inside an `evaluate`/`simulate` body.
    pub workers_busy: u64,
    /// The admission bound on concurrent `evaluate`/`simulate` bodies
    /// (the daemon's `--max-inflight`).
    pub workers_max: u64,
    /// Requests and connections shed with [`Response::Busy`] because
    /// the pool was saturated or a quota was exhausted.
    pub shed_busy: u64,
    /// Connections reaped because they sat idle (or trickled a frame)
    /// past the daemon's read deadline.
    pub reaped_idle: u64,
    /// Connections currently open on the reactor.
    pub open_connections: u64,
    /// Requests currently in flight across all connections (decoded but
    /// not yet fully written back — queued, executing, or draining).
    pub frames_inflight: u64,
    /// High-water mark of requests in flight on any single connection —
    /// evidence of pipelining depth actually reached.
    pub pipelined_peak: u64,
    /// Times the reactor's readiness wait returned since the daemon
    /// started (socket readiness, worker completions, or timer ticks).
    pub reactor_wakeups: u64,
    /// Disk-tier counters; `None` when the daemon's store is
    /// memory-only.
    pub disk: Option<persist::DiskStats>,
    /// Per-phase compile profiler snapshot of the daemon process
    /// (unroll/lower/optimize/regalloc wall-clock and invocations).
    pub phases: PhaseTelemetry,
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Shutdown acknowledged; the daemon drains and exits.
    ShuttingDown,
    /// Answer to [`Request::Stats`].
    Stats(ServiceStats),
    /// Answer to [`Request::Evaluate`].
    Evaluate {
        /// Points of this batch the store computed fresh (as opposed to
        /// serving from a tier). Deterministically 0 on a fully warm
        /// re-run; under concurrent clients a computation is attributed
        /// to whichever request window observed it.
        computed: u64,
        /// One measurement per requested point, in request order,
        /// bit-identical to local evaluation.
        measurements: Vec<Measurement>,
    },
    /// Answer to [`Request::Simulate`].
    Simulate {
        /// Fifth-of-ten selected trial time (the CLI display protocol).
        selected: f64,
        /// The full simulation report.
        report: SimReport,
    },
    /// Admission control: the daemon is saturated (worker pool full, a
    /// request deadline unservable, or a per-connection quota
    /// exhausted) and shed this request instead of parking it on a
    /// hung socket. Evaluation is deterministic and the store dedups,
    /// so the client may safely retry after backing off.
    Busy {
        /// Suggested minimum backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request could not be served; the connection stays usable
    /// unless the error names a version skew or malformed frame.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Shared parsing helpers
// ---------------------------------------------------------------------------

/// Splits a payload into its verb (after version checking) and body
/// lines. A peer speaking another `oriole-rpc` version is reported as
/// such — the message names both versions so operators can tell skew
/// from corruption.
fn split_verb(payload: &str) -> Result<(&str, std::str::Lines<'_>), WireError> {
    let mut lines = payload.lines();
    let head = lines.next().unwrap_or_default();
    if let Some(verb) = head.strip_prefix(RPC_VERSION).and_then(|r| r.strip_prefix(' ')) {
        Ok((verb, lines))
    } else if head.starts_with("oriole-rpc ") {
        Err(WireError::new(format!(
            "version skew: peer speaks `{head}`, this build speaks `{RPC_VERSION}`"
        )))
    } else {
        Err(WireError::new(format!("not an {RPC_VERSION} payload: `{head}`")))
    }
}

fn body_field<'a>(lines: &[&'a str], key: &str) -> Result<&'a str, WireError> {
    lines
        .iter()
        .find_map(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .ok_or_else(|| WireError::new(format!("missing `{key}=` line")))
}

fn parse_sizes(text: &str) -> Result<Vec<u64>, WireError> {
    text.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().map_err(|_| WireError::new(format!("bad size `{s}`"))))
        .collect()
}

fn emit_sizes(sizes: &[u64]) -> String {
    sizes.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
}

fn parse_u64(text: &str, key: &str) -> Result<u64, WireError> {
    text.parse().map_err(|_| WireError::new(format!("bad numeric `{key}`")))
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Serializes a request payload (the frame body).
pub fn emit_request(req: &Request) -> String {
    match req {
        Request::Ping => format!("{RPC_VERSION} ping"),
        Request::Shutdown => format!("{RPC_VERSION} shutdown"),
        Request::Stats => format!("{RPC_VERSION} stats"),
        Request::Evaluate { scope, points, deadline_ms } => {
            let mut out = format!(
                "{RPC_VERSION} evaluate\nkernel={}\ngpu={}\nsizes={}\nprotocol={}\ndeadline={deadline_ms}",
                scope.kernel,
                persist::emit_gpu_spec(&scope.gpu),
                emit_sizes(&scope.sizes),
                persist::emit_protocol(&scope.protocol),
            );
            for p in points {
                out.push_str("\np ");
                out.push_str(&persist::emit_params(p));
            }
            out
        }
        Request::Simulate { kernel, gpu, n, params, model, trials, seed } => format!(
            "{RPC_VERSION} simulate\nkernel={kernel}\ngpu={}\nn={n}\nmodel={}\ntrials={trials}\n\
             seed={seed:016x}\nparams={}",
            persist::emit_gpu_spec(gpu),
            model.name(),
            persist::emit_params(params),
        ),
    }
}

/// Parses one request payload.
pub fn parse_request(payload: &str) -> Result<Request, WireError> {
    let (verb, lines) = split_verb(payload)?;
    let body: Vec<&str> = lines.collect();
    match verb {
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "stats" => Ok(Request::Stats),
        "evaluate" => {
            let scope = EvalScope {
                kernel: body_field(&body, "kernel")?.to_string(),
                gpu: persist::parse_gpu_spec(body_field(&body, "gpu")?)?,
                sizes: parse_sizes(body_field(&body, "sizes")?)?,
                protocol: persist::parse_protocol(body_field(&body, "protocol")?)?,
            };
            let points = body
                .iter()
                .filter_map(|l| l.strip_prefix("p "))
                .map(persist::parse_params)
                .collect::<Result<Vec<_>, _>>()?;
            // Absent deadline parses as "none declared" so a minimal
            // hand-written v2 payload stays valid.
            let deadline_ms = match body_field(&body, "deadline") {
                Ok(v) => parse_u64(v, "deadline")?,
                Err(_) => 0,
            };
            Ok(Request::Evaluate { scope, points, deadline_ms })
        }
        "simulate" => Ok(Request::Simulate {
            kernel: body_field(&body, "kernel")?.to_string(),
            gpu: persist::parse_gpu_spec(body_field(&body, "gpu")?)?,
            n: parse_u64(body_field(&body, "n")?, "n")?,
            params: persist::parse_params(body_field(&body, "params")?)?,
            model: ModelId::parse(body_field(&body, "model")?)
                .ok_or_else(|| WireError::new("unknown model id"))?,
            trials: parse_u64(body_field(&body, "trials")?, "trials")? as u32,
            seed: u64::from_str_radix(body_field(&body, "seed")?, 16)
                .map_err(|_| WireError::new("bad seed"))?,
        }),
        other => Err(WireError::new(format!("unknown request verb `{other}`"))),
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

fn emit_disk(d: &persist::DiskStats) -> String {
    format!(
        "hits:{};misses:{};loaded:{};written:{};rejected:{}",
        d.tier_hits, d.tier_misses, d.measurements_loaded, d.measurements_written, d.rejected
    )
}

fn emit_phases(p: &PhaseTelemetry) -> String {
    format!(
        "unroll:{}:{};lower:{}:{};optimize:{}:{};regalloc:{}:{}",
        p.unroll_ns,
        p.unroll_calls,
        p.lower_ns,
        p.lower_calls,
        p.optimize_ns,
        p.optimize_calls,
        p.regalloc_ns,
        p.regalloc_calls,
    )
}

fn parse_phases(text: &str) -> Result<PhaseTelemetry, WireError> {
    let get = |key: &str| -> Result<(u64, u64), WireError> {
        let rest = text
            .split(';')
            .find_map(|f| f.strip_prefix(key).and_then(|r| r.strip_prefix(':')))
            .ok_or_else(|| WireError::new(format!("missing phase field `{key}`")))?;
        let (ns, calls) = rest
            .split_once(':')
            .ok_or_else(|| WireError::new(format!("malformed phase field `{key}`")))?;
        Ok((parse_u64(ns, key)?, parse_u64(calls, key)?))
    };
    let (unroll_ns, unroll_calls) = get("unroll")?;
    let (lower_ns, lower_calls) = get("lower")?;
    let (optimize_ns, optimize_calls) = get("optimize")?;
    let (regalloc_ns, regalloc_calls) = get("regalloc")?;
    Ok(PhaseTelemetry {
        unroll_ns,
        unroll_calls,
        lower_ns,
        lower_calls,
        optimize_ns,
        optimize_calls,
        regalloc_ns,
        regalloc_calls,
    })
}

fn parse_disk(text: &str) -> Result<persist::DiskStats, WireError> {
    let get = |key: &str| -> Result<u64, WireError> {
        text.split(';')
            .find_map(|f| f.strip_prefix(key).and_then(|r| r.strip_prefix(':')))
            .ok_or_else(|| WireError::new(format!("missing disk field `{key}`")))
            .and_then(|v| parse_u64(v, key))
    };
    Ok(persist::DiskStats {
        tier_hits: get("hits")?,
        tier_misses: get("misses")?,
        measurements_loaded: get("loaded")?,
        measurements_written: get("written")?,
        rejected: get("rejected")?,
    })
}

/// Serializes a response payload (the frame body).
pub fn emit_response(resp: &Response) -> String {
    match resp {
        Response::Pong => format!("{RPC_VERSION} ok pong"),
        Response::ShuttingDown => format!("{RPC_VERSION} ok shutdown"),
        Response::Busy { retry_after_ms } => {
            format!("{RPC_VERSION} busy\nretry_after_ms={retry_after_ms}")
        }
        Response::Stats(s) => {
            let mut out = format!(
                "{RPC_VERSION} ok stats\nconnections={}\nrequests={}\npoints={}\nkernels={}\n\
                 fe_tiers={}\nlowerings={}\nmeas_tiers={}\nunique={}\ncontexts={}\nbusy={}\n\
                 wmax={}\nshed={}\nreaped={}\nconns_open={}\ninflight={}\npipe_peak={}\n\
                 wakeups={}",
                s.connections,
                s.requests,
                s.points_served,
                s.kernels,
                s.front_end_tiers,
                s.front_end_lowerings,
                s.measurement_tiers,
                s.unique_evaluations,
                s.contexts,
                s.workers_busy,
                s.workers_max,
                s.shed_busy,
                s.reaped_idle,
                s.open_connections,
                s.frames_inflight,
                s.pipelined_peak,
                s.reactor_wakeups,
            );
            if let Some(d) = &s.disk {
                out.push_str("\ndisk=");
                out.push_str(&emit_disk(d));
            }
            out.push_str("\nphases=");
            out.push_str(&emit_phases(&s.phases));
            out
        }
        Response::Evaluate { computed, measurements } => {
            let mut out = format!("{RPC_VERSION} ok evaluate\ncomputed={computed}");
            for m in measurements {
                out.push_str("\nm ");
                out.push_str(&persist::emit_measurement(m));
            }
            out
        }
        Response::Simulate { selected, report } => format!(
            "{RPC_VERSION} ok simulate\nselected={}\nr {}",
            persist::emit_f64(*selected),
            persist::emit_sim_report(report),
        ),
        Response::Error { message } => {
            // Keep the message one line: newlines would masquerade as
            // body fields of some other payload shape.
            format!("{RPC_VERSION} error\nmsg={}", message.replace('\n', " "))
        }
    }
}

/// Parses one response payload.
pub fn parse_response(payload: &str) -> Result<Response, WireError> {
    let (verb, lines) = split_verb(payload)?;
    let body: Vec<&str> = lines.collect();
    match verb {
        "error" => Ok(Response::Error { message: body_field(&body, "msg")?.to_string() }),
        "busy" => Ok(Response::Busy {
            retry_after_ms: parse_u64(body_field(&body, "retry_after_ms")?, "retry_after_ms")?,
        }),
        _ => {
            let ok_verb = verb
                .strip_prefix("ok ")
                .ok_or_else(|| WireError::new(format!("unknown response verb `{verb}`")))?;
            match ok_verb {
                "pong" => Ok(Response::Pong),
                "shutdown" => Ok(Response::ShuttingDown),
                "stats" => {
                    let num = |key: &str| body_field(&body, key).and_then(|v| parse_u64(v, key));
                    Ok(Response::Stats(ServiceStats {
                        connections: num("connections")?,
                        requests: num("requests")?,
                        points_served: num("points")?,
                        kernels: num("kernels")?,
                        front_end_tiers: num("fe_tiers")?,
                        front_end_lowerings: num("lowerings")?,
                        measurement_tiers: num("meas_tiers")?,
                        unique_evaluations: num("unique")?,
                        contexts: num("contexts")?,
                        workers_busy: num("busy")?,
                        workers_max: num("wmax")?,
                        shed_busy: num("shed")?,
                        reaped_idle: num("reaped")?,
                        open_connections: num("conns_open")?,
                        frames_inflight: num("inflight")?,
                        pipelined_peak: num("pipe_peak")?,
                        reactor_wakeups: num("wakeups")?,
                        disk: match body_field(&body, "disk") {
                            Ok(d) => Some(parse_disk(d)?),
                            Err(_) => None,
                        },
                        // Optional for wire compatibility with peers that
                        // predate the phase profiler.
                        phases: match body_field(&body, "phases") {
                            Ok(p) => parse_phases(p)?,
                            Err(_) => PhaseTelemetry::default(),
                        },
                    }))
                }
                "evaluate" => {
                    let computed = parse_u64(body_field(&body, "computed")?, "computed")?;
                    let measurements = body
                        .iter()
                        .filter_map(|l| l.strip_prefix("m "))
                        .map(persist::parse_measurement)
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(Response::Evaluate { computed, measurements })
                }
                "simulate" => Ok(Response::Simulate {
                    selected: persist::parse_f64(body_field(&body, "selected")?)?,
                    report: persist::parse_sim_report(
                        body.iter()
                            .find_map(|l| l.strip_prefix("r "))
                            .ok_or_else(|| WireError::new("missing report record"))?,
                    )?,
                }),
                other => Err(WireError::new(format!("unknown response verb `{other}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Gpu;

    fn scope() -> EvalScope {
        EvalScope {
            kernel: "atax".into(),
            gpu: Gpu::K20.spec().clone(),
            sizes: vec![64, 128],
            protocol: EvalProtocol::default(),
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Shutdown,
            Request::Stats,
            Request::Evaluate {
                scope: scope(),
                points: vec![
                    TuningParams::with_geometry(128, 48),
                    TuningParams::with_geometry(256, 96),
                ],
                deadline_ms: 2_500,
            },
            Request::Simulate {
                kernel: "bicg".into(),
                gpu: Gpu::M40.spec().clone(),
                n: 256,
                params: TuningParams::with_geometry(512, 24),
                model: ModelId::Roofline,
                trials: 10,
                seed: 0xdead_beef,
            },
        ];
        for req in reqs {
            assert_eq!(parse_request(&emit_request(&req)).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn evaluate_without_a_deadline_line_parses_as_no_deadline() {
        let emitted = emit_request(&Request::Evaluate {
            scope: scope(),
            points: vec![TuningParams::with_geometry(128, 48)],
            deadline_ms: 9_999,
        });
        let stripped: String = emitted
            .lines()
            .filter(|l| !l.starts_with("deadline="))
            .collect::<Vec<_>>()
            .join("\n");
        match parse_request(&stripped).unwrap() {
            Request::Evaluate { deadline_ms, points, .. } => {
                assert_eq!(deadline_ms, 0);
                assert_eq!(points.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let m = Measurement {
            params: TuningParams::with_geometry(128, 48),
            time_ms: 1.0625e-3,
            per_size_ms: vec![(64, 0.5e-3)],
            feasible: true,
            occupancy: 0.75,
            regs_allocated: 24,
            reg_instructions: 12.5,
        };
        let stats = ServiceStats {
            connections: 3,
            requests: 17,
            points_served: 1280,
            kernels: 2,
            front_end_tiers: 2,
            front_end_lowerings: 20,
            measurement_tiers: 2,
            unique_evaluations: 640,
            contexts: 1,
            workers_busy: 3,
            workers_max: 16,
            shed_busy: 5,
            reaped_idle: 2,
            open_connections: 4,
            frames_inflight: 7,
            pipelined_peak: 12,
            reactor_wakeups: 901,
            disk: Some(persist::DiskStats {
                tier_hits: 1,
                tier_misses: 0,
                measurements_loaded: 640,
                measurements_written: 0,
                rejected: 0,
            }),
            phases: PhaseTelemetry {
                unroll_ns: 1_250,
                unroll_calls: 10,
                lower_ns: 311_007,
                lower_calls: 10,
                optimize_ns: 0,
                optimize_calls: 0,
                regalloc_ns: 42_000,
                regalloc_calls: 10,
            },
        };
        let resps = [
            Response::Pong,
            Response::ShuttingDown,
            Response::Stats(stats),
            Response::Stats(ServiceStats::default()),
            Response::Evaluate { computed: 2, measurements: vec![m.clone(), m] },
            Response::Busy { retry_after_ms: 25 },
            Response::Error { message: "unknown kernel `gemm`".into() },
        ];
        for resp in resps {
            assert_eq!(parse_response(&emit_response(&resp)).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn simulate_response_round_trips_bit_identically() {
        let gpu = Gpu::K20.spec();
        let kernel = oriole_codegen::compile(
            &oriole_kernels::KernelId::Atax.ast(128),
            gpu,
            TuningParams::with_geometry(128, 48),
        )
        .unwrap();
        let report = oriole_sim::simulate(&kernel, 128).unwrap();
        let resp = Response::Simulate { selected: 1.0e-3, report };
        let rt = parse_response(&emit_response(&resp)).unwrap();
        assert_eq!(rt, resp);
    }

    #[test]
    fn version_skew_and_junk_are_rejected_with_names() {
        let err = parse_request("oriole-rpc v99 ping").unwrap_err();
        assert!(err.to_string().contains("version skew"), "{err}");
        assert!(err.to_string().contains(RPC_VERSION), "{err}");
        // The deadline field is new in v2: a v1 peer is skew, named as
        // such, not silently tolerated.
        let err = parse_request("oriole-rpc v1 ping").unwrap_err();
        assert!(err.to_string().contains("version skew"), "{err}");
        // Correlation-tagged pipelining is new in v3: a v2 peer is skew
        // too — its untagged frames would not even decode, and a loud
        // version error beats silent misdelivery.
        let err = parse_request("oriole-rpc v2 ping").unwrap_err();
        assert!(err.to_string().contains("version skew"), "{err}");
        assert!(parse_request("GET / HTTP/1.1").is_err());
        assert!(parse_request(&format!("{RPC_VERSION} frobnicate")).is_err());
        assert!(parse_response(&format!("{RPC_VERSION} ok frobnicate")).is_err());
        // A structurally broken evaluate: missing scope lines.
        assert!(parse_request(&format!("{RPC_VERSION} evaluate\nkernel=atax")).is_err());
    }

    #[test]
    fn error_messages_stay_single_line() {
        let resp = Response::Error { message: "multi\nline".into() };
        match parse_response(&emit_response(&resp)).unwrap() {
            Response::Error { message } => assert_eq!(message, "multi line"),
            other => panic!("{other:?}"),
        }
    }
}
