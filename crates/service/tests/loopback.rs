//! In-process loopback suite for the tuner service: a real TCP server
//! thread, real framed RPC, against the same assertions the local
//! engine is held to — remote results must be **bit-identical** to
//! local evaluation, sharing must deduplicate across clients, and
//! protocol abuse must poison nothing but the abusive connection.

use oriole_arch::{Gpu, GpuSpec};
use oriole_codegen::TuningParams;
use oriole_kernels::KernelId;
use oriole_service::protocol::{Request, Response};
use oriole_service::{
    Client, CoalesceConfig, EvalScope, Pipeline, RemoteEvaluator, RetryPolicy, Server,
    ServeSummary,
};
use oriole_sim::ModelId;
use oriole_tuner::persist::{read_frame, write_frame};
use oriole_tuner::{
    ArtifactStore, EvalProtocol, Evaluator, Measurement, RandomSearch, SearchSpace, Searcher,
};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Spawns a daemon over `store` on an ephemeral port; returns its
/// address and the join handle yielding the serve summary.
fn spawn_server(store: ArtifactStore) -> (String, JoinHandle<ServeSummary>) {
    let server = Server::bind("127.0.0.1:0", store).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (addr, handle)
}

fn scope(kernel: &str, gpu: &GpuSpec, sizes: &[u64]) -> EvalScope {
    EvalScope {
        kernel: kernel.to_string(),
        gpu: gpu.clone(),
        sizes: sizes.to_vec(),
        protocol: EvalProtocol::default(),
    }
}

fn local_sweep(kid: KernelId, gpu: &GpuSpec, sizes: &[u64], space: &SearchSpace) -> Vec<Measurement> {
    let builder = move |n: u64| kid.ast(n);
    let ev = Evaluator::new(&builder, gpu, sizes);
    ev.evaluate_space(space).iter().map(|m| (**m).clone()).collect()
}

#[test]
fn remote_evaluation_is_bit_identical_to_local_and_dedups_across_clients() {
    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    let gpu = Gpu::K20.spec();
    let sizes = [64u64];
    let local = local_sweep(KernelId::Atax, gpu, &sizes, &space);

    let (addr, handle) = spawn_server(ArtifactStore::new());
    let sc = scope("atax", gpu, &sizes);

    // Cold client: everything computed server-side, results identical
    // to the local engine bit for bit.
    let cold = Client::connect(&addr).expect("connect");
    let (computed, remote) = cold.evaluate(&sc, &points).expect("evaluate");
    assert_eq!(computed as usize, space.len());
    assert_eq!(remote, local);
    for (r, l) in remote.iter().zip(&local) {
        assert_eq!(r.time_ms.to_bits(), l.time_ms.to_bits());
    }

    // Warm client on its own connection: served from the shared store,
    // zero fresh computations.
    let warm = Client::connect(&addr).expect("connect");
    let (computed, again) = warm.evaluate(&sc, &points).expect("evaluate");
    assert_eq!(computed, 0, "warm re-run must compute nothing");
    assert_eq!(again, local);

    let stats = warm.stats().expect("stats");
    assert_eq!(stats.unique_evaluations as usize, space.len());
    assert_eq!(stats.points_served as usize, 2 * space.len());
    assert!(stats.connections >= 2);

    warm.shutdown().expect("shutdown ack");
    let summary = handle.join().expect("server thread");
    assert!(summary.requests >= 4);
    assert_eq!(summary.points_served as usize, 2 * space.len());
}

#[test]
fn concurrent_clients_share_the_store_and_compute_each_point_once() {
    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    let gpu = Gpu::M40.spec();
    let sizes = [32u64, 64];
    let local = local_sweep(KernelId::Bicg, gpu, &sizes, &space);

    let (addr, handle) = spawn_server(ArtifactStore::new());
    let sc = Arc::new(scope("bicg", gpu, &sizes));

    let results: Vec<Vec<Measurement>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let sc = Arc::clone(&sc);
                let points = points.clone();
                s.spawn(move || {
                    let client = Client::connect(&addr).expect("connect");
                    client.evaluate(&sc, &points).expect("evaluate").1
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    for r in &results {
        assert_eq!(r, &local, "every concurrent client sees the local numbers");
    }

    let client = Client::connect(&addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.unique_evaluations as usize,
        space.len(),
        "racing clients must not duplicate computations"
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn remote_oracle_runs_searchers_unchanged_with_identical_traces() {
    let space = SearchSpace::tiny();
    let gpu = Gpu::K20.spec();
    let sizes = [64u64];

    // Local reference search.
    let kid = KernelId::Atax;
    let builder = move |n: u64| kid.ast(n);
    let ev = Evaluator::new(&builder, gpu, &sizes);
    let local = RandomSearch { seed: 9 }.search(&space, &ev, 10);

    let (addr, handle) = spawn_server(ArtifactStore::new());
    let client = Client::connect(&addr).expect("connect");
    let remote = RemoteEvaluator::new(client, scope("atax", gpu, &sizes));
    let result = RandomSearch { seed: 9 }.search(&space, &remote, 10);
    assert_eq!(remote.take_error(), None, "no RPC failures");
    assert_eq!(result, local, "remote search must replay the local trace bit-for-bit");
    assert_eq!(remote.fetched(), 10, "one fetch per distinct sampled point");

    // A second identical search is served from the client memo: no new
    // fetches at all.
    let again = RandomSearch { seed: 9 }.search(&space, &remote, 10);
    assert_eq!(again, local);
    assert_eq!(remote.fetched(), 10);

    Client::connect(&addr).expect("connect").shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn remote_simulate_matches_local_context() {
    let gpu = Gpu::P100.spec();
    let n = 128u64;
    let params = TuningParams::with_geometry(256, 48);
    let kernel = oriole_codegen::compile(&KernelId::MatVec2D.ast(n), gpu, params).unwrap();
    let local_report = oriole_sim::simulate(&kernel, n).unwrap();
    let local_trials = oriole_sim::measure(&kernel, n, 10, 42).unwrap();

    let (addr, handle) = spawn_server(ArtifactStore::new());
    let client = Client::connect(&addr).expect("connect");
    let (selected, report) = client
        .simulate("matvec2d", gpu, n, params, ModelId::Simulator, 10, 42)
        .expect("simulate");
    assert_eq!(report, local_report);
    assert_eq!(
        selected.to_bits(),
        local_trials.selected(oriole_sim::TrialProtocol::FifthOfTen).to_bits()
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn synthetic_devices_evaluate_remotely_by_spec_contents() {
    // No registry entry exists for this device; the full spec crosses
    // the wire and keys the server's store by contents.
    let custom = GpuSpec { regfile_per_mp: 32_768, ..Gpu::K20.spec().clone() };
    let sizes = [64u64];
    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    let local = local_sweep(KernelId::Atax, &custom, &sizes, &space);

    let (addr, handle) = spawn_server(ArtifactStore::new());
    let client = Client::connect(&addr).expect("connect");
    let (_, remote) = client.evaluate(&scope("atax", &custom, &sizes), &points).expect("evaluate");
    assert_eq!(remote, local);
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn protocol_abuse_poisons_nothing_but_its_own_connection() {
    let (addr, handle) = spawn_server(ArtifactStore::new());

    // 1. Unknown kernel: per-request error, connection survives.
    let client = Client::connect(&addr).expect("connect");
    let err = client
        .evaluate(&scope("gemm", Gpu::K20.spec(), &[64]), &[TuningParams::with_geometry(128, 48)])
        .expect_err("unknown kernel");
    assert!(err.to_string().contains("unknown kernel"), "{err}");
    client.ping().expect("connection still usable after a request error");

    // 2. Version skew: answered with an error naming both versions.
    let mut raw = TcpStream::connect(&addr).expect("connect raw");
    write_frame(&mut raw, "oriole-rpc v99 ping").expect("send");
    let reply = read_frame(&mut raw).expect("reply");
    assert!(reply.contains("version skew"), "{reply}");
    assert!(reply.contains(oriole_service::RPC_VERSION), "{reply}");

    // 3. A malformed frame (garbage bytes): the server answers with an
    // error (best-effort) and hangs up.
    let mut raw = TcpStream::connect(&addr).expect("connect raw");
    use std::io::Write as _;
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("send garbage");
    raw.flush().unwrap();
    let reply = read_frame(&mut raw);
    // Either an error frame or an immediate hangup is acceptable; what
    // is not acceptable is the daemon dying or serving the garbage.
    if let Ok(reply) = reply {
        assert!(reply.contains("malformed frame"), "{reply}");
    }

    // 4. Disconnect mid-session: just drop a connected client.
    drop(Client::connect(&addr).expect("connect"));

    // After all of the above, an honest client still gets bit-identical
    // service.
    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    let local = local_sweep(KernelId::Atax, Gpu::K20.spec(), &[64], &space);
    let honest = Client::connect(&addr).expect("connect");
    let (_, remote) =
        honest.evaluate(&scope("atax", Gpu::K20.spec(), &[64]), &points).expect("evaluate");
    assert_eq!(remote, local, "the store survived the abuse untouched");

    honest.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn pipelined_requests_complete_out_of_order_and_stay_bit_identical() {
    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    let gpu = Gpu::K20.spec();
    let sizes = [64u64];
    let local = local_sweep(KernelId::Atax, gpu, &sizes, &space);
    let sc = scope("atax", gpu, &sizes);

    let (addr, handle) = spawn_server(ArtifactStore::new());
    let pipe = Pipeline::connect(&addr, 8, &RetryPolicy::default()).expect("connect");

    // One frame per point, all in flight at once, redeemed in *reverse*
    // send order — correlation ids, not arrival order, route responses.
    let tickets: Vec<_> = points
        .iter()
        .map(|p| {
            pipe.send(&Request::Evaluate {
                scope: sc.clone(),
                points: vec![*p],
                deadline_ms: 0,
            })
            .expect("send")
        })
        .collect();
    let mut measurements: Vec<Measurement> = Vec::new();
    for ticket in tickets.into_iter().rev() {
        match pipe.wait(ticket).expect("wait") {
            Response::Evaluate { measurements: mut ms, .. } => {
                measurements.push(ms.remove(0))
            }
            other => panic!("expected measurements, got {other:?}"),
        }
    }
    measurements.reverse();
    assert_eq!(measurements, local, "pipelined results are the local numbers bit-for-bit");

    // The daemon saw real pipelining and is idle again now.
    let client = Client::connect(&addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(stats.pipelined_peak >= 2, "frames overlapped in flight: {stats:?}");
    assert_eq!(stats.frames_inflight, 0, "everything delivered: {stats:?}");
    assert!(stats.open_connections >= 1, "{stats:?}");
    assert!(stats.reactor_wakeups > 0, "{stats:?}");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn coalesced_concurrent_evaluators_are_bit_identical_to_sequential() {
    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    let gpu = Gpu::K20.spec();
    let sizes = [64u64];
    let local = local_sweep(KernelId::Atax, gpu, &sizes, &space);
    let sc = scope("atax", gpu, &sizes);

    let (addr, handle) = spawn_server(ArtifactStore::new());
    let client = Client::connect(&addr).expect("connect");
    let remote = Arc::new(RemoteEvaluator::with_coalesce(
        client,
        sc,
        // Tiny chunks force multi-frame batches through the pipeline.
        CoalesceConfig { max_batch_points: 2, ..CoalesceConfig::default() },
    ));

    // Eight threads hammer the one evaluator with overlapping slices;
    // their misses coalesce into shared batched frames.
    let results: Vec<Vec<Measurement>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let remote = Arc::clone(&remote);
                let points = points.clone();
                s.spawn(move || {
                    // Each thread starts at a different offset so the
                    // pending set mixes contributions from many threads.
                    let mut mine: Vec<TuningParams> = points[i % points.len()..].to_vec();
                    mine.extend_from_slice(&points[..i % points.len()]);
                    let got = remote.evaluate_batch(&mine).expect("evaluate");
                    let mut by_input: Vec<(TuningParams, Measurement)> =
                        mine.into_iter().zip(got).collect();
                    by_input.sort_by_key(|(p, _)| format!("{p}"));
                    by_input.into_iter().map(|(_, m)| m).collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("thread")).collect()
    });
    assert_eq!(remote.take_error(), None, "no RPC failures");

    let mut reference: Vec<(TuningParams, Measurement)> =
        points.iter().cloned().zip(local.clone()).collect();
    reference.sort_by_key(|(p, _)| format!("{p}"));
    let reference: Vec<Measurement> = reference.into_iter().map(|(_, m)| m).collect();
    for r in &results {
        assert_eq!(r, &reference, "every thread sees the sequential/local numbers");
    }

    // Coalescing happened (frames carried real batches) and the store
    // still computed each point exactly once.
    assert!(remote.batches_sent() >= 1, "{}", remote.batches_sent());
    assert!(remote.peak_batch() >= 2, "chunks carry >1 point: {}", remote.peak_batch());
    assert_eq!(remote.fetched() as usize, points.len(), "each distinct point fetched once");
    let probe = Client::connect(&addr).expect("connect");
    let stats = probe.stats().expect("stats");
    assert_eq!(stats.unique_evaluations as usize, points.len());
    probe.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn rpc_failure_latches_instead_of_returning_garbage() {
    // A daemon that has shut down mid-search: the remote oracle scores
    // infinity and surfaces the failure through take_error.
    let (addr, handle) = spawn_server(ArtifactStore::new());
    let client = Client::connect(&addr).expect("connect");
    let remote = RemoteEvaluator::new(client, scope("atax", Gpu::K20.spec(), &[64]));
    let p = TuningParams::with_geometry(128, 48);
    assert!(remote.evaluate(p).is_some(), "daemon up: point evaluates");

    Client::connect(&addr).expect("connect").shutdown().expect("shutdown");
    handle.join().expect("server thread");
    // Daemon gone; an uncached point cannot be fetched.
    let q = TuningParams::with_geometry(256, 48);
    use oriole_tuner::Oracle as _;
    assert_eq!(remote.eval(q), f64::INFINITY);
    let err = remote.take_error().expect("failure latched");
    assert!(!err.is_empty());
    // Everything after the latch short-circuits, including cached
    // points — a poisoned run never mixes stale and fresh answers.
    assert!(remote.evaluate(p).is_none());
}
