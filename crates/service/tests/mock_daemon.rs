//! The client's trust-but-verify guards, exercised explicitly: a mock
//! daemon that speaks perfect frames but *lies* — reordering or
//! short-changing the measurement list — must surface as a protocol
//! error, never as mislabeled measurements handed to a search.

use oriole_arch::Gpu;
use oriole_codegen::TuningParams;
use oriole_service::protocol::{self, EvalScope, Request, Response};
use oriole_service::{Client, Pipeline, RetryPolicy, ServiceError};
use oriole_tuner::persist::{read_frame_tagged, write_frame_tagged};
use oriole_tuner::{EvalProtocol, Measurement};
use std::net::TcpListener;
use std::thread::JoinHandle;

/// How the mock daemon tampers with an honest positional answer.
#[derive(Clone, Copy)]
enum Tamper {
    /// Swap the first two measurements (violates the positional
    /// ordering contract).
    Reorder,
    /// Drop the last measurement (violates the one-per-point contract).
    ShortChange,
    /// Answer honestly but tag the response with a correlation id the
    /// client never issued (violates the id-echo contract).
    WrongId,
}

fn fake_measurement(params: TuningParams, time_ms: f64) -> Measurement {
    Measurement {
        params,
        time_ms,
        per_size_ms: vec![(64, time_ms)],
        feasible: true,
        occupancy: 0.5,
        regs_allocated: 32,
        reg_instructions: 10.0,
    }
}

/// A daemon-shaped liar: real listener, real frames, tampered answers.
/// Serves connections until the listener is dropped with the test.
fn spawn_mock(tamper: Tamper) -> (String, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || {
        // One connection is all the fail-fast client will make.
        let (mut stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => return,
        };
        while let Ok((corr, payload)) = read_frame_tagged(&mut stream) {
            let response = match protocol::parse_request(&payload) {
                Ok(Request::Evaluate { points, .. }) => {
                    let mut measurements: Vec<Measurement> = points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| fake_measurement(*p, 1.0 + i as f64))
                        .collect();
                    match tamper {
                        Tamper::Reorder => measurements.swap(0, 1),
                        Tamper::ShortChange => {
                            measurements.pop();
                        }
                        Tamper::WrongId => {}
                    }
                    Response::Evaluate { computed: measurements.len() as u64, measurements }
                }
                Ok(_) | Err(_) => Response::Error { message: "mock only evaluates".into() },
            };
            let reply_corr = match tamper {
                Tamper::WrongId => corr + 1,
                _ => corr,
            };
            if write_frame_tagged(&mut stream, reply_corr, &protocol::emit_response(&response))
                .is_err()
            {
                return;
            }
        }
    });
    (addr, handle)
}

fn scope() -> EvalScope {
    EvalScope {
        kernel: "atax".to_string(),
        gpu: Gpu::K20.spec().clone(),
        sizes: vec![64],
        protocol: EvalProtocol::default(),
    }
}

fn points() -> Vec<TuningParams> {
    vec![TuningParams::with_geometry(128, 48), TuningParams::with_geometry(256, 48)]
}

#[test]
fn reordered_measurements_are_rejected_as_a_protocol_error() {
    let (addr, handle) = spawn_mock(Tamper::Reorder);
    let client = Client::connect_with(&addr, RetryPolicy::fail_fast()).expect("connect");
    let err = client.evaluate(&scope(), &points()).expect_err("reordering must be caught");
    match &err {
        ServiceError::Protocol(m) => {
            assert!(m.contains("where"), "names the mismatch: {m}");
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    drop(client);
    handle.join().expect("mock thread");
}

#[test]
fn short_changed_measurements_are_rejected_as_a_protocol_error() {
    let (addr, handle) = spawn_mock(Tamper::ShortChange);
    let client = Client::connect_with(&addr, RetryPolicy::fail_fast()).expect("connect");
    let err = client.evaluate(&scope(), &points()).expect_err("short answer must be caught");
    match &err {
        ServiceError::Protocol(m) => {
            assert!(
                m.contains("1 measurements for 2 points"),
                "names the count mismatch: {m}"
            );
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    drop(client);
    handle.join().expect("mock thread");
}

#[test]
fn a_response_with_the_wrong_correlation_id_is_rejected_not_delivered() {
    let (addr, handle) = spawn_mock(Tamper::WrongId);
    let client = Client::connect_with(&addr, RetryPolicy::fail_fast()).expect("connect");
    let err = client.evaluate(&scope(), &points()).expect_err("wrong id must be caught");
    match &err {
        ServiceError::Protocol(m) => {
            assert!(m.contains("correlation id"), "names the id mismatch: {m}");
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    drop(client);
    handle.join().expect("mock thread");
}

#[test]
fn a_pipelined_response_with_an_unknown_id_poisons_the_pipeline() {
    let (addr, handle) = spawn_mock(Tamper::WrongId);
    let pipe = Pipeline::connect(&addr, 4, &RetryPolicy::fail_fast()).expect("connect");
    let ticket = pipe
        .send(&Request::Evaluate {
            scope: scope(),
            points: points(),
            deadline_ms: 0,
        })
        .expect("send");
    let err = pipe.wait(ticket).expect_err("unknown id must poison, never deliver");
    match &err {
        ServiceError::Protocol(m) => {
            assert!(m.contains("unknown correlation id"), "names the stray id: {m}");
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    assert!(pipe.is_poisoned(), "the whole pipeline is condemned");
    drop(pipe);
    handle.join().expect("mock thread");
}
