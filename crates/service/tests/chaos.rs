//! Fault-injection acceptance suite: every injected failure either
//! **heals** (the client retries and the final results are
//! bit-identical to a fault-free local run) or **aborts loudly** (a
//! latched error) — and nothing, client or daemon, blocks past its
//! deadline. Each test carries an explicit wall-clock bound where a
//! hang would otherwise be the failure mode.

use oriole_arch::{Gpu, GpuSpec};
use oriole_codegen::TuningParams;
use oriole_kernels::KernelId;
use oriole_service::{
    ChaosPlan, ChaosProxy, Client, CoalesceConfig, EvalScope, FaultSpec, RemoteEvaluator,
    RetryPolicy, ServeConfig, ServeSummary, Server, ServiceError,
};
use oriole_tuner::persist::{read_frame, write_frame};
use oriole_tuner::{ArtifactStore, EvalProtocol, Evaluator, Measurement, SearchSpace};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn spawn_server_with(
    store: ArtifactStore,
    cfg: ServeConfig,
) -> (SocketAddr, JoinHandle<ServeSummary>) {
    let server = Server::bind_with("127.0.0.1:0", store, cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (addr, handle)
}

fn spawn_server(store: ArtifactStore) -> (SocketAddr, JoinHandle<ServeSummary>) {
    spawn_server_with(store, ServeConfig::default())
}

fn scope(kernel: &str, gpu: &GpuSpec, sizes: &[u64]) -> EvalScope {
    EvalScope {
        kernel: kernel.to_string(),
        gpu: gpu.clone(),
        sizes: sizes.to_vec(),
        protocol: EvalProtocol::default(),
    }
}

fn local_sweep(kid: KernelId, gpu: &GpuSpec, sizes: &[u64], space: &SearchSpace) -> Vec<Measurement> {
    let builder = move |n: u64| kid.ast(n);
    let ev = Evaluator::new(&builder, gpu, sizes);
    ev.evaluate_space(space).iter().map(|m| (**m).clone()).collect()
}

fn shutdown_daemon(addr: SocketAddr, handle: JoinHandle<ServeSummary>) -> ServeSummary {
    Client::connect(&addr.to_string()).expect("connect").shutdown().expect("shutdown");
    handle.join().expect("server thread")
}

/// A fast-failing-but-healing policy for fault tests: deadlines tight
/// enough that a black hole is detected in milliseconds, retries
/// plentiful enough that every transient fault in these plans heals.
fn test_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 4,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
        rpc_timeout: Duration::from_millis(500),
        jitter_seed: 42,
    }
}

#[test]
fn corrupted_response_frame_heals_via_retry_bit_identically() {
    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    let gpu = Gpu::K20.spec();
    let local = local_sweep(KernelId::Atax, gpu, &[64], &space);

    let (daemon, handle) = spawn_server(ArtifactStore::new());
    // First connection: flip one payload byte of the response (stream
    // offset 20 sits inside the first frame's payload, past the
    // 16-byte header). The frame checksum must catch it, the retry
    // must reconnect and heal.
    let proxy = ChaosProxy::spawn(
        daemon,
        ChaosPlan::sequence(vec![FaultSpec { corrupt_response_at: Some(20), ..FaultSpec::clean() }]),
    )
    .expect("proxy");

    let client = Client::connect_with(&proxy.addr().to_string(), test_policy()).expect("connect");
    let (_, remote) = client.evaluate(&scope("atax", gpu, &[64]), &points).expect("heals");
    assert_eq!(remote, local, "healed run must be bit-identical to a fault-free local run");
    for (r, l) in remote.iter().zip(&local) {
        assert_eq!(r.time_ms.to_bits(), l.time_ms.to_bits());
    }
    assert!(client.retries() >= 1, "the corruption must have cost at least one retry");
    assert!(proxy.connections() >= 2, "healing reconnects through the proxy");

    drop(client);
    proxy.stop();
    shutdown_daemon(daemon, handle);
}

#[test]
fn connection_cut_mid_frame_heals_via_retry_bit_identically() {
    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    let gpu = Gpu::M40.spec();
    let local = local_sweep(KernelId::Bicg, gpu, &[32], &space);

    let (daemon, handle) = spawn_server(ArtifactStore::new());
    // First two connections die mid-response-frame (one inside the
    // 16-byte header, one inside the payload); the third is clean.
    let proxy = ChaosProxy::spawn(
        daemon,
        ChaosPlan::sequence(vec![
            FaultSpec { cut_response_after: Some(7), ..FaultSpec::clean() },
            FaultSpec { cut_response_after: Some(40), ..FaultSpec::clean() },
        ]),
    )
    .expect("proxy");

    let client = Client::connect_with(&proxy.addr().to_string(), test_policy()).expect("connect");
    let (_, remote) = client.evaluate(&scope("bicg", gpu, &[32]), &points).expect("heals");
    assert_eq!(remote, local);
    assert!(client.retries() >= 2, "two cut connections cost two retries");
    assert!(proxy.connections() >= 3);

    drop(client);
    proxy.stop();
    shutdown_daemon(daemon, handle);
}

#[test]
fn refused_connections_heal_once_the_network_does() {
    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    let gpu = Gpu::K20.spec();
    let local = local_sweep(KernelId::Atax, gpu, &[64], &space);

    let (daemon, handle) = spawn_server(ArtifactStore::new());
    let proxy = ChaosProxy::spawn(
        daemon,
        ChaosPlan::sequence(vec![
            FaultSpec { refuse: true, ..FaultSpec::clean() },
            FaultSpec { refuse: true, ..FaultSpec::clean() },
        ]),
    )
    .expect("proxy");

    let client = Client::connect_with(&proxy.addr().to_string(), test_policy()).expect("connect");
    let (_, remote) = client.evaluate(&scope("atax", gpu, &[64]), &points).expect("heals");
    assert_eq!(remote, local);

    drop(client);
    proxy.stop();
    shutdown_daemon(daemon, handle);
}

#[test]
fn a_black_hole_latches_loudly_within_its_deadline_budget() {
    let (daemon, handle) = spawn_server(ArtifactStore::new());
    // Every connection swallows the response for far longer than the
    // client is willing to wait.
    let proxy = ChaosProxy::spawn(
        daemon,
        ChaosPlan::always(FaultSpec { delay_response_ms: 60_000, ..FaultSpec::clean() }),
    )
    .expect("proxy");

    let policy = RetryPolicy {
        max_retries: 1,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        rpc_timeout: Duration::from_millis(150),
        jitter_seed: 42,
    };
    let started = Instant::now();
    let client = Client::connect_with(&proxy.addr().to_string(), policy).expect("connect");
    let remote = RemoteEvaluator::new(client, scope("atax", Gpu::K20.spec(), &[64]));
    use oriole_tuner::Oracle as _;
    assert_eq!(remote.eval(TuningParams::with_geometry(128, 48)), f64::INFINITY);
    let elapsed = started.elapsed();
    let err = remote.take_error().expect("black hole must latch an error");
    assert!(err.contains("deadline") || err.contains("timed out") || err.contains("I/O"), "{err}");
    // Two 150ms attempts plus backoff: the latch must arrive in well
    // under a second of deadline budget — never an unbounded hang.
    assert!(elapsed < Duration::from_secs(5), "latched after {elapsed:?}, deadline not honored");

    proxy.stop();
    shutdown_daemon(daemon, handle);
}

#[test]
fn daemon_death_mid_sweep_latches_and_a_restart_resumes_bit_identically() {
    let dir: PathBuf = std::env::temp_dir()
        .join(format!("oriole-chaos-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    assert!(points.len() >= 4, "need enough points to split the sweep");
    let gpu = Gpu::K20.spec();
    let local = local_sweep(KernelId::Atax, gpu, &[64], &space);
    let sc = scope("atax", gpu, &[64]);
    let (first, rest) = points.split_at(points.len() / 2);

    // Phase 1: evaluate the first half, then the daemon dies.
    let store = ArtifactStore::with_disk(&dir).expect("disk store");
    let (daemon, handle) = spawn_server(store);
    let policy = RetryPolicy {
        max_retries: 2,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        rpc_timeout: Duration::from_millis(500),
        jitter_seed: 42,
    };
    let client = Client::connect_with(&daemon.to_string(), policy).expect("connect");
    let remote = RemoteEvaluator::new(client, sc.clone());
    let healthy = remote.evaluate_batch(first).expect("first half evaluates");
    assert_eq!(&healthy[..], &local[..first.len()], "pre-fault half matches local");
    shutdown_daemon(daemon, handle);

    // The dead daemon must latch loudly — bounded by the retry budget,
    // not a hang — and poison everything after.
    let started = Instant::now();
    assert!(remote.evaluate_batch(rest).is_none(), "dead daemon cannot evaluate");
    assert!(started.elapsed() < Duration::from_secs(10));
    let err = remote.take_error().expect("abort is loud");
    assert!(!err.is_empty());
    assert!(remote.evaluate_batch(first).is_none(), "latched evaluator stays poisoned");

    // Phase 2: a fresh daemon over the same store directory. The full
    // sweep must be bit-identical to the fault-free local run, with the
    // pre-crash half replayed from disk, not recomputed.
    let store = ArtifactStore::with_disk(&dir).expect("reopen disk store");
    let (daemon, handle) = spawn_server(store);
    let client = Client::connect_with(&daemon.to_string(), test_policy()).expect("connect");
    let resumed = RemoteEvaluator::new(client, sc);
    let full = resumed.evaluate_batch(&points).expect("resumed sweep");
    assert_eq!(resumed.take_error(), None);
    assert_eq!(full, local, "resumed sweep is bit-identical to a fault-free local run");
    for (r, l) in full.iter().zip(&local) {
        assert_eq!(r.time_ms.to_bits(), l.time_ms.to_bits());
    }
    assert!(
        (resumed.computed_remote() as usize) <= rest.len(),
        "the pre-crash half must come from the spilled store, not recomputation"
    );
    shutdown_daemon(daemon, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_connection_cut_mid_frame_heals_bit_identically() {
    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    let gpu = Gpu::K20.spec();
    let local = local_sweep(KernelId::Atax, gpu, &[64], &space);

    let (daemon, handle) = spawn_server(ArtifactStore::new());
    // Connection 0 is the evaluator's side-channel Client (never
    // faulted here); connections 1 and 2 are pipelines that die
    // mid-response-frame — one inside the 24-byte header, one inside a
    // payload — each with several chunked frames in flight. The third
    // pipeline is clean.
    let proxy = ChaosProxy::spawn(
        daemon,
        ChaosPlan::sequence(vec![
            FaultSpec::clean(),
            FaultSpec { cut_response_after: Some(7), ..FaultSpec::clean() },
            FaultSpec { cut_response_after: Some(40), ..FaultSpec::clean() },
        ]),
    )
    .expect("proxy");

    let client =
        Client::connect_with(&proxy.addr().to_string(), test_policy()).expect("connect");
    let remote = RemoteEvaluator::with_coalesce(
        client,
        scope("atax", gpu, &[64]),
        // Tiny chunks: the sweep crosses as multiple frames in flight
        // on one pipeline, so the cut strands several requests at once.
        CoalesceConfig { max_batch_points: 2, max_frames: 4, ..CoalesceConfig::default() },
    );
    let healed = remote.evaluate_batch(&points).expect("heals");
    assert_eq!(remote.take_error(), None);
    assert_eq!(healed, local, "healed pipelined sweep is bit-identical to local");
    for (r, l) in healed.iter().zip(&local) {
        assert_eq!(r.time_ms.to_bits(), l.time_ms.to_bits());
    }
    assert!(remote.batches_sent() >= 2, "chunks were pipelined: {}", remote.batches_sent());
    assert!(proxy.connections() >= 4, "healing re-dialed the pipeline: {}", proxy.connections());

    proxy.stop();
    shutdown_daemon(daemon, handle);
}

#[test]
fn pipelined_response_corruption_heals_bit_identically_without_misdelivery() {
    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    let gpu = Gpu::M40.spec();
    let local = local_sweep(KernelId::Bicg, gpu, &[32], &space);

    let (daemon, handle) = spawn_server(ArtifactStore::new());
    // Stream offset 20 sits inside the first response frame's
    // correlation-id field (bytes 16..24 of the 24-byte header): the
    // tampered id fails the frame checksum — which covers the id
    // exactly so corruption can *reroute* nothing — and the pipeline
    // poisons instead of delivering to the wrong ticket.
    let proxy = ChaosProxy::spawn(
        daemon,
        ChaosPlan::sequence(vec![
            FaultSpec::clean(),
            FaultSpec { corrupt_response_at: Some(20), ..FaultSpec::clean() },
        ]),
    )
    .expect("proxy");

    let client =
        Client::connect_with(&proxy.addr().to_string(), test_policy()).expect("connect");
    let remote = RemoteEvaluator::with_coalesce(
        client,
        scope("bicg", gpu, &[32]),
        CoalesceConfig { max_batch_points: 2, max_frames: 4, ..CoalesceConfig::default() },
    );
    let healed = remote.evaluate_batch(&points).expect("heals");
    assert_eq!(remote.take_error(), None);
    assert_eq!(healed, local, "healed run is bit-identical — corruption delivered nothing");
    assert!(proxy.connections() >= 3, "the poisoned pipeline was replaced");

    proxy.stop();
    shutdown_daemon(daemon, handle);
}

#[test]
fn a_black_hole_under_a_pipelined_sweep_latches_loudly_within_budget() {
    let (daemon, handle) = spawn_server(ArtifactStore::new());
    let proxy = ChaosProxy::spawn(
        daemon,
        ChaosPlan::always(FaultSpec { delay_response_ms: 60_000, ..FaultSpec::clean() }),
    )
    .expect("proxy");

    let policy = RetryPolicy {
        max_retries: 1,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        rpc_timeout: Duration::from_millis(150),
        jitter_seed: 42,
    };
    let started = Instant::now();
    let client = Client::connect_with(&proxy.addr().to_string(), policy).expect("connect");
    let remote = RemoteEvaluator::with_coalesce(
        client,
        scope("atax", Gpu::K20.spec(), &[64]),
        CoalesceConfig { max_batch_points: 1, max_frames: 4, ..CoalesceConfig::default() },
    );
    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    assert!(
        remote.evaluate_batch(&points).is_none(),
        "a silent daemon cannot answer a pipelined sweep"
    );
    let elapsed = started.elapsed();
    let err = remote.take_error().expect("black hole must latch an error");
    assert!(!err.is_empty());
    // Two attempts bounded by the 150ms progress deadline each, plus
    // backoff: loud latch in seconds, never an unbounded hang.
    assert!(elapsed < Duration::from_secs(5), "latched after {elapsed:?}, deadline not honored");

    proxy.stop();
    shutdown_daemon(daemon, handle);
}

#[test]
fn a_saturated_worker_pool_sheds_with_busy_and_recovers() {
    // One worker: the first connection owns the pool, so a second
    // connection must be answered Busy and closed — deterministically.
    let cfg = ServeConfig { workers: 1, ..ServeConfig::default() };
    let (daemon, handle) = spawn_server_with(ArtifactStore::new(), cfg);

    let holder = Client::connect(&daemon.to_string()).expect("connect");
    holder.ping().expect("holder owns the one worker slot");

    let mut raw = std::net::TcpStream::connect(daemon).expect("dial");
    raw.set_read_timeout(Some(Duration::from_secs(5))).expect("deadline");
    // The shed is connection-level: Busy arrives before any request.
    let reply = read_frame(&mut raw).expect("busy frame");
    match oriole_service::protocol::parse_response(&reply) {
        Ok(oriole_service::Response::Busy { retry_after_ms }) => {
            assert!(retry_after_ms > 0, "busy carries a retry hint");
        }
        other => panic!("expected busy, got {other:?}"),
    }
    drop(raw);

    let stats = holder.stats().expect("stats");
    assert!(stats.shed_busy >= 1, "the shed is counted: {stats:?}");
    assert_eq!(stats.workers_max, cfg.max_inflight as u64);

    // Capacity freed: a retrying client heals once the holder leaves.
    drop(holder);
    let healed = Client::connect_retry(&daemon.to_string(), Duration::from_secs(5))
        .expect("reconnect after capacity frees");
    healed.ping().expect("pool recovered");
    drop(healed);
    let summary = shutdown_daemon(daemon, handle);
    assert!(summary.shed_busy >= 1);
}

#[test]
fn contended_clients_all_complete_identically_under_a_tiny_inflight_gate() {
    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    let gpu = Gpu::P100.spec();
    let local = local_sweep(KernelId::MatVec2D, gpu, &[64], &space);

    // A deliberately tiny gate under real contention: every client must
    // still complete (waiting inside its deadline or healing a shed via
    // retry) with bit-identical results.
    let cfg = ServeConfig { max_inflight: 1, ..ServeConfig::default() };
    let (daemon, handle) = spawn_server_with(ArtifactStore::new(), cfg);
    let sc = scope("matvec2d", gpu, &[64]);

    let results: Vec<Vec<Measurement>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let sc = sc.clone();
                let points = points.clone();
                let addr = daemon.to_string();
                s.spawn(move || {
                    let policy = RetryPolicy { jitter_seed: i, ..test_policy() };
                    let client = Client::connect_with(&addr, policy).expect("connect");
                    client.evaluate(&sc, &points).expect("evaluate").1
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    for r in &results {
        assert_eq!(r, &local, "contention must never change results");
    }
    shutdown_daemon(daemon, handle);
}

#[test]
fn idle_connections_are_reaped_and_clients_heal_by_reconnecting() {
    let cfg = ServeConfig { idle_timeout: Duration::from_millis(100), ..ServeConfig::default() };
    let (daemon, handle) = spawn_server_with(ArtifactStore::new(), cfg);

    let client = Client::connect_with(&daemon.to_string(), test_policy()).expect("connect");
    client.ping().expect("alive");
    // Idle well past the deadline: the daemon reaps the connection.
    std::thread::sleep(Duration::from_millis(400));
    // The next call heals transparently: the poisoned/closed stream is
    // re-dialed under the retry policy.
    client.ping().expect("heals by reconnecting");
    let stats = client.stats().expect("stats");
    assert!(stats.reaped_idle >= 1, "the reap is counted: {stats:?}");

    drop(client);
    let summary = shutdown_daemon(daemon, handle);
    assert!(summary.reaped_idle >= 1);
}

#[test]
fn shutdown_completes_even_when_the_wake_dial_is_sabotaged() {
    // Regression for the silent-failure wake path: the old accept loop
    // blocked in accept(2) and relied on a best-effort self-connection
    // to notice shutdown — a failed dial hung the daemon forever. The
    // polled loop must shut down promptly even with the dial pointed at
    // a dead address.
    let server = Server::bind("127.0.0.1:0", ArtifactStore::new()).expect("bind");
    let addr = server.local_addr().expect("addr");
    server.sabotage_wake_for_test();
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let client = Client::connect(&addr.to_string()).expect("connect");
    let started = Instant::now();
    client.shutdown().expect("shutdown ack");
    drop(client);
    let summary = handle.join().expect("server thread");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown must complete through the poll fallback, not hang"
    );
    assert!(summary.drained);
}

#[test]
fn connect_retry_reports_the_standing_cause_when_time_runs_out() {
    // Nothing listens on this address; every dial inside the window
    // fails with the same refusal, and that refusal — not a panic, not
    // a hang — is what comes back when the window closes.
    let started = Instant::now();
    let err = Client::connect_retry("127.0.0.1:1", Duration::from_millis(200))
        .expect_err("nothing listens on port 1");
    assert!(matches!(err, ServiceError::Io(_)), "dial refusal is the standing cause: {err}");
    let elapsed = started.elapsed();
    assert!(elapsed >= Duration::from_millis(200), "the window is honored");
    assert!(elapsed < Duration::from_secs(30), "and bounded");
}

#[test]
fn requests_past_the_connection_quota_are_shed_and_heal_by_reconnecting() {
    let cfg = ServeConfig { max_requests_per_conn: 2, ..ServeConfig::default() };
    let (daemon, handle) = spawn_server_with(ArtifactStore::new(), cfg);

    // A raw client sees the quota directly: two served requests, then
    // a Busy and a hangup.
    let mut raw = std::net::TcpStream::connect(daemon).expect("dial");
    raw.set_read_timeout(Some(Duration::from_secs(5))).expect("deadline");
    for _ in 0..2 {
        write_frame(&mut raw, &oriole_service::protocol::emit_request(&oriole_service::Request::Ping))
            .expect("send");
        let reply = read_frame(&mut raw).expect("reply");
        assert!(matches!(
            oriole_service::protocol::parse_response(&reply),
            Ok(oriole_service::Response::Pong)
        ));
    }
    write_frame(&mut raw, &oriole_service::protocol::emit_request(&oriole_service::Request::Ping))
        .expect("send");
    let reply = read_frame(&mut raw).expect("reply");
    assert!(
        matches!(
            oriole_service::protocol::parse_response(&reply),
            Ok(oriole_service::Response::Busy { .. })
        ),
        "third request on a quota-2 connection is shed"
    );
    drop(raw);

    // A policy-driven client heals through the quota transparently: the
    // Busy poisons its stream and the retry reconnects.
    let client = Client::connect_with(&daemon.to_string(), test_policy()).expect("connect");
    for _ in 0..7 {
        client.ping().expect("every ping lands despite the quota");
    }
    assert!(client.retries() >= 1, "the quota recycles cost retries");
    drop(client);
    shutdown_daemon(daemon, handle);
}

#[test]
fn oversized_evaluate_batches_are_a_loud_per_request_error() {
    let cfg = ServeConfig { max_points_per_request: 2, ..ServeConfig::default() };
    let (daemon, handle) = spawn_server_with(ArtifactStore::new(), cfg);
    let client = Client::connect_with(&daemon.to_string(), test_policy()).expect("connect");
    let space = SearchSpace::tiny();
    let points: Vec<TuningParams> = space.iter().collect();
    assert!(points.len() > 2);
    let err = client
        .evaluate(&scope("atax", Gpu::K20.spec(), &[64]), &points)
        .expect_err("quota violation is an error, not a hang");
    assert!(err.to_string().contains("quota"), "{err}");
    // Retrying cannot help, so the policy must NOT have burned retries.
    assert_eq!(client.retries(), 0, "deterministic refusals are not retried");
    // The connection survives a per-request error.
    client.ping().expect("connection survives");
    drop(client);
    shutdown_daemon(daemon, handle);
}
