//! Process-level artifact store: cross-evaluator reuse.
//!
//! The evaluation layer amortizes work *within* one [`Evaluator`] —
//! per-size ASTs, shared front-end artifacts, a deduplicated
//! measurement memo, a device model context. But the experiment drivers
//! run *many* evaluators: every bench bin sweeps kernels × GPUs, the CLI
//! builds a fresh evaluator per `tune` invocation, and replay validation
//! re-evaluates logged points. [`ArtifactStore`] is the process-level
//! owner those evaluators borrow their tiers from, keyed so sharing is
//! exactly as wide as correctness allows:
//!
//! | tier | scope key | shared across |
//! |------|-----------|---------------|
//! | AST | `kernel` | devices, sizes, protocols, models |
//! | front-end | `kernel × GpuSpec` (entries add `size × UIF × CFLAGS`) | sweeps, sizes, protocols, models |
//! | model context | `GpuSpec × `[`ModelId`] | kernels, sweeps (occupancy/mix/report caches) |
//! | measurement | `kernel × GpuSpec × sizes × `[`EvalProtocol`] (which carries the [`ModelId`]) | repeated sweeps of one experiment |
//! | **disk** (optional) | measurement scope, content-addressed file per tier | **processes** — sweeps resume across runs |
//!
//! # The disk tier
//!
//! [`ArtifactStore::with_disk`] adds a second, persistent tier under
//! the measurement tier: opening a measurement scope first loads every
//! valid record of its on-disk artifact (served as ordinary cache hits),
//! and each newly computed measurement is appended back as a
//! checksummed record, so a sweep killed mid-run resumes warm in the
//! next process. The wire format ([`crate::persist`]) versions every
//! file and seals every line with a checksum: corruption or version
//! skew is detected and treated as a **miss** — recomputed, never
//! trusted — and the embedded scope is verified on load so even a
//! filename collision cannot alias experiments. Warm-from-disk results
//! are bit-identical to cold computation (floats travel as raw IEEE-754
//! bits).
//!
//! Compilation artifacts (ASTs, front-ends) are model-independent and
//! shared across backends; everything a timing model touches — report
//! caches, measurements — is scoped by the model id, so two backends
//! can never serve each other's cached estimates.
//!
//! Together with the per-entry keys this realizes the
//! `(kernel, gpu, size, uif, cflags)` artifact addressing: two sweeps
//! that agree on a scope reuse each other's artifacts and, when the
//! protocol matches, entire measurements. Every cached value is
//! **bit-identical** to what a fresh evaluator computes (the memoized
//! paths are property-tested against the free functions), so shared and
//! fresh runs are indistinguishable except in wall-clock.
//!
//! Devices are keyed by the full [`GpuSpec`] *contents*, not registry
//! pointers — synthetic or custom devices participate; two distinct
//! specs never share, even with the same marketing name. Kernels are
//! keyed by a caller-chosen name: use distinct names for distinct ASTs
//! (the benchmark kernel names, a file path, …) — two *different*
//! builders registered under one name would alias each other's ASTs and
//! front-ends, which is the one contract the store cannot check.

use crate::eval::{AstTier, EvalProtocol, Evaluator, FeTier, MeasTier};
use crate::persist::{self, DiskStats};
use oriole_arch::GpuSpec;
use oriole_ir::KernelAst;
use oriole_sim::{ModelContext, ModelId, ModelStats};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Scope key of a front-end tier.
#[derive(PartialEq, Eq, Hash)]
struct FeScope {
    kernel: String,
    gpu: GpuSpec,
}

/// Scope key of a measurement tier.
#[derive(PartialEq, Eq, Hash)]
struct MeasScope {
    kernel: String,
    gpu: GpuSpec,
    sizes: Vec<u64>,
    protocol: EvalProtocol,
}

/// The attached disk tier: its directory and the shared counters every
/// tier spill reports into.
struct DiskHandle {
    dir: PathBuf,
    counters: Arc<persist::DiskCounters>,
}

#[derive(Default)]
struct StoreInner {
    asts: Mutex<HashMap<String, Arc<AstTier>>>,
    front_ends: Mutex<HashMap<FeScope, Arc<FeTier>>>,
    measurements: Mutex<HashMap<MeasScope, Arc<MeasTier>>>,
    contexts: Mutex<HashMap<(GpuSpec, ModelId), Arc<ModelContext>>>,
    disk: OnceLock<DiskHandle>,
}

/// Aggregate telemetry of a store: tier counts and summed counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Kernels with an AST tier.
    pub kernels: usize,
    /// `(kernel, gpu)` front-end tiers.
    pub front_end_tiers: usize,
    /// Front-end lowerings run across all tiers.
    pub front_end_lowerings: usize,
    /// Measurement tiers (distinct experiment scopes).
    pub measurement_tiers: usize,
    /// Distinct points measured across all tiers.
    pub unique_evaluations: usize,
    /// `(device, model)` contexts.
    pub contexts: usize,
    /// Model cache counters summed *per backend* (one entry per
    /// [`ModelId`] with at least one context, in [`ModelId::ALL`]
    /// order) — different cost models never blur into one aggregate.
    pub models: Vec<ModelStats>,
    /// Disk-tier counters; `None` when the store is memory-only.
    pub disk: Option<DiskStats>,
    /// Per-phase compile profiler snapshot (process-wide).
    pub phases: oriole_codegen::PhaseTelemetry,
}

impl StoreStats {
    /// The summed counters of one backend, if any context runs it.
    pub fn model(&self, id: ModelId) -> Option<&ModelStats> {
        self.models.iter().find(|m| m.model == id)
    }
}

/// Process-level artifact store; see the [module docs](self).
///
/// Cheap to clone (a shared handle); all methods take `&self` and are
/// thread-safe, so one store can back concurrent sweeps.
#[derive(Clone, Default)]
pub struct ArtifactStore {
    inner: Arc<StoreInner>,
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> ArtifactStore {
        ArtifactStore::default()
    }

    /// A store whose measurement tiers are backed by the persistent
    /// disk tier under `dir` (created if absent): opening a scope loads
    /// its on-disk artifact, and new computations are spilled back, so
    /// sweeps resume bit-identically across processes. See the
    /// [module docs](self) and [`crate::persist`].
    pub fn with_disk(dir: impl AsRef<Path>) -> std::io::Result<ArtifactStore> {
        let dir = dir.as_ref().to_path_buf();
        // Fail loudly and precisely up front instead of degrading to a
        // silently memory-only tier (or a confusing create_dir_all
        // error): a path that exists but is not a directory can never
        // become a store, and a directory we cannot enumerate could
        // never serve its artifacts.
        if dir.exists() && !dir.is_dir() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("`{}` exists and is not a directory", dir.display()),
            ));
        }
        std::fs::create_dir_all(&dir)?;
        std::fs::read_dir(&dir).map_err(|e| {
            std::io::Error::new(e.kind(), format!("store dir `{}` is not readable: {e}", dir.display()))
        })?;
        let store = ArtifactStore::new();
        let handle = DiskHandle { dir, counters: Arc::new(persist::DiskCounters::default()) };
        let _ = store.inner.disk.set(handle);
        Ok(store)
    }

    /// The disk-tier directory, when one is attached.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.inner.disk.get().map(|d| d.dir.as_path())
    }

    /// The shared default-backend (simulator) context for a device
    /// (created on first use).
    pub fn context(&self, gpu: &GpuSpec) -> Arc<ModelContext> {
        self.context_for(gpu, ModelId::default())
    }

    /// The shared context for a `(device, timing model)` pair (created
    /// on first use). Contexts for different models never share caches,
    /// even on one device.
    pub fn context_for(&self, gpu: &GpuSpec, model: ModelId) -> Arc<ModelContext> {
        let mut map = self.inner.contexts.lock().expect("store lock");
        Arc::clone(
            map.entry((gpu.clone(), model))
                .or_insert_with(|| Arc::new(ModelContext::for_model(gpu, model))),
        )
    }

    fn ast_tier(&self, kernel: &str) -> Arc<AstTier> {
        let mut map = self.inner.asts.lock().expect("store lock");
        Arc::clone(map.entry(kernel.to_string()).or_insert_with(|| Arc::new(AstTier::new())))
    }

    fn fe_tier(&self, kernel: &str, gpu: &GpuSpec) -> Arc<FeTier> {
        let mut map = self.inner.front_ends.lock().expect("store lock");
        Arc::clone(
            map.entry(FeScope { kernel: kernel.to_string(), gpu: gpu.clone() })
                .or_insert_with(|| Arc::new(FeTier::new())),
        )
    }

    pub(crate) fn meas_tier(
        &self,
        kernel: &str,
        gpu: &GpuSpec,
        sizes: &[u64],
        protocol: EvalProtocol,
    ) -> Arc<MeasTier> {
        // The disk open (one file read + header verify) runs under the
        // map lock so each scope's artifact is opened exactly once per
        // process, even under racing evaluators.
        let mut map = self.inner.measurements.lock().expect("store lock");
        Arc::clone(
            map.entry(MeasScope {
                kernel: kernel.to_string(),
                gpu: gpu.clone(),
                sizes: sizes.to_vec(),
                protocol,
            })
            .or_insert_with(|| match self.inner.disk.get() {
                None => Arc::new(MeasTier::new()),
                Some(disk) => {
                    let scope = persist::scope_text(kernel, gpu, sizes, &protocol);
                    let opened = persist::open_tier(&disk.dir, &scope, &disk.counters);
                    Arc::new(MeasTier::assemble(opened.measurements, opened.spill))
                }
            }),
        )
    }

    /// An evaluator borrowing this store's tiers, with the paper's
    /// default [`EvalProtocol`]. Evaluators that agree on
    /// `(kernel, gpu)` share ASTs, front-ends and the device model
    /// context; those also agreeing on `(sizes, protocol)` share whole
    /// measurements.
    pub fn evaluator<'a>(
        &self,
        kernel: &str,
        ast_builder: &'a (dyn Fn(u64) -> KernelAst + Sync),
        gpu: &'a GpuSpec,
        sizes: &'a [u64],
    ) -> Evaluator<'a> {
        self.evaluator_with(kernel, ast_builder, gpu, sizes, EvalProtocol::default())
    }

    /// [`ArtifactStore::evaluator`] with an explicit protocol.
    pub fn evaluator_with<'a>(
        &self,
        kernel: &str,
        ast_builder: &'a (dyn Fn(u64) -> KernelAst + Sync),
        gpu: &'a GpuSpec,
        sizes: &'a [u64],
        protocol: EvalProtocol,
    ) -> Evaluator<'a> {
        Evaluator::from_tiers(
            ast_builder,
            gpu,
            sizes,
            protocol,
            self.context_for(gpu, protocol.model),
            self.ast_tier(kernel),
            self.fe_tier(kernel, gpu),
            self.meas_tier(kernel, gpu, sizes, protocol),
            (self.clone(), kernel.to_string()),
        )
    }

    /// Aggregate telemetry across every tier and context.
    pub fn stats(&self) -> StoreStats {
        let kernels = self.inner.asts.lock().expect("store lock").len();
        let (front_end_tiers, front_end_lowerings) = {
            let map = self.inner.front_ends.lock().expect("store lock");
            (map.len(), map.values().map(|t| t.lowerings()).sum())
        };
        let (measurement_tiers, unique_evaluations) = {
            let map = self.inner.measurements.lock().expect("store lock");
            (map.len(), map.values().map(|t| t.unique_evaluations()).sum())
        };
        let (contexts, models) = {
            let map = self.inner.contexts.lock().expect("store lock");
            let mut models: Vec<ModelStats> = Vec::new();
            for id in ModelId::ALL {
                let mut sum = ModelStats { model: id, ..ModelStats::default() };
                let mut seen = false;
                for ctx in map.values().filter(|c| c.model_id() == id) {
                    let s = ctx.stats();
                    seen = true;
                    sum.occ_hits += s.occ_hits;
                    sum.occ_misses += s.occ_misses;
                    sum.occ_entries += s.occ_entries;
                    sum.mix_hits += s.mix_hits;
                    sum.mix_misses += s.mix_misses;
                    sum.report_hits += s.report_hits;
                    sum.report_misses += s.report_misses;
                }
                if seen {
                    models.push(sum);
                }
            }
            (map.len(), models)
        };
        StoreStats {
            kernels,
            front_end_tiers,
            front_end_lowerings,
            measurement_tiers,
            unique_evaluations,
            contexts,
            models,
            disk: self.inner.disk.get().map(|d| d.counters.snapshot()),
            phases: oriole_codegen::profile::telemetry(),
        }
    }
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Objective;
    use crate::space::SearchSpace;
    use oriole_arch::Gpu;
    use oriole_codegen::TuningParams;
    use oriole_kernels::KernelId;

    fn builder(n: u64) -> KernelAst {
        KernelId::Atax.ast(n)
    }

    #[test]
    fn shared_evaluators_reuse_measurements() {
        let store = ArtifactStore::new();
        let sizes = [64u64];
        let space = SearchSpace::tiny();
        let gpu = Gpu::K20.spec();

        let first = store.evaluator("atax", &builder, gpu, &sizes);
        let cold = first.evaluate_space(&space);
        let cold_stats = store.stats();
        assert_eq!(cold_stats.unique_evaluations, space.len());

        // A second evaluator over the same scope: pure cache hits.
        let second = store.evaluator("atax", &builder, gpu, &sizes);
        let warm = second.evaluate_space(&space);
        assert_eq!(warm, cold);
        assert_eq!(store.stats().unique_evaluations, space.len());
        assert_eq!(
            store.stats().front_end_lowerings,
            cold_stats.front_end_lowerings,
            "no new lowerings on the warm sweep"
        );
    }

    #[test]
    fn store_matches_fresh_evaluators_bit_for_bit() {
        let store = ArtifactStore::new();
        let sizes = [64u64, 128];
        let space = SearchSpace::tiny();
        let gpu = Gpu::K20.spec();

        let shared = store.evaluator("atax", &builder, gpu, &sizes);
        let fresh = Evaluator::new(&builder, gpu, &sizes);
        for p in space.iter() {
            assert_eq!(shared.evaluate(p), fresh.evaluate(p), "{p}");
        }
    }

    #[test]
    fn different_scopes_do_not_share_measurements() {
        let store = ArtifactStore::new();
        let sizes_a = [64u64];
        let sizes_b = [64u64, 128];
        let gpu = Gpu::K20.spec();
        let p = TuningParams::with_geometry(128, 48);

        let a = store.evaluator("atax", &builder, gpu, &sizes_a);
        let b = store.evaluator("atax", &builder, gpu, &sizes_b);
        let ma = a.evaluate(p);
        let mb = b.evaluate(p);
        assert_ne!(ma.per_size_ms.len(), mb.per_size_ms.len());
        // But the common size produced the identical number (shared
        // front-end and report caches under distinct measurement tiers).
        assert_eq!(ma.per_size_ms[0], mb.per_size_ms[0]);
        assert_eq!(store.stats().measurement_tiers, 2);
        assert_eq!(store.stats().front_end_tiers, 1);
    }

    #[test]
    fn protocol_scopes_measurements() {
        let store = ArtifactStore::new();
        let sizes = [32u64, 128];
        let gpu = Gpu::K20.spec();
        let p = TuningParams::with_geometry(128, 48);

        let total = store.evaluator("atax", &builder, gpu, &sizes);
        let largest = store.evaluator_with(
            "atax",
            &builder,
            gpu,
            &sizes,
            EvalProtocol { objective: Objective::LargestSize, ..EvalProtocol::default() },
        );
        assert!(largest.evaluate(p).time_ms < total.evaluate(p).time_ms);
        assert_eq!(store.stats().measurement_tiers, 2);
    }

    #[test]
    fn contexts_are_shared_per_device_and_keyed_by_content() {
        let store = ArtifactStore::new();
        let a = store.context(Gpu::K20.spec());
        let b = store.context(Gpu::K20.spec());
        assert!(Arc::ptr_eq(&a, &b));
        let custom = GpuSpec { regfile_per_mp: 32_768, ..Gpu::K20.spec().clone() };
        let c = store.context(&custom);
        assert!(!Arc::ptr_eq(&a, &c), "distinct spec contents get distinct contexts");
        assert_eq!(store.stats().contexts, 2);
    }

    #[test]
    fn contexts_are_keyed_by_model_too() {
        let store = ArtifactStore::new();
        let gpu = Gpu::K20.spec();
        let sim = store.context_for(gpu, ModelId::Simulator);
        let stat = store.context_for(gpu, ModelId::Static);
        assert!(!Arc::ptr_eq(&sim, &stat), "one device, two backends, two contexts");
        assert!(Arc::ptr_eq(&sim, &store.context(gpu)), "default is the simulator");
        assert_eq!(store.stats().contexts, 2);
    }

    #[test]
    fn disk_tier_resumes_sweeps_across_stores() {
        let dir = std::env::temp_dir()
            .join(format!("oriole-store-unit-{}-resume", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sizes = [64u64];
        let space = SearchSpace::tiny();
        let gpu = Gpu::K20.spec();

        let cold_store = ArtifactStore::with_disk(&dir).expect("store dir");
        let cold = cold_store.evaluator("atax", &builder, gpu, &sizes).evaluate_space(&space);
        let cs = cold_store.stats();
        assert_eq!(cs.unique_evaluations, space.len());
        let cd = cs.disk.expect("disk attached");
        assert_eq!(cd.measurements_written as usize, space.len());
        assert_eq!(cd.measurements_loaded, 0);
        drop(cold_store);

        // A second store (standing in for a second process): the whole
        // sweep is served from disk, bit-identically, computing nothing.
        let warm_store = ArtifactStore::with_disk(&dir).expect("store dir");
        let warm = warm_store.evaluator("atax", &builder, gpu, &sizes).evaluate_space(&space);
        assert_eq!(warm, cold);
        let ws = warm_store.stats();
        assert_eq!(ws.unique_evaluations, 0, "warm-from-disk sweep computed nothing");
        let wd = ws.disk.expect("disk attached");
        assert_eq!(wd.measurements_loaded as usize, space.len());
        assert_eq!((wd.tier_hits, wd.rejected), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn with_disk_rejects_files_and_unreadable_paths() {
        // An existing regular file can never be a store directory: a
        // clear error, not a panic and not a silent memory-only store.
        let file = std::env::temp_dir()
            .join(format!("oriole-store-unit-{}-notadir", std::process::id()));
        std::fs::write(&file, "plain file").unwrap();
        let err = ArtifactStore::with_disk(&file).expect_err("file is not a dir");
        assert!(err.to_string().contains("not a directory"), "{err}");
        // The file itself is untouched.
        assert_eq!(std::fs::read_to_string(&file).unwrap(), "plain file");

        // A path nested under a regular file is unusable too.
        let nested = file.join("sub");
        assert!(ArtifactStore::with_disk(&nested).is_err());
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn memory_only_store_reports_no_disk_stats() {
        let store = ArtifactStore::new();
        assert_eq!(store.stats().disk, None);
        assert_eq!(store.disk_dir(), None);
    }

    #[test]
    fn models_never_share_measurements_but_share_compile_artifacts() {
        let store = ArtifactStore::new();
        let sizes = [64u64];
        let gpu = Gpu::K20.spec();
        let p = TuningParams::with_geometry(128, 48);

        let sim = store.evaluator("atax", &builder, gpu, &sizes);
        let stat = store.evaluator_with(
            "atax",
            &builder,
            gpu,
            &sizes,
            EvalProtocol { model: ModelId::Static, ..EvalProtocol::default() },
        );
        let a = sim.evaluate(p);
        let b = stat.evaluate(p);
        assert!(a.feasible && b.feasible);
        assert_ne!(a.time_ms, b.time_ms, "Eq. 6 model units vs simulator ms");

        let stats = store.stats();
        // Distinct measurement tiers and contexts per backend; each
        // backend ran its own estimate (a cross-model hit would leave
        // one of these at zero misses).
        assert_eq!(stats.measurement_tiers, 2);
        assert_eq!(stats.contexts, 2);
        assert_eq!(stats.model(ModelId::Simulator).unwrap().report_misses, 1);
        assert_eq!(stats.model(ModelId::Static).unwrap().report_misses, 1);
        assert!(stats.model(ModelId::Roofline).is_none());
        // Compilation artifacts are model-independent and shared.
        assert_eq!(stats.front_end_tiers, 1);
        assert_eq!(stats.front_end_lowerings, 1);
    }
}
