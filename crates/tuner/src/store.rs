//! Process-level artifact store: cross-evaluator reuse.
//!
//! The evaluation layer amortizes work *within* one [`Evaluator`] —
//! per-size ASTs, shared front-end artifacts, a deduplicated
//! measurement memo, a device model context. But the experiment drivers
//! run *many* evaluators: every bench bin sweeps kernels × GPUs, the CLI
//! builds a fresh evaluator per `tune` invocation, and replay validation
//! re-evaluates logged points. [`ArtifactStore`] is the process-level
//! owner those evaluators borrow their tiers from, keyed so sharing is
//! exactly as wide as correctness allows:
//!
//! | tier | scope key | shared across |
//! |------|-----------|---------------|
//! | AST | `kernel` | devices, sizes, protocols |
//! | front-end | `kernel × GpuSpec` (entries add `size × UIF × CFLAGS`) | sweeps, sizes, protocols |
//! | model context | `GpuSpec` | kernels, sweeps (occupancy/mix/report caches) |
//! | measurement | `kernel × GpuSpec × sizes × `[`EvalProtocol`] | repeated sweeps of one experiment |
//!
//! Together with the per-entry keys this realizes the
//! `(kernel, gpu, size, uif, cflags)` artifact addressing: two sweeps
//! that agree on a scope reuse each other's artifacts and, when the
//! protocol matches, entire measurements. Every cached value is
//! **bit-identical** to what a fresh evaluator computes (the memoized
//! paths are property-tested against the free functions), so shared and
//! fresh runs are indistinguishable except in wall-clock.
//!
//! Devices are keyed by the full [`GpuSpec`] *contents*, not registry
//! pointers — synthetic or custom devices participate; two distinct
//! specs never share, even with the same marketing name. Kernels are
//! keyed by a caller-chosen name: use distinct names for distinct ASTs
//! (the benchmark kernel names, a file path, …) — two *different*
//! builders registered under one name would alias each other's ASTs and
//! front-ends, which is the one contract the store cannot check.

use crate::eval::{AstTier, EvalProtocol, Evaluator, FeTier, MeasTier};
use oriole_arch::GpuSpec;
use oriole_ir::KernelAst;
use oriole_sim::{ModelContext, ModelStats};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Scope key of a front-end tier.
#[derive(PartialEq, Eq, Hash)]
struct FeScope {
    kernel: String,
    gpu: GpuSpec,
}

/// Scope key of a measurement tier.
#[derive(PartialEq, Eq, Hash)]
struct MeasScope {
    kernel: String,
    gpu: GpuSpec,
    sizes: Vec<u64>,
    protocol: EvalProtocol,
}

#[derive(Default)]
struct StoreInner {
    asts: Mutex<HashMap<String, Arc<AstTier>>>,
    front_ends: Mutex<HashMap<FeScope, Arc<FeTier>>>,
    measurements: Mutex<HashMap<MeasScope, Arc<MeasTier>>>,
    contexts: Mutex<HashMap<GpuSpec, Arc<ModelContext>>>,
}

/// Aggregate telemetry of a store: tier counts and summed counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Kernels with an AST tier.
    pub kernels: usize,
    /// `(kernel, gpu)` front-end tiers.
    pub front_end_tiers: usize,
    /// Front-end lowerings run across all tiers.
    pub front_end_lowerings: usize,
    /// Measurement tiers (distinct experiment scopes).
    pub measurement_tiers: usize,
    /// Distinct points measured across all tiers.
    pub unique_evaluations: usize,
    /// Device model contexts.
    pub contexts: usize,
    /// Model cache counters summed over all contexts.
    pub model: ModelStats,
}

/// Process-level artifact store; see the [module docs](self).
///
/// Cheap to clone (a shared handle); all methods take `&self` and are
/// thread-safe, so one store can back concurrent sweeps.
#[derive(Clone, Default)]
pub struct ArtifactStore {
    inner: Arc<StoreInner>,
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> ArtifactStore {
        ArtifactStore::default()
    }

    /// The shared model context for a device (created on first use).
    pub fn context(&self, gpu: &GpuSpec) -> Arc<ModelContext> {
        let mut map = self.inner.contexts.lock().expect("store lock");
        Arc::clone(
            map.entry(gpu.clone()).or_insert_with(|| Arc::new(ModelContext::new(gpu))),
        )
    }

    fn ast_tier(&self, kernel: &str) -> Arc<AstTier> {
        let mut map = self.inner.asts.lock().expect("store lock");
        Arc::clone(map.entry(kernel.to_string()).or_insert_with(|| Arc::new(AstTier::new())))
    }

    fn fe_tier(&self, kernel: &str, gpu: &GpuSpec) -> Arc<FeTier> {
        let mut map = self.inner.front_ends.lock().expect("store lock");
        Arc::clone(
            map.entry(FeScope { kernel: kernel.to_string(), gpu: gpu.clone() })
                .or_insert_with(|| Arc::new(FeTier::new())),
        )
    }

    pub(crate) fn meas_tier(
        &self,
        kernel: &str,
        gpu: &GpuSpec,
        sizes: &[u64],
        protocol: EvalProtocol,
    ) -> Arc<MeasTier> {
        let mut map = self.inner.measurements.lock().expect("store lock");
        Arc::clone(
            map.entry(MeasScope {
                kernel: kernel.to_string(),
                gpu: gpu.clone(),
                sizes: sizes.to_vec(),
                protocol,
            })
            .or_insert_with(|| Arc::new(MeasTier::new())),
        )
    }

    /// An evaluator borrowing this store's tiers, with the paper's
    /// default [`EvalProtocol`]. Evaluators that agree on
    /// `(kernel, gpu)` share ASTs, front-ends and the device model
    /// context; those also agreeing on `(sizes, protocol)` share whole
    /// measurements.
    pub fn evaluator<'a>(
        &self,
        kernel: &str,
        ast_builder: &'a (dyn Fn(u64) -> KernelAst + Sync),
        gpu: &'a GpuSpec,
        sizes: &'a [u64],
    ) -> Evaluator<'a> {
        self.evaluator_with(kernel, ast_builder, gpu, sizes, EvalProtocol::default())
    }

    /// [`ArtifactStore::evaluator`] with an explicit protocol.
    pub fn evaluator_with<'a>(
        &self,
        kernel: &str,
        ast_builder: &'a (dyn Fn(u64) -> KernelAst + Sync),
        gpu: &'a GpuSpec,
        sizes: &'a [u64],
        protocol: EvalProtocol,
    ) -> Evaluator<'a> {
        Evaluator::from_tiers(
            ast_builder,
            gpu,
            sizes,
            protocol,
            self.context(gpu),
            self.ast_tier(kernel),
            self.fe_tier(kernel, gpu),
            self.meas_tier(kernel, gpu, sizes, protocol),
            (self.clone(), kernel.to_string()),
        )
    }

    /// Aggregate telemetry across every tier and context.
    pub fn stats(&self) -> StoreStats {
        let kernels = self.inner.asts.lock().expect("store lock").len();
        let (front_end_tiers, front_end_lowerings) = {
            let map = self.inner.front_ends.lock().expect("store lock");
            (map.len(), map.values().map(|t| t.lowerings()).sum())
        };
        let (measurement_tiers, unique_evaluations) = {
            let map = self.inner.measurements.lock().expect("store lock");
            (map.len(), map.values().map(|t| t.unique_evaluations()).sum())
        };
        let (contexts, model) = {
            let map = self.inner.contexts.lock().expect("store lock");
            let mut model = ModelStats::default();
            for ctx in map.values() {
                let s = ctx.stats();
                model.occ_hits += s.occ_hits;
                model.occ_misses += s.occ_misses;
                model.occ_entries += s.occ_entries;
                model.mix_hits += s.mix_hits;
                model.mix_misses += s.mix_misses;
                model.report_hits += s.report_hits;
                model.report_misses += s.report_misses;
            }
            (map.len(), model)
        };
        StoreStats {
            kernels,
            front_end_tiers,
            front_end_lowerings,
            measurement_tiers,
            unique_evaluations,
            contexts,
            model,
        }
    }
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Objective;
    use crate::space::SearchSpace;
    use oriole_arch::Gpu;
    use oriole_codegen::TuningParams;
    use oriole_kernels::KernelId;

    fn builder(n: u64) -> KernelAst {
        KernelId::Atax.ast(n)
    }

    #[test]
    fn shared_evaluators_reuse_measurements() {
        let store = ArtifactStore::new();
        let sizes = [64u64];
        let space = SearchSpace::tiny();
        let gpu = Gpu::K20.spec();

        let first = store.evaluator("atax", &builder, gpu, &sizes);
        let cold = first.evaluate_space(&space);
        let cold_stats = store.stats();
        assert_eq!(cold_stats.unique_evaluations, space.len());

        // A second evaluator over the same scope: pure cache hits.
        let second = store.evaluator("atax", &builder, gpu, &sizes);
        let warm = second.evaluate_space(&space);
        assert_eq!(warm, cold);
        assert_eq!(store.stats().unique_evaluations, space.len());
        assert_eq!(
            store.stats().front_end_lowerings,
            cold_stats.front_end_lowerings,
            "no new lowerings on the warm sweep"
        );
    }

    #[test]
    fn store_matches_fresh_evaluators_bit_for_bit() {
        let store = ArtifactStore::new();
        let sizes = [64u64, 128];
        let space = SearchSpace::tiny();
        let gpu = Gpu::K20.spec();

        let shared = store.evaluator("atax", &builder, gpu, &sizes);
        let fresh = Evaluator::new(&builder, gpu, &sizes);
        for p in space.iter() {
            assert_eq!(shared.evaluate(p), fresh.evaluate(p), "{p}");
        }
    }

    #[test]
    fn different_scopes_do_not_share_measurements() {
        let store = ArtifactStore::new();
        let sizes_a = [64u64];
        let sizes_b = [64u64, 128];
        let gpu = Gpu::K20.spec();
        let p = TuningParams::with_geometry(128, 48);

        let a = store.evaluator("atax", &builder, gpu, &sizes_a);
        let b = store.evaluator("atax", &builder, gpu, &sizes_b);
        let ma = a.evaluate(p);
        let mb = b.evaluate(p);
        assert_ne!(ma.per_size_ms.len(), mb.per_size_ms.len());
        // But the common size produced the identical number (shared
        // front-end and report caches under distinct measurement tiers).
        assert_eq!(ma.per_size_ms[0], mb.per_size_ms[0]);
        assert_eq!(store.stats().measurement_tiers, 2);
        assert_eq!(store.stats().front_end_tiers, 1);
    }

    #[test]
    fn protocol_scopes_measurements() {
        let store = ArtifactStore::new();
        let sizes = [32u64, 128];
        let gpu = Gpu::K20.spec();
        let p = TuningParams::with_geometry(128, 48);

        let total = store.evaluator("atax", &builder, gpu, &sizes);
        let largest = store.evaluator_with(
            "atax",
            &builder,
            gpu,
            &sizes,
            EvalProtocol { objective: Objective::LargestSize, ..EvalProtocol::default() },
        );
        assert!(largest.evaluate(p).time_ms < total.evaluate(p).time_ms);
        assert_eq!(store.stats().measurement_tiers, 2);
    }

    #[test]
    fn contexts_are_shared_per_device_and_keyed_by_content() {
        let store = ArtifactStore::new();
        let a = store.context(Gpu::K20.spec());
        let b = store.context(Gpu::K20.spec());
        assert!(Arc::ptr_eq(&a, &b));
        let custom = GpuSpec { regfile_per_mp: 32_768, ..Gpu::K20.spec().clone() };
        let c = store.context(&custom);
        assert!(!Arc::ptr_eq(&a, &c), "distinct spec contents get distinct contexts");
        assert_eq!(store.stats().contexts, 2);
    }
}
