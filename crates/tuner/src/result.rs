//! Experiment records and CSV export.

use crate::eval::Measurement;
use crate::search::SearchResult;
use std::fmt::Write as _;

/// A completed tuning run: what a strategy found and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningRun {
    /// Strategy name.
    pub strategy: String,
    /// Kernel name.
    pub kernel: String,
    /// GPU name.
    pub gpu: String,
    /// The search outcome.
    pub result: SearchResult,
    /// Distinct variants actually compiled+measured.
    pub unique_evaluations: usize,
    /// Size of the (possibly pruned) space searched.
    pub space_size: usize,
}

impl TuningRun {
    /// One summary line for experiment logs.
    pub fn summary(&self) -> String {
        format!(
            "{:<14} {:<9} {:<6} best={} ({:.4} ms) evals={} unique={} space={}",
            self.strategy,
            self.kernel,
            self.gpu,
            self.result.best,
            self.result.best_time,
            self.result.evaluations,
            self.unique_evaluations,
            self.space_size
        )
    }
}

/// CSV header matching [`measurement_csv_row`].
pub const MEASUREMENT_CSV_HEADER: &str =
    "tc,bc,uif,pl_kb,sc,fast_math,feasible,time_ms,occupancy,regs,reg_instructions";

/// One measurement as a CSV row (see [`MEASUREMENT_CSV_HEADER`]).
pub fn measurement_csv_row(m: &Measurement) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{},{}",
        m.params.tc,
        m.params.bc,
        m.params.uif,
        m.params.pl.kb(),
        m.params.sc,
        m.params.cflags.fast_math,
        m.feasible,
        if m.time_ms.is_finite() { m.time_ms.to_string() } else { "inf".to_string() },
        m.occupancy,
        m.regs_allocated,
        m.reg_instructions
    )
}

/// Renders a full measurement table as CSV.
///
/// Accepts any slice of owned, borrowed, or [`Arc`](std::sync::Arc)ed
/// measurements (the evaluation engine hands out shared handles).
pub fn measurements_csv<M: std::borrow::Borrow<Measurement>>(measurements: &[M]) -> String {
    let mut out = String::with_capacity(measurements.len() * 64);
    out.push_str(MEASUREMENT_CSV_HEADER);
    out.push('\n');
    for m in measurements {
        let _ = writeln!(out, "{}", measurement_csv_row(m.borrow()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_codegen::TuningParams;

    fn sample() -> Measurement {
        Measurement {
            params: TuningParams::with_geometry(128, 48),
            time_ms: 1.25,
            per_size_ms: vec![(64, 1.25)],
            feasible: true,
            occupancy: 0.9375,
            regs_allocated: 24,
            reg_instructions: 12_345.0,
        }
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let header_fields = MEASUREMENT_CSV_HEADER.split(',').count();
        let row_fields = measurement_csv_row(&sample()).split(',').count();
        assert_eq!(header_fields, row_fields);
    }

    #[test]
    fn infeasible_time_serializes_as_inf() {
        let mut m = sample();
        m.time_ms = f64::INFINITY;
        m.feasible = false;
        let row = measurement_csv_row(&m);
        assert!(row.contains(",inf,"));
    }

    #[test]
    fn csv_document_shape() {
        let doc = measurements_csv(&[sample(), sample()]);
        assert_eq!(doc.lines().count(), 3);
        assert!(doc.starts_with("tc,bc"));
    }

    #[test]
    fn summary_contains_key_fields() {
        let run = TuningRun {
            strategy: "exhaustive".into(),
            kernel: "atax".into(),
            gpu: "K20".into(),
            result: SearchResult {
                best: TuningParams::with_geometry(128, 48),
                best_time: 0.5,
                evaluations: 640,
                trace: vec![],
            },
            unique_evaluations: 640,
            space_size: 640,
        };
        let s = run.summary();
        assert!(s.contains("exhaustive") && s.contains("atax") && s.contains("640"));
    }
}
