//! The cartesian search space (Table III / Fig. 3).

use oriole_codegen::{CompilerFlags, PreferredL1, TuningParams};

/// A cartesian tuning space over the six Orio parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    /// `TC` axis — threads per block.
    pub tc: Vec<u32>,
    /// `BC` axis — block count.
    pub bc: Vec<u32>,
    /// `UIF` axis — unroll factors.
    pub uif: Vec<u32>,
    /// `PL` axis — preferred L1 sizes.
    pub pl: Vec<PreferredL1>,
    /// `SC` axis — stream counts.
    pub sc: Vec<u32>,
    /// `CFLAGS` axis — compiler-flag bundles.
    pub cflags: Vec<CompilerFlags>,
}

impl SearchSpace {
    /// The paper's evaluation space: `TC ∈ {32..1024, step 32}`,
    /// `BC ∈ {24..192, step 24}`, `UIF ∈ {1..5}`, `PL ∈ {16, 48}`,
    /// `CFLAGS ∈ {'', -use_fast_math}`, `SC` fixed at 1 — 5,120 variants,
    /// matching §IV-A's "on average, the combination of parameter
    /// settings generated 5,120 code variants".
    pub fn paper_default() -> SearchSpace {
        SearchSpace {
            tc: (1..=32).map(|i| i * 32).collect(),
            bc: (1..=8).map(|i| i * 24).collect(),
            uif: (1..=5).collect(),
            pl: vec![PreferredL1::Kb16, PreferredL1::Kb48],
            sc: vec![1],
            cflags: vec![
                CompilerFlags { fast_math: false },
                CompilerFlags { fast_math: true },
            ],
        }
    }

    /// The full Fig. 3 space including the `SC` axis (`range(1,6)`).
    pub fn fig3() -> SearchSpace {
        SearchSpace { sc: (1..=5).collect(), ..SearchSpace::paper_default() }
    }

    /// A small space for tests and examples (TC × BC only, 16 points).
    pub fn tiny() -> SearchSpace {
        SearchSpace {
            tc: vec![64, 128, 256, 512],
            bc: vec![24, 48, 96, 192],
            uif: vec![1],
            pl: vec![PreferredL1::Kb16],
            sc: vec![1],
            cflags: vec![CompilerFlags { fast_math: false }],
        }
    }

    /// Number of points in the space.
    pub fn len(&self) -> usize {
        self.tc.len() * self.bc.len() * self.uif.len() * self.pl.len() * self.sc.len()
            * self.cflags.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Axis lengths in index order (tc, bc, uif, pl, sc, cflags).
    pub fn dims(&self) -> [usize; 6] {
        [
            self.tc.len(),
            self.bc.len(),
            self.uif.len(),
            self.pl.len(),
            self.sc.len(),
            self.cflags.len(),
        ]
    }

    /// The point at a flat index (row-major over [`SearchSpace::dims`]).
    ///
    /// # Panics
    /// If `index >= len()`.
    pub fn point(&self, index: usize) -> TuningParams {
        assert!(index < self.len(), "index {index} out of space of {}", self.len());
        let dims = self.dims();
        let mut rest = index;
        let mut coords = [0usize; 6];
        for axis in (0..6).rev() {
            coords[axis] = rest % dims[axis];
            rest /= dims[axis];
        }
        self.at(coords)
    }

    /// The point at per-axis coordinates.
    pub fn at(&self, coords: [usize; 6]) -> TuningParams {
        TuningParams {
            tc: self.tc[coords[0]],
            bc: self.bc[coords[1]],
            uif: self.uif[coords[2]],
            pl: self.pl[coords[3]],
            sc: self.sc[coords[4]],
            cflags: self.cflags[coords[5]],
        }
    }

    /// Coordinates of a point, if it lies on the grid.
    pub fn coords_of(&self, p: &TuningParams) -> Option<[usize; 6]> {
        Some([
            self.tc.iter().position(|&v| v == p.tc)?,
            self.bc.iter().position(|&v| v == p.bc)?,
            self.uif.iter().position(|&v| v == p.uif)?,
            self.pl.iter().position(|&v| v == p.pl)?,
            self.sc.iter().position(|&v| v == p.sc)?,
            self.cflags.iter().position(|&v| v == p.cflags)?,
        ])
    }

    /// Iterates every point in flat-index order.
    pub fn iter(&self) -> impl Iterator<Item = TuningParams> + '_ {
        (0..self.len()).map(move |i| self.point(i))
    }

    /// A copy with the `TC` axis restricted to `allowed` (intersection,
    /// preserving order) — the static-search pruning operation. Returns
    /// `None` if the intersection is empty.
    pub fn restrict_tc(&self, allowed: &[u32]) -> Option<SearchSpace> {
        let tc: Vec<u32> = self.tc.iter().copied().filter(|t| allowed.contains(t)).collect();
        if tc.is_empty() {
            return None;
        }
        Some(SearchSpace { tc, ..self.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_5120_variants() {
        let s = SearchSpace::paper_default();
        assert_eq!(s.len(), 5120);
        assert_eq!(s.dims(), [32, 8, 5, 2, 1, 2]);
    }

    #[test]
    fn fig3_space_includes_streams() {
        assert_eq!(SearchSpace::fig3().len(), 25_600);
    }

    #[test]
    fn iteration_covers_whole_space_without_duplicates() {
        let s = SearchSpace::tiny();
        let points: Vec<_> = s.iter().collect();
        assert_eq!(points.len(), s.len());
        let mut dedup = points.clone();
        dedup.sort_by_key(|p| (p.tc, p.bc, p.uif, p.sc));
        dedup.dedup();
        assert_eq!(dedup.len(), points.len());
    }

    #[test]
    fn point_and_coords_round_trip() {
        let s = SearchSpace::paper_default();
        for idx in [0usize, 1, 31, 32, 5119, 2500] {
            let p = s.point(idx);
            let coords = s.coords_of(&p).expect("on grid");
            assert_eq!(s.at(coords), p, "idx {idx}");
        }
    }

    #[test]
    #[should_panic(expected = "out of space")]
    fn out_of_range_index_panics() {
        SearchSpace::tiny().point(999);
    }

    #[test]
    fn restrict_tc_prunes() {
        let s = SearchSpace::paper_default();
        let pruned = s.restrict_tc(&[128, 256, 512, 1024]).unwrap();
        assert_eq!(pruned.tc, vec![128, 256, 512, 1024]);
        assert_eq!(pruned.len(), 5120 / 8);
        assert!(s.restrict_tc(&[7]).is_none());
    }

    #[test]
    fn off_grid_point_has_no_coords() {
        let s = SearchSpace::tiny();
        let mut p = s.point(0);
        p.tc = 999;
        assert_eq!(s.coords_of(&p), None);
    }
}
