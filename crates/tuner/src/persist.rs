//! Persistent artifact wire format — the disk tier under the
//! [`ArtifactStore`](crate::ArtifactStore).
//!
//! The paper's §IV-B exhaustive sweeps are the expensive ground truth
//! every figure and table is validated against, and until now they died
//! with the process that computed them. This module spills **measurement
//! tiers** — the `(kernel, gpu, sizes, protocol)`-scoped memo of
//! [`Measurement`]s — to disk in a small hand-rolled format, so a sweep
//! written by one process re-runs warm (pure cache hits, bit-identical
//! results) in the next.
//!
//! # Wire format
//!
//! No serde is vendored, so the format is deliberately simple and fully
//! specified here:
//!
//! * **Canonical field text.** Every persisted type ([`GpuSpec`],
//!   [`EvalProtocol`] including its [`ModelId`], [`TuningParams`],
//!   [`Measurement`], [`SimReport`]) has exactly one serialization:
//!   `key:value` fields in a fixed order. Floats are written as the hex
//!   of their IEEE-754 bits ([`emit_f64`]), so a load/store round trip
//!   is **bit-identical** — never a decimal approximation.
//! * **Sealed lines.** Every header and record line carries its own
//!   FNV-1a 64 checksum (`body|crc16hex`, [`seal`]/[`unseal`]). A
//!   flipped byte, a truncated tail from a killed writer, or an edited
//!   file fails the checksum and the line is *rejected* — treated as a
//!   cache miss and recomputed, never served.
//! * **Versioned magic.** The first line is `oriole-meas v1` exactly. A
//!   file written by a different format version is detected
//!   ([`FileStatus::VersionSkew`]) and treated as a whole-file miss.
//! * **Content-addressed names.** A tier file is named
//!   `meas-<fnv64(scope)>.orl` ([`tier_file_name`]) where the scope is
//!   the canonical text of `(kernel, gpu, sizes, protocol)`
//!   ([`scope_text`]). The full scope is also embedded in the header and
//!   verified on load, so even a filename-hash collision can never serve
//!   another experiment's measurements.
//!
//! # File layout
//!
//! ```text
//! oriole-meas v1
//! h kernel=atax|<crc>
//! h gpu=name:K20;family:kepler;...|<crc>
//! h sizes=64,128|<crc>
//! h protocol=trials:10;...|<crc>
//! h end|<crc>
//! r params:tc:128,...;time:<f64 bits>;...|<crc>
//! r ...
//! ```
//!
//! Records are **append-only**: the evaluator spills each newly computed
//! measurement as one self-checksummed line, so a sweep killed mid-run
//! keeps everything it measured. Re-appended duplicates (e.g. after a
//! rejected record is recomputed) are harmless — the loader keeps the
//! last valid record per tuning point, and all records for one point are
//! bit-identical anyway because evaluation is deterministic.
//!
//! [`scan_store`] and [`gc_store`] back the CLI's
//! `oriole store {stats,verify,gc}` subcommands: listing tier files,
//! verifying their checksums, and deleting unusable files / compacting
//! ones with rejected records.

use crate::eval::{EvalProtocol, Measurement, Objective};
use oriole_arch::{ComputeCapability, Family, GpuSpec, Limiter, Occupancy};
use oriole_codegen::{CompilerFlags, PreferredL1, TuningParams};
use oriole_sim::{BoundKind, ModelId, SimReport, TrialProtocol, WarpProfile};
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// First line of every tier file; anything else is version skew or
/// corruption.
const MAGIC: &str = "oriole-meas v1";

/// Extension of tier files inside a store directory.
const EXT: &str = "orl";

// ---------------------------------------------------------------------------
// Checksums and sealed lines
// ---------------------------------------------------------------------------

/// FNV-1a 64 over `bytes` — the checksum sealing every line and the hash
/// deriving tier file names. Not cryptographic; it defends against
/// corruption and truncation, and the embedded scope defends against
/// collisions.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seals a line body with its checksum: `body|<16-hex fnv64>`.
pub fn seal(body: &str) -> String {
    format!("{body}|{:016x}", checksum(body.as_bytes()))
}

/// Verifies and strips a sealed line, returning the body; `None` when
/// the checksum is absent or does not match.
pub fn unseal(line: &str) -> Option<&str> {
    let (body, crc) = line.rsplit_once('|')?;
    let stored = u64::from_str_radix(crc, 16).ok()?;
    (stored == checksum(body.as_bytes())).then_some(body)
}

// ---------------------------------------------------------------------------
// Primitive codecs
// ---------------------------------------------------------------------------

/// A malformed wire value (the message names the offending field).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(String);

impl WireError {
    /// A malformed-value error naming the offending field — public so
    /// layers composing this vocabulary into larger messages (the RPC
    /// protocol of `oriole_service`) report errors in one shape.
    pub fn new(msg: impl Into<String>) -> WireError {
        WireError(msg.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire format error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Serializes an `f64` as the hex of its IEEE-754 bits — the only float
/// encoding that survives a round trip bit-identically (infinities
/// included).
pub fn emit_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Parses [`emit_f64`] output back to the identical `f64`.
pub fn parse_f64(s: &str) -> Result<f64, WireError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| WireError::new(format!("bad f64 bits `{s}`")))
}

/// Parsed `key:value` field list with order-independent lookup.
struct Fields<'a>(Vec<(&'a str, &'a str)>);

impl<'a> Fields<'a> {
    /// Splits `text` on `sep` into `key:value` fields (the value may
    /// itself contain `:`; only the first one binds).
    fn parse(text: &'a str, sep: char) -> Result<Fields<'a>, WireError> {
        let mut out = Vec::new();
        for item in text.split(sep).filter(|s| !s.is_empty()) {
            let (k, v) = item
                .split_once(':')
                .ok_or_else(|| WireError::new(format!("field `{item}` is not key:value")))?;
            out.push((k, v));
        }
        Ok(Fields(out))
    }

    fn get(&self, key: &str) -> Result<&'a str, WireError> {
        self.0
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| WireError::new(format!("missing field `{key}`")))
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> Result<T, WireError> {
        self.get(key)?
            .parse()
            .map_err(|_| WireError::new(format!("bad numeric field `{key}`")))
    }

    fn f64(&self, key: &str) -> Result<f64, WireError> {
        parse_f64(self.get(key)?)
    }
}

fn family_name(f: Family) -> &'static str {
    match f {
        Family::Fermi => "fermi",
        Family::Kepler => "kepler",
        Family::Maxwell => "maxwell",
        Family::Pascal => "pascal",
    }
}

fn parse_family(s: &str) -> Result<Family, WireError> {
    Family::ALL
        .into_iter()
        .find(|&f| family_name(f) == s)
        .ok_or_else(|| WireError::new(format!("unknown family `{s}`")))
}

fn bool_bit(b: bool) -> u8 {
    u8::from(b)
}

fn parse_bool(s: &str) -> Result<bool, WireError> {
    match s {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(WireError::new(format!("bad bool `{other}`"))),
    }
}

// ---------------------------------------------------------------------------
// GpuSpec
// ---------------------------------------------------------------------------

/// Canonical serialization of a [`GpuSpec`]: every field, fixed order,
/// so two specs serialize equal iff they are structurally equal — the
/// same contract the in-memory store keys rely on.
pub fn emit_gpu_spec(g: &GpuSpec) -> String {
    format!(
        "name:{};family:{};cc:{}.{};gmem:{};mp:{};cores:{};clk:{};mclk:{};l2:{};cmem:{};\
         smb:{};smmp:{};rf:{};ws:{};tmp:{};tpb:{};bmp:{};tpw:{};wmp:{};rau:{};rtmax:{}",
        g.name,
        family_name(g.family),
        g.compute_capability.major,
        g.compute_capability.minor,
        g.global_mem_mib,
        g.multiprocessors,
        g.cores_per_mp,
        g.gpu_clock_mhz,
        g.mem_clock_mhz,
        g.l2_cache_bytes,
        g.const_mem_bytes,
        g.shmem_per_block,
        g.shmem_per_mp,
        g.regfile_per_mp,
        g.warp_size,
        g.threads_per_mp,
        g.threads_per_block,
        g.blocks_per_mp,
        g.threads_per_warp,
        g.warps_per_mp,
        g.reg_alloc_unit,
        g.regs_per_thread_max,
    )
}

/// `GpuSpec.name` is `&'static str`; known Table I names intern back to
/// their static spellings, anything else (synthetic devices) is leaked
/// **once per distinct name** via a process-wide intern table — repeated
/// parses (store scans in a long-lived process) never grow memory.
fn intern_gpu_name(name: &str) -> &'static str {
    for gpu in oriole_arch::ALL_GPUS {
        if gpu.spec().name == name {
            return gpu.spec().name;
        }
    }
    static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut table = INTERNED.lock().expect("intern table lock");
    if let Some(known) = table.iter().find(|n| **n == name) {
        return known;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    table.push(leaked);
    leaked
}

/// Parses [`emit_gpu_spec`] output back into a structurally identical
/// [`GpuSpec`].
pub fn parse_gpu_spec(text: &str) -> Result<GpuSpec, WireError> {
    let f = Fields::parse(text, ';')?;
    let cc = f.get("cc")?;
    let (major, minor) = cc
        .split_once('.')
        .ok_or_else(|| WireError::new(format!("bad compute capability `{cc}`")))?;
    Ok(GpuSpec {
        name: intern_gpu_name(f.get("name")?),
        family: parse_family(f.get("family")?)?,
        compute_capability: ComputeCapability::new(
            major.parse().map_err(|_| WireError::new("bad cc major"))?,
            minor.parse().map_err(|_| WireError::new("bad cc minor"))?,
        ),
        global_mem_mib: f.num("gmem")?,
        multiprocessors: f.num("mp")?,
        cores_per_mp: f.num("cores")?,
        gpu_clock_mhz: f.num("clk")?,
        mem_clock_mhz: f.num("mclk")?,
        l2_cache_bytes: f.num("l2")?,
        const_mem_bytes: f.num("cmem")?,
        shmem_per_block: f.num("smb")?,
        shmem_per_mp: f.num("smmp")?,
        regfile_per_mp: f.num("rf")?,
        warp_size: f.num("ws")?,
        threads_per_mp: f.num("tmp")?,
        threads_per_block: f.num("tpb")?,
        blocks_per_mp: f.num("bmp")?,
        threads_per_warp: f.num("tpw")?,
        warps_per_mp: f.num("wmp")?,
        reg_alloc_unit: f.num("rau")?,
        regs_per_thread_max: f.num("rtmax")?,
    })
}

// ---------------------------------------------------------------------------
// EvalProtocol
// ---------------------------------------------------------------------------

fn trial_protocol_name(p: TrialProtocol) -> &'static str {
    match p {
        TrialProtocol::FifthOfTen => "fifth-of-ten",
        TrialProtocol::Median => "median",
        TrialProtocol::Min => "min",
    }
}

fn parse_trial_protocol(s: &str) -> Result<TrialProtocol, WireError> {
    match s {
        "fifth-of-ten" => Ok(TrialProtocol::FifthOfTen),
        "median" => Ok(TrialProtocol::Median),
        "min" => Ok(TrialProtocol::Min),
        other => Err(WireError::new(format!("unknown trial protocol `{other}`"))),
    }
}

fn objective_name(o: Objective) -> &'static str {
    match o {
        Objective::TotalTime => "total-time",
        Objective::LargestSize => "largest-size",
    }
}

fn parse_objective(s: &str) -> Result<Objective, WireError> {
    match s {
        "total-time" => Ok(Objective::TotalTime),
        "largest-size" => Ok(Objective::LargestSize),
        other => Err(WireError::new(format!("unknown objective `{other}`"))),
    }
}

/// Canonical serialization of an [`EvalProtocol`] — including the
/// [`ModelId`], so tiers taken under different timing backends can never
/// share a disk artifact.
pub fn emit_protocol(p: &EvalProtocol) -> String {
    format!(
        "trials:{};select:{};seed:{:016x};objective:{};model:{}",
        p.trials,
        trial_protocol_name(p.protocol),
        p.base_seed,
        objective_name(p.objective),
        p.model.name(),
    )
}

/// Parses [`emit_protocol`] output.
pub fn parse_protocol(text: &str) -> Result<EvalProtocol, WireError> {
    let f = Fields::parse(text, ';')?;
    Ok(EvalProtocol {
        trials: f.num("trials")?,
        protocol: parse_trial_protocol(f.get("select")?)?,
        base_seed: u64::from_str_radix(f.get("seed")?, 16)
            .map_err(|_| WireError::new("bad seed"))?,
        objective: parse_objective(f.get("objective")?)?,
        model: ModelId::parse(f.get("model")?)
            .ok_or_else(|| WireError::new("unknown model id"))?,
    })
}

// ---------------------------------------------------------------------------
// TuningParams
// ---------------------------------------------------------------------------

/// Canonical serialization of a tuning point (comma-separated so it can
/// nest inside semicolon-separated records).
pub fn emit_params(p: &TuningParams) -> String {
    format!(
        "tc:{},bc:{},uif:{},pl:{},sc:{},fm:{}",
        p.tc,
        p.bc,
        p.uif,
        p.pl.kb(),
        p.sc,
        bool_bit(p.cflags.fast_math),
    )
}

/// Parses [`emit_params`] output.
pub fn parse_params(text: &str) -> Result<TuningParams, WireError> {
    let f = Fields::parse(text, ',')?;
    let pl_kb: u32 = f.num("pl")?;
    Ok(TuningParams {
        tc: f.num("tc")?,
        bc: f.num("bc")?,
        uif: f.num("uif")?,
        pl: PreferredL1::from_kb(pl_kb)
            .ok_or_else(|| WireError::new(format!("bad PL {pl_kb}")))?,
        sc: f.num("sc")?,
        cflags: CompilerFlags { fast_math: parse_bool(f.get("fm")?)? },
    })
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Canonical serialization of one [`Measurement`] — the record body of a
/// tier file. All floats are bit-exact ([`emit_f64`]); an infeasible
/// measurement round-trips with its infinite objective and empty
/// per-size list.
pub fn emit_measurement(m: &Measurement) -> String {
    let sizes: Vec<String> = m
        .per_size_ms
        .iter()
        .map(|(n, t)| format!("{n}@{}", emit_f64(*t)))
        .collect();
    format!(
        "params:{};time:{};feasible:{};occ:{};regs:{};reginstr:{};sizes:{}",
        emit_params(&m.params),
        emit_f64(m.time_ms),
        bool_bit(m.feasible),
        emit_f64(m.occupancy),
        m.regs_allocated,
        emit_f64(m.reg_instructions),
        sizes.join(","),
    )
}

/// Parses [`emit_measurement`] output back into the bit-identical
/// [`Measurement`].
pub fn parse_measurement(text: &str) -> Result<Measurement, WireError> {
    let f = Fields::parse(text, ';')?;
    let mut per_size_ms = Vec::new();
    let sizes = f.get("sizes")?;
    for item in sizes.split(',').filter(|s| !s.is_empty()) {
        let (n, bits) = item
            .split_once('@')
            .ok_or_else(|| WireError::new(format!("bad per-size entry `{item}`")))?;
        per_size_ms.push((
            n.parse().map_err(|_| WireError::new("bad per-size n"))?,
            parse_f64(bits)?,
        ));
    }
    Ok(Measurement {
        params: parse_params(f.get("params")?)?,
        time_ms: f.f64("time")?,
        per_size_ms,
        feasible: parse_bool(f.get("feasible")?)?,
        occupancy: f.f64("occ")?,
        regs_allocated: f.num("regs")?,
        reg_instructions: f.f64("reginstr")?,
    })
}

// ---------------------------------------------------------------------------
// SimReport
// ---------------------------------------------------------------------------

fn bound_name(b: BoundKind) -> &'static str {
    match b {
        BoundKind::Issue => "issue",
        BoundKind::Latency => "latency",
        BoundKind::Bandwidth => "bandwidth",
    }
}

fn parse_bound(s: &str) -> Result<BoundKind, WireError> {
    match s {
        "issue" => Ok(BoundKind::Issue),
        "latency" => Ok(BoundKind::Latency),
        "bandwidth" => Ok(BoundKind::Bandwidth),
        other => Err(WireError::new(format!("unknown bound `{other}`"))),
    }
}

fn limiter_name(l: Limiter) -> &'static str {
    match l {
        Limiter::Warps => "warps",
        Limiter::Registers => "registers",
        Limiter::SharedMem => "sharedmem",
        Limiter::Illegal => "illegal",
    }
}

fn parse_limiter(s: &str) -> Result<Limiter, WireError> {
    match s {
        "warps" => Ok(Limiter::Warps),
        "registers" => Ok(Limiter::Registers),
        "sharedmem" => Ok(Limiter::SharedMem),
        "illegal" => Ok(Limiter::Illegal),
        other => Err(WireError::new(format!("unknown limiter `{other}`"))),
    }
}

/// Canonical serialization of a [`SimReport`] (occupancy details and
/// warp profile included) — the serialization contract a future
/// report-cache disk tier builds on, round-trip-tested today.
pub fn emit_sim_report(r: &SimReport) -> String {
    format!(
        "time:{};bound:{};ab:{};aw:{};occf:{};lim:{};bwarps:{};bregs:{};bsmem:{};wlregs:{};\
         busyb:{};busysm:{};reswarps:{};waves:{};cycles:{};\
         p_issue:{};p_mem:{};p_lat:{};p_dram:{};p_bar:{};p_div:{}",
        emit_f64(r.time_ms),
        bound_name(r.bound),
        r.occupancy.active_blocks,
        r.occupancy.active_warps,
        emit_f64(r.occupancy.occupancy),
        limiter_name(r.occupancy.limiter),
        r.occupancy.blocks_by_warps,
        r.occupancy.blocks_by_regs,
        r.occupancy.blocks_by_smem,
        r.occupancy.warp_limit_by_regs,
        r.busy_blocks,
        r.busy_sms,
        r.resident_warps,
        r.waves,
        emit_f64(r.cycles),
        emit_f64(r.profile.issue_cycles),
        emit_f64(r.profile.mem_ops),
        emit_f64(r.profile.latency_weighted),
        emit_f64(r.profile.dram_transactions),
        emit_f64(r.profile.barriers),
        emit_f64(r.profile.divergent_branches),
    )
}

/// Parses [`emit_sim_report`] output back into the bit-identical
/// [`SimReport`].
pub fn parse_sim_report(text: &str) -> Result<SimReport, WireError> {
    let f = Fields::parse(text, ';')?;
    Ok(SimReport {
        time_ms: f.f64("time")?,
        bound: parse_bound(f.get("bound")?)?,
        occupancy: Occupancy {
            active_blocks: f.num("ab")?,
            active_warps: f.num("aw")?,
            occupancy: f.f64("occf")?,
            limiter: parse_limiter(f.get("lim")?)?,
            blocks_by_warps: f.num("bwarps")?,
            blocks_by_regs: f.num("bregs")?,
            blocks_by_smem: f.num("bsmem")?,
            warp_limit_by_regs: f.num("wlregs")?,
        },
        busy_blocks: f.num("busyb")?,
        busy_sms: f.num("busysm")?,
        resident_warps: f.num("reswarps")?,
        waves: f.num("waves")?,
        cycles: f.f64("cycles")?,
        profile: WarpProfile {
            issue_cycles: f.f64("p_issue")?,
            mem_ops: f.f64("p_mem")?,
            latency_weighted: f.f64("p_lat")?,
            dram_transactions: f.f64("p_dram")?,
            barriers: f.f64("p_bar")?,
            divergent_branches: f.f64("p_div")?,
        },
    })
}

// ---------------------------------------------------------------------------
// Scopes and tier files
// ---------------------------------------------------------------------------

/// The canonical text of a measurement-tier scope — the
/// `(kernel, gpu, sizes, protocol)` key as four `key=value` lines. Two
/// scopes share a disk artifact iff their scope texts are byte-equal.
pub fn scope_text(kernel: &str, gpu: &GpuSpec, sizes: &[u64], protocol: &EvalProtocol) -> String {
    let sizes: Vec<String> = sizes.iter().map(u64::to_string).collect();
    format!(
        "kernel={kernel}\ngpu={}\nsizes={}\nprotocol={}",
        emit_gpu_spec(gpu),
        sizes.join(","),
        emit_protocol(protocol),
    )
}

/// Content-addressed file name of a tier: `meas-<fnv64(scope)>.orl`. The
/// scope is also embedded (and verified) in the file header, so the name
/// is a fast index, never the trust anchor.
pub fn tier_file_name(scope: &str) -> String {
    format!("meas-{:016x}.{EXT}", checksum(scope.as_bytes()))
}

fn header_text(scope: &str) -> String {
    let mut out = String::from(MAGIC);
    out.push('\n');
    for line in scope.lines() {
        out.push_str(&seal(&format!("h {line}")));
        out.push('\n');
    }
    out.push_str(&seal("h end"));
    out.push('\n');
    out
}

fn record_line(m: &Measurement) -> String {
    let mut line = seal(&format!("r {}", emit_measurement(m)));
    line.push('\n');
    line
}

/// Outcome of reading one tier file.
enum TierRead {
    /// No file at the path.
    Absent,
    /// The file announces a different format version.
    VersionSkew,
    /// The header is damaged beyond use.
    Corrupt,
    /// Header verified; `rejected` counts record lines that failed
    /// their checksum or parse and were dropped (their points will be
    /// recomputed, never trusted).
    Usable { scope: String, measurements: Vec<Measurement>, rejected: u64 },
}

fn read_tier(path: &Path) -> TierRead {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return TierRead::Absent,
        Err(_) => return TierRead::Corrupt,
    };
    let mut lines = content.lines();
    match lines.next() {
        Some(MAGIC) => {}
        Some(first) if first.starts_with("oriole-meas ") => return TierRead::VersionSkew,
        _ => return TierRead::Corrupt,
    }
    // Header: sealed `h <scope line>` lines closed by `h end`.
    let mut scope_lines: Vec<&str> = Vec::new();
    let mut closed = false;
    for line in lines.by_ref() {
        let Some(body) = unseal(line) else { return TierRead::Corrupt };
        let Some(rest) = body.strip_prefix("h ") else { return TierRead::Corrupt };
        if rest == "end" {
            closed = true;
            break;
        }
        scope_lines.push(rest);
    }
    if !closed {
        return TierRead::Corrupt;
    }
    // Records: independently sealed; bad lines are rejected, good ones
    // kept (last record per point wins — duplicates are bit-identical
    // by determinism, so order only matters for rejected-then-reappended
    // points).
    let mut measurements: HashMap<TuningParams, Measurement> = HashMap::new();
    let mut rejected = 0u64;
    for line in lines {
        let parsed = unseal(line)
            .and_then(|body| body.strip_prefix("r "))
            .and_then(|body| parse_measurement(body).ok());
        match parsed {
            Some(m) => {
                measurements.insert(m.params, m);
            }
            None => rejected += 1,
        }
    }
    TierRead::Usable {
        scope: scope_lines.join("\n"),
        measurements: measurements.into_values().collect(),
        rejected,
    }
}

// ---------------------------------------------------------------------------
// Disk-tier runtime: counters, open, spill
// ---------------------------------------------------------------------------

/// Disk-tier telemetry of one store (the `StoreStats.disk` numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Tier lookups served by a usable on-disk artifact.
    pub tier_hits: u64,
    /// Tier lookups with no usable artifact (absent, corrupt,
    /// version-skewed or scope-mismatched file).
    pub tier_misses: u64,
    /// Measurements loaded from disk into memory tiers.
    pub measurements_loaded: u64,
    /// Measurements spilled (appended) to disk.
    pub measurements_written: u64,
    /// Corruption events detected and treated as misses: unusable files
    /// plus individual rejected records.
    pub rejected: u64,
}

/// Shared atomic counters behind [`DiskStats`].
#[derive(Default)]
pub(crate) struct DiskCounters {
    tier_hits: AtomicU64,
    tier_misses: AtomicU64,
    loaded: AtomicU64,
    written: AtomicU64,
    rejected: AtomicU64,
}

impl DiskCounters {
    pub(crate) fn snapshot(&self) -> DiskStats {
        DiskStats {
            tier_hits: self.tier_hits.load(Ordering::Relaxed),
            tier_misses: self.tier_misses.load(Ordering::Relaxed),
            measurements_loaded: self.loaded.load(Ordering::Relaxed),
            measurements_written: self.written.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// Append-only writer spilling newly computed measurements of one tier.
///
/// Each record is one sealed line written with a single `write_all`
/// under a mutex, so concurrent evaluation workers interleave whole
/// records — a killed process leaves at most one truncated line, which
/// the loader rejects and recomputes.
pub(crate) struct TierSpill {
    file: Mutex<File>,
    counters: Arc<DiskCounters>,
    written: AtomicU64,
}

impl TierSpill {
    /// Appends one measurement record (best-effort: an I/O error
    /// degrades the tier to memory-only for that record, it never
    /// corrupts results).
    pub(crate) fn append(&self, m: &Measurement) {
        let line = record_line(m);
        let mut file = self.file.lock().expect("spill lock");
        if file.write_all(line.as_bytes()).is_ok() {
            self.written.fetch_add(1, Ordering::Relaxed);
            self.counters.written.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records appended through this spill.
    pub(crate) fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }
}

/// A tier opened against the disk: whatever loaded, plus the spill
/// writer for new computations (absent when the directory is not
/// writable or the file belongs to a different scope).
pub(crate) struct OpenedTier {
    pub(crate) measurements: Vec<Measurement>,
    pub(crate) spill: Option<TierSpill>,
}

/// Opens (or creates) the tier file for `scope` under `dir`, loading
/// every valid record and preparing the append-mode spill. Corrupt or
/// version-skewed files are detected, counted, and **rewritten fresh**
/// — their contents are never trusted; a scope-mismatched file (a
/// filename-hash collision) is left untouched and the tier runs
/// memory-only.
pub(crate) fn open_tier(dir: &Path, scope: &str, counters: &Arc<DiskCounters>) -> OpenedTier {
    let path = dir.join(tier_file_name(scope));
    let (measurements, rewrite) = match read_tier(&path) {
        TierRead::Absent => {
            counters.tier_misses.fetch_add(1, Ordering::Relaxed);
            (Vec::new(), true)
        }
        TierRead::VersionSkew | TierRead::Corrupt => {
            counters.tier_misses.fetch_add(1, Ordering::Relaxed);
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            (Vec::new(), true)
        }
        TierRead::Usable { scope: found, measurements, rejected } => {
            if found == scope {
                counters.tier_hits.fetch_add(1, Ordering::Relaxed);
                counters.loaded.fetch_add(measurements.len() as u64, Ordering::Relaxed);
                counters.rejected.fetch_add(rejected, Ordering::Relaxed);
                (measurements, false)
            } else {
                // Filename collision with another experiment's scope:
                // never serve it, and never overwrite it either.
                counters.tier_misses.fetch_add(1, Ordering::Relaxed);
                return OpenedTier { measurements: Vec::new(), spill: None };
            }
        }
    };
    let file = if rewrite {
        File::create(&path).and_then(|mut f| {
            f.write_all(header_text(scope).as_bytes())?;
            Ok(f)
        })
    } else {
        OpenOptions::new().append(true).open(&path)
    };
    let spill = file.ok().map(|file| TierSpill {
        file: Mutex::new(file),
        counters: Arc::clone(counters),
        written: AtomicU64::new(0),
    });
    OpenedTier { measurements, spill }
}

// ---------------------------------------------------------------------------
// Length-framed transport
// ---------------------------------------------------------------------------

/// Magic bytes opening every wire frame (`ORLF` — "oriole frame").
pub const FRAME_MAGIC: [u8; 4] = *b"ORLF";

/// Fixed size of the frame header preceding every payload:
/// `ORLF | len: u32 BE | crc: u64 BE | corr: u64 BE`.
pub const FRAME_HEADER_BYTES: usize = 24;

/// Upper bound on a single frame's payload. A full 5,120-point evaluate
/// batch with per-size records is well under 2 MiB; anything near this
/// bound is a corrupted length field, not a legitimate payload.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Why one [`read_frame`] call produced no payload.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly *between* frames (zero
    /// bytes where the next magic would start) — the normal end of a
    /// session, not an error condition.
    Eof,
    /// An I/O failure, including a connection dropped *mid*-frame.
    Io(std::io::Error),
    /// A read/write deadline expired (`set_read_timeout` /
    /// `set_write_timeout` on the stream): the peer is slow, stalled or
    /// idle — distinct from [`FrameError::Io`] so servers can reap idle
    /// connections and clients can retry instead of treating the
    /// deadline as a dead peer.
    TimedOut,
    /// The stream did not start with [`FRAME_MAGIC`] — not speaking
    /// this protocol, or desynchronized beyond recovery.
    BadMagic([u8; 4]),
    /// The announced length exceeds [`MAX_FRAME_BYTES`].
    TooLarge(u32),
    /// The payload failed its FNV-1a checksum: corrupted in flight.
    BadChecksum,
    /// The payload is not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TimedOut => write!(f, "frame I/O deadline expired"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte bound")
            }
            FrameError::BadChecksum => write!(f, "frame payload failed its checksum"),
            FrameError::BadUtf8 => write!(f, "frame payload is not UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a over the correlation id (big-endian bytes) followed by the
/// payload. Covering the id means a frame whose id is corrupted in
/// flight fails its checksum instead of being delivered to whichever
/// request happens to own the mangled id.
pub fn frame_checksum(corr: u64, payload: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in corr.to_be_bytes().iter().chain(payload.iter()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes one length-framed, checksummed, correlation-tagged frame:
/// `ORLF | len: u32 BE | fnv64(corr ++ payload): u64 BE | corr: u64 BE |
/// payload bytes`.
///
/// The correlation id lets one connection carry many requests in
/// flight: a peer echoes the id back so responses can arrive out of
/// order. Single-shot exchanges use [`write_frame`], which tags with 0.
///
/// The single buffered `write_all` keeps frames contiguous even when
/// several threads share one stream behind a mutex.
pub fn write_frame_tagged(
    w: &mut impl std::io::Write,
    corr: u64,
    payload: &str,
) -> std::io::Result<()> {
    let bytes = payload.as_bytes();
    let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES + bytes.len());
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    buf.extend_from_slice(&frame_checksum(corr, bytes).to_be_bytes());
    buf.extend_from_slice(&corr.to_be_bytes());
    buf.extend_from_slice(bytes);
    w.write_all(&buf)?;
    w.flush()
}

/// Writes one frame with correlation id 0 — the single-shot form used
/// everywhere a connection has at most one request in flight.
pub fn write_frame(w: &mut impl std::io::Write, payload: &str) -> std::io::Result<()> {
    write_frame_tagged(w, 0, payload)
}

/// Maps a raw I/O error to the frame-level verdict: an expired
/// read/write deadline (`WouldBlock` on Unix sockets, `TimedOut`
/// elsewhere) is [`FrameError::TimedOut`], everything else is
/// [`FrameError::Io`].
pub fn classify_frame_io(e: std::io::Error) -> FrameError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => FrameError::TimedOut,
        _ => FrameError::Io(e),
    }
}

fn read_exact_or(r: &mut impl std::io::Read, buf: &mut [u8]) -> Result<(), FrameError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection dropped mid-frame",
            ))
        } else {
            classify_frame_io(e)
        }
    })
}

/// Reads exactly one [`write_frame_tagged`] frame, verifying magic,
/// length bound and checksum, and returning `(correlation id, payload)`.
/// A clean close before the first magic byte is [`FrameError::Eof`];
/// everything else that isn't a verified payload is an error the caller
/// must treat as a poisoned stream (framing offers no
/// resynchronization).
pub fn read_frame_tagged(r: &mut impl std::io::Read) -> Result<(u64, String), FrameError> {
    let mut magic = [0u8; 4];
    // Distinguish "closed between frames" from "dropped mid-frame": read
    // the first byte separately.
    match r.read(&mut magic[..1]) {
        Ok(0) => return Err(FrameError::Eof),
        Ok(_) => {}
        Err(e) => return Err(classify_frame_io(e)),
    }
    read_exact_or(r, &mut magic[1..])?;
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let mut len = [0u8; 4];
    read_exact_or(r, &mut len)?;
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    let mut crc = [0u8; 8];
    read_exact_or(r, &mut crc)?;
    let crc = u64::from_be_bytes(crc);
    let mut corr = [0u8; 8];
    read_exact_or(r, &mut corr)?;
    let corr = u64::from_be_bytes(corr);
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload)?;
    if frame_checksum(corr, &payload) != crc {
        return Err(FrameError::BadChecksum);
    }
    let payload = String::from_utf8(payload).map_err(|_| FrameError::BadUtf8)?;
    Ok((corr, payload))
}

/// Reads one frame and discards its correlation id — the single-shot
/// counterpart of [`write_frame`].
pub fn read_frame(r: &mut impl std::io::Read) -> Result<String, FrameError> {
    read_frame_tagged(r).map(|(_, payload)| payload)
}

/// Attempts to decode one frame from the front of an accumulation
/// buffer without blocking: `Ok(Some((corr, payload, consumed)))` when a
/// complete verified frame is present (the caller drains `consumed`
/// bytes), `Ok(None)` when more bytes are needed, and `Err` on the same
/// unrecoverable conditions as [`read_frame_tagged`]. This is the
/// decode step for event-driven readers that accumulate nonblocking
/// reads instead of issuing blocking `read_exact` calls.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(u64, String, usize)>, FrameError> {
    // Reject bad magic on the first divergent byte rather than waiting
    // for four: a desynchronized peer is detected as early as possible.
    let have = buf.len().min(4);
    if buf[..have] != FRAME_MAGIC[..have] {
        let mut magic = [0u8; 4];
        magic[..have].copy_from_slice(&buf[..have]);
        return Err(FrameError::BadMagic(magic));
    }
    if buf.len() < 8 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    let total = FRAME_HEADER_BYTES + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let crc = u64::from_be_bytes(buf[8..16].try_into().expect("8-byte slice"));
    let corr = u64::from_be_bytes(buf[16..24].try_into().expect("8-byte slice"));
    let payload = &buf[FRAME_HEADER_BYTES..total];
    if frame_checksum(corr, payload) != crc {
        return Err(FrameError::BadChecksum);
    }
    let payload = std::str::from_utf8(payload).map_err(|_| FrameError::BadUtf8)?;
    Ok(Some((corr, payload.to_string(), total)))
}

// ---------------------------------------------------------------------------
// Store maintenance: scan, verify, gc
// ---------------------------------------------------------------------------

/// Verdict on one tier file in a store directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileStatus {
    /// Header and (surviving) records verified.
    Usable {
        /// Kernel key of the scope.
        kernel: String,
        /// Device name of the scope.
        gpu: String,
        /// Comma-separated input sizes of the scope.
        sizes: String,
        /// Timing-model backend of the scope's protocol.
        model: String,
        /// Valid measurement records.
        records: usize,
        /// Record lines rejected by checksum or parse.
        rejected: u64,
    },
    /// Written by a different format version; treated as a miss.
    VersionSkew,
    /// Header unusable; treated as a miss.
    Corrupt,
}

/// One tier file's scan result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileReport {
    /// File name inside the store directory.
    pub name: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Verification verdict.
    pub status: FileStatus,
}

fn scope_field(scope: &str, key: &str) -> Option<String> {
    scope
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key}=")))
        .map(str::to_string)
}

fn tier_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == EXT))
        .collect();
    files.sort();
    Ok(files)
}

/// Scans every tier file under `dir`, verifying checksums and headers —
/// the data behind `oriole store stats` and `oriole store verify`.
pub fn scan_store(dir: &Path) -> std::io::Result<Vec<FileReport>> {
    let mut out = Vec::new();
    for path in tier_files(dir)? {
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let status = match read_tier(&path) {
            TierRead::Absent => continue, // raced deletion
            TierRead::VersionSkew => FileStatus::VersionSkew,
            TierRead::Corrupt => FileStatus::Corrupt,
            TierRead::Usable { scope, measurements, rejected } => {
                let model = scope_field(&scope, "protocol")
                    .and_then(|p| parse_protocol(&p).ok())
                    .map(|p| p.model.name().to_string())
                    .unwrap_or_else(|| "?".into());
                let gpu = scope_field(&scope, "gpu")
                    .and_then(|g| parse_gpu_spec(&g).ok())
                    .map(|g| g.name.to_string())
                    .unwrap_or_else(|| "?".into());
                FileStatus::Usable {
                    kernel: scope_field(&scope, "kernel").unwrap_or_else(|| "?".into()),
                    gpu,
                    sizes: scope_field(&scope, "sizes").unwrap_or_else(|| "?".into()),
                    model,
                    records: measurements.len(),
                    rejected,
                }
            }
        };
        out.push(FileReport { name, bytes, status });
    }
    Ok(out)
}

/// Result of one [`gc_store`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Unusable (corrupt / version-skewed) files deleted.
    pub removed_files: usize,
    /// Files rewritten to drop rejected or duplicate records.
    pub compacted_files: usize,
    /// Rejected record lines dropped by compaction.
    pub dropped_records: u64,
    /// Bytes reclaimed across deletions and compactions.
    pub bytes_reclaimed: u64,
}

/// Garbage-collects a store directory: deletes unusable tier files and
/// compacts usable ones that carry rejected record lines (rewriting
/// header + surviving records). Never touches healthy files.
pub fn gc_store(dir: &Path) -> std::io::Result<GcReport> {
    gc_pass(dir, true)
}

/// Computes what [`gc_store`] *would* do — identical report, zero disk
/// writes (the CLI's `store gc --dry-run`).
pub fn plan_gc(dir: &Path) -> std::io::Result<GcReport> {
    gc_pass(dir, false)
}

fn gc_pass(dir: &Path, apply: bool) -> std::io::Result<GcReport> {
    let mut report = GcReport::default();
    for path in tier_files(dir)? {
        let before = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        match read_tier(&path) {
            TierRead::Absent => {}
            TierRead::VersionSkew | TierRead::Corrupt => {
                if apply {
                    std::fs::remove_file(&path)?;
                }
                report.removed_files += 1;
                report.bytes_reclaimed += before;
            }
            TierRead::Usable { scope, mut measurements, rejected } => {
                if rejected == 0 {
                    continue;
                }
                // Full parameter tuple in the sort key: compacted files
                // are byte-deterministic (HashMap iteration order never
                // shows through).
                measurements.sort_by_key(|m| {
                    let p = m.params;
                    (p.tc, p.bc, p.uif, p.pl.kb(), p.sc, p.cflags.fast_math)
                });
                let mut content = header_text(&scope);
                for m in &measurements {
                    content.push_str(&record_line(m));
                }
                if apply {
                    // Write-then-rename so compaction is atomic: a crash
                    // mid-gc leaves the original (still mostly usable)
                    // file intact instead of a truncated one that would
                    // discard every good record.
                    let tmp = path.with_extension("orl.tmp");
                    std::fs::write(&tmp, &content)?;
                    std::fs::rename(&tmp, &path)?;
                }
                report.compacted_files += 1;
                report.dropped_records += rejected;
                let after = content.len() as u64;
                report.bytes_reclaimed += before.saturating_sub(after);
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Gpu;
    use oriole_codegen::compile;
    use oriole_kernels::KernelId;

    fn sample_measurement() -> Measurement {
        Measurement {
            params: TuningParams::with_geometry(256, 48),
            time_ms: 1.0625e-3,
            per_size_ms: vec![(64, 0.5e-3), (128, 0.5625e-3)],
            feasible: true,
            occupancy: 0.75,
            regs_allocated: 24,
            reg_instructions: 12_345.5,
        }
    }

    #[test]
    fn sealed_lines_round_trip_and_detect_flips() {
        let line = seal("r hello:world");
        assert_eq!(unseal(&line), Some("r hello:world"));
        let tampered = line.replacen("hello", "hellp", 1);
        assert_eq!(unseal(&tampered), None, "a flipped byte must fail the checksum");
        assert_eq!(unseal("no checksum here"), None);
    }

    #[test]
    fn f64_bits_round_trip_exactly() {
        for v in [0.0, -0.0, 1.0, 1.0625e-3, f64::INFINITY, f64::MIN_POSITIVE, 1e300] {
            assert_eq!(parse_f64(&emit_f64(v)).unwrap().to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn gpu_spec_round_trips_structurally() {
        for gpu in oriole_arch::ALL_GPUS {
            let spec = gpu.spec();
            let parsed = parse_gpu_spec(&emit_gpu_spec(spec)).unwrap();
            assert_eq!(&parsed, spec);
        }
        // A synthetic device with a custom name survives too.
        let custom =
            GpuSpec { name: "K20-half-rf", regfile_per_mp: 32_768, ..Gpu::K20.spec().clone() };
        let parsed = parse_gpu_spec(&emit_gpu_spec(&custom)).unwrap();
        assert_eq!(parsed, custom);
    }

    #[test]
    fn protocol_round_trips_every_variant() {
        let protocols = [
            EvalProtocol::default(),
            EvalProtocol {
                trials: 3,
                protocol: TrialProtocol::Median,
                base_seed: 0xdead_beef,
                objective: Objective::LargestSize,
                model: ModelId::Roofline,
            },
            EvalProtocol { model: ModelId::Static, ..EvalProtocol::default() },
            EvalProtocol { protocol: TrialProtocol::Min, ..EvalProtocol::default() },
        ];
        for p in protocols {
            assert_eq!(parse_protocol(&emit_protocol(&p)).unwrap(), p);
        }
    }

    #[test]
    fn params_and_measurement_round_trip_bit_identically() {
        let mut p = TuningParams::with_geometry(1024, 192);
        p.uif = 5;
        p.pl = PreferredL1::Kb48;
        p.sc = 3;
        p.cflags.fast_math = true;
        assert_eq!(parse_params(&emit_params(&p)).unwrap(), p);

        let m = sample_measurement();
        let rt = parse_measurement(&emit_measurement(&m)).unwrap();
        assert_eq!(rt, m);
        assert_eq!(rt.time_ms.to_bits(), m.time_ms.to_bits());

        // Infeasible: infinite objective, empty per-size list.
        let infeasible = Measurement {
            params: p,
            time_ms: f64::INFINITY,
            per_size_ms: Vec::new(),
            feasible: false,
            occupancy: 0.0,
            regs_allocated: 0,
            reg_instructions: 0.0,
        };
        assert_eq!(parse_measurement(&emit_measurement(&infeasible)).unwrap(), infeasible);
    }

    #[test]
    fn sim_report_round_trips_bit_identically() {
        let kernel = compile(
            &KernelId::Atax.ast(128),
            Gpu::K20.spec(),
            TuningParams::with_geometry(128, 48),
        )
        .unwrap();
        let report = oriole_sim::simulate(&kernel, 128).unwrap();
        let rt = parse_sim_report(&emit_sim_report(&report)).unwrap();
        assert_eq!(rt, report);
        assert_eq!(rt.time_ms.to_bits(), report.time_ms.to_bits());
        // Unconstrained limits (u32::MAX) survive as well.
        assert_eq!(rt.occupancy.blocks_by_smem, report.occupancy.blocks_by_smem);
    }

    #[test]
    fn scope_distinguishes_every_component() {
        let gpu = Gpu::K20.spec();
        let protocol = EvalProtocol::default();
        let base = scope_text("atax", gpu, &[64], &protocol);
        assert_ne!(base, scope_text("bicg", gpu, &[64], &protocol));
        assert_ne!(base, scope_text("atax", Gpu::M40.spec(), &[64], &protocol));
        assert_ne!(base, scope_text("atax", gpu, &[64, 128], &protocol));
        assert_ne!(
            base,
            scope_text(
                "atax",
                gpu,
                &[64],
                &EvalProtocol { model: ModelId::Static, ..protocol }
            )
        );
        assert!(tier_file_name(&base).starts_with("meas-"));
        assert_ne!(tier_file_name(&base), tier_file_name(&scope_text("bicg", gpu, &[64], &protocol)));
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("oriole-persist-unit-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn open_tier_writes_loads_and_survives_reopen() {
        let dir = temp_dir("open");
        let scope = scope_text("atax", Gpu::K20.spec(), &[64], &EvalProtocol::default());
        let counters = Arc::new(DiskCounters::default());

        let opened = open_tier(&dir, &scope, &counters);
        assert!(opened.measurements.is_empty());
        let spill = opened.spill.expect("writable dir");
        let m = sample_measurement();
        spill.append(&m);
        assert_eq!(spill.written(), 1);

        let counters2 = Arc::new(DiskCounters::default());
        let reopened = open_tier(&dir, &scope, &counters2);
        assert_eq!(reopened.measurements, vec![m]);
        let stats = counters2.snapshot();
        assert_eq!(stats.tier_hits, 1);
        assert_eq!(stats.measurements_loaded, 1);
        assert_eq!(stats.rejected, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_skewed_files_are_rejected_and_rewritten() {
        let dir = temp_dir("corrupt");
        let scope = scope_text("atax", Gpu::K20.spec(), &[64], &EvalProtocol::default());
        let path = dir.join(tier_file_name(&scope));
        let counters = Arc::new(DiskCounters::default());

        // Truncated header → corrupt → rewritten fresh.
        std::fs::write(&path, format!("{MAGIC}\nh kernel=atax|0000000000000000\n")).unwrap();
        let opened = open_tier(&dir, &scope, &counters);
        assert!(opened.measurements.is_empty());
        assert_eq!(counters.snapshot().rejected, 1);
        opened.spill.unwrap().append(&sample_measurement());

        // Version skew → rejected wholesale even though records parse.
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, content.replacen(MAGIC, "oriole-meas v99", 1)).unwrap();
        let counters2 = Arc::new(DiskCounters::default());
        let opened = open_tier(&dir, &scope, &counters2);
        assert!(opened.measurements.is_empty());
        let s = counters2.snapshot();
        assert_eq!((s.tier_hits, s.tier_misses, s.rejected), (0, 1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scope_mismatch_is_never_served_or_overwritten() {
        let dir = temp_dir("mismatch");
        let scope_a = scope_text("atax", Gpu::K20.spec(), &[64], &EvalProtocol::default());
        let scope_b = scope_text("bicg", Gpu::K20.spec(), &[64], &EvalProtocol::default());
        let counters = Arc::new(DiskCounters::default());
        open_tier(&dir, &scope_a, &counters).spill.unwrap().append(&sample_measurement());
        // Plant A's file under B's name (a simulated filename collision).
        std::fs::copy(dir.join(tier_file_name(&scope_a)), dir.join(tier_file_name(&scope_b)))
            .unwrap();
        let opened = open_tier(&dir, &scope_b, &counters);
        assert!(opened.measurements.is_empty(), "foreign scope must not be served");
        assert!(opened.spill.is_none(), "foreign scope must not be overwritten");
        let planted = std::fs::read_to_string(dir.join(tier_file_name(&scope_b))).unwrap();
        assert!(planted.contains("kernel=atax"), "planted file untouched");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn frames_round_trip_and_reject_damage() {
        let payload = format!("oriole-rpc v1 evaluate\nm {}", emit_measurement(&sample_measurement()));
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, "second").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);
        assert_eq!(read_frame(&mut cursor).unwrap(), "second");
        // Clean close between frames is Eof, not an error.
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Eof)));

        // A flipped payload byte fails the checksum.
        let mut tampered = buf.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0x01;
        let mut cursor = &tampered[FRAME_HEADER_BYTES + payload.len()..];
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::BadChecksum)));

        // A flipped correlation-id byte also fails the checksum — a
        // corrupted id must never deliver a frame under the wrong id.
        let mut tampered = buf.clone();
        tampered[17] ^= 0x01;
        let mut cursor = &tampered[..];
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::BadChecksum)));

        // Wrong magic and oversized length are rejected up front.
        let mut cursor: &[u8] = b"JUNKxxxxxxxxxxxxxxxx";
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::BadMagic(_))));
        let mut huge = Vec::new();
        huge.extend_from_slice(&FRAME_MAGIC);
        huge.extend_from_slice(&u32::MAX.to_be_bytes());
        huge.extend_from_slice(&[0u8; 8]);
        let mut cursor = &huge[..];
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::TooLarge(_))));

        // A connection dropped mid-frame is an I/O error, not Eof.
        let mut cursor = &buf[..7];
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
    }

    #[test]
    fn tagged_frames_round_trip_correlation_ids() {
        let mut buf = Vec::new();
        write_frame_tagged(&mut buf, 7, "first").unwrap();
        write_frame_tagged(&mut buf, u64::MAX, "second").unwrap();
        write_frame(&mut buf, "untagged").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame_tagged(&mut cursor).unwrap(), (7, "first".to_string()));
        assert_eq!(read_frame_tagged(&mut cursor).unwrap(), (u64::MAX, "second".to_string()));
        // The single-shot wrapper tags with 0 and interoperates.
        assert_eq!(read_frame_tagged(&mut cursor).unwrap(), (0, "untagged".to_string()));
        assert!(matches!(read_frame_tagged(&mut cursor), Err(FrameError::Eof)));
    }

    #[test]
    fn decode_frame_handles_partial_buffers_and_damage() {
        let mut buf = Vec::new();
        write_frame_tagged(&mut buf, 42, "payload one").unwrap();
        write_frame_tagged(&mut buf, 43, "payload two").unwrap();

        // Every prefix short of the first full frame decodes to None.
        let first_len = FRAME_HEADER_BYTES + "payload one".len();
        for cut in 0..first_len {
            assert!(
                matches!(decode_frame(&buf[..cut]), Ok(None)),
                "prefix of {cut} bytes must be incomplete, not an error"
            );
        }
        // A complete first frame decodes and reports its size; the
        // remainder decodes the second.
        let (corr, payload, used) = decode_frame(&buf).unwrap().unwrap();
        assert_eq!((corr, payload.as_str(), used), (42, "payload one", first_len));
        let (corr, payload, used) = decode_frame(&buf[used..]).unwrap().unwrap();
        assert_eq!((corr, payload.as_str()), (43, "payload two"));
        assert_eq!(used, FRAME_HEADER_BYTES + "payload two".len());

        // Bad magic is rejected on the first divergent byte, before the
        // rest of the header arrives.
        assert!(matches!(decode_frame(b"J"), Err(FrameError::BadMagic(_))));
        assert!(matches!(decode_frame(b"ORLX"), Err(FrameError::BadMagic(_))));

        // Oversized length and corrupted bytes are rejected as soon as
        // they are decodable.
        let mut huge = Vec::new();
        huge.extend_from_slice(&FRAME_MAGIC);
        huge.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(decode_frame(&huge), Err(FrameError::TooLarge(_))));
        let mut tampered = buf.clone();
        tampered[FRAME_HEADER_BYTES] ^= 0x01;
        assert!(matches!(decode_frame(&tampered), Err(FrameError::BadChecksum)));
        let mut tampered = buf;
        tampered[20] ^= 0x01; // inside the correlation id
        assert!(matches!(decode_frame(&tampered), Err(FrameError::BadChecksum)));
    }

    #[test]
    fn expired_read_deadlines_classify_as_timeouts() {
        // A reader whose deadline pops (WouldBlock on Unix sockets,
        // TimedOut elsewhere) must surface as FrameError::TimedOut —
        // both before the first magic byte (idle peer) and mid-frame
        // (stalled peer) — never as a generic Io error.
        struct TimesOutAfter(usize);
        impl std::io::Read for TimesOutAfter {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                let n = buf.len().min(self.0);
                buf[..n].fill(b'O');
                self.0 -= n;
                Ok(n)
            }
        }
        assert!(matches!(read_frame(&mut TimesOutAfter(0)), Err(FrameError::TimedOut)));
        assert!(matches!(read_frame(&mut TimesOutAfter(2)), Err(FrameError::TimedOut)));
        for kind in [std::io::ErrorKind::WouldBlock, std::io::ErrorKind::TimedOut] {
            assert!(matches!(classify_frame_io(kind.into()), FrameError::TimedOut));
        }
        assert!(matches!(
            classify_frame_io(std::io::ErrorKind::ConnectionReset.into()),
            FrameError::Io(_)
        ));
    }

    #[test]
    fn plan_gc_reports_without_touching_disk() {
        let dir = temp_dir("plan-gc");
        let scope = scope_text("atax", Gpu::K20.spec(), &[64], &EvalProtocol::default());
        let counters = Arc::new(DiskCounters::default());
        open_tier(&dir, &scope, &counters).spill.unwrap().append(&sample_measurement());
        let path = dir.join(tier_file_name(&scope));
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, content.replacen("tc:256", "tc:999", 1)).unwrap();
        std::fs::write(dir.join("meas-0000000000000000.orl"), "not a tier file").unwrap();

        let before: Vec<_> = tier_files(&dir)
            .unwrap()
            .into_iter()
            .map(|p| (p.clone(), std::fs::read(&p).unwrap()))
            .collect();
        let plan = plan_gc(&dir).unwrap();
        assert_eq!((plan.removed_files, plan.compacted_files, plan.dropped_records), (1, 1, 1));
        // Dry run: every byte of every file untouched.
        for (p, bytes) in &before {
            assert_eq!(&std::fs::read(p).unwrap(), bytes, "{}", p.display());
        }
        // The real gc reports the identical numbers and then repairs.
        assert_eq!(gc_store(&dir).unwrap(), plan);
        assert_eq!(plan_gc(&dir).unwrap(), GcReport::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_and_gc_report_and_repair() {
        let dir = temp_dir("gc");
        let scope = scope_text("atax", Gpu::K20.spec(), &[64], &EvalProtocol::default());
        let counters = Arc::new(DiskCounters::default());
        let opened = open_tier(&dir, &scope, &counters);
        let spill = opened.spill.unwrap();
        spill.append(&sample_measurement());
        let mut other = sample_measurement();
        other.params.tc = 512;
        spill.append(&other);

        // Tamper with one record and add a wholly corrupt second file.
        let path = dir.join(tier_file_name(&scope));
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, content.replacen("tc:256", "tc:999", 1)).unwrap();
        std::fs::write(dir.join("meas-0000000000000000.orl"), "not a tier file").unwrap();

        let reports = scan_store(&dir).unwrap();
        assert_eq!(reports.len(), 2);
        let usable = reports
            .iter()
            .find_map(|r| match &r.status {
                FileStatus::Usable { kernel, records, rejected, .. } => {
                    Some((kernel.clone(), *records, *rejected))
                }
                _ => None,
            })
            .expect("one usable file");
        assert_eq!(usable, ("atax".to_string(), 1, 1));
        assert!(reports.iter().any(|r| r.status == FileStatus::Corrupt));

        let gc = gc_store(&dir).unwrap();
        assert_eq!(gc.removed_files, 1);
        assert_eq!(gc.compacted_files, 1);
        assert_eq!(gc.dropped_records, 1);

        // After gc: one clean file, nothing rejected.
        let reports = scan_store(&dir).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(matches!(
            reports[0].status,
            FileStatus::Usable { records: 1, rejected: 0, .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
