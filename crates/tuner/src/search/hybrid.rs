//! The §VII "dial-in" hybrid search.
//!
//! > "The optimization spectrum is a continuum from purely static-based
//! > methods to ones that incorporate empirical search [...] the degree
//! > of empirical testing can be 'dialed in' during the autotuning
//! > process, depending on what the user accepts."
//!
//! [`HybridSearch`] ranks the *entire* space with the static Eq. 6
//! predictor (compiling but never executing — §IV-C's cost model), then
//! spends the empirical budget only on the best-predicted fraction. With
//! `dial = 0.0` it degenerates to pure static selection (one confirmation
//! measurement); with `dial = 1.0` it is exhaustive empirical search.
//! Every decision is recorded in a [`TuningLog`] so the run can be
//! replayed and validated later ([`crate::replay`]).

use crate::replay::{Decision, TuningLog};
use crate::search::{Oracle, SearchResult, Searcher};
use crate::space::SearchSpace;
use oriole_codegen::TuningParams;

/// Static-first search with a dialable empirical budget.
pub struct HybridSearch<P> {
    /// Static cost predictor: `None` marks a variant statically
    /// infeasible (it is skipped and logged as pruned). Typically wraps
    /// `compile` + `oriole_core::predict_time`.
    pub predictor: P,
    /// Fraction of the space to test empirically, in `[0, 1]`.
    pub dial: f64,
    /// Decision log, filled during [`Searcher::search`].
    pub log: TuningLog,
}

impl<P: Fn(TuningParams) -> Option<f64>> HybridSearch<P> {
    /// Creates a hybrid search with the given predictor and dial.
    pub fn new(predictor: P, dial: f64) -> HybridSearch<P> {
        HybridSearch { predictor, dial: dial.clamp(0.0, 1.0), log: TuningLog::new() }
    }
}

impl<P: Fn(TuningParams) -> Option<f64>> Searcher for HybridSearch<P> {
    fn name(&self) -> &'static str {
        "hybrid-dial"
    }

    fn search(&mut self, space: &SearchSpace, oracle: &dyn Oracle, budget: usize)
        -> SearchResult {
        // Phase 1: static ranking of the whole space (no execution).
        let mut ranked: Vec<(TuningParams, f64)> = Vec::with_capacity(space.len());
        for p in space.iter() {
            match (self.predictor)(p) {
                Some(cost) => ranked.push((p, cost)),
                None => self.log.record(p, Decision::StaticPruned, None, None),
            }
        }
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite predictions"));

        // Phase 2: empirical testing of the best-predicted slice.
        let take = ((ranked.len() as f64 * self.dial).ceil() as usize)
            .clamp(1, ranked.len().max(1))
            .min(budget.max(1));
        let (head, tail) = ranked.split_at(take.min(ranked.len()));
        for (p, pred) in tail {
            self.log.record(*p, Decision::StaticPruned, Some(*pred), None);
        }
        let points: Vec<TuningParams> = head.iter().map(|(p, _)| *p).collect();
        let values = oracle.eval_many(&points);
        let mut trace = Vec::with_capacity(points.len());
        for ((p, pred), v) in head.iter().zip(values) {
            self.log.record(*p, Decision::StaticSuggested, Some(*pred), Some(v));
            trace.push((*p, v));
        }
        let result = SearchResult::from_trace(trace);
        self.log.record(
            result.best,
            Decision::SelectedBest,
            head.iter().find(|(p, _)| *p == result.best).map(|(_, c)| *c),
            Some(result.best_time),
        );
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay;

    /// Oracle: true cost is tc + bc/1000 (smaller is better).
    struct TrueCost;
    impl Oracle for TrueCost {
        fn eval(&self, p: TuningParams) -> f64 {
            f64::from(p.tc) + f64::from(p.bc) / 1000.0
        }
    }

    /// A predictor correlated with the true cost but imperfect: it
    /// ignores bc entirely.
    fn predictor(p: TuningParams) -> Option<f64> {
        Some(f64::from(p.tc))
    }

    #[test]
    fn dial_zero_is_pure_static() {
        let space = SearchSpace::tiny();
        let mut s = HybridSearch::new(predictor, 0.0);
        let r = s.search(&space, &TrueCost, usize::MAX);
        // One empirical confirmation only.
        assert_eq!(r.evaluations, 1);
        // The static model's best TC is picked.
        assert_eq!(r.best.tc, 64);
    }

    #[test]
    fn dial_one_is_exhaustive() {
        let space = SearchSpace::tiny();
        let mut s = HybridSearch::new(predictor, 1.0);
        let r = s.search(&space, &TrueCost, usize::MAX);
        assert_eq!(r.evaluations, space.len());
        // Exhaustive empirical finds the true optimum (tc=64, bc=24).
        assert_eq!((r.best.tc, r.best.bc), (64, 24));
    }

    #[test]
    fn dial_quarter_tests_quarter() {
        let space = SearchSpace::tiny(); // 16 points
        let mut s = HybridSearch::new(predictor, 0.25);
        let r = s.search(&space, &TrueCost, usize::MAX);
        assert_eq!(r.evaluations, 4);
        // The 4 best-predicted points are all tc=64, so the true best
        // among them has bc=24.
        assert_eq!((r.best.tc, r.best.bc), (64, 24));
    }

    #[test]
    fn budget_caps_empirical_slice() {
        let space = SearchSpace::tiny();
        let mut s = HybridSearch::new(predictor, 1.0);
        let r = s.search(&space, &TrueCost, 3);
        assert_eq!(r.evaluations, 3);
    }

    #[test]
    fn infeasible_variants_logged_not_tested() {
        let space = SearchSpace::tiny();
        let pred = |p: TuningParams| {
            if p.tc > 128 {
                None // statically infeasible
            } else {
                Some(f64::from(p.tc))
            }
        };
        let mut s = HybridSearch::new(pred, 1.0);
        let r = s.search(&space, &TrueCost, usize::MAX);
        // Only tc ∈ {64, 128} survive: 8 of 16 points.
        assert_eq!(r.evaluations, 8);
        assert_eq!(s.log.with_decision(Decision::StaticPruned).count(), 8);
    }

    #[test]
    fn log_replays_and_validates() {
        let space = SearchSpace::tiny();
        let mut s = HybridSearch::new(predictor, 0.5);
        s.search(&space, &TrueCost, usize::MAX);
        let report = replay(&s.log, &TrueCost, 0.05);
        // The predictor's tc-ordering agrees with the oracle's dominant
        // term.
        assert!(report.prediction_agreement > 0.9);
        // Nothing 5%-better was pruned: tc dominates the true cost.
        assert!(report.pruned_winner.is_none());
        assert_eq!(report.best.unwrap().0.tc, 64);
    }
}
