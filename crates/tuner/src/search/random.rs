//! Random search: uniform sampling without replacement.

use crate::search::{Oracle, SearchResult, Searcher};
use crate::space::SearchSpace;
use oriole_codegen::TuningParams;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Samples `budget` distinct points uniformly at random. One of Orio's
/// stock strategies for "strictly controlling the time spent autotuning"
/// (§IV-C).
#[derive(Debug, Clone, Copy)]
pub struct RandomSearch {
    /// RNG seed (runs are reproducible).
    pub seed: u64,
}

impl Default for RandomSearch {
    fn default() -> Self {
        Self { seed: 42 }
    }
}

impl Searcher for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn search(&mut self, space: &SearchSpace, oracle: &dyn Oracle, budget: usize)
        -> SearchResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let take = budget.clamp(1, space.len());
        let mut indices: Vec<usize> = (0..space.len()).collect();
        indices.shuffle(&mut rng);
        indices.truncate(take);
        let points: Vec<TuningParams> = indices.iter().map(|&i| space.point(i)).collect();
        let values = oracle.eval_many(&points);
        let trace: Vec<(TuningParams, f64)> = points.into_iter().zip(values).collect();
        SearchResult::from_trace(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::tests_support::{CountingOracle, QuadraticOracle};

    #[test]
    fn respects_budget_and_avoids_duplicates() {
        let space = SearchSpace::paper_default();
        let oracle = CountingOracle::new();
        let r = RandomSearch::default().search(&space, &oracle, 100);
        assert_eq!(r.evaluations, 100);
        assert_eq!(oracle.calls(), 100);
        let mut seen = r.trace.clone();
        seen.sort_by_key(|(p, _)| (p.tc, p.bc, p.uif, p.pl.kb(), p.sc, p.cflags.fast_math));
        seen.dedup_by_key(|(p, _)| *p);
        assert_eq!(seen.len(), 100, "sampling must be without replacement");
    }

    #[test]
    fn budget_larger_than_space_is_exhaustive() {
        let space = SearchSpace::tiny();
        let oracle = QuadraticOracle { ideal_tc: 512.0, ideal_bc: 24.0 };
        let r = RandomSearch::default().search(&space, &oracle, 10_000);
        assert_eq!(r.evaluations, space.len());
        assert_eq!(r.best.tc, 512);
        assert_eq!(r.best.bc, 24);
    }

    #[test]
    fn deterministic_per_seed() {
        let space = SearchSpace::paper_default();
        let oracle = QuadraticOracle { ideal_tc: 256.0, ideal_bc: 96.0 };
        let a = RandomSearch { seed: 7 }.search(&space, &oracle, 64);
        let b = RandomSearch { seed: 7 }.search(&space, &oracle, 64);
        assert_eq!(a, b);
        let c = RandomSearch { seed: 8 }.search(&space, &oracle, 64);
        assert_ne!(a.trace, c.trace);
    }
}
