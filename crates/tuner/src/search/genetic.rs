//! Genetic search: generational GA over grid coordinates.

use crate::search::{Oracle, SearchResult, Searcher};
use crate::space::SearchSpace;
use oriole_codegen::TuningParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generational genetic algorithm: tournament selection, uniform
/// per-axis crossover, per-axis mutation, elitism.
#[derive(Debug, Clone, Copy)]
pub struct GeneticSearch {
    /// RNG seed.
    pub seed: u64,
    /// Population size.
    pub population: usize,
    /// Per-axis mutation probability.
    pub mutation_rate: f64,
    /// Individuals preserved unchanged each generation.
    pub elites: usize,
}

impl Default for GeneticSearch {
    fn default() -> Self {
        Self { seed: 42, population: 24, mutation_rate: 0.15, elites: 2 }
    }
}

type Genome = [usize; 6];

impl Searcher for GeneticSearch {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn search(&mut self, space: &SearchSpace, oracle: &dyn Oracle, budget: usize)
        -> SearchResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dims = space.dims();
        let pop_size = self.population.max(4).min(budget.max(4));
        let mut trace: Vec<(TuningParams, f64)> = Vec::with_capacity(budget);

        let assess = |genomes: &[Genome],
                          trace: &mut Vec<(TuningParams, f64)>|
         -> Vec<(Genome, f64)> {
            let points: Vec<TuningParams> = genomes.iter().map(|&g| space.at(g)).collect();
            let values = oracle.eval_many(&points);
            for (p, v) in points.iter().zip(&values) {
                trace.push((*p, *v));
            }
            genomes.iter().copied().zip(values).collect()
        };

        // Initial population.
        let genomes: Vec<Genome> =
            (0..pop_size).map(|_| random_genome(&mut rng, &dims)).collect();
        let mut scored = assess(&genomes, &mut trace);
        sort_scored(&mut scored);

        while trace.len() + pop_size <= budget {
            let mut next: Vec<Genome> =
                scored.iter().take(self.elites).map(|(g, _)| *g).collect();
            while next.len() < pop_size {
                let a = tournament(&mut rng, &scored);
                let b = tournament(&mut rng, &scored);
                let mut child = crossover(&mut rng, a, b);
                mutate(&mut rng, &mut child, &dims, self.mutation_rate);
                next.push(child);
            }
            let mut next_scored = assess(&next, &mut trace);
            sort_scored(&mut next_scored);
            scored = next_scored;
        }
        SearchResult::from_trace(trace)
    }
}

fn random_genome(rng: &mut StdRng, dims: &[usize; 6]) -> Genome {
    let mut g = [0usize; 6];
    for (i, &d) in dims.iter().enumerate() {
        g[i] = rng.gen_range(0..d);
    }
    g
}

fn sort_scored(scored: &mut [(Genome, f64)]) {
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("comparable"));
}

fn tournament(rng: &mut StdRng, scored: &[(Genome, f64)]) -> Genome {
    let pick = |rng: &mut StdRng| scored[rng.gen_range(0..scored.len())];
    let a = pick(rng);
    let b = pick(rng);
    if a.1 <= b.1 {
        a.0
    } else {
        b.0
    }
}

fn crossover(rng: &mut StdRng, a: Genome, b: Genome) -> Genome {
    let mut child = a;
    for i in 0..6 {
        if rng.gen_bool(0.5) {
            child[i] = b[i];
        }
    }
    child
}

fn mutate(rng: &mut StdRng, g: &mut Genome, dims: &[usize; 6], rate: f64) {
    for i in 0..6 {
        if dims[i] > 1 && rng.gen_bool(rate) {
            g[i] = rng.gen_range(0..dims[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::tests_support::QuadraticOracle;

    #[test]
    fn converges_on_smooth_objective() {
        let space = SearchSpace::paper_default();
        let oracle = QuadraticOracle { ideal_tc: 768.0, ideal_bc: 120.0 };
        let r = GeneticSearch::default().search(&space, &oracle, 600);
        assert!((f64::from(r.best.tc) - 768.0).abs() <= 64.0, "tc {}", r.best.tc);
        assert!((f64::from(r.best.bc) - 120.0).abs() <= 48.0, "bc {}", r.best.bc);
    }

    #[test]
    fn stays_within_budget() {
        let space = SearchSpace::paper_default();
        let oracle = QuadraticOracle { ideal_tc: 128.0, ideal_bc: 24.0 };
        let r = GeneticSearch::default().search(&space, &oracle, 200);
        assert!(r.evaluations <= 200, "{}", r.evaluations);
        assert!(r.evaluations >= 24);
    }

    #[test]
    fn deterministic_per_seed() {
        let space = SearchSpace::paper_default();
        let oracle = QuadraticOracle { ideal_tc: 512.0, ideal_bc: 48.0 };
        let a = GeneticSearch::default().search(&space, &oracle, 150);
        let b = GeneticSearch::default().search(&space, &oracle, 150);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_budget_still_returns_best_seen() {
        let space = SearchSpace::tiny();
        let oracle = QuadraticOracle { ideal_tc: 64.0, ideal_bc: 24.0 };
        let r = GeneticSearch::default().search(&space, &oracle, 8);
        assert!(r.best_time.is_finite());
        assert!(r.evaluations <= 8);
    }
}
