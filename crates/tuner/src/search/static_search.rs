//! The paper's contribution: the static-analysis search module (§III-C,
//! §IV-C).
//!
//! "Orio collects instruction counts for the CUDA kernel and computes the
//! instruction mix metrics and occupancy rates [...]. A rule-based model
//! is invoked, which produces suggested parameter coordinates for Orio to
//! search."
//!
//! The module prunes the `TC` axis to the analyzer's suggested `T*` set
//! (static pruning), optionally narrowed further to the intensity-rule
//! band (rule-based pruning), then runs any inner search strategy —
//! exhaustive by default, matching §IV-C's accounting where the search
//! space shrinks from 5,120 to 640 (Kepler: 4 of 32 thread values kept,
//! 87.5% improvement) and to ~93.8% with the rule applied.

use crate::search::{ExhaustiveSearch, Oracle, SearchResult, Searcher};
use crate::space::SearchSpace;
use oriole_core::StaticAnalysis;

/// How aggressively the analyzer prunes the thread axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneLevel {
    /// `T*` only (the "Static" bars of Fig. 6).
    Static,
    /// `T*` narrowed to the intensity-rule band (the "RB" bars).
    RuleBased,
}

/// Reduction accounting for Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticSearchReport {
    /// Points in the unpruned space.
    pub full_space: usize,
    /// Points in the pruned space actually searched.
    pub pruned_space: usize,
    /// `1 − pruned/full` — the paper's "improvement" percentage.
    pub improvement: f64,
    /// Thread values kept.
    pub threads_kept: Vec<u32>,
}

/// The static-analysis search module.
pub struct StaticSearch<S = ExhaustiveSearch> {
    /// The static analysis steering the pruning (computed without any
    /// program runs).
    pub analysis: StaticAnalysis,
    /// Pruning aggressiveness.
    pub level: PruneLevel,
    /// Inner strategy run on the pruned space.
    pub inner: S,
    /// Filled by [`Searcher::search`]: the reduction accounting.
    pub report: Option<StaticSearchReport>,
}

impl StaticSearch<ExhaustiveSearch> {
    /// Static pruning with exhaustive inner search (the paper's primary
    /// configuration).
    pub fn new(analysis: StaticAnalysis, level: PruneLevel) -> Self {
        StaticSearch { analysis, level, inner: ExhaustiveSearch, report: None }
    }
}

impl<S: Searcher> StaticSearch<S> {
    /// Static pruning around any inner strategy ("The search space
    /// reduced through static binary analysis can then be explored using
    /// one of the existing search methods", §IV-C).
    pub fn with_inner(analysis: StaticAnalysis, level: PruneLevel, inner: S) -> Self {
        StaticSearch { analysis, level, inner, report: None }
    }

    /// The thread values the analyzer keeps at this prune level.
    pub fn suggested_threads(&self) -> Vec<u32> {
        match self.level {
            PruneLevel::Static => self.analysis.suggestion.thread_counts.clone(),
            PruneLevel::RuleBased => self.analysis.rule_threads.clone(),
        }
    }
}

impl<S: Searcher> Searcher for StaticSearch<S> {
    fn name(&self) -> &'static str {
        match self.level {
            PruneLevel::Static => "static",
            PruneLevel::RuleBased => "static+rules",
        }
    }

    fn search(&mut self, space: &SearchSpace, oracle: &dyn Oracle, budget: usize)
        -> SearchResult {
        let threads = self.suggested_threads();
        // Prune; if the suggestion misses the grid entirely, fall back to
        // the full space (the analyzer must never make tuning impossible).
        let pruned = space.restrict_tc(&threads).unwrap_or_else(|| space.clone());
        self.report = Some(StaticSearchReport {
            full_space: space.len(),
            pruned_space: pruned.len(),
            improvement: 1.0 - pruned.len() as f64 / space.len() as f64,
            threads_kept: pruned.tc.clone(),
        });
        self.inner.search(&pruned, oracle, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Gpu;
    use oriole_codegen::{compile, TuningParams};
    use oriole_core::analyze;
    use oriole_kernels::KernelId;

    fn analysis(kid: KernelId, gpu: Gpu, n: u64) -> StaticAnalysis {
        let kernel =
            compile(&kid.ast(n), gpu.spec(), TuningParams::with_geometry(128, 48)).unwrap();
        analyze(&kernel, n)
    }

    struct TcOracle;
    impl Oracle for TcOracle {
        fn eval(&self, p: TuningParams) -> f64 {
            // Favour small thread counts, mildly penalize everything
            // else so the minimum is unique.
            f64::from(p.tc) + f64::from(p.bc) * 0.001 + f64::from(p.uif) * 0.0001
        }
    }

    #[test]
    fn kepler_static_pruning_matches_paper_accounting() {
        // Kepler T* = {128, 256, 512, 1024}: 4 of 32 thread values →
        // 5120 → 640, an 87.5% improvement (§IV-C).
        let a = analysis(KernelId::Atax, Gpu::K20, 256);
        let mut s = StaticSearch::new(a, PruneLevel::Static);
        let space = SearchSpace::paper_default();
        let r = s.search(&space, &TcOracle, usize::MAX);
        let report = s.report.clone().unwrap();
        assert_eq!(report.full_space, 5120);
        assert_eq!(report.pruned_space, 640);
        assert!((report.improvement - 0.875).abs() < 1e-12);
        // Best point uses a suggested thread value.
        assert!(report.threads_kept.contains(&r.best.tc));
        assert_eq!(r.evaluations, 640);
    }

    #[test]
    fn fermi_static_pruning_is_84_percent() {
        // Fermi keeps 5 of 32 thread values → 84.4%.
        let a = analysis(KernelId::Atax, Gpu::M2050, 256);
        let mut s = StaticSearch::new(a, PruneLevel::Static);
        let space = SearchSpace::paper_default();
        s.search(&space, &TcOracle, usize::MAX);
        let report = s.report.unwrap();
        assert_eq!(report.threads_kept, vec![192, 256, 384, 512, 768]);
        assert!((report.improvement - (1.0 - 5.0 / 32.0)).abs() < 1e-12);
    }

    #[test]
    fn rule_based_pruning_reaches_93_8_percent() {
        // Low-intensity ATAX on Kepler: rule keeps the lower half of
        // {128,256,512,1024} → 2 of 32 → 93.75%.
        let a = analysis(KernelId::Atax, Gpu::K20, 256);
        let mut s = StaticSearch::new(a, PruneLevel::RuleBased);
        let space = SearchSpace::paper_default();
        s.search(&space, &TcOracle, usize::MAX);
        let report = s.report.unwrap();
        assert_eq!(report.threads_kept, vec![128, 256]);
        assert!((report.improvement - 0.9375).abs() < 1e-12);
    }

    #[test]
    fn high_intensity_kernel_keeps_upper_band() {
        let a = analysis(KernelId::Ex14Fj, Gpu::K20, 64);
        let mut s = StaticSearch::new(a, PruneLevel::RuleBased);
        let space = SearchSpace::paper_default();
        s.search(&space, &TcOracle, usize::MAX);
        assert_eq!(s.report.unwrap().threads_kept, vec![512, 1024]);
    }

    #[test]
    fn inner_strategy_is_pluggable() {
        let a = analysis(KernelId::Bicg, Gpu::M40, 128);
        let inner = crate::search::RandomSearch { seed: 5 };
        let mut s = StaticSearch::with_inner(a, PruneLevel::Static, inner);
        let space = SearchSpace::paper_default();
        let r = s.search(&space, &TcOracle, 50);
        assert_eq!(r.evaluations, 50);
        let report = s.report.unwrap();
        assert!(report.pruned_space < report.full_space);
    }

    #[test]
    fn suggestion_off_grid_falls_back_to_full_space() {
        let a = analysis(KernelId::Atax, Gpu::K20, 64);
        let mut s = StaticSearch::new(a, PruneLevel::Static);
        // A space whose TC axis misses every suggested value.
        let mut space = SearchSpace::tiny();
        space.tc = vec![96, 160];
        let r = s.search(&space, &TcOracle, usize::MAX);
        let report = s.report.unwrap();
        assert_eq!(report.pruned_space, report.full_space);
        assert_eq!(report.improvement, 0.0);
        assert!(r.best_time.is_finite());
    }
}
