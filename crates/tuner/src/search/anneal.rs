//! Simulated annealing over the coordinate grid.

use crate::search::{Oracle, SearchResult, Searcher};
use crate::space::SearchSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Classic simulated annealing: single-coordinate neighbourhood moves
/// with a geometric cooling schedule; worse moves accepted with
/// probability `exp(-Δ/T)`.
#[derive(Debug, Clone, Copy)]
pub struct AnnealingSearch {
    /// RNG seed.
    pub seed: u64,
    /// Initial temperature as a fraction of the first objective value.
    pub initial_temp: f64,
    /// Multiplicative cooling factor per step.
    pub cooling: f64,
}

impl Default for AnnealingSearch {
    fn default() -> Self {
        Self { seed: 42, initial_temp: 0.3, cooling: 0.97 }
    }
}

impl Searcher for AnnealingSearch {
    fn name(&self) -> &'static str {
        "simulated-annealing"
    }

    fn search(&mut self, space: &SearchSpace, oracle: &dyn Oracle, budget: usize)
        -> SearchResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let budget = budget.max(2);
        let dims = space.dims();

        // Start at a random point.
        let mut coords = random_coords(&mut rng, &dims);
        let mut current = space.at(coords);
        let mut current_val = oracle.eval(current);
        let mut trace = vec![(current, current_val)];
        let mut temp = self.initial_temp * if current_val.is_finite() { current_val } else { 1.0 };

        while trace.len() < budget {
            // Neighbour: one axis, one step up or down.
            let mut next = coords;
            let axis = pick_axis(&mut rng, &dims);
            let delta: i64 = if rng.gen_bool(0.5) { 1 } else { -1 };
            let pos = next[axis] as i64 + delta;
            next[axis] = pos.clamp(0, dims[axis] as i64 - 1) as usize;
            if next == coords {
                // Bounced off the boundary: try the opposite direction.
                let pos = next[axis] as i64 - delta;
                next[axis] = pos.clamp(0, dims[axis] as i64 - 1) as usize;
            }
            let candidate = space.at(next);
            let candidate_val = oracle.eval(candidate);
            trace.push((candidate, candidate_val));

            let accept = if candidate_val <= current_val {
                true
            } else if candidate_val.is_finite() && temp > 0.0 {
                let delta = candidate_val - current_val;
                rng.gen_bool((-delta / temp).exp().clamp(0.0, 1.0))
            } else {
                false
            };
            if accept {
                coords = next;
                current = candidate;
                current_val = candidate_val;
            }
            temp *= self.cooling;
        }
        let _ = current;
        SearchResult::from_trace(trace)
    }
}

fn random_coords(rng: &mut StdRng, dims: &[usize; 6]) -> [usize; 6] {
    let mut c = [0usize; 6];
    for (i, &d) in dims.iter().enumerate() {
        c[i] = rng.gen_range(0..d);
    }
    c
}

/// Picks an axis with more than one value (uniform among the free axes).
fn pick_axis(rng: &mut StdRng, dims: &[usize; 6]) -> usize {
    let free: Vec<usize> = (0..6).filter(|&i| dims[i] > 1).collect();
    if free.is_empty() {
        0
    } else {
        free[rng.gen_range(0..free.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::tests_support::QuadraticOracle;

    #[test]
    fn converges_to_basin_on_smooth_objective() {
        let space = SearchSpace::paper_default();
        let oracle = QuadraticOracle { ideal_tc: 512.0, ideal_bc: 96.0 };
        let r = AnnealingSearch::default().search(&space, &oracle, 600);
        // Within two grid steps of the optimum.
        assert!((f64::from(r.best.tc) - 512.0).abs() <= 64.0, "tc {}", r.best.tc);
        assert!((f64::from(r.best.bc) - 96.0).abs() <= 48.0, "bc {}", r.best.bc);
    }

    #[test]
    fn respects_budget() {
        let space = SearchSpace::paper_default();
        let oracle = QuadraticOracle { ideal_tc: 128.0, ideal_bc: 48.0 };
        let r = AnnealingSearch::default().search(&space, &oracle, 75);
        assert_eq!(r.evaluations, 75);
    }

    #[test]
    fn deterministic_per_seed() {
        let space = SearchSpace::paper_default();
        let oracle = QuadraticOracle { ideal_tc: 256.0, ideal_bc: 72.0 };
        let a = AnnealingSearch { seed: 3, ..Default::default() }.search(&space, &oracle, 100);
        let b = AnnealingSearch { seed: 3, ..Default::default() }.search(&space, &oracle, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn single_point_space_terminates() {
        let mut space = SearchSpace::tiny();
        space.tc = vec![64];
        space.bc = vec![24];
        let oracle = QuadraticOracle { ideal_tc: 64.0, ideal_bc: 24.0 };
        let r = AnnealingSearch::default().search(&space, &oracle, 10);
        assert_eq!(r.best.tc, 64);
    }
}
