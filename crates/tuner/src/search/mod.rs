//! Search algorithms over the tuning space.
//!
//! Orio's stock strategies (§III-C: "Current search algorithms in Orio
//! include exhaustive, random, simulated annealing, genetic, and
//! Nelder-Mead simplex methods") plus the paper's contribution, the
//! [`StaticSearch`] module that prunes the space with the static
//! analyzer before searching.

mod anneal;
mod exhaustive;
mod genetic;
mod hybrid;
mod neldermead;
mod random;
mod static_search;

pub use anneal::AnnealingSearch;
pub use exhaustive::ExhaustiveSearch;
pub use genetic::GeneticSearch;
pub use hybrid::HybridSearch;
pub use neldermead::NelderMeadSearch;
pub use random::RandomSearch;
pub use static_search::{PruneLevel, StaticSearch, StaticSearchReport};

use crate::space::SearchSpace;
use oriole_codegen::TuningParams;

/// The objective oracle a searcher queries. Implementations memoize and
/// parallelize internally; `eval` must be deterministic per point.
pub trait Oracle: Sync {
    /// Objective value for one point (lower is better; infeasible points
    /// return `f64::INFINITY`).
    fn eval(&self, params: TuningParams) -> f64;

    /// Batch evaluation; the default falls back to per-point calls.
    ///
    /// # Ordering contract
    ///
    /// `eval_many(points)[i]` is the value of `points[i]` — always, even
    /// when an implementation evaluates out of order, in parallel, or
    /// deduplicates repeats. Searchers rely on positional correspondence
    /// to zip values back onto their points, so results are never
    /// reordered, filtered, or deduplicated in the returned vector:
    ///
    /// ```
    /// use oriole_codegen::TuningParams;
    /// use oriole_tuner::Oracle;
    ///
    /// struct TcOracle;
    /// impl Oracle for TcOracle {
    ///     fn eval(&self, p: TuningParams) -> f64 {
    ///         f64::from(p.tc)
    ///     }
    /// }
    ///
    /// let a = TuningParams::with_geometry(128, 48);
    /// let b = TuningParams::with_geometry(64, 48);
    /// // Input order is preserved, and repeats appear once per request.
    /// assert_eq!(TcOracle.eval_many(&[a, b, a]), vec![128.0, 64.0, 128.0]);
    /// ```
    fn eval_many(&self, points: &[TuningParams]) -> Vec<f64> {
        points.iter().map(|&p| self.eval(p)).collect()
    }
}

impl Oracle for crate::eval::Evaluator<'_> {
    fn eval(&self, params: TuningParams) -> f64 {
        crate::eval::Evaluator::evaluate(self, params).time_ms
    }

    fn eval_many(&self, points: &[TuningParams]) -> Vec<f64> {
        self.evaluate_batch(points).into_iter().map(|m| m.time_ms).collect()
    }
}

/// Outcome of one search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Best point found.
    pub best: TuningParams,
    /// Its objective value (ms).
    pub best_time: f64,
    /// Objective queries issued (revisits included).
    pub evaluations: usize,
    /// Search trace: `(point, value)` in query order (exhaustive search
    /// leaves it empty to avoid 5,120-entry clones; its trace is the
    /// space order).
    pub trace: Vec<(TuningParams, f64)>,
}

impl SearchResult {
    /// The defined outcome of searching an **empty** space: zero
    /// evaluations, an empty trace, the default point as a placeholder
    /// `best` and an infinite `best_time` — the same sentinel an
    /// all-infeasible space produces, so callers already handling
    /// "nothing launchable" handle "nothing to search" for free.
    pub fn empty() -> SearchResult {
        SearchResult {
            best: TuningParams::default(),
            best_time: f64::INFINITY,
            evaluations: 0,
            trace: Vec::new(),
        }
    }

    fn from_trace(trace: Vec<(TuningParams, f64)>) -> SearchResult {
        let (best, best_time) = trace
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("objective values comparable"))
            .map(|(p, t)| (*p, *t))
            .expect("non-empty trace");
        SearchResult { best, best_time, evaluations: trace.len(), trace }
    }
}

/// A search strategy.
pub trait Searcher {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// Runs the search on `space`, querying `oracle` at most `budget`
    /// times (exhaustive ignores the budget and sweeps the space).
    fn search(&mut self, space: &SearchSpace, oracle: &dyn Oracle, budget: usize)
        -> SearchResult;
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! Synthetic oracles for exercising search strategies without the
    //! compile/simulate stack.

    use super::Oracle;
    use oriole_codegen::TuningParams;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Smooth objective minimized at `(ideal_tc, ideal_bc)`; separable
    /// and unimodal, so every sane searcher should find the basin.
    pub struct QuadraticOracle {
        pub ideal_tc: f64,
        pub ideal_bc: f64,
    }

    impl Oracle for QuadraticOracle {
        fn eval(&self, p: TuningParams) -> f64 {
            let dt = (f64::from(p.tc) - self.ideal_tc) / 1024.0;
            let db = (f64::from(p.bc) - self.ideal_bc) / 192.0;
            1.0 + dt * dt + db * db + 0.01 * f64::from(p.uif - 1)
        }
    }

    /// Counts oracle queries (thread-safe).
    pub struct CountingOracle {
        inner: QuadraticOracle,
        count: AtomicUsize,
    }

    impl CountingOracle {
        pub fn new() -> CountingOracle {
            CountingOracle {
                inner: QuadraticOracle { ideal_tc: 128.0, ideal_bc: 48.0 },
                count: AtomicUsize::new(0),
            }
        }

        pub fn calls(&self) -> usize {
            self.count.load(Ordering::Relaxed)
        }
    }

    impl Oracle for CountingOracle {
        fn eval(&self, p: TuningParams) -> f64 {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.inner.eval(p)
        }
    }
}
