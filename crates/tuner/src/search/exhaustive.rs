//! Exhaustive search: the §IV-B baseline that visits every variant.

use crate::search::{Oracle, SearchResult, Searcher};
use crate::space::SearchSpace;
use oriole_codegen::TuningParams;

/// Sweeps the whole space. The paper uses this as ground truth ("We use
/// the exhaustive empirical autotuning results from Sec. IV-B as the
/// baseline for validating whether our search approach could find the
/// optimal solution").
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveSearch;

impl Searcher for ExhaustiveSearch {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn search(
        &mut self,
        space: &SearchSpace,
        oracle: &dyn Oracle,
        _budget: usize,
    ) -> SearchResult {
        let points: Vec<TuningParams> = space.iter().collect();
        if points.is_empty() {
            // A space with an empty axis (e.g. a user spec that pruned
            // every thread count) has nothing to sweep; return the
            // defined empty outcome instead of panicking.
            return SearchResult::empty();
        }
        let values = oracle.eval_many(&points);
        let (best_idx, best_time) = values
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("comparable"))
            .expect("non-empty space");
        SearchResult {
            best: points[best_idx],
            best_time,
            evaluations: points.len(),
            trace: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::tests_support::{CountingOracle, QuadraticOracle};

    #[test]
    fn finds_global_minimum() {
        let space = SearchSpace::tiny();
        let oracle = QuadraticOracle { ideal_tc: 256.0, ideal_bc: 96.0 };
        let r = ExhaustiveSearch.search(&space, &oracle, 0);
        assert_eq!(r.best.tc, 256);
        assert_eq!(r.best.bc, 96);
        assert_eq!(r.evaluations, space.len());
    }

    #[test]
    fn visits_every_point_exactly_once() {
        let space = SearchSpace::tiny();
        let oracle = CountingOracle::new();
        ExhaustiveSearch.search(&space, &oracle, 0);
        assert_eq!(oracle.calls(), space.len());
    }

    #[test]
    fn empty_space_returns_defined_result_instead_of_panicking() {
        let mut space = SearchSpace::tiny();
        space.tc = Vec::new(); // an axis pruned to nothing
        assert!(space.is_empty());
        let oracle = CountingOracle::new();
        let r = ExhaustiveSearch.search(&space, &oracle, 0);
        assert_eq!(oracle.calls(), 0, "nothing to evaluate");
        assert_eq!(r.evaluations, 0);
        assert_eq!(r.best_time, f64::INFINITY);
        assert!(r.trace.is_empty());
        assert_eq!(r, crate::search::SearchResult::empty());
    }
}
