//! Nelder–Mead simplex search on the normalized coordinate cube.
//!
//! The simplex moves through `[0,1]^d` (one dimension per multi-valued
//! axis); every vertex is snapped to the nearest grid point before
//! evaluation. Standard reflect / expand / contract / shrink updates.

use crate::search::{Oracle, SearchResult, Searcher};
use crate::space::SearchSpace;
use oriole_codegen::TuningParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Nelder–Mead simplex with grid snapping.
#[derive(Debug, Clone, Copy)]
pub struct NelderMeadSearch {
    /// Seed for the initial simplex placement.
    pub seed: u64,
    /// Reflection coefficient (standard: 1).
    pub alpha: f64,
    /// Expansion coefficient (standard: 2).
    pub gamma: f64,
    /// Contraction coefficient (standard: 0.5).
    pub rho: f64,
    /// Shrink coefficient (standard: 0.5).
    pub sigma: f64,
}

impl Default for NelderMeadSearch {
    fn default() -> Self {
        Self { seed: 42, alpha: 1.0, gamma: 2.0, rho: 0.5, sigma: 0.5 }
    }
}

impl Searcher for NelderMeadSearch {
    fn name(&self) -> &'static str {
        "nelder-mead"
    }

    fn search(&mut self, space: &SearchSpace, oracle: &dyn Oracle, budget: usize)
        -> SearchResult {
        let dims = space.dims();
        let free: Vec<usize> = (0..6).filter(|&i| dims[i] > 1).collect();
        let d = free.len().max(1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let budget = budget.max(d + 2);
        let mut trace: Vec<(TuningParams, f64)> = Vec::with_capacity(budget);

        let snap = |x: &[f64]| -> TuningParams {
            let mut coords = [0usize; 6];
            for (k, &axis) in free.iter().enumerate() {
                let clamped = x[k].clamp(0.0, 1.0);
                let idx = (clamped * (dims[axis] as f64 - 1.0)).round() as usize;
                coords[axis] = idx.min(dims[axis] - 1);
            }
            space.at(coords)
        };

        let eval_at = |x: &[f64], trace: &mut Vec<(TuningParams, f64)>| -> f64 {
            let p = snap(x);
            let v = oracle.eval(p);
            trace.push((p, v));
            v
        };

        // Initial simplex: d+1 random vertices.
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(d + 1);
        for _ in 0..=d {
            let x: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
            let v = eval_at(&x, &mut trace);
            simplex.push((x, v));
        }

        while trace.len() < budget {
            simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("comparable"));
            let best_val = simplex[0].1;
            let worst_idx = simplex.len() - 1;
            let (worst_x, worst_val) = simplex[worst_idx].clone();
            let second_worst = simplex[worst_idx - 1].1;

            // Centroid of all but the worst vertex.
            let mut centroid = vec![0.0; d];
            for (x, _) in simplex.iter().take(worst_idx) {
                for k in 0..d {
                    centroid[k] += x[k];
                }
            }
            for c in &mut centroid {
                *c /= worst_idx as f64;
            }

            let blend = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
                a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
            };

            // Reflect.
            let reflected = blend(&centroid, &worst_x, -self.alpha);
            let refl_val = eval_at(&reflected, &mut trace);
            if refl_val < best_val && trace.len() < budget {
                // Expand.
                let expanded = blend(&centroid, &worst_x, -self.gamma);
                let exp_val = eval_at(&expanded, &mut trace);
                simplex[worst_idx] = if exp_val < refl_val {
                    (expanded, exp_val)
                } else {
                    (reflected, refl_val)
                };
            } else if refl_val < second_worst {
                simplex[worst_idx] = (reflected, refl_val);
            } else if trace.len() < budget {
                // Contract (toward the better of worst/reflected).
                let (toward, toward_val) = if refl_val < worst_val {
                    (&reflected, refl_val)
                } else {
                    (&worst_x, worst_val)
                };
                let contracted = blend(&centroid, toward, self.rho);
                let contr_val = eval_at(&contracted, &mut trace);
                if contr_val < toward_val {
                    simplex[worst_idx] = (contracted, contr_val);
                } else {
                    // Shrink everything toward the best vertex.
                    let best_x = simplex[0].0.clone();
                    for vertex in simplex.iter_mut().skip(1) {
                        if trace.len() >= budget {
                            break;
                        }
                        let shrunk = blend(&best_x, &vertex.0, self.sigma);
                        let v = eval_at(&shrunk, &mut trace);
                        *vertex = (shrunk, v);
                    }
                }
            }
        }
        SearchResult::from_trace(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::tests_support::QuadraticOracle;

    #[test]
    fn converges_on_smooth_objective() {
        let space = SearchSpace::paper_default();
        let oracle = QuadraticOracle { ideal_tc: 384.0, ideal_bc: 144.0 };
        let r = NelderMeadSearch::default().search(&space, &oracle, 300);
        assert!((f64::from(r.best.tc) - 384.0).abs() <= 96.0, "tc {}", r.best.tc);
        assert!((f64::from(r.best.bc) - 144.0).abs() <= 48.0, "bc {}", r.best.bc);
    }

    #[test]
    fn respects_budget_within_shrink_granularity() {
        let space = SearchSpace::paper_default();
        let oracle = QuadraticOracle { ideal_tc: 96.0, ideal_bc: 72.0 };
        let r = NelderMeadSearch::default().search(&space, &oracle, 80);
        // The simplex may overshoot by at most one operation.
        assert!(r.evaluations <= 82, "{}", r.evaluations);
    }

    #[test]
    fn deterministic_per_seed() {
        let space = SearchSpace::paper_default();
        let oracle = QuadraticOracle { ideal_tc: 640.0, ideal_bc: 24.0 };
        let a = NelderMeadSearch::default().search(&space, &oracle, 120);
        let b = NelderMeadSearch::default().search(&space, &oracle, 120);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_single_axis_space() {
        let mut space = SearchSpace::tiny();
        space.bc = vec![48];
        let oracle = QuadraticOracle { ideal_tc: 256.0, ideal_bc: 48.0 };
        let r = NelderMeadSearch::default().search(&space, &oracle, 40);
        assert_eq!(r.best.bc, 48);
        assert!(r.best_time.is_finite());
    }
}
