//! Variant evaluation: the "empirical" measurement loop of §IV-A.
//!
//! Each tuning point is compiled and run on the simulator for every
//! input size, ten noisy trials each, with the fifth trial selected —
//! exactly the paper's protocol. Evaluation parallelizes across variants
//! with crossbeam scoped threads; results are returned in input order and
//! memoized (stochastic searchers revisit points), so the whole layer is
//! deterministic regardless of thread scheduling.

use crate::space::SearchSpace;
use oriole_arch::GpuSpec;
use oriole_codegen::{compile, CompiledKernel, TuningParams};
use oriole_ir::KernelAst;
use oriole_sim::{dynamic_mix, measure, TrialProtocol};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// What a search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Sum of selected trial times over all input sizes (the paper's
    /// whole-benchmark view).
    #[default]
    TotalTime,
    /// Time at the largest input size only.
    LargestSize,
}

/// The evaluation record of one variant — everything Table V and Fig. 4
/// need.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The tuning point.
    pub params: TuningParams,
    /// Objective value in milliseconds (`f64::INFINITY` when
    /// infeasible).
    pub time_ms: f64,
    /// Selected trial time per input size.
    pub per_size_ms: Vec<(u64, f64)>,
    /// Whether the variant compiled and launched.
    pub feasible: bool,
    /// Achieved occupancy (0 when infeasible).
    pub occupancy: f64,
    /// Registers per thread `ptxas` allocated.
    pub regs_allocated: u32,
    /// Dynamic register-instruction count summed over sizes (Table V's
    /// "Register Instructions").
    pub reg_instructions: f64,
}

impl Measurement {
    fn infeasible(params: TuningParams) -> Measurement {
        Measurement {
            params,
            time_ms: f64::INFINITY,
            per_size_ms: Vec::new(),
            feasible: false,
            occupancy: 0.0,
            regs_allocated: 0,
            reg_instructions: 0.0,
        }
    }
}

/// Evaluates tuning points for one kernel × GPU × input-size set.
pub struct Evaluator<'a> {
    /// Builds the kernel AST for an input size (ex14FJ's divergence
    /// fraction depends on it).
    pub ast_builder: &'a (dyn Fn(u64) -> KernelAst + Sync),
    /// Target device.
    pub gpu: &'static GpuSpec,
    /// Input sizes (§IV-A: five per benchmark).
    pub sizes: &'a [u64],
    /// Trials per size (paper: 10).
    pub trials: u32,
    /// Trial-selection protocol (paper: fifth of ten).
    pub protocol: TrialProtocol,
    /// Base seed; per-variant seeds derive from it and the point.
    pub base_seed: u64,
    /// Objective definition.
    pub objective: Objective,
    cache: Mutex<HashMap<TuningParams, Measurement>>,
    evaluations: AtomicUsize,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with the paper's measurement protocol.
    pub fn new(
        ast_builder: &'a (dyn Fn(u64) -> KernelAst + Sync),
        gpu: &'static GpuSpec,
        sizes: &'a [u64],
    ) -> Evaluator<'a> {
        Evaluator {
            ast_builder,
            gpu,
            sizes,
            trials: 10,
            protocol: TrialProtocol::FifthOfTen,
            base_seed: 0x0_0121_0_1e,
            objective: Objective::TotalTime,
            cache: Mutex::new(HashMap::new()),
            evaluations: AtomicUsize::new(0),
        }
    }

    /// Number of *distinct* variants evaluated so far (cache misses).
    pub fn unique_evaluations(&self) -> usize {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Per-variant deterministic seed.
    fn seed_for(&self, p: &TuningParams) -> u64 {
        // Simple FNV-style mix over the point's fields.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.base_seed;
        for v in [
            u64::from(p.tc),
            u64::from(p.bc),
            u64::from(p.uif),
            u64::from(p.pl.kb()),
            u64::from(p.sc),
            u64::from(p.cflags.fast_math),
        ] {
            h ^= v.wrapping_add(0x9e37_79b9_7f4a_7c15);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    fn evaluate_uncached(&self, params: TuningParams) -> Measurement {
        let mut per_size_ms = Vec::with_capacity(self.sizes.len());
        let mut occupancy = 0.0;
        let mut regs = 0u32;
        let mut reg_instructions = 0.0;
        for &n in self.sizes {
            let ast = (self.ast_builder)(n);
            let kernel: CompiledKernel = match compile(&ast, self.gpu, params) {
                Ok(k) => k,
                Err(_) => return Measurement::infeasible(params),
            };
            let trials = match measure(&kernel, n, self.trials, self.seed_for(&params) ^ n) {
                Ok(t) => t,
                Err(_) => return Measurement::infeasible(params),
            };
            per_size_ms.push((n, trials.selected(self.protocol)));
            occupancy = trials.report.occupancy.occupancy;
            regs = kernel.regs_per_thread();
            reg_instructions += dynamic_mix(&kernel, n).get(oriole_arch::OpClass::Regs);
        }
        let time_ms = match self.objective {
            Objective::TotalTime => per_size_ms.iter().map(|(_, t)| t).sum(),
            Objective::LargestSize => per_size_ms.last().map(|(_, t)| *t).unwrap_or(f64::INFINITY),
        };
        Measurement {
            params,
            time_ms,
            per_size_ms,
            feasible: true,
            occupancy,
            regs_allocated: regs,
            reg_instructions,
        }
    }

    /// Evaluates one point (memoized).
    pub fn evaluate(&self, params: TuningParams) -> Measurement {
        if let Some(hit) = self.cache.lock().get(&params) {
            return hit.clone();
        }
        let m = self.evaluate_uncached(params);
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.cache.lock().insert(params, m.clone());
        m
    }

    /// Evaluates a batch in parallel; results in input order.
    pub fn evaluate_batch(&self, points: &[TuningParams]) -> Vec<Measurement> {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        if points.len() < 8 || threads < 2 {
            return points.iter().map(|&p| self.evaluate(p)).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Measurement>>> =
            points.iter().map(|_| Mutex::new(None)).collect();
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(points.len()) {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= points.len() {
                        break;
                    }
                    let m = self.evaluate(points[i]);
                    *results[i].lock() = Some(m);
                });
            }
        })
        .expect("evaluation workers don't panic");
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled"))
            .collect()
    }

    /// Evaluates the entire space (exhaustive sweep), in flat-index
    /// order.
    pub fn evaluate_space(&self, space: &SearchSpace) -> Vec<Measurement> {
        let points: Vec<TuningParams> = space.iter().collect();
        self.evaluate_batch(&points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Gpu;
    use oriole_kernels::KernelId;

    fn evaluator<'a>(sizes: &'a [u64]) -> Evaluator<'a> {
        Evaluator::new(&|n| KernelId::Atax.ast(n), Gpu::K20.spec(), sizes)
    }

    #[test]
    fn evaluation_is_deterministic() {
        let sizes = [64u64, 128];
        let ev = evaluator(&sizes);
        let p = TuningParams::with_geometry(128, 48);
        let a = ev.evaluate(p);
        let b = ev.evaluate(p);
        assert_eq!(a, b);
        // A second evaluator reproduces the same numbers.
        let ev2 = evaluator(&sizes);
        assert_eq!(ev2.evaluate(p), a);
    }

    #[test]
    fn cache_counts_unique_points() {
        let sizes = [64u64];
        let ev = evaluator(&sizes);
        let p = TuningParams::with_geometry(128, 48);
        let q = TuningParams::with_geometry(256, 48);
        ev.evaluate(p);
        ev.evaluate(p);
        ev.evaluate(q);
        assert_eq!(ev.unique_evaluations(), 2);
    }

    #[test]
    fn batch_matches_sequential_and_orders_results() {
        let sizes = [64u64];
        let space = SearchSpace::tiny();
        let points: Vec<TuningParams> = space.iter().collect();
        let ev_batch = evaluator(&sizes);
        let batch = ev_batch.evaluate_batch(&points);
        let ev_seq = evaluator(&sizes);
        let seq: Vec<Measurement> = points.iter().map(|&p| ev_seq.evaluate(p)).collect();
        assert_eq!(batch, seq);
        for (m, p) in batch.iter().zip(&points) {
            assert_eq!(m.params, *p);
        }
    }

    #[test]
    fn objective_totals_per_size_times() {
        let sizes = [32u64, 64, 128];
        let ev = evaluator(&sizes);
        let m = ev.evaluate(TuningParams::with_geometry(128, 48));
        assert!(m.feasible);
        assert_eq!(m.per_size_ms.len(), 3);
        let sum: f64 = m.per_size_ms.iter().map(|(_, t)| t).sum();
        assert!((sum - m.time_ms).abs() < 1e-12);
        assert!(m.occupancy > 0.0);
        assert!(m.regs_allocated > 0);
        assert!(m.reg_instructions > 0.0);
    }

    #[test]
    fn infeasible_variant_scores_infinity() {
        // MatVec2D's block-scaled tile at TC=1024 with PreferL1 (16 KiB
        // shared on Kepler): smem = 4 KiB fits; force bigger tiles.
        let builder = |n: u64| {
            let mut ast = KernelId::MatVec2D.ast(n);
            ast.shared[0].elems = 8; // 32 B/thread → 32 KiB at TC=1024
            ast
        };
        let sizes = [64u64];
        let ev = Evaluator::new(&builder, Gpu::K20.spec(), &sizes);
        let mut p = TuningParams::with_geometry(1024, 48);
        p.pl = oriole_codegen::PreferredL1::Kb48; // 16 KiB shared per SM
        let m = ev.evaluate(p);
        assert!(!m.feasible);
        assert_eq!(m.time_ms, f64::INFINITY);
    }

    #[test]
    fn largest_size_objective() {
        let sizes = [32u64, 256];
        let mut ev = evaluator(&sizes);
        ev.objective = Objective::LargestSize;
        let m = ev.evaluate(TuningParams::with_geometry(128, 48));
        assert_eq!(m.time_ms, m.per_size_ms[1].1);
    }
}
