//! Variant evaluation: the "empirical" measurement loop of §IV-A.
//!
//! Each tuning point is compiled and run on the simulator for every
//! input size, ten noisy trials each, with the fifth trial selected —
//! exactly the paper's protocol. The layer is built for search-loop
//! throughput, with the caching tiers stacked under a deterministic
//! interface:
//!
//! 1. **AST tier** — `ast_builder` runs once per input size (ex14FJ's
//!    divergence fraction depends on the size), not once per
//!    variant × size.
//! 2. **Front-end tier** — the expensive compile front-end (unroll +
//!    lower, see [`oriole_codegen::front_end`]) is keyed by
//!    `(size, UIF, CFLAGS)`: the `TC`/`BC`/`PL`/`SC` axes don't affect
//!    lowering, so the paper's 5,120-point space shares ten lowered
//!    programs per input size. Each variant then pays only the cheap
//!    param-dependent back-end ([`FrontEnd::specialize`]).
//! 3. **Model context** — occupancy table, dynamic-mix memo and
//!    `SimReport` cache, device-scoped ([`oriole_sim::ModelContext`]).
//! 4. **Measurement tier** — a sharded map of `Arc<Measurement>` with
//!    **in-flight deduplication**: concurrent misses on one point block
//!    on a per-key [`OnceLock`] instead of
//!    recomputing, so revisits by stochastic searchers are free, cache
//!    hits never clone the full measurement, and
//!    [`Evaluator::unique_evaluations`] counts each point exactly once
//!    no matter how many threads race on it.
//!
//! Every tier lives behind an `Arc`. A standalone evaluator
//! ([`Evaluator::new`]) owns private tiers; an evaluator borrowed from a
//! process-level [`ArtifactStore`](crate::ArtifactStore) shares them
//! with every other evaluator of the same scope, so repeated sweeps
//! (bench bins, CLI invocations, replay validation) reuse front-ends,
//! reports and measurements instead of rebuilding the world per
//! (kernel, GPU). Sharing never changes results: all cached values are
//! bit-identical to what a fresh evaluator computes.
//!
//! [`Evaluator::evaluate_batch`] self-schedules a worker pool over a
//! pre-sized slot vector (one atomic index counter, one write-once slot
//! per point — no per-slot mutexes) and returns results in input order,
//! so the whole layer stays deterministic regardless of thread
//! scheduling.

use crate::space::SearchSpace;
use oriole_arch::GpuSpec;
use oriole_codegen::{front_end, CompileError, FrontEnd, TuningParams};
use oriole_ir::KernelAst;
use oriole_sim::memo::ShardedOnceMap;
use oriole_sim::{ModelContext, ModelId, ModelStats, ProgramKey, TrialProtocol};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// What a search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Sum of selected trial times over all input sizes (the paper's
    /// whole-benchmark view).
    #[default]
    TotalTime,
    /// Time at the largest input size only.
    LargestSize,
}

/// The measurement protocol of one evaluator: everything besides the
/// kernel, device and input sizes that determines a [`Measurement`].
/// Part of the [`ArtifactStore`](crate::ArtifactStore) scope key, so
/// evaluators only share measurements when they would compute identical
/// ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvalProtocol {
    /// Trials per size (paper: 10).
    pub trials: u32,
    /// Trial-selection protocol (paper: fifth of ten).
    pub protocol: TrialProtocol,
    /// Base seed; per-variant seeds derive from it and the point.
    pub base_seed: u64,
    /// Objective definition.
    pub objective: Objective,
    /// Timing-model backend measurements are estimated with. Part of
    /// every measurement-tier scope key, so measurements taken under
    /// one backend can never alias another's.
    pub model: ModelId,
}

impl Default for EvalProtocol {
    /// The paper's §IV-A protocol, under the default simulator backend.
    fn default() -> EvalProtocol {
        EvalProtocol {
            trials: 10,
            protocol: TrialProtocol::FifthOfTen,
            base_seed: 0x0012_101e,
            objective: Objective::TotalTime,
            model: ModelId::default(),
        }
    }
}

/// The evaluation record of one variant — everything Table V and Fig. 4
/// need.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The tuning point.
    pub params: TuningParams,
    /// Objective value in milliseconds (`f64::INFINITY` when
    /// infeasible).
    pub time_ms: f64,
    /// Selected trial time per input size.
    pub per_size_ms: Vec<(u64, f64)>,
    /// Whether the variant compiled and launched.
    pub feasible: bool,
    /// Achieved occupancy (0 when infeasible).
    pub occupancy: f64,
    /// Registers per thread `ptxas` allocated.
    pub regs_allocated: u32,
    /// Dynamic register-instruction count summed over sizes (Table V's
    /// "Register Instructions").
    pub reg_instructions: f64,
}

impl Measurement {
    fn infeasible(params: TuningParams) -> Measurement {
        Measurement {
            params,
            time_ms: f64::INFINITY,
            per_size_ms: Vec::new(),
            feasible: false,
            occupancy: 0.0,
            regs_allocated: 0,
            reg_instructions: 0.0,
        }
    }
}

/// One cached front-end artifact plus its content-addressed model-cache
/// key (absent when the front-end itself failed).
pub(crate) struct FeArtifact {
    pub(crate) fe: Result<FrontEnd, CompileError>,
    pub(crate) key: Option<ProgramKey>,
}

/// Key of one cached compile front-end: the lowering inputs that vary
/// inside a search (`gpu` is fixed per tier).
type FrontEndKey = (u64, u32, oriole_codegen::CompilerFlags);

/// The per-size AST cache (scope: one kernel).
pub(crate) struct AstTier {
    map: ShardedOnceMap<u64, Arc<KernelAst>>,
}

impl AstTier {
    pub(crate) fn new() -> AstTier {
        AstTier { map: ShardedOnceMap::new() }
    }
}

/// The front-end artifact cache (scope: one kernel × device).
pub(crate) struct FeTier {
    map: ShardedOnceMap<FrontEndKey, Arc<FeArtifact>>,
    lowerings: AtomicUsize,
}

impl FeTier {
    pub(crate) fn new() -> FeTier {
        FeTier { map: ShardedOnceMap::new(), lowerings: AtomicUsize::new(0) }
    }

    pub(crate) fn lowerings(&self) -> usize {
        self.lowerings.load(Ordering::Relaxed)
    }
}

/// The measurement memo (scope: one kernel × device × input sizes ×
/// [`EvalProtocol`]). Optionally disk-backed: a tier borrowed from a
/// store with a disk tier is pre-seeded with the valid records of its
/// on-disk artifact and spills every new computation back as an
/// append-only, checksummed record (see [`crate::persist`]).
pub(crate) struct MeasTier {
    map: ShardedOnceMap<TuningParams, Arc<Measurement>>,
    evaluations: AtomicUsize,
    /// Measurements pre-seeded from the disk tier (0 without one).
    disk_loaded: usize,
    /// Append-only record writer of the on-disk artifact, when one is
    /// attached.
    spill: Option<crate::persist::TierSpill>,
}

impl MeasTier {
    pub(crate) fn new() -> MeasTier {
        MeasTier::assemble(Vec::new(), None)
    }

    /// A tier seeded with disk-loaded measurements and (optionally)
    /// spilling new computations to the same artifact. Seeded entries do
    /// **not** count as evaluations — [`MeasTier::unique_evaluations`]
    /// keeps meaning "points actually computed by this process".
    pub(crate) fn assemble(
        loaded: Vec<Measurement>,
        spill: Option<crate::persist::TierSpill>,
    ) -> MeasTier {
        let map = ShardedOnceMap::new();
        let disk_loaded = loaded.len();
        for m in loaded {
            let params = m.params;
            map.get_or_init(params, move || Arc::new(m));
        }
        MeasTier { map, evaluations: AtomicUsize::new(0), disk_loaded, spill }
    }

    pub(crate) fn unique_evaluations(&self) -> usize {
        self.evaluations.load(Ordering::Relaxed)
    }

    pub(crate) fn disk_loaded(&self) -> usize {
        self.disk_loaded
    }

    pub(crate) fn disk_spilled(&self) -> usize {
        self.spill.as_ref().map_or(0, |s| s.written() as usize)
    }
}

/// Cache telemetry of one evaluator (its tiers plus the model context),
/// the numbers behind the CLI `tune --stats` report. Counters are
/// tier-wide: for a store-backed evaluator they aggregate every sharer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStats {
    /// Distinct tuning points measured (cache misses).
    pub unique_evaluations: usize,
    /// Compile front-ends (unroll + lower) actually run.
    pub front_end_lowerings: usize,
    /// Measurements pre-seeded into this tier from the store's disk
    /// tier (0 for memory-only evaluators).
    pub disk_loaded: usize,
    /// Measurements this tier spilled to the store's disk tier.
    pub disk_spilled: usize,
    /// Program indexes built (process-wide; one per front-end artifact).
    pub index_builds: u64,
    /// Divergence fast-path hits — index-routed analyses that skipped
    /// the dominator/divergence machinery entirely (process-wide).
    pub index_fast_path_hits: u64,
    /// Divergence slow-path hits — analyses that walked precomputed
    /// divergent regions (process-wide).
    pub index_slow_path_hits: u64,
    /// Model-context cache counters (occupancy table, dynamic mix,
    /// `SimReport`).
    pub model: ModelStats,
    /// Per-phase compile profiler snapshot (process-wide wall-clock and
    /// invocation counters for unroll/lower/optimize/regalloc).
    pub phases: oriole_codegen::PhaseTelemetry,
    /// Fleet scheduler counters — all zero for local (single-process)
    /// evaluators; populated by `oriole_fleet::FleetEvaluator`.
    pub fleet: FleetCounters,
}

/// Work-stealing fleet scheduler counters, threaded through
/// [`EvalStats`] so `tune --stats` reports them uniformly. A local
/// evaluator leaves every field zero; a fleet evaluator fills them in
/// from its per-shard telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetCounters {
    /// Shards in the fleet (0 when not running a fleet).
    pub shards: u64,
    /// Point-chunks dispatched to their home shard's queue.
    pub batches_dispatched: u64,
    /// Point-chunks stolen by an idle shard from another's tail.
    pub batches_stolen: u64,
    /// Point-chunks rebalanced off a lost shard onto survivors.
    pub batches_rebalanced: u64,
    /// Shards that were declared lost during the run.
    pub shards_lost: u64,
}

/// Evaluates tuning points for one kernel × GPU × input-size set.
pub struct Evaluator<'a> {
    ast_builder: &'a (dyn Fn(u64) -> KernelAst + Sync),
    gpu: &'a GpuSpec,
    sizes: &'a [u64],
    protocol: EvalProtocol,
    ctx: Arc<ModelContext>,
    asts: Arc<AstTier>,
    front_ends: Arc<FeTier>,
    cache: Arc<MeasTier>,
    /// Present when this evaluator was borrowed from an
    /// [`ArtifactStore`](crate::ArtifactStore): `(store, kernel key)`,
    /// used to re-scope the measurement tier when the protocol changes.
    provenance: Option<(crate::ArtifactStore, String)>,
}

impl<'a> Evaluator<'a> {
    /// Creates a standalone evaluator (private caches) with the paper's
    /// measurement protocol. Accepts any borrowed [`GpuSpec`] —
    /// synthetic and custom devices work without the static registry.
    pub fn new(
        ast_builder: &'a (dyn Fn(u64) -> KernelAst + Sync),
        gpu: &'a GpuSpec,
        sizes: &'a [u64],
    ) -> Evaluator<'a> {
        let protocol = EvalProtocol::default();
        Evaluator {
            ast_builder,
            gpu,
            sizes,
            protocol,
            ctx: Arc::new(ModelContext::for_model(gpu, protocol.model)),
            asts: Arc::new(AstTier::new()),
            front_ends: Arc::new(FeTier::new()),
            cache: Arc::new(MeasTier::new()),
            provenance: None,
        }
    }

    /// Assembles an evaluator over explicit tiers — the
    /// [`ArtifactStore`](crate::ArtifactStore) constructor.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_tiers(
        ast_builder: &'a (dyn Fn(u64) -> KernelAst + Sync),
        gpu: &'a GpuSpec,
        sizes: &'a [u64],
        protocol: EvalProtocol,
        ctx: Arc<ModelContext>,
        asts: Arc<AstTier>,
        front_ends: Arc<FeTier>,
        cache: Arc<MeasTier>,
        provenance: (crate::ArtifactStore, String),
    ) -> Evaluator<'a> {
        debug_assert_eq!(ctx.model_id(), protocol.model, "context serves another backend");
        Evaluator {
            ast_builder,
            gpu,
            sizes,
            protocol,
            ctx,
            asts,
            front_ends,
            cache,
            provenance: Some(provenance),
        }
    }

    /// Target device.
    pub fn gpu(&self) -> &GpuSpec {
        self.gpu
    }

    /// Input sizes (§IV-A: five per benchmark).
    pub fn sizes(&self) -> &[u64] {
        self.sizes
    }

    /// The measurement protocol in effect.
    pub fn protocol(&self) -> EvalProtocol {
        self.protocol
    }

    /// The timing-model backend measurements are estimated with.
    pub fn model(&self) -> ModelId {
        self.protocol.model
    }

    /// Changes the measurement protocol. The measurement tier is
    /// re-scoped — re-fetched from the originating store, or reset for a
    /// standalone evaluator — so measurements taken under one protocol
    /// are never served under another; front-end and AST tiers are
    /// protocol-independent and stay. When the protocol's timing model
    /// changes, the model context is re-scoped the same way (per
    /// `(device, model)`), so report caches never cross backends.
    pub fn set_protocol(&mut self, protocol: EvalProtocol) {
        if protocol == self.protocol {
            return;
        }
        let model_changed = protocol.model != self.protocol.model;
        self.protocol = protocol;
        match &self.provenance {
            Some((store, kernel)) => {
                self.cache = store.meas_tier(kernel, self.gpu, self.sizes, protocol);
                if model_changed {
                    self.ctx = store.context_for(self.gpu, protocol.model);
                }
            }
            None => {
                self.cache = Arc::new(MeasTier::new());
                if model_changed {
                    self.ctx = Arc::new(ModelContext::for_model(self.gpu, protocol.model));
                }
            }
        }
    }

    /// Changes only the objective (see [`Evaluator::set_protocol`]).
    pub fn set_objective(&mut self, objective: Objective) {
        self.set_protocol(EvalProtocol { objective, ..self.protocol });
    }

    /// Changes only the timing-model backend (see
    /// [`Evaluator::set_protocol`]): both the measurement tier and the
    /// model context are re-scoped.
    pub fn set_model(&mut self, model: ModelId) {
        self.set_protocol(EvalProtocol { model, ..self.protocol });
    }

    /// Number of *distinct* variants evaluated so far (cache misses).
    /// Concurrent misses on one point are deduplicated, so hammering a
    /// single point from many threads counts it once. For store-backed
    /// evaluators the count covers every sharer of the measurement tier.
    pub fn unique_evaluations(&self) -> usize {
        self.cache.unique_evaluations()
    }

    /// Number of compile front-ends (unroll + lower) actually run — at
    /// most one per distinct `(size, UIF, CFLAGS)` key, however many
    /// points are evaluated (tier-wide, like
    /// [`Evaluator::unique_evaluations`]).
    pub fn front_end_lowerings(&self) -> usize {
        self.front_ends.lowerings.load(Ordering::Relaxed)
    }

    /// Cache telemetry: tier counters plus the model context's, plus a
    /// snapshot of the process-wide program-index counters.
    pub fn stats(&self) -> EvalStats {
        let idx = oriole_ir::index::telemetry();
        EvalStats {
            unique_evaluations: self.unique_evaluations(),
            front_end_lowerings: self.front_end_lowerings(),
            disk_loaded: self.cache.disk_loaded(),
            disk_spilled: self.cache.disk_spilled(),
            index_builds: idx.index_builds,
            index_fast_path_hits: idx.fast_path_hits,
            index_slow_path_hits: idx.slow_path_hits,
            model: self.ctx.stats(),
            phases: oriole_codegen::profile::telemetry(),
            fleet: FleetCounters::default(),
        }
    }

    /// Per-variant deterministic seed.
    fn seed_for(&self, p: &TuningParams) -> u64 {
        // Simple FNV-style mix over the point's fields.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.protocol.base_seed;
        for v in [
            u64::from(p.tc),
            u64::from(p.bc),
            u64::from(p.uif),
            u64::from(p.pl.kb()),
            u64::from(p.sc),
            u64::from(p.cflags.fast_math),
        ] {
            h ^= v.wrapping_add(0x9e37_79b9_7f4a_7c15);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// The kernel AST for input size `n` (built once per size).
    fn ast_for(&self, n: u64) -> Arc<KernelAst> {
        self.asts.map.get_or_init(n, || Arc::new((self.ast_builder)(n)))
    }

    /// The cached compile front-end for `(n, uif, cflags)`, with its
    /// content-addressed model key computed once per artifact.
    fn front_end_for(&self, n: u64, params: TuningParams) -> Arc<FeArtifact> {
        self.front_ends.map.get_or_init((n, params.uif, params.cflags), || {
            let ast = self.ast_for(n);
            let fe = front_end(&ast, self.gpu, params.uif, params.cflags);
            if fe.is_ok() {
                // Rejected UIFs (`Err`) never reach unroll/lower, so
                // they don't count as lowerings run.
                self.front_ends.lowerings.fetch_add(1, Ordering::Relaxed);
            }
            let key = fe.as_ref().ok().map(ProgramKey::of_front_end);
            Arc::new(FeArtifact { fe, key })
        })
    }

    fn evaluate_uncached(&self, params: TuningParams) -> Measurement {
        let mut per_size_ms = Vec::with_capacity(self.sizes.len());
        let mut occupancy = 0.0;
        let mut regs = 0u32;
        let mut reg_instructions = 0.0;
        for &n in self.sizes {
            let artifact = self.front_end_for(n, params);
            let (fe, key) = match (&artifact.fe, &artifact.key) {
                (Ok(fe), Some(key)) => (fe, key),
                _ => return Measurement::infeasible(params),
            };
            let kernel = match fe.specialize(params) {
                Ok(k) => k,
                Err(_) => return Measurement::infeasible(params),
            };
            let trials = match self.ctx.measure_keyed(
                key,
                &kernel,
                n,
                self.protocol.trials,
                self.seed_for(&params) ^ n,
            ) {
                Ok(t) => t,
                Err(_) => return Measurement::infeasible(params),
            };
            per_size_ms.push((n, trials.selected(self.protocol.protocol)));
            occupancy = trials.report.occupancy.occupancy;
            regs = kernel.regs_per_thread();
            reg_instructions +=
                self.ctx.dynamic_mix_keyed(key, &kernel, n).get(oriole_arch::OpClass::Regs);
        }
        let time_ms = match self.protocol.objective {
            Objective::TotalTime => per_size_ms.iter().map(|(_, t)| t).sum(),
            Objective::LargestSize => per_size_ms.last().map(|(_, t)| *t).unwrap_or(f64::INFINITY),
        };
        Measurement {
            params,
            time_ms,
            per_size_ms,
            feasible: true,
            occupancy,
            regs_allocated: regs,
            reg_instructions,
        }
    }

    /// Evaluates one point (memoized; hits return a shared handle
    /// without cloning the measurement). A newly computed point is
    /// spilled to the tier's disk artifact, when one is attached, before
    /// any waiter observes it — a killed sweep keeps everything it
    /// measured.
    pub fn evaluate(&self, params: TuningParams) -> Arc<Measurement> {
        self.cache.map.get_or_init(params, || {
            self.cache.evaluations.fetch_add(1, Ordering::Relaxed);
            let m = Arc::new(self.evaluate_uncached(params));
            if let Some(spill) = &self.cache.spill {
                spill.append(&m);
            }
            m
        })
    }

    /// Evaluates a batch in parallel; results in input order.
    ///
    /// Workers self-schedule off one atomic cursor (an idle worker
    /// steals the next unclaimed index), writing into a pre-sized vector
    /// of write-once slots. Points duplicated within the batch — or
    /// raced by other callers — are deduplicated by the memo layer.
    pub fn evaluate_batch(&self, points: &[TuningParams]) -> Vec<Arc<Measurement>> {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        if points.len() < 8 || threads < 2 {
            return points.iter().map(|&p| self.evaluate(p)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<Arc<Measurement>>> =
            points.iter().map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(points.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= points.len() {
                        break;
                    }
                    let m = self.evaluate(points[i]);
                    slots[i].set(m).expect("each index is claimed by exactly one worker");
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled"))
            .collect()
    }

    /// Evaluates the entire space (exhaustive sweep), in flat-index
    /// order.
    pub fn evaluate_space(&self, space: &SearchSpace) -> Vec<Arc<Measurement>> {
        let points: Vec<TuningParams> = space.iter().collect();
        self.evaluate_batch(&points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Gpu;
    use oriole_kernels::KernelId;

    fn evaluator<'a>(sizes: &'a [u64]) -> Evaluator<'a> {
        Evaluator::new(&|n| KernelId::Atax.ast(n), Gpu::K20.spec(), sizes)
    }

    #[test]
    fn evaluation_is_deterministic() {
        let sizes = [64u64, 128];
        let ev = evaluator(&sizes);
        let p = TuningParams::with_geometry(128, 48);
        let a = ev.evaluate(p);
        let b = ev.evaluate(p);
        assert_eq!(a, b);
        // A second evaluator reproduces the same numbers.
        let ev2 = evaluator(&sizes);
        assert_eq!(ev2.evaluate(p), a);
    }

    #[test]
    fn cache_counts_unique_points() {
        let sizes = [64u64];
        let ev = evaluator(&sizes);
        let p = TuningParams::with_geometry(128, 48);
        let q = TuningParams::with_geometry(256, 48);
        ev.evaluate(p);
        ev.evaluate(p);
        ev.evaluate(q);
        assert_eq!(ev.unique_evaluations(), 2);
    }

    #[test]
    fn concurrent_misses_on_one_point_deduplicate() {
        // Regression test for the duplicate-evaluation race: many
        // threads hammering one cold point must produce exactly one
        // computation (and identical results).
        let sizes = [64u64];
        let ev = evaluator(&sizes);
        let p = TuningParams::with_geometry(128, 48);
        let results: Vec<Arc<Measurement>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16).map(|_| scope.spawn(|| ev.evaluate(p))).collect();
            handles.into_iter().map(|h| h.join().expect("no panics")).collect()
        });
        assert_eq!(ev.unique_evaluations(), 1, "concurrent misses recomputed the point");
        for m in &results {
            assert_eq!(*m, results[0]);
        }
    }

    #[test]
    fn front_end_runs_once_per_size_uif_cflags_over_fig3_space() {
        // Acceptance criterion: sweeping the paper's full 5,120-point
        // Fig. 3 space performs at most one front-end lowering per
        // distinct (size, UIF, CFLAGS) key — here 1 × 5 × 2 = 10 for
        // 5,120 evaluated points.
        let sizes = [64u64];
        let ev = evaluator(&sizes);
        let space = SearchSpace::paper_default();
        let measurements = ev.evaluate_space(&space);
        assert_eq!(measurements.len(), 5120);
        assert_eq!(ev.unique_evaluations(), 5120);
        let distinct_keys = sizes.len() * space.uif.len() * space.cflags.len();
        assert!(
            ev.front_end_lowerings() <= distinct_keys,
            "{} front-end lowerings for {} distinct (size, UIF, CFLAGS) keys",
            ev.front_end_lowerings(),
            distinct_keys
        );
        // Warm traversal adds neither lowerings nor evaluations.
        let again = ev.evaluate_space(&space);
        assert_eq!(again, measurements);
        assert_eq!(ev.unique_evaluations(), 5120);
        assert_eq!(ev.front_end_lowerings(), distinct_keys);
    }

    #[test]
    fn batch_matches_sequential_and_orders_results() {
        let sizes = [64u64];
        let space = SearchSpace::tiny();
        let points: Vec<TuningParams> = space.iter().collect();
        let ev_batch = evaluator(&sizes);
        let batch = ev_batch.evaluate_batch(&points);
        let ev_seq = evaluator(&sizes);
        let seq: Vec<Arc<Measurement>> = points.iter().map(|&p| ev_seq.evaluate(p)).collect();
        assert_eq!(batch, seq);
        for (m, p) in batch.iter().zip(&points) {
            assert_eq!(m.params, *p);
        }
    }

    #[test]
    fn objective_totals_per_size_times() {
        let sizes = [32u64, 64, 128];
        let ev = evaluator(&sizes);
        let m = ev.evaluate(TuningParams::with_geometry(128, 48));
        assert!(m.feasible);
        assert_eq!(m.per_size_ms.len(), 3);
        let sum: f64 = m.per_size_ms.iter().map(|(_, t)| t).sum();
        assert!((sum - m.time_ms).abs() < 1e-12);
        assert!(m.occupancy > 0.0);
        assert!(m.regs_allocated > 0);
        assert!(m.reg_instructions > 0.0);
    }

    #[test]
    fn infeasible_variant_scores_infinity() {
        // MatVec2D's block-scaled tile at TC=1024 with PreferL1 (16 KiB
        // shared on Kepler): smem = 4 KiB fits; force bigger tiles.
        let builder = |n: u64| {
            let mut ast = KernelId::MatVec2D.ast(n);
            ast.shared[0].elems = 8; // 32 B/thread → 32 KiB at TC=1024
            ast
        };
        let sizes = [64u64];
        let ev = Evaluator::new(&builder, Gpu::K20.spec(), &sizes);
        let mut p = TuningParams::with_geometry(1024, 48);
        p.pl = oriole_codegen::PreferredL1::Kb48; // 16 KiB shared per SM
        let m = ev.evaluate(p);
        assert!(!m.feasible);
        assert_eq!(m.time_ms, f64::INFINITY);
    }

    #[test]
    fn largest_size_objective() {
        let sizes = [32u64, 256];
        let mut ev = evaluator(&sizes);
        ev.set_objective(Objective::LargestSize);
        let m = ev.evaluate(TuningParams::with_geometry(128, 48));
        assert_eq!(m.time_ms, m.per_size_ms[1].1);
    }

    #[test]
    fn protocol_change_rescopes_the_measurement_tier() {
        // Measurements taken under one objective must never be served
        // under another.
        let sizes = [32u64, 256];
        let mut ev = evaluator(&sizes);
        let p = TuningParams::with_geometry(128, 48);
        let total = ev.evaluate(p);
        ev.set_objective(Objective::LargestSize);
        let largest = ev.evaluate(p);
        assert_eq!(largest.time_ms, largest.per_size_ms[1].1);
        assert!(largest.time_ms < total.time_ms);
        // Per-size numbers are protocol-independent and identical.
        assert_eq!(largest.per_size_ms, total.per_size_ms);
    }

    #[test]
    fn model_change_rescopes_context_and_measurements() {
        let sizes = [64u64];
        let mut ev = evaluator(&sizes);
        let p = TuningParams::with_geometry(128, 48);
        let sim = ev.evaluate(p);
        ev.set_model(ModelId::Static);
        assert_eq!(ev.model(), ModelId::Static);
        assert_eq!(ev.stats().model.model, ModelId::Static);
        let stat = ev.evaluate(p);
        assert!(stat.feasible);
        assert_ne!(sim.time_ms, stat.time_ms, "Eq. 6 model units vs simulator ms");
        // Back to the simulator: a fresh tier under the same backend
        // reproduces the original numbers bit-for-bit.
        ev.set_model(ModelId::Simulator);
        assert_eq!(ev.evaluate(p), sim);
    }

    #[test]
    fn evaluator_accepts_non_static_gpu_specs() {
        // A synthetic device built at runtime: the K20 with half the
        // register file. No static registry entry exists for it.
        let custom = GpuSpec { regfile_per_mp: 32_768, ..Gpu::K20.spec().clone() };
        let sizes = [64u64];
        let builder = |n: u64| KernelId::Atax.ast(n);
        let ev = Evaluator::new(&builder, &custom, &sizes);
        let m = ev.evaluate(TuningParams::with_geometry(128, 48));
        assert!(m.feasible);
        // The halved register file must bite somewhere the stock K20
        // doesn't: same variant, stock device, at least as much
        // occupancy.
        let stock = Evaluator::new(&builder, Gpu::K20.spec(), &sizes);
        let sm = stock.evaluate(TuningParams::with_geometry(128, 48));
        assert!(m.occupancy <= sm.occupancy);
    }

    #[test]
    fn stats_report_model_cache_activity() {
        let sizes = [64u64];
        let ev = evaluator(&sizes);
        let space = SearchSpace::tiny();
        ev.evaluate_space(&space);
        let stats = ev.stats();
        assert_eq!(stats.unique_evaluations, space.len());
        assert!(stats.front_end_lowerings > 0);
        // Every point simulates once (distinct params), so the report
        // cache misses once per feasible point; the occupancy table
        // collapses the domain massively.
        assert!(stats.model.report_misses as usize <= space.len());
        assert!(stats.model.occ_hits > stats.model.occ_misses);
    }
}
