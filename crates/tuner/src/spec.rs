//! Parser for the Fig. 3 tuning-specification DSL.
//!
//! Orio annotations embed a `performance_params` block:
//!
//! ```text
//! /*@ begin PerfTuning (
//!   def performance_params {
//!     param TC[] = range(32,1025,32);
//!     param BC[] = range(24,193,24);
//!     param UIF[] = range(1,6);
//!     param PL[] = [16,48];
//!     param SC[] = range(1,6);
//!     param CFLAGS[] = ['', '-use_fast_math'];
//!   }
//!   ...
//! ) @*/
//! ```
//!
//! [`parse_spec`] extracts the `param` declarations (everything else is
//! tolerated and ignored, as Orio's other sections are orthogonal to the
//! search space) and builds a [`SearchSpace`]. `range(a,b[,s])` follows
//! Python semantics: start inclusive, stop exclusive.

use crate::space::SearchSpace;
use oriole_codegen::{CompilerFlags, PreferredL1};
use std::fmt;

/// Specification parse/validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Problem description, including the offending parameter.
    pub msg: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tuning spec error: {}", self.msg)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError { msg: msg.into() }
}

/// One parsed `param NAME[] = ...;` right-hand side.
#[derive(Debug, Clone, PartialEq)]
enum ParamValues {
    Numbers(Vec<i64>),
    Strings(Vec<String>),
}

/// Parses a Fig. 3-style specification into a [`SearchSpace`].
///
/// Unspecified parameters fall back to single-point axes
/// (`UIF=1, PL=16, SC=1, CFLAGS=''`); `TC` and `BC` are required.
pub fn parse_spec(text: &str) -> Result<SearchSpace, SpecError> {
    let mut tc = None;
    let mut bc = None;
    let mut uif = None;
    let mut pl = None;
    let mut sc = None;
    let mut cflags = None;

    for decl in extract_params(text)? {
        let (name, values) = decl;
        match name.as_str() {
            "TC" => tc = Some(numbers_as_u32(&values, "TC")?),
            "BC" => bc = Some(numbers_as_u32(&values, "BC")?),
            "UIF" => uif = Some(numbers_as_u32(&values, "UIF")?),
            "SC" => sc = Some(numbers_as_u32(&values, "SC")?),
            "PL" => {
                let kbs = numbers_as_u32(&values, "PL")?;
                let parsed: Result<Vec<PreferredL1>, SpecError> = kbs
                    .iter()
                    .map(|&kb| {
                        PreferredL1::from_kb(kb)
                            .ok_or_else(|| err(format!("PL value {kb} is not 16 or 48")))
                    })
                    .collect();
                pl = Some(parsed?);
            }
            "CFLAGS" => {
                let ParamValues::Strings(ss) = &values else {
                    return Err(err("CFLAGS must be a list of strings"));
                };
                let parsed: Result<Vec<CompilerFlags>, SpecError> = ss
                    .iter()
                    .map(|s| match s.trim() {
                        "" => Ok(CompilerFlags { fast_math: false }),
                        "-use_fast_math" => Ok(CompilerFlags { fast_math: true }),
                        other => Err(err(format!("unknown compiler flag `{other}`"))),
                    })
                    .collect();
                cflags = Some(parsed?);
            }
            other => return Err(err(format!("unknown parameter `{other}`"))),
        }
    }

    let space = SearchSpace {
        tc: tc.ok_or_else(|| err("missing required param TC"))?,
        bc: bc.ok_or_else(|| err("missing required param BC"))?,
        uif: uif.unwrap_or_else(|| vec![1]),
        pl: pl.unwrap_or_else(|| vec![PreferredL1::Kb16]),
        sc: sc.unwrap_or_else(|| vec![1]),
        cflags: cflags.unwrap_or_else(|| vec![CompilerFlags { fast_math: false }]),
    };
    if space.is_empty() {
        return Err(err("specification produces an empty space"));
    }
    Ok(space)
}

fn numbers_as_u32(values: &ParamValues, name: &str) -> Result<Vec<u32>, SpecError> {
    let ParamValues::Numbers(ns) = values else {
        return Err(err(format!("{name} must be numeric")));
    };
    if ns.is_empty() {
        return Err(err(format!("{name} is empty")));
    }
    ns.iter()
        .map(|&v| u32::try_from(v).map_err(|_| err(format!("{name} value {v} out of range"))))
        .collect()
}

/// Extracts every `param NAME[] = rhs;` declaration.
fn extract_params(text: &str) -> Result<Vec<(String, ParamValues)>, SpecError> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("param ") {
        rest = &rest[pos + "param ".len()..];
        let semi = rest
            .find(';')
            .ok_or_else(|| err("unterminated param declaration (missing `;`)"))?;
        let decl = &rest[..semi];
        rest = &rest[semi + 1..];
        let (lhs, rhs) = decl
            .split_once('=')
            .ok_or_else(|| err(format!("param without `=`: `{decl}`")))?;
        let name = lhs
            .trim()
            .strip_suffix("[]")
            .ok_or_else(|| err(format!("expected `NAME[]`, got `{}`", lhs.trim())))?
            .trim()
            .to_string();
        out.push((name, parse_rhs(rhs.trim())?));
    }
    Ok(out)
}

fn parse_rhs(rhs: &str) -> Result<ParamValues, SpecError> {
    if let Some(args) = rhs.strip_prefix("range(").and_then(|r| r.strip_suffix(')')) {
        let parts: Vec<&str> = args.split(',').map(str::trim).collect();
        let nums: Result<Vec<i64>, SpecError> = parts
            .iter()
            .map(|p| p.parse::<i64>().map_err(|_| err(format!("bad range bound `{p}`"))))
            .collect();
        let nums = nums?;
        let (start, stop, step) = match nums.as_slice() {
            [a, b] => (*a, *b, 1),
            [a, b, s] => (*a, *b, *s),
            _ => return Err(err(format!("range() takes 2 or 3 arguments, got `{rhs}`"))),
        };
        if step <= 0 {
            return Err(err("range() step must be positive"));
        }
        let mut vals = Vec::new();
        let mut v = start;
        while v < stop {
            vals.push(v);
            v += step;
        }
        if vals.is_empty() {
            return Err(err(format!("range `{rhs}` is empty")));
        }
        return Ok(ParamValues::Numbers(vals));
    }
    if let Some(inner) = rhs.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let items: Vec<&str> = inner.split(',').map(str::trim).collect();
        // String list when any item is quoted.
        if items.iter().any(|i| i.starts_with('\'') || i.starts_with('"')) {
            let strings: Result<Vec<String>, SpecError> = items
                .iter()
                .map(|i| {
                    let trimmed = i
                        .trim_matches(|c| c == '\'' || c == '"')
                        .to_string();
                    if i.len() >= 2 {
                        Ok(trimmed)
                    } else if i.is_empty() {
                        Err(err("empty list item"))
                    } else {
                        Ok(trimmed)
                    }
                })
                .collect();
            return Ok(ParamValues::Strings(strings?));
        }
        let nums: Result<Vec<i64>, SpecError> = items
            .iter()
            .map(|i| i.parse::<i64>().map_err(|_| err(format!("bad list item `{i}`"))))
            .collect();
        return Ok(ParamValues::Numbers(nums?));
    }
    Err(err(format!("unrecognized parameter expression `{rhs}`")))
}

/// The paper's Fig. 3 specification, verbatim.
pub const FIG3_SPEC: &str = "\
/*@ begin PerfTuning (
def performance_params {
param TC[] = range(32,1025,32);
param BC[] = range(24,193,24);
param UIF[] = range(1,6);
param PL[] = [16,48];
param SC[] = range(1,6);
param CFLAGS[] = ['', '-use_fast_math'];
}
...
) @*/
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_spec_parses_to_fig3_space() {
        let space = parse_spec(FIG3_SPEC).expect("parses");
        assert_eq!(space.tc.len(), 32);
        assert_eq!(space.tc[0], 32);
        assert_eq!(*space.tc.last().unwrap(), 1024);
        assert_eq!(space.bc, vec![24, 48, 72, 96, 120, 144, 168, 192]);
        assert_eq!(space.uif, vec![1, 2, 3, 4, 5]);
        assert_eq!(space.pl.len(), 2);
        assert_eq!(space.sc, vec![1, 2, 3, 4, 5]);
        assert_eq!(space.cflags.len(), 2);
        assert!(space.cflags[0] == CompilerFlags { fast_math: false });
        assert!(space.cflags[1] == CompilerFlags { fast_math: true });
        assert_eq!(space.len(), 25_600);
    }

    #[test]
    fn defaults_fill_optional_axes() {
        let space = parse_spec(
            "param TC[] = range(64,257,64);\nparam BC[] = [24, 48];",
        )
        .unwrap();
        assert_eq!(space.tc, vec![64, 128, 192, 256]);
        assert_eq!(space.bc, vec![24, 48]);
        assert_eq!(space.uif, vec![1]);
        assert_eq!(space.sc, vec![1]);
        assert_eq!(space.len(), 8);
    }

    #[test]
    fn missing_tc_rejected() {
        let e = parse_spec("param BC[] = [24];").unwrap_err();
        assert!(e.msg.contains("TC"));
    }

    #[test]
    fn unknown_param_rejected() {
        let e = parse_spec("param TC[] = [32];\nparam BC[] = [24];\nparam WAT[] = [1];")
            .unwrap_err();
        assert!(e.msg.contains("WAT"));
    }

    #[test]
    fn bad_pl_value_rejected() {
        let e = parse_spec("param TC[] = [32];\nparam BC[] = [24];\nparam PL[] = [32];")
            .unwrap_err();
        assert!(e.msg.contains("PL value 32"));
    }

    #[test]
    fn bad_cflag_rejected() {
        let e = parse_spec(
            "param TC[] = [32];\nparam BC[] = [24];\nparam CFLAGS[] = ['-O9'];",
        )
        .unwrap_err();
        assert!(e.msg.contains("-O9"));
    }

    #[test]
    fn range_semantics_are_pythonic() {
        let space =
            parse_spec("param TC[] = range(32,96,32);\nparam BC[] = range(24,25);").unwrap();
        assert_eq!(space.tc, vec![32, 64]); // stop exclusive
        assert_eq!(space.bc, vec![24]);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(parse_spec("param TC[] = range(32,96,32)").is_err()); // no `;`
        assert!(parse_spec("param TC = [32];\nparam BC[] = [24];").is_err()); // no []
        assert!(parse_spec("param TC[] = range(96,32,32);\nparam BC[] = [24];").is_err()); // empty
        assert!(parse_spec("param TC[] = range(32,96,-32);\nparam BC[] = [24];").is_err());
        assert!(parse_spec("param TC[] = garbage;\nparam BC[] = [24];").is_err());
        assert!(parse_spec("param TC[] = [x];\nparam BC[] = [24];").is_err());
    }

    #[test]
    fn errors_display() {
        let e = parse_spec("param BC[] = [24];").unwrap_err();
        assert!(e.to_string().contains("tuning spec error"));
    }
}
