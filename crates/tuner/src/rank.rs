//! Ranking and Table V statistics.
//!
//! §IV-A: "The execution times were sorted in ascending order and the
//! ranks were split along the 50th percentile. Rank 1 represents the
//! upper-half of the 50th percentile (good performers), while Rank 2
//! represents the lower portion (poor performers)."

use crate::eval::Measurement;
use std::borrow::Borrow;

/// Splits measurements at the 50th percentile of execution time.
/// Infeasible variants are excluded before ranking. Returns
/// `(rank1_good, rank2_poor)`.
///
/// Accepts any slice of owned, borrowed, or [`Arc`](std::sync::Arc)ed
/// measurements (the evaluation engine hands out shared handles).
pub fn split_ranks<M: Borrow<Measurement>>(
    measurements: &[M],
) -> (Vec<&Measurement>, Vec<&Measurement>) {
    let mut feasible: Vec<&Measurement> =
        measurements.iter().map(Borrow::borrow).filter(|m| m.feasible).collect();
    feasible.sort_by(|a, b| a.time_ms.partial_cmp(&b.time_ms).expect("finite times"));
    let mid = feasible.len() / 2;
    let rank2 = feasible.split_off(mid);
    (feasible, rank2)
}

/// Table V statistics over one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct RankStats {
    /// Variants in the rank.
    pub count: usize,
    /// Occupancy mean (percent, as Table V reports it).
    pub occupancy_mean: f64,
    /// Occupancy standard deviation (percent).
    pub occupancy_std: f64,
    /// Occupancy mode (percent, most frequent value to two decimals).
    pub occupancy_mode: f64,
    /// Mean dynamic register-instruction count.
    pub reg_instr_mean: f64,
    /// Register-instruction standard deviation.
    pub reg_instr_std: f64,
    /// Most frequent allocated register count ("Allocated" column).
    pub regs_allocated_mode: u32,
    /// Thread-count quartiles `(25th, 50th, 75th)`.
    pub thread_quartiles: (f64, f64, f64),
}

/// Computes Table V statistics for a rank.
pub fn rank_stats(rank: &[&Measurement]) -> RankStats {
    if rank.is_empty() {
        return RankStats {
            count: 0,
            occupancy_mean: 0.0,
            occupancy_std: 0.0,
            occupancy_mode: 0.0,
            reg_instr_mean: 0.0,
            reg_instr_std: 0.0,
            regs_allocated_mode: 0,
            thread_quartiles: (0.0, 0.0, 0.0),
        };
    }
    let occs: Vec<f64> = rank.iter().map(|m| m.occupancy * 100.0).collect();
    let regs: Vec<f64> = rank.iter().map(|m| m.reg_instructions).collect();
    let (occ_mean, occ_std) = mean_std(&occs);
    let (reg_mean, reg_std) = mean_std(&regs);

    // Mode over two-decimal occupancy buckets (Table V prints values
    // like 93.75).
    let occupancy_mode = mode_by(&occs, |v| (v * 100.0).round() as i64) / 1.0;
    let regs_allocated_mode =
        mode_by(&rank.iter().map(|m| f64::from(m.regs_allocated)).collect::<Vec<_>>(), |v| {
            v.round() as i64
        })
        .round() as u32;

    let mut threads: Vec<f64> = rank.iter().map(|m| f64::from(m.params.tc)).collect();
    threads.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let thread_quartiles =
        (percentile(&threads, 0.25), percentile(&threads, 0.50), percentile(&threads, 0.75));

    RankStats {
        count: rank.len(),
        occupancy_mean: occ_mean,
        occupancy_std: occ_std,
        occupancy_mode,
        reg_instr_mean: reg_mean,
        reg_instr_std: reg_std,
        regs_allocated_mode,
        thread_quartiles,
    }
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Mode of `values` after bucketing with `key`; returns the (mean) value
/// of the most populous bucket.
fn mode_by(values: &[f64], key: impl Fn(f64) -> i64) -> f64 {
    use std::collections::HashMap;
    let mut buckets: HashMap<i64, (usize, f64)> = HashMap::new();
    for &v in values {
        let e = buckets.entry(key(v)).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += v;
    }
    buckets
        .into_iter()
        .max_by_key(|(k, (count, _))| (*count, *k))
        .map(|(_, (count, sum))| sum / count as f64)
        .unwrap_or(0.0)
}

/// Linear-interpolated percentile of a sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_codegen::TuningParams;

    fn m(tc: u32, time: f64, occ: f64, regs: u32, reg_instr: f64) -> Measurement {
        Measurement {
            params: TuningParams::with_geometry(tc, 48),
            time_ms: time,
            per_size_ms: vec![(64, time)],
            feasible: time.is_finite(),
            occupancy: occ,
            regs_allocated: regs,
            reg_instructions: reg_instr,
        }
    }

    #[test]
    fn split_is_a_partition_by_time() {
        let ms: Vec<Measurement> = (1..=10)
            .map(|i| m(i * 32, f64::from(i), 0.9, 24, 1000.0))
            .collect();
        let (r1, r2) = split_ranks(&ms);
        assert_eq!(r1.len(), 5);
        assert_eq!(r2.len(), 5);
        let worst_good = r1.iter().map(|m| m.time_ms).fold(f64::MIN, f64::max);
        let best_poor = r2.iter().map(|m| m.time_ms).fold(f64::MAX, f64::min);
        assert!(worst_good <= best_poor);
    }

    #[test]
    fn infeasible_variants_excluded() {
        let ms = vec![m(32, 1.0, 0.9, 24, 10.0), m(64, f64::INFINITY, 0.0, 0, 0.0)];
        let (r1, r2) = split_ranks(&ms);
        assert_eq!(r1.len() + r2.len(), 1);
    }

    #[test]
    fn stats_basics() {
        let ms: Vec<Measurement> = vec![
            m(128, 1.0, 0.9375, 24, 100.0),
            m(160, 2.0, 0.9375, 24, 200.0),
            m(192, 3.0, 0.75, 28, 300.0),
        ];
        let refs: Vec<&Measurement> = ms.iter().collect();
        let s = rank_stats(&refs);
        assert_eq!(s.count, 3);
        assert!((s.occupancy_mean - (93.75 + 93.75 + 75.0) / 3.0).abs() < 1e-9);
        assert!((s.occupancy_mode - 93.75).abs() < 1e-9);
        assert_eq!(s.regs_allocated_mode, 24);
        assert!((s.reg_instr_mean - 200.0).abs() < 1e-9);
        assert!(s.reg_instr_std > 0.0);
        let (q25, q50, q75) = s.thread_quartiles;
        assert_eq!(q50, 160.0);
        assert!(q25 < q50 && q50 < q75);
    }

    #[test]
    fn empty_rank_is_zeroed() {
        let s = rank_stats(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.thread_quartiles, (0.0, 0.0, 0.0));
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 1.0), 40.0);
        assert_eq!(percentile(&v, 0.5), 25.0);
        assert_eq!(percentile(&[5.0], 0.75), 5.0);
    }

    #[test]
    fn odd_count_split() {
        let ms: Vec<Measurement> =
            (1..=7).map(|i| m(i * 32, f64::from(i), 0.9, 24, 10.0)).collect();
        let (r1, r2) = split_ranks(&ms);
        // 7/2 = 3 good, 4 poor.
        assert_eq!(r1.len(), 3);
        assert_eq!(r2.len(), 4);
    }
}
