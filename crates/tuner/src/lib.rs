//! # oriole-tuner — the autotuning framework
//!
//! An Orio-style autotuner (§II-C, §III-C) over the compiler substrate
//! and GPU simulator:
//!
//! * [`spec`] — parser for the Fig. 3 tuning-specification DSL
//!   (`param TC[] = range(32,1025,32);` …).
//! * [`space`] — the cartesian search space of Table III, with the
//!   paper's default 5,120-variant instantiation.
//! * [`eval`] — variant evaluation: compile → simulate → ten noisy
//!   trials → fifth selected (§IV-A), parallelized with scoped worker
//!   threads behind a deterministic, order-restoring interface. The
//!   caching tiers (per-size ASTs, shared compile front-ends keyed by
//!   `(size, UIF, CFLAGS)`, a device [`oriole_sim::ModelContext`], and
//!   a sharded measurement memo with in-flight deduplication) make
//!   exhaustive sweeps and stochastic revisits cheap.
//! * [`store`] — the process-level [`ArtifactStore`] evaluators borrow
//!   their tiers from, so repeated and overlapping sweeps (bench bins,
//!   CLI invocations) reuse front-ends, model reports and whole
//!   measurements across evaluators — bit-identically. Model contexts
//!   are keyed per `(GpuSpec, `[`ModelId`]`)` and measurement tiers
//!   carry the model id through [`EvalProtocol`], so the pluggable
//!   timing backends (simulator, static Eq. 6, roofline) share
//!   compilation artifacts but never each other's estimates. With
//!   [`ArtifactStore::with_disk`] the store is **tiered**: measurement
//!   tiers spill to content-addressed on-disk artifacts and reload
//!   bit-identically, so sweeps resume across processes.
//! * [`persist`] — the hand-rolled, versioned, checksummed wire format
//!   under the disk tier (canonical serialization for `GpuSpec`,
//!   [`EvalProtocol`], `TuningParams`, [`Measurement`] and `SimReport`),
//!   plus store maintenance (`scan`/`gc`) for the CLI's
//!   `oriole store` subcommands.
//! * [`search`] — the search algorithms Orio ships (exhaustive, random,
//!   simulated annealing, genetic, Nelder–Mead simplex; §III-C "Current
//!   search algorithms in Orio include…") plus the paper's new
//!   **static-analysis search module**, which prunes the thread axis to
//!   the analyzer's `T*` (and optionally the rule-based band) before
//!   searching.
//! * [`rank`] — the §IV-A ranking protocol: sort by time, split at the
//!   50th percentile into Rank 1 (good) and Rank 2 (poor), and the
//!   Table V statistics over each rank.
//! * [`result`] — experiment records and CSV export.

#![warn(missing_docs)]

pub mod eval;
pub mod persist;
pub mod rank;
pub mod replay;
pub mod result;
pub mod search;
pub mod space;
pub mod spec;
pub mod store;

pub use eval::{EvalProtocol, EvalStats, Evaluator, FleetCounters, Measurement, Objective};
// Re-exported for convenience: the backend selector every protocol and
// store scope carries.
pub use oriole_sim::ModelId;
pub use rank::{rank_stats, split_ranks, RankStats};
pub use result::{
    measurement_csv_row, measurements_csv, TuningRun, MEASUREMENT_CSV_HEADER,
};
pub use replay::{replay, Decision, LogEntry, ReplayReport, TuningLog};
pub use search::{
    AnnealingSearch, ExhaustiveSearch, GeneticSearch, HybridSearch, NelderMeadSearch, Oracle,
    PruneLevel, RandomSearch, SearchResult, Searcher, StaticSearch, StaticSearchReport,
};
pub use persist::{DiskStats, GcReport};
pub use space::SearchSpace;
pub use spec::{parse_spec, SpecError};
pub use store::{ArtifactStore, StoreStats};
