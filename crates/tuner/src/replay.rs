//! Tuning replay and validation — the paper's §VII knowledge-discovery
//! framework.
//!
//! > "We regard the methodology we have developed as a knowledge
//! > discovery framework where the degree of empirical testing can be
//! > 'dialed in' during the autotuning process [...]. By recording the
//! > decisions and code variants at each step, it is also possible to
//! > replay tuning with empirical testing for purpose of validation. In
//! > this way, the framework can continually evaluate the static models
//! > and refine their predictive power."
//!
//! [`TuningLog`] records every decision a search makes (which variant,
//! why, what the static model predicted). [`replay`] re-runs the logged
//! variants against an oracle — typically the empirical evaluator — and
//! reports where the static model's ranking disagreed with measurement,
//! closing the loop the paper describes.

use crate::search::Oracle;
use oriole_codegen::TuningParams;
use std::fmt::Write as _;

/// Why a variant entered the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Visited by the search strategy.
    Explored,
    /// Kept by static pruning (member of the suggested set).
    StaticSuggested,
    /// Rejected by static pruning (outside the suggested set).
    StaticPruned,
    /// Selected as the final best.
    SelectedBest,
}

impl std::fmt::Display for Decision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Decision::Explored => "explored",
            Decision::StaticSuggested => "static-suggested",
            Decision::StaticPruned => "static-pruned",
            Decision::SelectedBest => "selected-best",
        };
        f.write_str(s)
    }
}

/// One logged step.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Sequence number in decision order.
    pub step: usize,
    /// The variant concerned.
    pub params: TuningParams,
    /// Why it was recorded.
    pub decision: Decision,
    /// The static model's predicted cost, if one was consulted.
    pub predicted: Option<f64>,
    /// The measured objective, if the step measured (None for purely
    /// static decisions — the whole point of the paper).
    pub measured: Option<f64>,
}

/// An append-only record of a tuning session.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TuningLog {
    entries: Vec<LogEntry>,
}

impl TuningLog {
    /// An empty log.
    pub fn new() -> TuningLog {
        TuningLog::default()
    }

    /// Appends a step.
    pub fn record(
        &mut self,
        params: TuningParams,
        decision: Decision,
        predicted: Option<f64>,
        measured: Option<f64>,
    ) {
        let step = self.entries.len();
        self.entries.push(LogEntry { step, params, decision, predicted, measured });
    }

    /// All entries in decision order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Entries with a given decision kind.
    pub fn with_decision(&self, decision: Decision) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter().filter(move |e| e.decision == decision)
    }

    /// Serializes to a line-based text format (one `step|decision|params…`
    /// record per line) for archival next to experiment outputs.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# oriole tuning log v1\n");
        for e in &self.entries {
            let p = &e.params;
            let _ = writeln!(
                out,
                "{}|{}|tc={} bc={} uif={} pl={} sc={} fm={}|pred={}|meas={}",
                e.step,
                e.decision,
                p.tc,
                p.bc,
                p.uif,
                p.pl.kb(),
                p.sc,
                p.cflags.fast_math,
                e.predicted.map_or("-".into(), |v| format!("{v:.6}")),
                e.measured.map_or("-".into(), |v| format!("{v:.6}")),
            );
        }
        out
    }
}

/// Result of replaying a log against an oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// `(entry, replayed objective)` for every replayed variant.
    pub outcomes: Vec<(LogEntry, f64)>,
    /// Fraction of (prediction-carrying) pairs the static model ordered
    /// the same way the oracle does.
    pub prediction_agreement: f64,
    /// The best variant found during replay.
    pub best: Option<(TuningParams, f64)>,
    /// Validation verdict: among replayed variants, was any
    /// `StaticPruned` one more than `tolerance` better than the best
    /// `StaticSuggested` one? If so the static model pruned away a
    /// winner — the "refine the predictive power" signal of §VII.
    pub pruned_winner: Option<(TuningParams, f64)>,
}

/// Replays every logged variant against `oracle` (deduplicated, in first-
/// seen order) and validates the static decisions.
///
/// `tolerance` is the relative slack for declaring a pruned variant an
/// actual winner (e.g. 0.05 = must beat the suggested best by >5%).
pub fn replay(log: &TuningLog, oracle: &dyn Oracle, tolerance: f64) -> ReplayReport {
    let mut seen: Vec<TuningParams> = Vec::new();
    let mut unique_entries: Vec<&LogEntry> = Vec::new();
    for e in log.entries() {
        if !seen.contains(&e.params) {
            seen.push(e.params);
            unique_entries.push(e);
        }
    }
    let values = oracle.eval_many(&seen);
    let outcomes: Vec<(LogEntry, f64)> = unique_entries
        .iter()
        .zip(values.iter())
        .map(|(e, v)| ((*e).clone(), *v))
        .collect();

    // Prediction-vs-replay ordering agreement.
    let with_pred: Vec<(f64, f64)> = outcomes
        .iter()
        .filter_map(|(e, v)| e.predicted.map(|p| (p, *v)))
        .collect();
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..with_pred.len() {
        for j in (i + 1)..with_pred.len() {
            let dp = with_pred[i].0 - with_pred[j].0;
            let dm = with_pred[i].1 - with_pred[j].1;
            if dp == 0.0 || dm == 0.0 {
                continue;
            }
            total += 1;
            if (dp > 0.0) == (dm > 0.0) {
                agree += 1;
            }
        }
    }
    let prediction_agreement = if total == 0 { 1.0 } else { agree as f64 / total as f64 };

    let best = outcomes
        .iter()
        .filter(|(_, v)| v.is_finite())
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .map(|(e, v)| (e.params, *v));

    // Pruned-winner validation.
    let best_suggested = outcomes
        .iter()
        .filter(|(e, _)| e.decision == Decision::StaticSuggested)
        .map(|(_, v)| *v)
        .fold(f64::INFINITY, f64::min);
    let pruned_winner = outcomes
        .iter()
        .filter(|(e, v)| {
            e.decision == Decision::StaticPruned
                && v.is_finite()
                && *v < best_suggested * (1.0 - tolerance)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .map(|(e, v)| (e.params, *v));

    ReplayReport { outcomes, prediction_agreement, best, pruned_winner }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TcOracle;
    impl Oracle for TcOracle {
        fn eval(&self, p: TuningParams) -> f64 {
            f64::from(p.tc)
        }
    }

    fn p(tc: u32) -> TuningParams {
        TuningParams::with_geometry(tc, 48)
    }

    #[test]
    fn log_records_in_order_and_filters() {
        let mut log = TuningLog::new();
        log.record(p(128), Decision::StaticSuggested, Some(1.0), None);
        log.record(p(256), Decision::StaticPruned, Some(2.0), None);
        log.record(p(128), Decision::SelectedBest, Some(1.0), Some(0.9));
        assert_eq!(log.entries().len(), 3);
        assert_eq!(log.entries()[2].step, 2);
        assert_eq!(log.with_decision(Decision::StaticPruned).count(), 1);
    }

    #[test]
    fn text_format_round_readable() {
        let mut log = TuningLog::new();
        log.record(p(64), Decision::Explored, None, Some(1.5));
        let text = log.to_text();
        assert!(text.contains("0|explored|tc=64"));
        assert!(text.contains("meas=1.5"));
        assert!(text.contains("pred=-"));
    }

    #[test]
    fn replay_dedups_and_finds_best() {
        let mut log = TuningLog::new();
        log.record(p(512), Decision::Explored, None, None);
        log.record(p(128), Decision::Explored, None, None);
        log.record(p(512), Decision::SelectedBest, None, None); // duplicate params
        let report = replay(&log, &TcOracle, 0.05);
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.best.unwrap().0.tc, 128);
    }

    #[test]
    fn replay_flags_pruned_winner() {
        // The static model suggested TC=512 but pruned TC=128, which the
        // oracle says is 4× better — the §VII refinement signal.
        let mut log = TuningLog::new();
        log.record(p(512), Decision::StaticSuggested, Some(0.5), None);
        log.record(p(128), Decision::StaticPruned, Some(2.0), None);
        let report = replay(&log, &TcOracle, 0.05);
        let (winner, v) = report.pruned_winner.expect("flags the pruned winner");
        assert_eq!(winner.tc, 128);
        assert_eq!(v, 128.0);
        // And the bad prediction shows up as disagreement.
        assert!(report.prediction_agreement < 0.5);
    }

    #[test]
    fn replay_quiet_when_static_was_right() {
        let mut log = TuningLog::new();
        log.record(p(128), Decision::StaticSuggested, Some(1.0), None);
        log.record(p(512), Decision::StaticPruned, Some(4.0), None);
        let report = replay(&log, &TcOracle, 0.05);
        assert!(report.pruned_winner.is_none());
        assert_eq!(report.prediction_agreement, 1.0);
    }

    #[test]
    fn empty_log_replays_cleanly() {
        let report = replay(&TuningLog::new(), &TcOracle, 0.05);
        assert!(report.outcomes.is_empty());
        assert!(report.best.is_none());
        assert_eq!(report.prediction_agreement, 1.0);
    }
}
