//! End-to-end service test across **real process boundaries**: a
//! spawned `oriole serve` daemon, concurrent `oriole tune --remote`
//! client processes, a kill mid-sweep, and store verification — the
//! acceptance scenario of the sharded-tuner-service PR.
//!
//! What must hold:
//! * two concurrent remote clients print byte-identical output, equal
//!   to a local (in-process evaluation) run of the same experiment;
//! * a warm re-run against the daemon reports **0** remote
//!   computations;
//! * a client killed mid-sweep leaves the daemon serving and its store
//!   directory `verify`-clean and resumable.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::Duration;

fn oriole() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oriole-cli"))
}

fn run_ok(args: &[&str]) -> String {
    let out = oriole().args(args).output().expect("spawn oriole");
    assert!(
        out.status.success(),
        "`oriole {}` failed:\nstdout: {}\nstderr: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

struct Daemon {
    child: Child,
    addr: String,
    /// Kept open for the daemon's lifetime: dropping the pipe's read
    /// end would make the daemon's own shutdown summary fail to print.
    stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    /// Spawns `oriole serve` on an ephemeral port over `store_dir` and
    /// parses the actual address out of the startup banner.
    fn spawn(store_dir: &Path) -> Daemon {
        let mut child = oriole()
            .args(["serve", "--addr", "127.0.0.1:0", "--store-dir"])
            .arg(store_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("read banner");
        let addr = banner
            .split("listening on ")
            .nth(1)
            .and_then(|r| r.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in banner `{banner}`"))
            .to_string();
        Daemon { child, addr, stdout }
    }

    /// Graceful stop: `oriole service shutdown --remote`, then reap the
    /// process (the daemon drains in-flight work before exiting).
    fn shutdown(mut self) {
        let out = run_ok(&["service", "shutdown", "--remote", &self.addr]);
        assert!(out.contains("shutting down"), "{out}");
        let status = self.child.wait().expect("daemon exit");
        assert!(status.success(), "daemon exited with {status}");
        let mut summary = String::new();
        use std::io::Read as _;
        self.stdout.read_to_string(&mut summary).expect("read summary");
        assert!(summary.contains("shut down after"), "{summary}");
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oriole-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn daemon_serves_concurrent_clients_bit_identically_and_survives_a_killed_client() {
    let store_dir = temp_dir("svc");
    let daemon = Daemon::spawn(&store_dir);
    let addr = daemon.addr.clone();

    // --- Phase 1: two concurrent remote clients vs one local run. ---
    let tune_flags =
        ["tune", "--kernel", "atax", "--gpu", "k20", "--strategy", "exhaustive", "--sizes", "32"];
    let spawn_client = || {
        oriole()
            .args(tune_flags)
            .args(["--remote", &addr])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn client")
    };
    let (a, b) = (spawn_client(), spawn_client());
    let collect = |c: Child| -> Output { c.wait_with_output().expect("client exit") };
    let (a, b) = (collect(a), collect(b));
    assert!(a.status.success(), "client A: {}", String::from_utf8_lossy(&a.stderr));
    assert!(b.status.success(), "client B: {}", String::from_utf8_lossy(&b.stderr));
    assert_eq!(a.stdout, b.stdout, "concurrent clients must print byte-identical results");

    // A third process evaluates the same experiment locally (its own
    // fresh in-process store): byte-identical output again.
    let local = run_ok(&tune_flags);
    assert_eq!(
        String::from_utf8(a.stdout).unwrap(),
        local,
        "remote evaluation must be indistinguishable from local"
    );

    // --- Phase 2: warm re-run computes nothing on the daemon. ---
    // Comma-anchored so a regressed "5120 computed remotely" can never
    // satisfy the check by substring accident.
    let warm = run_ok(&[&tune_flags[..], &["--remote", &addr, "--stats"]].concat());
    assert!(
        warm.contains(", 0 computed remotely"),
        "warm re-run must be served from the shared store:\n{warm}"
    );

    // --- Phase 3: kill a client mid-sweep on a fresh scope. ---
    let mut victim = oriole()
        .args([
            "tune", "--kernel", "bicg", "--gpu", "k20", "--strategy", "exhaustive", "--sizes",
            "32,64", "--remote", &addr,
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim client");
    // Give it time to get its evaluate batch in flight, then kill it.
    std::thread::sleep(Duration::from_millis(120));
    victim.kill().expect("kill client");
    let _ = victim.wait();

    // The daemon must still be serving other clients.
    let ping = run_ok(&["service", "ping", "--remote", &addr]);
    assert!(ping.contains("alive"), "{ping}");

    // --- Phase 4: graceful shutdown drains, then the store verifies
    // clean — no torn records from the killed client's sweep. ---
    daemon.shutdown();
    let store_dir_s = store_dir.to_string_lossy().into_owned();
    let verify = run_ok(&["store", "verify", "--store-dir", &store_dir_s]);
    assert!(verify.contains("0 problem(s)"), "{verify}");

    // --- Phase 5: resumable. A fresh daemon over the same directory
    // serves the interrupted scope to completion, and the phase-1
    // scope stays fully warm (0 computed). ---
    let daemon = Daemon::spawn(&store_dir);
    let addr = daemon.addr.clone();
    let resumed = run_ok(&[
        "tune", "--kernel", "bicg", "--gpu", "k20", "--strategy", "exhaustive", "--sizes",
        "32,64", "--remote", &addr,
    ]);
    assert!(resumed.contains("best:"), "{resumed}");
    let warm = run_ok(&[&tune_flags[..], &["--remote", &addr, "--stats"]].concat());
    assert!(warm.contains(", 0 computed remotely"), "{warm}");
    let best = |s: &str| s.lines().find(|l| l.starts_with("best:")).unwrap().to_string();
    assert_eq!(best(&warm), best(&local), "resumed store serves the identical best");
    daemon.shutdown();

    let verify = run_ok(&["store", "verify", "--store-dir", &store_dir_s]);
    assert!(verify.contains("0 problem(s)"), "{verify}");
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn serve_rejects_a_store_dir_that_is_a_file() {
    let file = std::env::temp_dir().join(format!("oriole-e2e-file-{}", std::process::id()));
    std::fs::write(&file, "not a dir").unwrap();
    let out = oriole()
        .args(["serve", "--addr", "127.0.0.1:0", "--store-dir"])
        .arg(&file)
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "serve must refuse a file as store dir");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not a directory"), "{stderr}");
    let _ = std::fs::remove_file(&file);
}
