//! End-to-end fleet test across **real process boundaries**: three
//! spawned `oriole serve` daemons with disjoint store directories, a
//! `tune --fleet` sweep byte-diffed against a local run, a SIGKILL of
//! one daemon mid-sweep, and store verification on the survivors —
//! the acceptance scenario of the oriole_fleet PR.
//!
//! What must hold:
//! * a 3-daemon fleet sweep prints byte-identical output to a local
//!   (in-process evaluation) run of the same experiment;
//! * a warm re-run against the same fleet is byte-identical again;
//! * with one daemon SIGKILLed mid-sweep the client still completes
//!   with byte-identical output (the scheduler rebalances the dead
//!   shard's chunks onto the survivors);
//! * the surviving daemons' stores `verify` clean afterwards — no
//!   torn records from the rebalanced sweep.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn oriole() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oriole-cli"))
}

fn run_ok(args: &[&str]) -> String {
    let out = oriole().args(args).output().expect("spawn oriole");
    assert!(
        out.status.success(),
        "`oriole {}` failed:\nstdout: {}\nstderr: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

struct Daemon {
    child: Child,
    addr: String,
    /// Kept open for the daemon's lifetime: dropping the pipe's read
    /// end would make the daemon's own shutdown summary fail to print.
    stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    /// Spawns `oriole serve` on an ephemeral port over `store_dir` and
    /// parses the actual address out of the startup banner.
    fn spawn(store_dir: &Path) -> Daemon {
        let mut child = oriole()
            .args(["serve", "--addr", "127.0.0.1:0", "--store-dir"])
            .arg(store_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("read banner");
        let addr = banner
            .split("listening on ")
            .nth(1)
            .and_then(|r| r.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in banner `{banner}`"))
            .to_string();
        Daemon { child, addr, stdout }
    }

    /// Graceful stop: `oriole service shutdown --remote`, then reap the
    /// process (the daemon drains in-flight work before exiting).
    fn shutdown(mut self) {
        let out = run_ok(&["service", "shutdown", "--remote", &self.addr]);
        assert!(out.contains("shutting down"), "{out}");
        let status = self.child.wait().expect("daemon exit");
        assert!(status.success(), "daemon exited with {status}");
        let mut summary = String::new();
        use std::io::Read as _;
        self.stdout.read_to_string(&mut summary).expect("read summary");
        assert!(summary.contains("shut down after"), "{summary}");
    }

    /// Hard stop: SIGKILL, no drain, no goodbye — simulates a crashed
    /// or partitioned shard.
    fn kill(mut self) {
        self.child.kill().expect("kill daemon");
        let _ = self.child.wait();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oriole-fleet-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn three_daemon_fleet_matches_local_and_survives_a_sigkilled_shard() {
    let stores: Vec<PathBuf> = (0..3).map(|i| temp_dir(&format!("s{i}"))).collect();
    let mut daemons: Vec<Daemon> = stores.iter().map(|d| Daemon::spawn(d)).collect();
    let fleet_arg =
        daemons.iter().map(|d| d.addr.as_str()).collect::<Vec<_>>().join(",");

    // --- Phase 1: cold fleet sweep vs local run, byte-for-byte. ---
    // Small chunks (--batch-points 4) so the work actually spreads
    // across shards instead of landing as one chunk on the home shard.
    let tune_flags =
        ["tune", "--kernel", "atax", "--gpu", "k20", "--strategy", "exhaustive", "--sizes", "32"];
    let local = run_ok(&tune_flags);
    let fleet = run_ok(
        &[&tune_flags[..], &["--fleet", &fleet_arg, "--batch-points", "4"]].concat(),
    );
    assert_eq!(fleet, local, "fleet evaluation must be indistinguishable from local");

    // --- Phase 2: warm re-run over the same fleet, identical again.
    // (A chunk may land on a different shard than the one that
    // computed it last time, so the stores converge rather than
    // guarantee zero recomputation — the *output* must not move.) ---
    let warm = run_ok(
        &[&tune_flags[..], &["--fleet", &fleet_arg, "--batch-points", "4"]].concat(),
    );
    assert_eq!(warm, local, "warm fleet re-run must be byte-identical");

    // A manifest file names the same fleet: same answer.
    let manifest = temp_dir("manifest").with_extension("txt");
    std::fs::write(&manifest, format!("# fleet under test\n{}\n", fleet_arg.replace(',', "\n")))
        .expect("write manifest");
    let via_manifest = run_ok(
        &[
            &tune_flags[..],
            &["--fleet", &format!("@{}", manifest.display()), "--batch-points", "4"],
        ]
        .concat(),
    );
    assert_eq!(via_manifest, local, "@manifest fleet spec must behave like the inline list");
    let _ = std::fs::remove_file(&manifest);

    // --- Phase 3: SIGKILL one daemon mid-sweep on a fresh scope. ---
    // Tight client policy so the dead shard is detected in seconds,
    // not after the full default backoff ladder.
    let local_bicg = run_ok(&[
        "tune", "--kernel", "bicg", "--gpu", "k20", "--strategy", "exhaustive", "--sizes",
        "32,64",
    ]);
    let victim_sweep = oriole()
        .args([
            "tune", "--kernel", "bicg", "--gpu", "k20", "--strategy", "exhaustive", "--sizes",
            "32,64", "--fleet", &fleet_arg, "--batch-points", "2", "--rpc-timeout", "2000",
            "--retries", "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn fleet sweep");
    // Give the sweep time to get chunks in flight on every shard, then
    // hard-kill one daemon. Whether the kill lands mid-sweep or the
    // sweep already drained, the output contract is the same.
    std::thread::sleep(Duration::from_millis(100));
    daemons.remove(2).kill();
    let out = victim_sweep.wait_with_output().expect("sweep exit");
    assert!(
        out.status.success(),
        "fleet sweep must survive a killed shard:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        local_bicg,
        "a killed shard must not change the answer"
    );

    // --- Phase 4: the survivors keep serving, then shut down clean
    // and their stores verify with no torn records. ---
    let survivor_arg =
        daemons.iter().map(|d| d.addr.as_str()).collect::<Vec<_>>().join(",");
    let rerun = run_ok(&[
        "tune", "--kernel", "bicg", "--gpu", "k20", "--strategy", "exhaustive", "--sizes",
        "32,64", "--fleet", &survivor_arg, "--batch-points", "2",
    ]);
    assert_eq!(rerun, local_bicg, "the surviving fleet must still serve the scope");

    for daemon in daemons {
        daemon.shutdown();
    }
    for dir in stores.iter().take(2) {
        let dir_s = dir.to_string_lossy().into_owned();
        let verify = run_ok(&["store", "verify", "--store-dir", &dir_s]);
        assert!(verify.contains("0 problem(s)"), "store {dir_s}:\n{verify}");
    }
    for dir in &stores {
        let _ = std::fs::remove_dir_all(dir);
    }
}
