//! Minimal flag parser (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: positional subcommand plus `--key value` /
/// `--switch` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Known boolean switches (present/absent, no value).
const SWITCHES: &[&str] = &["fast-math", "csv", "quiet", "stats", "dry-run"];

impl Args {
    /// Parses everything after the subcommand.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            let name = token
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got `{token}`"))?;
            if SWITCHES.contains(&name) {
                args.switches.push(name.to_string());
                i += 1;
            } else {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                args.flags.insert(name.to_string(), value.clone());
                i += 2;
            }
        }
        Ok(args)
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// An optional numeric flag with a default.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{name}: `{v}`")),
        }
    }

    /// A boolean switch.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Comma-separated u64 list flag with default.
    pub fn u64_list_or(&self, name: &str, default: &[u64]) -> Result<Vec<u64>, String> {
        match self.flags.get(name) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|s| s.trim().parse().map_err(|_| format!("bad --{name} item `{s}`")))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_switches() {
        let a = Args::parse(&sv(&["--kernel", "atax", "--n", "256", "--fast-math"])).unwrap();
        assert_eq!(a.required("kernel").unwrap(), "atax");
        assert_eq!(a.num_or::<u64>("n", 0).unwrap(), 256);
        assert!(a.switch("fast-math"));
        assert!(!a.switch("csv"));
        assert_eq!(a.optional("gpu"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse(&sv(&["kernel"])).is_err());
        assert!(Args::parse(&sv(&["--kernel"])).is_err());
        let a = Args::parse(&sv(&["--n", "abc"])).unwrap();
        assert!(a.num_or::<u64>("n", 0).is_err());
    }

    #[test]
    fn lists_parse() {
        let a = Args::parse(&sv(&["--sizes", "32, 64,128"])).unwrap();
        assert_eq!(a.u64_list_or("sizes", &[]).unwrap(), vec![32, 64, 128]);
        let b = Args::parse(&sv(&[])).unwrap();
        assert_eq!(b.u64_list_or("sizes", &[8, 16]).unwrap(), vec![8, 16]);
    }

    #[test]
    fn missing_required_flag_reports_name() {
        let a = Args::parse(&sv(&[])).unwrap();
        let err = a.required("gpu").unwrap_err();
        assert!(err.contains("--gpu"));
    }
}
