//! Subcommand implementations. Every command returns its output as a
//! `String` so the whole surface is unit-testable without process
//! spawning.

use crate::args::Args;
use oriole_arch::{Gpu, ALL_GPUS};
use oriole_codegen::{compile, CompilerFlags, PreferredL1, TuningParams};
use oriole_core::predict::predict_time_with;
use oriole_core::{analyze_in, report, suggest};
use oriole_fleet::{FleetEvaluator, FleetSpec};
use oriole_kernels::KernelId;
use oriole_service::{
    Client, CoalesceConfig, EvalScope, RemoteEvaluator, RetryPolicy, ServeConfig, Server,
    ServiceStats,
};
use oriole_sim::{ModelId, TrialProtocol};
use oriole_tuner::{
    measurements_csv, parse_spec, replay, AnnealingSearch, ArtifactStore, EvalProtocol, EvalStats,
    ExhaustiveSearch, GeneticSearch, HybridSearch, NelderMeadSearch, Oracle, RandomSearch,
    SearchSpace, Searcher, StaticSearch,
};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::OnceLock;

/// The process-level artifact store: every command of this process —
/// and every `run()` call in one embedding process — shares front-ends,
/// model caches and measurements. Sharing is keyed so results are
/// bit-identical to throwaway evaluators; it only changes wall-clock.
fn store() -> &'static ArtifactStore {
    static STORE: OnceLock<ArtifactStore> = OnceLock::new();
    STORE.get_or_init(ArtifactStore::new)
}

/// The store a command runs against: with `--store-dir` a disk-backed
/// store over that directory (measurement tiers load from and spill to
/// it, so invocations resume each other across processes), otherwise a
/// handle to the memory-only process store. [`ArtifactStore`] is a
/// cheap shared handle either way.
fn resolve_store(args: &Args) -> Result<ArtifactStore, String> {
    match args.optional("store-dir") {
        Some(dir) => ArtifactStore::with_disk(dir)
            .map_err(|e| format!("cannot open store dir `{dir}`: {e}")),
        None => Ok(store().clone()),
    }
}

/// Dispatches a full command line.
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some(cmd) = argv.first() else {
        return Ok(usage());
    };
    if cmd == "store" {
        // `store` takes a positional action (`stats`/`verify`/`gc`)
        // before its flags.
        return cmd_store(&argv[1..]);
    }
    if cmd == "service" {
        // So does `service` (`ping`/`stats`/`shutdown`).
        return cmd_service(&argv[1..]);
    }
    let args = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(usage()),
        "gpus" => cmd_gpus(),
        "models" => cmd_models(),
        "analyze" => cmd_analyze(&args),
        "occupancy" => cmd_occupancy(&args),
        "suggest" => cmd_suggest(&args),
        "simulate" => cmd_simulate(&args),
        "disasm" => cmd_disasm(&args),
        "tune" => cmd_tune(&args),
        "serve" => cmd_serve(&args),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn usage() -> String {
    "\
oriole — autotuning GPU kernels via static and predictive analysis

commands:
  gpus                                   list the Table I GPU database
  models                                 list the timing-model backends
  analyze   --kernel K --gpu G --n N     full static analysis report
  occupancy --gpu G --tc T [--regs R --smem S]
                                         occupancy-calculator panels
  suggest   --kernel K --gpu G [--n N]   Table VII parameter suggestion
  simulate  --kernel K --gpu G --n N     one simulated execution
  disasm    --kernel K --gpu G           print the disassembly listing
  tune      --kernel K --gpu G --strategy S
                                         run the autotuner (S: exhaustive,
                                         random, anneal, genetic,
                                         neldermead, static, static-rules,
                                         hybrid [--dial 0.05])
  store     {stats|verify|gc} --store-dir DIR
                                         inspect / verify / garbage-collect
                                         a persistent artifact store
                                         (gc honors --dry-run: report only)
  serve     [--addr 127.0.0.1:7733] [--store-dir DIR]
            [--workers N] [--max-inflight N] [--pipeline-depth N]
            [--request-timeout MS] [--idle-timeout MS]
                                         run the tuner daemon: one shared
                                         artifact store served to remote
                                         clients until `service shutdown`;
                                         saturation answers `busy` (shed,
                                         never hung), idle connections
                                         are reaped, and each connection
                                         may pipeline up to
                                         --pipeline-depth requests with
                                         out-of-order responses
  service   {ping|stats|shutdown} --remote ADDR
                                         probe / inspect / stop a daemon
  service   fleet-stats --fleet ADDRS|@FILE
                                         per-shard + fleet-wide daemon
                                         telemetry (unreachable shards
                                         reported, not fatal)

common variant flags: --tc --bc --uif --pl --sc --fast-math
model flag (tune/simulate/analyze): --model {sim,static,roofline}
            select the timing backend (default sim; static reports Eq. 6
            model units, not ms — see `models`)
store flag (tune/simulate): --store-dir DIR
            persist measurement tiers to DIR (content-addressed,
            checksummed artifacts): a re-run against the same DIR —
            even in another process — resumes as pure cache hits with
            bit-identical results; corrupt or version-skewed artifacts
            are recomputed, never trusted
remote flag (tune/simulate): --remote ADDR
            evaluate through a running `oriole serve` daemon instead of
            in-process: concurrent clients share the daemon's store
            (front-ends, contexts, measurements) and results are
            bit-identical to local evaluation. Mutually exclusive with
            --store-dir — the daemon owns the store. Deadline/retry
            knobs: --rpc-timeout MS (per-exchange deadline, default
            10000) and --retries N (transparent retry of idempotent
            verbs with backoff + jitter, default 4; 0 = fail fast).
            Pipelining knobs (tune): --batch-points N (points per
            coalesced evaluate frame, default 64), --pipeline-depth N
            (frames in flight per connection, default 8),
            --flush-idle-us US|auto (coalesce window for concurrent
            misses, default 200; `auto` sizes it from the observed
            round-trip time; a lone sequential search never waits).
fleet flag (tune): --fleet ADDRS|@FILE
            evaluate across N daemons (comma-separated addresses, or a
            manifest file with one address per line): each scope's
            chunks enqueue on its hash-assigned home shard, idle shards
            steal from the busiest queue's tail, and a lost shard's
            queue rebalances onto survivors — results stay
            bit-identical to a local run. Each daemon must own its own
            --store-dir (or none). --batch-points doubles as the
            work-stealing chunk granule; --rpc-timeout/--retries bound
            each shard exchange. Mutually exclusive with --remote and
            --store-dir.
tune flags: --budget B --sizes 32,64,... --spec FILE --seed N --csv
            --stats (print cache telemetry: active timing model, unique
            evaluations, lowerings, disk loads/spills, occupancy/mix/
            report hit rates — per backend, since caches never cross
            models; with --remote: client fetches plus daemon-side
            serving and store counters)
"
    .to_string()
}

fn parse_gpu(args: &Args) -> Result<Gpu, String> {
    let name = args.required("gpu")?;
    Gpu::parse(name).ok_or_else(|| format!("unknown GPU `{name}` (try M2050/K20/M40/P100)"))
}

fn parse_kernel(args: &Args) -> Result<KernelId, String> {
    let name = args.required("kernel")?;
    KernelId::parse(name)
        .ok_or_else(|| format!("unknown kernel `{name}` (try atax/bicg/ex14fj/matvec2d)"))
}

fn parse_model(args: &Args) -> Result<ModelId, String> {
    match args.optional("model") {
        None => Ok(ModelId::default()),
        Some(name) => ModelId::parse(name)
            .ok_or_else(|| format!("unknown model `{name}` (try sim/static/roofline)")),
    }
}

fn parse_params(args: &Args) -> Result<TuningParams, String> {
    let pl_kb: u32 = args.num_or("pl", 16)?;
    Ok(TuningParams {
        tc: args.num_or("tc", 128)?,
        bc: args.num_or("bc", 48)?,
        uif: args.num_or("uif", 1)?,
        pl: PreferredL1::from_kb(pl_kb).ok_or_else(|| format!("--pl must be 16 or 48, got {pl_kb}"))?,
        sc: args.num_or("sc", 1)?,
        cflags: CompilerFlags { fast_math: args.switch("fast-math") },
    })
}

fn cmd_gpus() -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<7} {:<8} {:>4} {:>4} {:>6} {:>10} {:>9} {:>10} {:>9}",
        "name", "family", "cc", "SMs", "cores", "clock MHz", "regs/SM", "shmem/SM", "warps/SM"
    );
    for gpu in ALL_GPUS {
        let s = gpu.spec();
        let _ = writeln!(
            out,
            "{:<7} {:<8} {:>4} {:>4} {:>6} {:>10} {:>9} {:>10} {:>9}",
            s.name,
            s.family.to_string(),
            s.compute_capability.to_string(),
            s.multiprocessors,
            s.total_cores(),
            s.gpu_clock_mhz,
            s.regfile_per_mp,
            s.shmem_per_mp,
            s.warps_per_mp
        );
    }
    Ok(out)
}

fn cmd_models() -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(out, "timing-model backends (--model <name> on tune/simulate/analyze):");
    for id in ModelId::ALL {
        let marker = if id == ModelId::default() { "*" } else { " " };
        let _ = writeln!(out, " {marker} {:<9} {}", id.name(), id.describe());
    }
    let _ = writeln!(out, "(* = default; all backends share one launch-feasibility gate)");
    Ok(out)
}

fn cmd_analyze(args: &Args) -> Result<String, String> {
    let gpu = parse_gpu(args)?;
    let kernel_id = parse_kernel(args)?;
    let n: u64 = args.num_or("n", 128)?;
    let params = parse_params(args)?;
    let model = parse_model(args)?;
    let kernel = compile(&kernel_id.ast(n), gpu.spec(), params).map_err(|e| e.to_string())?;
    let ctx = store().context_for(gpu.spec(), model);
    let analysis = analyze_in(ctx.occupancy_table(), &kernel, n);
    let mut out = analysis.render();
    match ctx.simulate(&kernel, n) {
        Ok(r) => {
            let _ = writeln!(
                out,
                "timing model {model}: estimated cost {:.4} ({} bound)",
                r.time_ms, r.bound
            );
        }
        Err(e) => {
            let _ = writeln!(out, "timing model {model}: {e}");
        }
    }
    Ok(out)
}

fn cmd_occupancy(args: &Args) -> Result<String, String> {
    let gpu = parse_gpu(args)?;
    let tc: u32 = args.num_or("tc", 128)?;
    let regs: u32 = args.num_or("regs", 0)?;
    let smem: u32 = args.num_or("smem", 0)?;
    let spec = gpu.spec();
    let sug = suggest::suggest_from(spec, regs.max(1), smem);
    Ok(report::occupancy_calculator_report(spec, "<manual>", tc, regs, smem, &sug))
}

fn cmd_suggest(args: &Args) -> Result<String, String> {
    let gpu = parse_gpu(args)?;
    let kernel_id = parse_kernel(args)?;
    let n: u64 = args.num_or("n", 128)?;
    let params = parse_params(args)?;
    let kernel = compile(&kernel_id.ast(n), gpu.spec(), params).map_err(|e| e.to_string())?;
    let analysis = analyze_in(store().context(gpu.spec()).occupancy_table(), &kernel, n);
    let mut out = String::new();
    let _ = writeln!(out, "{} on {}: {}", kernel_id, gpu, analysis.suggestion.row());
    let threads: Vec<String> = analysis.rule_threads.iter().map(|t| t.to_string()).collect();
    let _ = writeln!(
        out,
        "rule-based band (intensity {:.2}): {{{}}}",
        analysis.mix.intensity,
        threads.join(",")
    );
    Ok(out)
}

fn cmd_simulate(args: &Args) -> Result<String, String> {
    let gpu = parse_gpu(args)?;
    let kernel_id = parse_kernel(args)?;
    let n: u64 = args.num_or("n", 128)?;
    let trials: u32 = args.num_or("trials", 10)?;
    let seed: u64 = args.num_or("seed", 42)?;
    let params = parse_params(args)?;
    let model = parse_model(args)?;
    // Compile + simulate either in-process or on a daemon; the wire
    // format is bit-exact, so both paths print identical text.
    let (r, selected) = match remote_addr(args)? {
        Some(addr) => {
            let client = connect(addr, args)?;
            let (selected, report) = client
                .simulate(kernel_id.name(), gpu.spec(), n, params, model, trials, seed)
                .map_err(|e| e.to_string())?;
            (report, selected)
        }
        None => {
            let kernel =
                compile(&kernel_id.ast(n), gpu.spec(), params).map_err(|e| e.to_string())?;
            // The shared per-(device, model) context caches the report:
            // repeated simulate/tune calls in one process re-use it
            // (bit-identical to the free functions under the default
            // backend). `--store-dir` selects a disk-backed store for
            // interface parity with `tune`; contexts themselves stay in
            // memory — only measurement tiers persist.
            let ctx = resolve_store(args)?.context_for(gpu.spec(), model);
            let r = ctx.simulate(&kernel, n).map_err(|e| e.to_string())?;
            let t = ctx.measure(&kernel, n, trials, seed).map_err(|e| e.to_string())?;
            (r, t.selected(TrialProtocol::FifthOfTen))
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, "{kernel_id} on {gpu} at N={n} with {params} (model {model})");
    let _ = writeln!(
        out,
        "model time {:.4} ms ({} bound); occupancy {:.2} ({} blocks/SM, {} busy SMs, {} waves)",
        r.time_ms, r.bound, r.occupancy.occupancy, r.occupancy.active_blocks, r.busy_sms, r.waves
    );
    let _ = writeln!(out, "{} trials (5th selected): {selected:.4} ms", trials);
    Ok(out)
}

/// The `--remote ADDR` flag, rejected alongside `--store-dir`: the
/// daemon owns the store, and a second writer on one directory would
/// break the single-writer-per-scope discipline.
fn remote_addr(args: &Args) -> Result<Option<&str>, String> {
    match args.optional("remote") {
        Some(addr) => {
            if args.optional("store-dir").is_some() {
                return Err(
                    "--remote and --store-dir are mutually exclusive: the daemon owns the \
                     store (pass --store-dir to `oriole serve` instead)"
                        .to_string(),
                );
            }
            Ok(Some(addr))
        }
        None => Ok(None),
    }
}

/// The client-side fault policy flags shared by every remote command:
/// `--rpc-timeout MS` bounds each exchange (socket deadline, also
/// declared to the daemon so it can shed work it cannot start in
/// time), `--retries N` caps the transparent retry of idempotent verbs
/// (0 = fail fast).
fn retry_policy(args: &Args) -> Result<RetryPolicy, String> {
    let default = RetryPolicy::default();
    Ok(RetryPolicy {
        rpc_timeout: std::time::Duration::from_millis(
            args.num_or("rpc-timeout", default.rpc_timeout.as_millis() as u64)?,
        ),
        max_retries: args.num_or("retries", default.max_retries)?,
        ..default
    })
}

fn connect(addr: &str, args: &Args) -> Result<Client, String> {
    Client::connect_with(addr, retry_policy(args)?)
        .map_err(|e| format!("cannot reach daemon at `{addr}`: {e} (is `oriole serve` running?)"))
}

/// The client-side batching knobs for remote evaluation:
/// `--batch-points N` caps the points per pipelined `evaluate` frame,
/// `--pipeline-depth N` caps the frames in flight on the connection,
/// `--flush-idle-us US` is the coalesce window a flush waits for
/// concurrent misses (0 = send immediately; a lone sequential caller
/// never waits regardless). `--flush-idle-us auto` sizes the window
/// from the connection's observed round-trip time instead.
fn coalesce_config(args: &Args) -> Result<CoalesceConfig, String> {
    let default = CoalesceConfig::default();
    let (flush_idle, adaptive) = match args.optional("flush-idle-us") {
        None => (default.flush_idle, false),
        Some("auto") => (default.flush_idle, true),
        Some(v) => (
            std::time::Duration::from_micros(v.parse::<u64>().map_err(|_| {
                format!("--flush-idle-us expects microseconds or `auto`, got `{v}`")
            })?),
            false,
        ),
    };
    let cfg = CoalesceConfig {
        max_batch_points: args.num_or("batch-points", default.max_batch_points)?,
        max_frames: args.num_or("pipeline-depth", default.max_frames)?,
        flush_idle,
        adaptive,
    };
    if cfg.max_batch_points == 0 || cfg.max_frames == 0 {
        return Err("--batch-points and --pipeline-depth must be at least 1".to_string());
    }
    Ok(cfg)
}

/// The `--fleet ADDRS|@FILE` flag, rejected alongside `--remote` (one
/// multiplexer at a time) and `--store-dir` (every fleet daemon owns
/// its own disjoint directory; a client-side store would make this
/// process a second writer).
fn fleet_spec(args: &Args) -> Result<Option<FleetSpec>, String> {
    match args.optional("fleet") {
        Some(arg) => {
            if args.optional("remote").is_some() {
                return Err("--fleet and --remote are mutually exclusive: \
                            the fleet spec already names the daemons"
                    .to_string());
            }
            if args.optional("store-dir").is_some() {
                return Err("--fleet and --store-dir are mutually exclusive: each fleet \
                            daemon owns its own store directory (pass --store-dir to \
                            each `oriole serve` instead)"
                    .to_string());
            }
            FleetSpec::parse(arg).map(Some)
        }
        None => Ok(None),
    }
}

fn cmd_disasm(args: &Args) -> Result<String, String> {
    let gpu = parse_gpu(args)?;
    let kernel_id = parse_kernel(args)?;
    let n: u64 = args.num_or("n", 128)?;
    let params = parse_params(args)?;
    let kernel = compile(&kernel_id.ast(n), gpu.spec(), params).map_err(|e| e.to_string())?;
    Ok(kernel.disassembly())
}

fn cmd_tune(args: &Args) -> Result<String, String> {
    let gpu = parse_gpu(args)?;
    let kernel_id = parse_kernel(args)?;
    let sizes = args.u64_list_or("sizes", &kernel_id.input_sizes())?;
    let seed: u64 = args.num_or("seed", 42)?;
    let model = parse_model(args)?;
    let strategy = args.required("strategy")?.to_string();

    let space = match args.optional("spec") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            parse_spec(&text).map_err(|e| e.to_string())?
        }
        None => SearchSpace::paper_default(),
    };
    let default_budget = match strategy.as_str() {
        "exhaustive" | "static" | "static-rules" => space.len(),
        _ => space.len() / 10,
    };
    let budget: usize = args.num_or("budget", default_budget)?;

    let builder = move |n: u64| kernel_id.ast(n);
    let protocol = EvalProtocol { model, ..EvalProtocol::default() };

    // The oracle every strategy queries: an in-process evaluator over
    // the resolved store, or a remote facade over a daemon's store —
    // same `Oracle` trait, bit-identical numbers, so the search layer
    // cannot tell them apart.
    // One instance, alive for the whole command — variant size skew
    // costs nothing, and boxing would only add indirection.
    #[allow(clippy::large_enum_variant)]
    enum Backend<'a> {
        Local { evaluator: oriole_tuner::Evaluator<'a>, store: ArtifactStore, before: EvalStats },
        Remote { remote: RemoteEvaluator, addr: String },
        Fleet { fleet: FleetEvaluator },
    }
    let backend = if let Some(spec) = fleet_spec(args)? {
        // --batch-points doubles as the work-stealing granule: the
        // points per `evaluate` chunk a shard claims (or steals) at a
        // time. Validate the knobs even though coalescing itself is
        // per-daemon here.
        let coalesce = coalesce_config(args)?;
        Backend::Fleet {
            fleet: FleetEvaluator::with_policy(
                spec,
                EvalScope {
                    kernel: kernel_id.name().to_string(),
                    gpu: gpu.spec().clone(),
                    sizes: sizes.clone(),
                    protocol,
                },
                retry_policy(args)?,
                coalesce.max_batch_points,
            ),
        }
    } else {
        match remote_addr(args)? {
        Some(addr) => {
            // Validate the batching knobs before dialing: a bad flag is
            // a usage error even when no daemon is up.
            let coalesce = coalesce_config(args)?;
            Backend::Remote {
                remote: RemoteEvaluator::with_coalesce(
                    connect(addr, args)?,
                    EvalScope {
                        kernel: kernel_id.name().to_string(),
                        gpu: gpu.spec().clone(),
                        sizes: sizes.clone(),
                        protocol,
                    },
                    coalesce,
                ),
                addr: addr.to_string(),
            }
        }
        None => {
            let run_store = resolve_store(args)?;
            let evaluator =
                run_store.evaluator_with(kernel_id.name(), &builder, gpu.spec(), &sizes, protocol);
            let before = evaluator.stats();
            Backend::Local { evaluator, store: run_store, before }
        }
        }
    };
    let oracle: &dyn Oracle = match &backend {
        Backend::Local { evaluator, .. } => evaluator,
        Backend::Remote { remote, .. } => remote,
        Backend::Fleet { fleet } => fleet,
    };
    // The static-pruning probe analyzes locally either way (static
    // analysis is the cheap part the paper contributes; only empirical
    // evaluation goes remote).
    let analysis_store = match &backend {
        Backend::Local { store: s, .. } => s.clone(),
        Backend::Remote { .. } | Backend::Fleet { .. } => store().clone(),
    };

    let run = |searcher: &mut dyn Searcher| searcher.search(&space, oracle, budget);
    let (result, extra) = match strategy.as_str() {
        "exhaustive" => (run(&mut ExhaustiveSearch), String::new()),
        "random" => (run(&mut RandomSearch { seed }), String::new()),
        "anneal" => (run(&mut AnnealingSearch { seed, ..Default::default() }), String::new()),
        "genetic" => (run(&mut GeneticSearch { seed, ..Default::default() }), String::new()),
        "neldermead" => {
            (run(&mut NelderMeadSearch { seed, ..Default::default() }), String::new())
        }
        "static" | "static-rules" => {
            let n_probe = sizes[sizes.len() / 2];
            let probe = compile(
                &kernel_id.ast(n_probe),
                gpu.spec(),
                TuningParams::with_geometry(128, 48),
            )
            .map_err(|e| e.to_string())?;
            let analysis = analyze_in(
                analysis_store.context_for(gpu.spec(), model).occupancy_table(),
                &probe,
                n_probe,
            );
            let level = if strategy == "static" {
                oriole_tuner::search::PruneLevel::Static
            } else {
                oriole_tuner::search::PruneLevel::RuleBased
            };
            let mut s = StaticSearch::new(analysis, level);
            let result = s.search(&space, oracle, budget);
            let report = s.report.expect("search ran");
            let extra = format!(
                "static pruning: {} -> {} variants ({:.1}% improvement), threads {{{}}}\n",
                report.full_space,
                report.pruned_space,
                report.improvement * 100.0,
                report
                    .threads_kept
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            );
            (result, extra)
        }
        "hybrid" => {
            let dial: f64 = args.num_or("dial", 0.05)?;
            let n_probe = sizes[sizes.len() / 2];
            // One Eq. 6 table for the whole prediction sweep.
            let table = gpu.spec().throughput();
            let predictor = move |p: oriole_codegen::TuningParams| {
                compile(&kernel_id.ast(n_probe), gpu.spec(), p)
                    .ok()
                    .map(|k| predict_time_with(table, &k.program, k.geometry(n_probe)))
            };
            let mut s = HybridSearch::new(predictor, dial);
            let result = s.search(&space, oracle, budget);
            // Replay the log against the same oracle to validate the
            // static pruning decisions (§VII).
            let validation = replay(&s.log, oracle, 0.05);
            let extra = format!(
                "hybrid dial {:.0}%: {} decisions logged; prediction agreement {:.2}; {}\n",
                dial * 100.0,
                s.log.entries().len(),
                validation.prediction_agreement,
                match validation.pruned_winner {
                    Some((p, t)) => format!("pruned winner found: {p} at {t:.4} ms"),
                    None => "no pruned winner (static decisions validated)".to_string(),
                }
            );
            (result, extra)
        }
        other => return Err(format!("unknown strategy `{other}`")),
    };

    // A lost daemon aborts the run loudly: the remote oracle latches
    // the first RPC failure instead of quietly scoring infinity. (For
    // a fleet, a *lost shard* is routine — rebalanced, not fatal; only
    // a deterministic error or total fleet loss latches.)
    match &backend {
        Backend::Remote { remote, addr } => {
            if let Some(err) = remote.take_error() {
                return Err(format!("remote evaluation via `{addr}` failed: {err}"));
            }
        }
        Backend::Fleet { fleet } => {
            if let Some(err) = fleet.take_error() {
                return Err(format!("fleet evaluation failed: {err}"));
            }
        }
        Backend::Local { .. } => {}
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{kernel_id} on {gpu}, sizes {sizes:?}, strategy {strategy}, model {model}"
    );
    out.push_str(&extra);
    // Deliberately free of run-to-run-variable counters: identical
    // invocations — local, remote, or concurrent with other clients —
    // print byte-identical results. Cache telemetry lives under
    // --stats.
    let _ = writeln!(
        out,
        "best: {} -> {:.4} ms total ({} evaluations)",
        result.best, result.best_time, result.evaluations,
    );
    if args.switch("stats") {
        match &backend {
            Backend::Local { evaluator, before, .. } => {
                out.push_str(&render_stats(*before, evaluator.stats()));
            }
            Backend::Remote { remote, addr } => {
                let server = remote.client().stats().map_err(|e| e.to_string())?;
                out.push_str(&render_remote_stats(remote, addr, &server));
            }
            Backend::Fleet { fleet } => {
                out.push_str(&render_fleet_stats(fleet));
            }
        }
    }
    if args.switch("csv") && !result.trace.is_empty() {
        let points: Vec<TuningParams> = result.trace.iter().map(|(p, _)| *p).collect();
        match &backend {
            Backend::Local { evaluator, .. } => {
                let measurements: Vec<_> = points.iter().map(|&p| evaluator.evaluate(p)).collect();
                out.push_str(&measurements_csv(&measurements));
            }
            Backend::Remote { remote, addr } => {
                let measurements = remote.evaluate_batch(&points).ok_or_else(|| {
                    format!(
                        "remote evaluation via `{addr}` failed: {}",
                        remote.take_error().unwrap_or_default()
                    )
                })?;
                out.push_str(&measurements_csv(&measurements));
            }
            Backend::Fleet { fleet } => {
                let measurements = fleet.evaluate_batch(&points).ok_or_else(|| {
                    format!(
                        "fleet evaluation failed: {}",
                        fleet.take_error().unwrap_or_default()
                    )
                })?;
                out.push_str(&measurements_csv(&measurements));
            }
        }
    }
    Ok(out)
}

/// The `--stats` block of a `--fleet` tune: what this client moved
/// over the wire plus the work-stealing scheduler's ledger, per shard
/// — the fleet analogue of [`render_remote_stats`].
fn render_fleet_stats(fleet: &FleetEvaluator) -> String {
    let s = fleet.stats();
    let c = s.counters();
    let mut out = String::new();
    let _ = writeln!(out, "fleet stats ({} shard(s)):", c.shards);
    let _ = writeln!(
        out,
        "  client: {} point(s) fetched, {} computed remotely",
        s.points_fetched, s.computed_remote
    );
    let _ = writeln!(
        out,
        "  scheduler: {} chunk(s) dispatched, {} stolen, {} rebalanced, {} shard(s) lost",
        c.batches_dispatched, c.batches_stolen, c.batches_rebalanced, c.shards_lost
    );
    for (i, sh) in s.shards.iter().enumerate() {
        let _ = writeln!(
            out,
            "  shard {i} {}: {} chunk(s) completed ({} stolen), {} in evaluate{}",
            sh.addr,
            sh.completed,
            sh.stolen,
            fmt_ns(sh.eval_time.as_nanos().min(u128::from(u64::MAX)) as u64),
            if sh.lost {
                format!(" [LOST, {} chunk(s) rebalanced away]", sh.rebalanced_away)
            } else {
                String::new()
            }
        );
    }
    out
}

/// The `--stats` block of a `--remote` tune: what this client moved
/// over the wire, plus the daemon's serving and store counters (the
/// remote analogue of [`render_stats`] — the tiers live on the server,
/// so the numbers do too).
fn render_remote_stats(remote: &RemoteEvaluator, addr: &str, s: &ServiceStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "remote service stats (daemon at {addr}):");
    let _ = writeln!(
        out,
        "  client: {} point(s) fetched, {} computed remotely",
        remote.fetched(),
        remote.computed_remote()
    );
    let _ = writeln!(
        out,
        "  coalescing: {} batched frame(s) sent, peak {} point(s)/frame",
        remote.batches_sent(),
        remote.peak_batch()
    );
    let _ = writeln!(
        out,
        "  server: {} connection(s), {} request(s), {} point(s) served",
        s.connections, s.requests, s.points_served
    );
    let _ = writeln!(
        out,
        "  pool: {}/{} worker(s) busy, {} shed busy, {} reaped idle",
        s.workers_busy, s.workers_max, s.shed_busy, s.reaped_idle
    );
    let _ = writeln!(
        out,
        "  reactor: {} connection(s) open, {} frame(s) in flight, pipelined peak {}, \
         {} wakeup(s)",
        s.open_connections, s.frames_inflight, s.pipelined_peak, s.reactor_wakeups
    );
    let _ = writeln!(
        out,
        "  store: {} kernel(s), {} front-end tier(s) ({} lowerings), {} measurement tier(s), \
         {} unique evaluations, {} context(s)",
        s.kernels,
        s.front_end_tiers,
        s.front_end_lowerings,
        s.measurement_tiers,
        s.unique_evaluations,
        s.contexts
    );
    let p = &s.phases;
    let _ = writeln!(
        out,
        "  compile phases: unroll {} ({} calls), lower {} ({} calls), optimize {} ({} calls), \
         regalloc {} ({} calls)",
        fmt_ns(p.unroll_ns),
        p.unroll_calls,
        fmt_ns(p.lower_ns),
        p.lower_calls,
        fmt_ns(p.optimize_ns),
        p.optimize_calls,
        fmt_ns(p.regalloc_ns),
        p.regalloc_calls
    );
    match &s.disk {
        Some(d) => {
            let _ = writeln!(
                out,
                "  disk tier: {} loaded, {} written, {} rejected",
                d.measurements_loaded, d.measurements_written, d.rejected
            );
        }
        None => {
            let _ = writeln!(out, "  disk tier: none (memory-only daemon)");
        }
    }
    out
}

/// `oriole serve [--addr A] [--store-dir DIR]` — the tuner daemon: one
/// process-level [`ArtifactStore`] (optionally disk-backed) served to
/// any number of remote `tune --remote` / `simulate --remote` clients
/// until a `service shutdown` request arrives. Concurrent clients
/// share the store's tiers exactly like in-process evaluators: each
/// point is computed once, fleet-wide. The daemon is the store
/// directory's single writing process — run one daemon per directory.
fn cmd_serve(args: &Args) -> Result<String, String> {
    let addr = args.optional("addr").unwrap_or("127.0.0.1:7733");
    let (store, store_note) = match args.optional("store-dir") {
        Some(dir) => (
            ArtifactStore::with_disk(dir)
                .map_err(|e| format!("cannot open store dir `{dir}`: {e}"))?,
            format!("store dir `{dir}`"),
        ),
        None => (ArtifactStore::new(), "memory-only store".to_string()),
    };
    let default = ServeConfig::default();
    let cfg = ServeConfig {
        workers: args.num_or("workers", default.workers)?,
        max_inflight: args.num_or("max-inflight", default.max_inflight)?,
        request_timeout: std::time::Duration::from_millis(
            args.num_or("request-timeout", default.request_timeout.as_millis() as u64)?,
        ),
        idle_timeout: std::time::Duration::from_millis(
            args.num_or("idle-timeout", default.idle_timeout.as_millis() as u64)?,
        ),
        pipeline_depth: args.num_or("pipeline-depth", default.pipeline_depth)?,
        ..default
    };
    if cfg.workers == 0 || cfg.max_inflight == 0 {
        return Err("--workers and --max-inflight must be at least 1".to_string());
    }
    if cfg.pipeline_depth == 0 {
        return Err("--pipeline-depth must be at least 1".to_string());
    }
    let server =
        Server::bind_with(addr, store, cfg).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    let actual = server.local_addr().map_err(|e| e.to_string())?;
    // The banner goes out *before* the accept loop blocks (explicitly
    // flushed: under a pipe, stdout is block-buffered and a waiting
    // supervisor would never see it).
    {
        use std::io::Write as _;
        let mut stdout = std::io::stdout();
        let _ = writeln!(
            stdout,
            "oriole serve: listening on {actual} ({store_note}; {} worker(s), {} in-flight, \
             pipeline depth {}, request timeout {}ms, idle timeout {}ms)",
            cfg.workers,
            cfg.max_inflight,
            cfg.pipeline_depth,
            cfg.request_timeout.as_millis(),
            cfg.idle_timeout.as_millis()
        );
        let _ = stdout.flush();
    }
    let summary = server.run().map_err(|e| e.to_string())?;
    Ok(format!(
        "oriole serve: shut down after {} connection(s), {} request(s), {} point(s) served, \
         {} shed busy, {} reaped idle ({})\n",
        summary.connections,
        summary.requests,
        summary.points_served,
        summary.shed_busy,
        summary.reaped_idle,
        if summary.drained { "drained clean" } else { "drain deadline hit" }
    ))
}

/// `oriole service {ping|stats|shutdown} --remote ADDR` — daemon
/// control: liveness probe, serving/store telemetry, graceful stop
/// (the daemon drains in-flight evaluations before exiting, so its
/// store directory is left with whole records only).
fn cmd_service(argv: &[String]) -> Result<String, String> {
    let Some(action) = argv.first() else {
        return Err("service needs an action: ping | stats | shutdown | fleet-stats".to_string());
    };
    let args = Args::parse(&argv[1..])?;
    if action == "fleet-stats" {
        return cmd_fleet_stats(&args);
    }
    let addr = args.required("remote")?;
    let client = connect(addr, &args)?;
    match action.as_str() {
        "ping" => {
            client.ping().map_err(|e| e.to_string())?;
            Ok(format!("daemon at {addr} is alive\n"))
        }
        "stats" => {
            let s = client.stats().map_err(|e| e.to_string())?;
            let mut out = String::new();
            let _ = writeln!(out, "daemon at {addr}:");
            let _ = writeln!(
                out,
                "  served: {} connection(s), {} request(s), {} point(s)",
                s.connections, s.requests, s.points_served
            );
            let _ = writeln!(
                out,
                "  pool: {}/{} worker(s) busy, {} shed busy, {} reaped idle",
                s.workers_busy, s.workers_max, s.shed_busy, s.reaped_idle
            );
            let _ = writeln!(
                out,
                "  reactor: {} connection(s) open, {} frame(s) in flight, pipelined peak {}, \
                 {} wakeup(s)",
                s.open_connections, s.frames_inflight, s.pipelined_peak, s.reactor_wakeups
            );
            let _ = writeln!(
                out,
                "  store: {} kernel(s), {} front-end tier(s) ({} lowerings), \
                 {} measurement tier(s), {} unique evaluations, {} context(s)",
                s.kernels,
                s.front_end_tiers,
                s.front_end_lowerings,
                s.measurement_tiers,
                s.unique_evaluations,
                s.contexts
            );
            let p = &s.phases;
            let _ = writeln!(
                out,
                "  compile phases: unroll {} ({} calls), lower {} ({} calls), \
                 optimize {} ({} calls), regalloc {} ({} calls)",
                fmt_ns(p.unroll_ns),
                p.unroll_calls,
                fmt_ns(p.lower_ns),
                p.lower_calls,
                fmt_ns(p.optimize_ns),
                p.optimize_calls,
                fmt_ns(p.regalloc_ns),
                p.regalloc_calls
            );
            match &s.disk {
                Some(d) => {
                    let _ = writeln!(
                        out,
                        "  disk tier: {} hit(s), {} miss(es), {} loaded, {} written, {} rejected",
                        d.tier_hits,
                        d.tier_misses,
                        d.measurements_loaded,
                        d.measurements_written,
                        d.rejected
                    );
                }
                None => {
                    let _ = writeln!(out, "  disk tier: none (memory-only daemon)");
                }
            }
            Ok(out)
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            Ok(format!("daemon at {addr} is shutting down (draining in-flight work)\n"))
        }
        other => Err(format!(
            "unknown service action `{other}` (try ping | stats | shutdown | fleet-stats)"
        )),
    }
}

/// `oriole service fleet-stats --fleet ADDRS|@FILE` — one row per
/// shard plus fleet-wide totals. An unreachable shard is reported, not
/// fatal: a fleet operator needs the partial view precisely when a
/// daemon is down.
fn cmd_fleet_stats(args: &Args) -> Result<String, String> {
    let spec = FleetSpec::parse(args.required("fleet")?)?;
    let policy = retry_policy(args)?;
    let mut out = String::new();
    let _ = writeln!(out, "fleet of {} shard(s):", spec.len());
    let (mut unique, mut served, mut reachable) = (0u64, 0u64, 0usize);
    for (i, addr) in spec.shards().iter().enumerate() {
        let stats = Client::connect_with(addr, policy).and_then(|c| c.stats());
        match stats {
            Ok(s) => {
                reachable += 1;
                unique += s.unique_evaluations;
                served += s.points_served;
                let _ = writeln!(
                    out,
                    "  shard {i} {addr}: {} unique evaluation(s), {} point(s) served, \
                     {} measurement tier(s), {}/{} worker(s) busy, {} shed busy",
                    s.unique_evaluations,
                    s.points_served,
                    s.measurement_tiers,
                    s.workers_busy,
                    s.workers_max,
                    s.shed_busy
                );
            }
            Err(e) => {
                let _ = writeln!(out, "  shard {i} {addr}: UNREACHABLE ({e})");
            }
        }
    }
    let _ = writeln!(
        out,
        "  fleet: {reachable}/{} shard(s) reachable, {unique} unique evaluation(s), \
         {served} point(s) served",
        spec.len()
    );
    Ok(out)
}

/// `oriole store {stats|verify|gc} --store-dir DIR` — maintenance of a
/// persistent artifact store (see `oriole_tuner::persist`): `stats`
/// lists every tier file with its scope and record counts, `verify`
/// checks magic/version/checksums and fails on any unusable artifact,
/// `gc` deletes unusable files and compacts ones carrying rejected
/// records (`gc --dry-run` reports the same plan without touching
/// disk).
fn cmd_store(argv: &[String]) -> Result<String, String> {
    use oriole_tuner::persist::{self, FileStatus};

    let Some(action) = argv.first() else {
        return Err("store needs an action: stats | verify | gc".to_string());
    };
    let args = Args::parse(&argv[1..])?;
    let dir = args.required("store-dir")?;
    let path = Path::new(dir);
    if !path.is_dir() {
        return Err(format!("store dir `{dir}` does not exist"));
    }
    let scan = |msg: &str| {
        persist::scan_store(path).map_err(|e| format!("cannot {msg} `{dir}`: {e}"))
    };
    match action.as_str() {
        "stats" => {
            let reports = scan("scan")?;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{:<24} {:<9} {:<6} {:<9} {:<16} {:>8} {:>9} {:>9}  status",
                "file", "kernel", "gpu", "model", "sizes", "records", "rejected", "bytes"
            );
            let (mut records, mut rejected, mut bytes, mut unusable) = (0usize, 0u64, 0u64, 0usize);
            for r in &reports {
                bytes += r.bytes;
                let (kernel, gpu, model, sizes, recs, rej, status) = match &r.status {
                    FileStatus::Usable { kernel, gpu, sizes, model, records, rejected } => (
                        kernel.as_str(),
                        gpu.as_str(),
                        model.as_str(),
                        sizes.as_str(),
                        *records,
                        *rejected,
                        if *rejected > 0 { "rejected records" } else { "ok" },
                    ),
                    FileStatus::VersionSkew => {
                        unusable += 1;
                        ("?", "?", "?", "?", 0, 0, "version skew")
                    }
                    FileStatus::Corrupt => {
                        unusable += 1;
                        ("?", "?", "?", "?", 0, 0, "corrupt")
                    }
                };
                records += recs;
                rejected += rej;
                let _ = writeln!(
                    out,
                    "{:<24} {:<9} {:<6} {:<9} {:<16} {:>8} {:>9} {:>9}  {status}",
                    r.name, kernel, gpu, model, sizes, recs, rej, r.bytes
                );
            }
            let _ = writeln!(
                out,
                "total: {} tier file(s), {records} measurement(s), {rejected} rejected \
                 record(s), {unusable} unusable file(s), {bytes} bytes",
                reports.len()
            );
            Ok(out)
        }
        "verify" => {
            let reports = scan("verify")?;
            let mut out = String::new();
            let mut problems = 0usize;
            for r in &reports {
                let verdict = match &r.status {
                    FileStatus::Usable { records, rejected: 0, .. } => {
                        format!("OK ({records} records)")
                    }
                    FileStatus::Usable { records, rejected, .. } => {
                        problems += 1;
                        format!("REJECTED RECORDS ({rejected} bad, {records} good)")
                    }
                    FileStatus::VersionSkew => {
                        problems += 1;
                        "VERSION SKEW".to_string()
                    }
                    FileStatus::Corrupt => {
                        problems += 1;
                        "CORRUPT".to_string()
                    }
                };
                let _ = writeln!(out, "{:<24} {verdict}", r.name);
            }
            let _ = writeln!(out, "verified {} file(s): {problems} problem(s)", reports.len());
            if problems > 0 {
                let _ = writeln!(
                    out,
                    "damaged artifacts are treated as cache misses (recomputed, never \
                     trusted); run `oriole store gc --store-dir {dir}` to repair"
                );
                Err(out)
            } else {
                Ok(out)
            }
        }
        "gc" => {
            if args.switch("dry-run") {
                let plan =
                    persist::plan_gc(path).map_err(|e| format!("cannot plan gc `{dir}`: {e}"))?;
                return Ok(format!(
                    "gc --dry-run: would remove {} unusable file(s), compact {} file(s), \
                     drop {} rejected record(s), reclaim {} bytes (nothing touched)\n",
                    plan.removed_files,
                    plan.compacted_files,
                    plan.dropped_records,
                    plan.bytes_reclaimed
                ));
            }
            let report =
                persist::gc_store(path).map_err(|e| format!("cannot gc `{dir}`: {e}"))?;
            Ok(format!(
                "gc: removed {} unusable file(s), compacted {} file(s), dropped {} rejected \
                 record(s), reclaimed {} bytes\n",
                report.removed_files,
                report.compacted_files,
                report.dropped_records,
                report.bytes_reclaimed
            ))
        }
        other => Err(format!("unknown store action `{other}` (try stats | verify | gc)")),
    }
}

/// Renders the `--stats` cache-telemetry block: what this run added on
/// top of whatever the process-level store already held, plus the model
/// context's hit rates — the observable form of the speedups the bench
/// harness measures. The model counters are per backend by
/// construction: a context serves exactly one [`ModelId`], and the
/// store never lets backends share report caches or measurement tiers,
/// so the rates below always describe the named model alone.
/// Nanosecond counters read badly raw; render at the precision a human
/// compares phases at (whole ns below 10µs, then µs, then ms).
fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}\u{b5}s", ns as f64 / 1_000.0)
    } else {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    }
}

fn render_stats(before: EvalStats, after: EvalStats) -> String {
    let rate = |hits: u64, misses: u64| -> String {
        let total = hits + misses;
        if total == 0 {
            "n/a (0 lookups)".to_string()
        } else {
            format!("{:.1}% ({hits}/{total})", 100.0 * hits as f64 / total as f64)
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, "cache stats (this run, process-level store):");
    let _ = writeln!(
        out,
        "  unique evaluations: {} new, {} in tier",
        after.unique_evaluations - before.unique_evaluations,
        after.unique_evaluations
    );
    let _ = writeln!(
        out,
        "  front-end lowerings: {} new, {} in tier",
        after.front_end_lowerings - before.front_end_lowerings,
        after.front_end_lowerings
    );
    let _ = writeln!(
        out,
        "  disk tier: {} loaded, {} spilled",
        after.disk_loaded, after.disk_spilled
    );
    let _ = writeln!(
        out,
        "  program index: {} built, fast-path hits {}, slow-path hits {}",
        after.index_builds - before.index_builds,
        after.index_fast_path_hits - before.index_fast_path_hits,
        after.index_slow_path_hits - before.index_slow_path_hits
    );
    let phases = after.phases.since(&before.phases);
    let _ = writeln!(
        out,
        "  compile phases: unroll {} ({} calls), lower {} ({} calls), optimize {} ({} calls), \
         regalloc {} ({} calls)",
        fmt_ns(phases.unroll_ns),
        phases.unroll_calls,
        fmt_ns(phases.lower_ns),
        phases.lower_calls,
        fmt_ns(phases.optimize_ns),
        phases.optimize_calls,
        fmt_ns(phases.regalloc_ns),
        phases.regalloc_calls
    );
    let m = after.model;
    let b = before.model;
    let _ = writeln!(out, "  timing model: {} (all rates below are this backend's)", m.model);
    let _ = writeln!(
        out,
        "  occupancy table: {} entries, hit rate {}",
        m.occ_entries,
        rate(m.occ_hits - b.occ_hits, m.occ_misses - b.occ_misses)
    );
    let _ = writeln!(
        out,
        "  dynamic-mix memo: hit rate {}",
        rate(m.mix_hits - b.mix_hits, m.mix_misses - b.mix_misses)
    );
    let _ = writeln!(
        out,
        "  model-report cache: hit rate {}",
        rate(m.report_hits - b.report_hits, m.report_misses - b.report_misses)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(line: &str) -> Result<String, String> {
        let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
        run(&argv)
    }

    #[test]
    fn help_and_empty() {
        assert!(call("help").unwrap().contains("oriole"));
        assert!(run(&[]).unwrap().contains("commands:"));
    }

    #[test]
    fn gpus_lists_all_four() {
        let out = call("gpus").unwrap();
        for name in ["M2050", "K20", "M40", "P100"] {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn analyze_produces_report() {
        let out = call("analyze --kernel atax --gpu k20 --n 128").unwrap();
        assert!(out.contains("static analysis"));
        assert!(out.contains("suggestion:"));
    }

    #[test]
    fn occupancy_panels() {
        let out = call("occupancy --gpu fermi --tc 192 --regs 27").unwrap();
        assert!(out.contains("occupancy vs block size"));
    }

    #[test]
    fn suggest_row() {
        let out = call("suggest --kernel matvec2d --gpu p100").unwrap();
        assert!(out.contains("T*={64,128,256,512,1024}"));
    }

    #[test]
    fn simulate_reports_time() {
        let out = call("simulate --kernel bicg --gpu m40 --n 64 --tc 256 --bc 24").unwrap();
        assert!(out.contains("model time"));
        assert!(out.contains("5th selected"));
    }

    #[test]
    fn disasm_is_parseable() {
        let out = call("disasm --kernel atax --gpu k20 --uif 2 --fast-math").unwrap();
        assert!(oriole_ir::text::parse(&out).is_ok());
    }

    #[test]
    fn tune_random_small() {
        let out =
            call("tune --kernel atax --gpu k20 --strategy random --budget 6 --sizes 32").unwrap();
        assert!(out.contains("best:"), "{out}");
    }

    #[test]
    fn tune_stats_prints_cache_telemetry() {
        let out = call(
            "tune --kernel atax --gpu k20 --strategy random --budget 6 --sizes 32 --stats",
        )
        .unwrap();
        for needle in [
            "cache stats",
            "unique evaluations:",
            "front-end lowerings:",
            "program index:",
            "fast-path hits",
            "timing model: sim",
            "occupancy table:",
            "dynamic-mix memo:",
            "model-report cache:",
        ] {
            assert!(out.contains(needle), "missing `{needle}` in:\n{out}");
        }
    }

    #[test]
    fn models_lists_all_backends() {
        let out = call("models").unwrap();
        for name in ["sim", "static", "roofline"] {
            assert!(out.contains(name), "{out}");
        }
        assert!(out.contains("default"));
    }

    #[test]
    fn simulate_and_analyze_accept_model_flag() {
        let sim = call("simulate --kernel atax --gpu k20 --n 64 --model sim").unwrap();
        let roof = call("simulate --kernel atax --gpu k20 --n 64 --model roofline").unwrap();
        assert!(sim.contains("(model sim)"), "{sim}");
        assert!(roof.contains("(model roofline)"), "{roof}");
        let time_of = |s: &str| {
            s.lines()
                .find(|l| l.contains("model time"))
                .and_then(|l| l.split_whitespace().nth(2).map(str::to_string))
                .unwrap()
        };
        assert_ne!(time_of(&sim), time_of(&roof), "backends produce distinct estimates");

        let analyzed = call("analyze --kernel atax --gpu k20 --n 64 --model static").unwrap();
        assert!(analyzed.contains("timing model static"), "{analyzed}");
    }

    #[test]
    fn tune_runs_under_every_backend() {
        for model in ["sim", "static", "roofline"] {
            let out = call(&format!(
                "tune --kernel atax --gpu k20 --strategy random --budget 6 --sizes 32 \
                 --model {model} --stats"
            ))
            .unwrap();
            assert!(out.contains("best:"), "{out}");
            assert!(out.contains(&format!("model {model}")), "{out}");
            assert!(out.contains(&format!("timing model: {model}")), "{out}");
        }
    }

    #[test]
    fn unknown_model_errors_cleanly() {
        let err = call("simulate --kernel atax --gpu k20 --n 64 --model warp").unwrap_err();
        assert!(err.contains("unknown model"), "{err}");
        assert!(call("tune --kernel atax --gpu k20 --strategy random --model hw").is_err());
    }

    #[test]
    fn repeated_tune_invocations_share_the_process_store() {
        // Identical invocations in one process: the second run's
        // exhaustive sweep is served from the store (zero new unique
        // evaluations) and both report the identical best.
        let line = "tune --kernel bicg --gpu m40 --strategy exhaustive --sizes 32 --stats";
        let first = call(line).unwrap();
        let second = call(line).unwrap();
        // Identical best line; the second run computed nothing (the
        // per-run contribution lives in the --stats block, so the
        // result lines stay byte-identical across warm/cold runs).
        let best = |s: &str| s.lines().find(|l| l.starts_with("best:")).unwrap().to_string();
        assert_eq!(best(&first), best(&second));
        assert!(second.contains("unique evaluations: 0 new"), "{second}");
    }

    fn temp_store(tag: &str) -> String {
        let dir = std::env::temp_dir()
            .join(format!("oriole-cli-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn tune_with_store_dir_resumes_across_invocations() {
        let dir = temp_store("tune");
        let line = format!(
            "tune --kernel atax --gpu k20 --strategy exhaustive --sizes 32 --stats \
             --store-dir {dir}"
        );
        let first = call(&line).unwrap();
        assert!(first.contains("disk tier: 0 loaded"), "{first}");
        // The disk-backed store is rebuilt per invocation, so a warm
        // resume exercises the persistent tier, not process memory.
        let second = call(&line).unwrap();
        assert!(second.contains("unique evaluations: 0 new"), "{second}");
        assert!(
            second.contains("disk tier: 5120 loaded, 0 spilled"),
            "warm run serves the whole space from disk: {second}"
        );
        // Identical best line: result lines carry no run-to-run-variable
        // counters.
        let best = |s: &str| s.lines().find(|l| l.starts_with("best:")).unwrap().to_string();
        assert_eq!(best(&first), best(&second));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_stats_verify_and_gc_manage_the_directory() {
        let dir = temp_store("manage");
        call(&format!(
            "tune --kernel bicg --gpu k20 --strategy exhaustive --sizes 32 --store-dir {dir}"
        ))
        .unwrap();

        let stats = call(&format!("store stats --store-dir {dir}")).unwrap();
        assert!(stats.contains("bicg"), "{stats}");
        assert!(stats.contains("K20"), "{stats}");
        assert!(stats.contains("1 tier file(s)"), "{stats}");

        let verify = call(&format!("store verify --store-dir {dir}")).unwrap();
        assert!(verify.contains("0 problem(s)"), "{verify}");

        // Corrupt one record: verify fails, gc compacts, verify passes.
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.path().extension().is_some_and(|x| x == "orl"))
            .unwrap()
            .path();
        let content = std::fs::read_to_string(&file).unwrap();
        std::fs::write(&file, content.replacen("tc:64", "tc:65", 1)).unwrap();
        let err = call(&format!("store verify --store-dir {dir}")).unwrap_err();
        assert!(err.contains("REJECTED RECORDS"), "{err}");
        let gc = call(&format!("store gc --store-dir {dir}")).unwrap();
        assert!(gc.contains("dropped 1 rejected record(s)"), "{gc}");
        assert!(call(&format!("store verify --store-dir {dir}")).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_command_errors_cleanly() {
        assert!(call("store").is_err());
        assert!(call("store stats").is_err(), "missing --store-dir");
        assert!(call("store frobnicate --store-dir /tmp").is_err());
        assert!(call("store stats --store-dir /nonexistent-oriole-dir").is_err());
    }

    #[test]
    fn store_gc_dry_run_reports_without_touching_disk() {
        let dir = temp_store("dryrun");
        call(&format!(
            "tune --kernel atax --gpu k20 --strategy random --budget 6 --sizes 32 \
             --store-dir {dir}"
        ))
        .unwrap();
        // Damage one record so gc has something to plan.
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.path().extension().is_some_and(|x| x == "orl"))
            .unwrap()
            .path();
        let content = std::fs::read_to_string(&file).unwrap();
        std::fs::write(&file, content.replacen("feasible:1", "feasible:9", 1)).unwrap();
        let damaged = std::fs::read(&file).unwrap();

        let out = call(&format!("store gc --dry-run --store-dir {dir}")).unwrap();
        assert!(out.contains("would remove 0 unusable file(s)"), "{out}");
        assert!(out.contains("compact 1 file(s)"), "{out}");
        assert!(out.contains("drop 1 rejected record(s)"), "{out}");
        assert!(out.contains("nothing touched"), "{out}");
        assert_eq!(std::fs::read(&file).unwrap(), damaged, "dry run must not write");

        // The real gc then performs exactly the reported plan.
        let gc = call(&format!("store gc --store-dir {dir}")).unwrap();
        assert!(gc.contains("dropped 1 rejected record(s)"), "{gc}");
        assert!(call(&format!("store verify --store-dir {dir}")).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_dir_on_a_regular_file_errors_cleanly() {
        // Pointing --store-dir at an existing file must be a clear
        // error on every surface that takes the flag — never a panic,
        // never a silently memory-only run.
        let file = std::env::temp_dir()
            .join(format!("oriole-cli-notadir-{}", std::process::id()));
        std::fs::write(&file, "i am a file").unwrap();
        let path = file.to_string_lossy().into_owned();
        for line in [
            format!("tune --kernel atax --gpu k20 --strategy random --budget 2 --sizes 32 --store-dir {path}"),
            format!("simulate --kernel atax --gpu k20 --n 64 --store-dir {path}"),
            format!("serve --addr 127.0.0.1:0 --store-dir {path}"),
        ] {
            let err = call(&line).unwrap_err();
            assert!(err.contains("not a directory"), "`{line}` -> {err}");
        }
        assert_eq!(std::fs::read_to_string(&file).unwrap(), "i am a file");
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn remote_and_store_dir_are_mutually_exclusive() {
        for line in [
            "tune --kernel atax --gpu k20 --strategy random --remote 127.0.0.1:1 --store-dir /tmp/x",
            "simulate --kernel atax --gpu k20 --n 64 --remote 127.0.0.1:1 --store-dir /tmp/x",
        ] {
            let err = call(line).unwrap_err();
            assert!(err.contains("mutually exclusive"), "{err}");
        }
    }

    #[test]
    fn fleet_flag_is_exclusive_and_validates_its_spec() {
        for line in [
            "tune --kernel atax --gpu k20 --strategy random --fleet 127.0.0.1:1 --remote 127.0.0.1:2",
            "tune --kernel atax --gpu k20 --strategy random --fleet 127.0.0.1:1 --store-dir /tmp/x",
        ] {
            let err = call(line).unwrap_err();
            assert!(err.contains("mutually exclusive"), "{err}");
        }
        let dup = call("tune --kernel atax --gpu k20 --strategy random --fleet a,b,a")
            .unwrap_err();
        assert!(dup.contains("twice"), "{dup}");
        assert!(
            call("service fleet-stats --fleet a,,b").is_err(),
            "empty shard entry must be rejected"
        );
    }

    #[test]
    fn flush_idle_auto_is_accepted_and_garbage_is_not() {
        let err = call(
            "tune --kernel atax --gpu k20 --strategy random --remote 127.0.0.1:1 \
             --flush-idle-us soon",
        )
        .unwrap_err();
        assert!(err.contains("`auto`"), "error should advertise auto: {err}");

        let (addr, handle) = spawn_daemon();
        let flags = "tune --kernel atax --gpu k20 --strategy random --budget 8 --sizes 32";
        let local = call(flags).unwrap();
        let auto = call(&format!("{flags} --remote {addr} --flush-idle-us auto")).unwrap();
        assert_eq!(auto, local, "adaptive coalescing must never change results");
        assert!(call(&format!("service shutdown --remote {addr}")).is_ok());
        handle.join().expect("server thread");
    }

    #[test]
    fn fleet_tune_is_byte_identical_to_local_and_reports_fleet_stats() {
        let (a0, h0) = spawn_daemon();
        let (a1, h1) = spawn_daemon();
        let flags = "tune --kernel atax --gpu k20 --strategy random --budget 8 --sizes 32 --csv";
        let local = call(flags).unwrap();
        // Chunk small (--batch-points 2) so the steal path actually runs.
        let fleet = call(&format!("{flags} --fleet {a0},{a1} --batch-points 2")).unwrap();
        assert_eq!(fleet, local, "fleet evaluation must be indistinguishable from local");
        // Warm re-run against the same fleet: still identical.
        let again = call(&format!("{flags} --fleet {a0},{a1} --batch-points 2")).unwrap();
        assert_eq!(again, local);

        let stats = call(&format!(
            "{flags} --fleet {a0},{a1} --batch-points 2 --stats"
        ))
        .unwrap();
        assert!(stats.contains("fleet stats (2 shard(s))"), "{stats}");
        assert!(stats.contains("scheduler:"), "{stats}");
        assert!(stats.contains("chunk(s) dispatched"), "{stats}");
        assert!(stats.contains("shard 0"), "{stats}");
        assert!(stats.contains("shard 1"), "{stats}");

        let svc = call(&format!("service fleet-stats --fleet {a0},{a1}")).unwrap();
        assert!(svc.contains("fleet of 2 shard(s)"), "{svc}");
        assert!(svc.contains("2/2 shard(s) reachable"), "{svc}");
        assert!(svc.contains("unique evaluation(s)"), "{svc}");

        for addr in [&a0, &a1] {
            assert!(call(&format!("service shutdown --remote {addr}")).is_ok());
        }
        h0.join().expect("server 0");
        h1.join().expect("server 1");
    }

    #[test]
    fn fleet_stats_reports_unreachable_shards_without_failing() {
        let (addr, handle) = spawn_daemon();
        let svc = call(&format!(
            "service fleet-stats --fleet {addr},127.0.0.1:9 --rpc-timeout 1000 --retries 0"
        ))
        .unwrap();
        assert!(svc.contains("UNREACHABLE"), "{svc}");
        assert!(svc.contains("1/2 shard(s) reachable"), "{svc}");
        assert!(call(&format!("service shutdown --remote {addr}")).is_ok());
        handle.join().expect("server thread");
    }

    #[test]
    fn remote_commands_error_cleanly_without_a_daemon() {
        // Port 9 (discard) on localhost: nothing is listening.
        let err = call(
            "tune --kernel atax --gpu k20 --strategy random --budget 2 --sizes 32 \
             --remote 127.0.0.1:9",
        )
        .unwrap_err();
        assert!(err.contains("cannot reach daemon"), "{err}");
        assert!(call("service ping --remote 127.0.0.1:9").is_err());
        assert!(call("service").is_err());
        assert!(call("service frobnicate --remote 127.0.0.1:9").is_err());
    }

    /// Spawns an in-process daemon (memory store) for remote-flag
    /// tests; returns its address and the serving thread handle.
    fn spawn_daemon() -> (String, std::thread::JoinHandle<()>) {
        let server =
            Server::bind("127.0.0.1:0", ArtifactStore::new()).expect("bind ephemeral port");
        let addr = server.local_addr().expect("local addr").to_string();
        let handle = std::thread::spawn(move || {
            server.run().expect("serve");
        });
        (addr, handle)
    }

    #[test]
    fn remote_tune_output_is_byte_identical_to_local() {
        let (addr, handle) = spawn_daemon();
        let flags = "tune --kernel atax --gpu k20 --strategy random --budget 8 --sizes 32 --csv";
        let local = call(flags).unwrap();
        let remote1 = call(&format!("{flags} --remote {addr}")).unwrap();
        let remote2 = call(&format!("{flags} --remote {addr}")).unwrap();
        assert_eq!(remote1, local, "remote evaluation must be indistinguishable");
        assert_eq!(remote2, local);

        // A warm remote run with --stats reports zero daemon-side
        // computations.
        let stats = call(&format!("{flags} --remote {addr} --stats")).unwrap();
        assert!(stats.contains("8 point(s) fetched, 0 computed remotely"), "{stats}");
        assert!(stats.contains("remote service stats"), "{stats}");

        assert!(call(&format!("service ping --remote {addr}")).unwrap().contains("alive"));
        let svc = call(&format!("service stats --remote {addr}")).unwrap();
        assert!(svc.contains("unique evaluations"), "{svc}");
        assert!(call(&format!("service shutdown --remote {addr}")).is_ok());
        handle.join().expect("server thread");
    }

    #[test]
    fn remote_simulate_output_is_byte_identical_to_local() {
        let (addr, handle) = spawn_daemon();
        let flags = "simulate --kernel bicg --gpu m40 --n 64 --tc 256 --bc 24";
        let local = call(flags).unwrap();
        let remote = call(&format!("{flags} --remote {addr}")).unwrap();
        assert_eq!(remote, local);
        assert!(call(&format!("service shutdown --remote {addr}")).is_ok());
        handle.join().expect("server thread");
    }

    #[test]
    fn serve_rejects_zero_pool_bounds() {
        for line in [
            "serve --addr 127.0.0.1:0 --workers 0",
            "serve --addr 127.0.0.1:0 --max-inflight 0",
            "serve --addr 127.0.0.1:0 --pipeline-depth 0",
        ] {
            let err = call(line).unwrap_err();
            assert!(err.contains("at least 1"), "{err}");
        }
    }

    #[test]
    fn remote_tune_rejects_zero_pipelining_knobs() {
        for line in [
            "tune --kernel atax --gpu k20 --strategy random --remote 127.0.0.1:1 \
             --batch-points 0",
            "tune --kernel atax --gpu k20 --strategy random --remote 127.0.0.1:1 \
             --pipeline-depth 0",
        ] {
            let err = call(line).unwrap_err();
            assert!(err.contains("at least 1"), "{err}");
        }
    }

    #[test]
    fn remote_tune_pipelining_knobs_change_batching_not_results() {
        let (addr, handle) = spawn_daemon();
        let flags = "tune --kernel atax --gpu k20 --strategy random --budget 8 --sizes 32";
        let local = call(flags).unwrap();
        let knobbed = call(&format!(
            "{flags} --remote {addr} --batch-points 2 --pipeline-depth 4 --flush-idle-us 0"
        ))
        .unwrap();
        assert_eq!(knobbed, local, "batching knobs must never change results");

        // The --stats block shows the coalescing and reactor telemetry.
        let stats = call(&format!(
            "{flags} --remote {addr} --stats --batch-points 2 --pipeline-depth 4"
        ))
        .unwrap();
        assert!(stats.contains("coalescing:"), "{stats}");
        assert!(stats.contains("point(s)/frame"), "{stats}");
        assert!(stats.contains("reactor:"), "{stats}");
        assert!(stats.contains("pipelined peak"), "{stats}");

        assert!(call(&format!("service shutdown --remote {addr}")).is_ok());
        handle.join().expect("server thread");
    }

    #[test]
    fn service_stats_reports_pool_counters() {
        let (addr, handle) = spawn_daemon();
        let svc = call(&format!("service stats --remote {addr}")).unwrap();
        assert!(svc.contains("pool:"), "{svc}");
        assert!(svc.contains("worker(s) busy"), "{svc}");
        assert!(svc.contains("shed busy"), "{svc}");
        assert!(svc.contains("reaped idle"), "{svc}");
        assert!(svc.contains("reactor:"), "{svc}");
        assert!(svc.contains("connection(s) open"), "{svc}");
        assert!(svc.contains("frame(s) in flight"), "{svc}");
        assert!(svc.contains("wakeup(s)"), "{svc}");

        // The remote --stats block of a tune reports the same counters.
        let stats = call(&format!(
            "tune --kernel atax --gpu k20 --strategy random --budget 2 --sizes 32 \
             --stats --remote {addr}"
        ))
        .unwrap();
        assert!(stats.contains("pool:"), "{stats}");

        assert!(call(&format!("service shutdown --remote {addr}")).is_ok());
        handle.join().expect("server thread");
    }

    #[test]
    fn remote_commands_accept_deadline_and_retry_flags() {
        let (addr, handle) = spawn_daemon();
        let local = call("simulate --kernel atax --gpu k20 --n 64").unwrap();
        let remote = call(&format!(
            "simulate --kernel atax --gpu k20 --n 64 --remote {addr} \
             --rpc-timeout 5000 --retries 2"
        ))
        .unwrap();
        assert_eq!(remote, local, "policy flags must not change results");
        assert!(call(&format!("service shutdown --remote {addr}")).is_ok());
        handle.join().expect("server thread");

        // Fail-fast against a dead daemon stays a clean error.
        let err = call(
            "simulate --kernel atax --gpu k20 --n 64 --remote 127.0.0.1:9 --retries 0",
        )
        .unwrap_err();
        assert!(err.contains("cannot reach daemon"), "{err}");
    }

    #[test]
    fn simulate_accepts_store_dir() {
        let dir = temp_store("simulate");
        let out = call(&format!(
            "simulate --kernel atax --gpu k20 --n 64 --store-dir {dir}"
        ))
        .unwrap();
        assert!(out.contains("model time"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tune_seed_reproduces_output_byte_for_byte() {
        for strategy in ["random", "anneal", "genetic"] {
            let line = format!(
                "tune --kernel atax --gpu k20 --strategy {strategy} --budget 8 --sizes 32 \
                 --seed 123 --csv"
            );
            assert_eq!(call(&line).unwrap(), call(&line).unwrap(), "{strategy}");
            let reseeded = call(&line.replace("--seed 123", "--seed 124")).unwrap();
            assert_ne!(
                call(&line).unwrap(),
                reseeded,
                "{strategy}: a different --seed must explore differently"
            );
        }
    }

    #[test]
    fn tune_static_reports_pruning() {
        let out = call("tune --kernel atax --gpu k20 --strategy static-rules --sizes 32")
            .unwrap();
        assert!(out.contains("static pruning: 5120 -> 320"), "{out}");
    }

    #[test]
    fn tune_hybrid_reports_validation() {
        let out = call(
            "tune --kernel atax --gpu k20 --strategy hybrid --dial 0.01 --sizes 32",
        )
        .unwrap();
        assert!(out.contains("hybrid dial 1%"), "{out}");
        assert!(out.contains("prediction agreement"), "{out}");
        assert!(out.contains("best:"), "{out}");
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(call("analyze --kernel gemm --gpu k20").is_err());
        assert!(call("analyze --kernel atax --gpu volta").is_err());
        assert!(call("frobnicate").is_err());
        assert!(call("tune --kernel atax --gpu k20 --strategy magic").is_err());
        assert!(call("simulate --kernel atax --gpu k20 --pl 32").is_err());
    }
}
