//! `oriole` — command-line front end to the static analyzer, simulator
//! and autotuner.
//!
//! ```text
//! oriole gpus
//! oriole analyze  --kernel atax --gpu k20 --n 256 [--tc 128 --bc 48 --uif 1 --fast-math]
//! oriole occupancy --gpu k20 --tc 256 [--regs 27 --smem 3072]
//! oriole suggest  --kernel atax --gpu k20 [--n 128]
//! oriole simulate --kernel atax --gpu k20 --n 256 [--tc 128 --bc 48 ...]
//! oriole disasm   --kernel atax --gpu k20 [--tc 128 --uif 2 --fast-math]
//! oriole tune     --kernel atax --gpu k20 --strategy static [--budget 640]
//!                 [--sizes 32,64,128,256,512] [--spec path/to/spec]
//!                 [--store-dir artifacts/ | --remote 127.0.0.1:7733]
//! oriole store    {stats|verify|gc [--dry-run]} --store-dir artifacts/
//! oriole serve    [--addr 127.0.0.1:7733] [--store-dir artifacts/]
//! oriole service  {ping|stats|shutdown} --remote 127.0.0.1:7733
//! ```
//!
//! `serve` runs the tuner daemon: one shared artifact store behind a
//! framed RPC protocol, so concurrent `--remote` clients share
//! front-ends, model contexts and measurements — bit-identically to
//! local evaluation.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `oriole help` for usage");
            ExitCode::FAILURE
        }
    }
}
