//! `oriole` — command-line front end to the static analyzer, simulator
//! and autotuner.
//!
//! ```text
//! oriole gpus
//! oriole analyze  --kernel atax --gpu k20 --n 256 [--tc 128 --bc 48 --uif 1 --fast-math]
//! oriole occupancy --gpu k20 --tc 256 [--regs 27 --smem 3072]
//! oriole suggest  --kernel atax --gpu k20 [--n 128]
//! oriole simulate --kernel atax --gpu k20 --n 256 [--tc 128 --bc 48 ...]
//! oriole disasm   --kernel atax --gpu k20 [--tc 128 --uif 2 --fast-math]
//! oriole tune     --kernel atax --gpu k20 --strategy static [--budget 640]
//!                 [--sizes 32,64,128,256,512] [--spec path/to/spec]
//!                 [--store-dir artifacts/]
//! oriole store    {stats|verify|gc} --store-dir artifacts/
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `oriole help` for usage");
            ExitCode::FAILURE
        }
    }
}
